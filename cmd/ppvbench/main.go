// Command ppvbench regenerates the tables and figures of the paper's
// evaluation section (Sect. 6) from the experiment drivers in
// internal/experiments. Each -exp value corresponds to one experiment id of
// DESIGN.md; "all" runs the full suite.
//
// Usage:
//
//	ppvbench -exp fig6 -scale small
//	ppvbench -exp all  -scale tiny
//
// With -serve, ppvbench instead runs the standing serving benchmark (see
// serve.go): it boots the full HTTP serving stack in-process, replays a
// Zipfian workload against it, measures warm and cold disk-index read costs,
// and writes a BENCH_*.json report:
//
//	ppvbench -serve -scale tiny -out BENCH_6.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"fastppv/internal/experiments"
	"fastppv/internal/workload"
)

// experimentNames in presentation order.
var experimentNames = []string{
	"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"fig13", "fig14", "fig15", "fig16", "thm2", "ablation",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppvbench: ")

	var (
		exp      = flag.String("exp", "all", "experiment to run: "+strings.Join(experimentNames, ", ")+" or all")
		scaleStr = flag.String("scale", "small", "dataset scale: tiny, small or medium")

		serveMode   = flag.Bool("serve", false, "run the standing serving benchmark instead of the paper experiments")
		out         = flag.String("out", "BENCH.json", "-serve: output path for the benchfmt report (\"-\" for stdout)")
		requests    = flag.Int("requests", 2000, "-serve: queries to send")
		concurrency = flag.Int("concurrency", 8, "-serve: concurrent client workers")
		zipfS       = flag.Float64("zipf", workload.DefaultZipfS, "-serve: Zipf exponent of the query skew (>1)")
		eta         = flag.Int("eta", 2, "-serve: online iterations per query")
		top         = flag.Int("top", 10, "-serve: ranked results per query")
		seed        = flag.Int64("seed", 1, "-serve: graph and workload seed")
		diskReads   = flag.Int("disk-reads", 4000, "-serve: hub-block reads per warm/cold timing pass")
		mmap        = flag.Bool("mmap", true, "-serve: serve the read-cost index from a memory mapping (zero-copy views); falls back to pread when unsupported")
		logFormat   = flag.String("log-format", "text", "-serve: log output format, text or json")
		logLevel    = flag.String("log-level", "info", "-serve: minimum log level")

		clusterTransport = flag.String("cluster-transport", "binary",
			"-serve: shard transport of the cluster pass, binary or json (empty skips the pass)")
	)
	flag.Parse()

	if *serveMode {
		if err := runServe(serveConfig{
			scale:       *scaleStr,
			out:         *out,
			requests:    *requests,
			concurrency: *concurrency,
			zipfS:       *zipfS,
			eta:         *eta,
			top:         *top,
			seed:        *seed,
			diskReads:   *diskReads,
			mmap:        *mmap,
			logFormat:   *logFormat,
			logLevel:    *logLevel,

			clusterTransport: *clusterTransport,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	scale, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		log.Fatal(err)
	}

	selected := experimentNames
	if *exp != "all" {
		selected = strings.Split(*exp, ",")
	}
	for _, name := range selected {
		start := time.Now()
		if err := run(strings.TrimSpace(name), scale); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// run executes one named experiment and prints its table(s).
func run(name string, scale experiments.Scale) error {
	switch name {
	case "fig5", "fig6", "fig7":
		results, err := experiments.AccuracyModerated(scale)
		if err != nil {
			return err
		}
		if name != "fig7" {
			fmt.Println(experiments.Fig6Table(results))
		}
		if name != "fig6" {
			fmt.Println(experiments.Fig7Table(results))
		}
	case "fig8", "fig9":
		results, err := experiments.HubPolicies(scale, true)
		if err != nil {
			return err
		}
		if name == "fig8" {
			fmt.Println(experiments.Fig8Table(results))
		} else {
			fmt.Println(experiments.Fig9Table(results))
		}
	case "fig10", "fig11":
		points, err := experiments.HubCountSweep(scale)
		if err != nil {
			return err
		}
		if name == "fig10" {
			fmt.Println(experiments.Fig10Table(points))
		} else {
			fmt.Println(experiments.Fig11Table(points))
		}
	case "fig12":
		points, err := experiments.IterationSweep(scale, 3)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig12Table(points))
	case "fig13":
		points, err := experiments.GrowthSeries(scale)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig13Table(points))
	case "fig14", "fig15":
		points, err := experiments.Scalability(scale)
		if err != nil {
			return err
		}
		if name == "fig14" {
			fmt.Println(experiments.Fig14Table(points))
		} else {
			fmt.Println(experiments.Fig15Table(points))
		}
	case "fig16":
		points, err := experiments.DiskBased(scale, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig16Table(points))
	case "thm2":
		points, err := experiments.Theorem2(scale, 8)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Theorem2Table(points))
	case "ablation":
		results, err := experiments.Ablations(scale)
		if err != nil {
			return err
		}
		fmt.Println(experiments.AblationTable(results))
	default:
		return fmt.Errorf("unknown experiment %q (want one of %s)", name, strings.Join(experimentNames, ", "))
	}
	return nil
}
