// Package fastppv is the public API of the FastPPV reproduction: incremental
// and accuracy-aware Personalized PageRank through scheduled approximation
// (Zhu, Fang, Chang, Ying — PVLDB 6(6), 2013).
//
// The package exposes the building blocks a downstream application needs:
//
//   - building or loading a graph (Builder, LoadEdgeList, LoadBinary),
//   - creating an Engine and precomputing its hub index (New, Engine.Precompute),
//   - answering online queries with a configurable accuracy/time trade-off
//     (Engine.Query, Engine.NewQuery with per-iteration stepping),
//   - ground truth and accuracy metrics for evaluation (ExactPPV, Evaluate),
//   - maintaining the index as the graph changes (Engine.ApplyUpdate).
//
// The heavy lifting lives in the internal packages; the exported identifiers
// here are thin aliases and wrappers so that application code only ever
// imports "fastppv".
//
// A minimal end-to-end use:
//
//	b := fastppv.NewBuilder(true)
//	// ... add nodes and edges ...
//	g := b.Finalize()
//	engine, err := fastppv.New(g, fastppv.Options{NumHubs: 1000})
//	if err != nil { ... }
//	if err := engine.Precompute(); err != nil { ... }
//	res, err := engine.Query(q, fastppv.StopCondition{MaxIterations: 2})
//	for _, e := range res.TopK(10) {
//		fmt.Println(e.Node, e.Score)
//	}
package fastppv

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/metrics"
	"fastppv/internal/pagerank"
	"fastppv/internal/ppvindex"
	"fastppv/internal/sparse"
)

// Graph types.
type (
	// NodeID identifies a node: a dense index in [0, Graph.NumNodes()).
	NodeID = graph.NodeID
	// Edge is a directed edge (or one orientation of an undirected edge).
	Edge = graph.Edge
	// Graph is an immutable graph in CSR layout; build one with a Builder or
	// the Load functions.
	Graph = graph.Graph
	// Builder accumulates nodes and edges and produces a Graph.
	Builder = graph.Builder
)

// Engine types.
type (
	// Options configure an Engine (teleport probability, hub count and
	// policy, pruning thresholds). The zero value reproduces the paper's
	// defaults with an automatically chosen hub count.
	Options = core.Options
	// Engine is a FastPPV instance: offline Precompute, then online Query.
	Engine = core.Engine
	// StopCondition controls when online query processing stops (number of
	// iterations eta, target L1 error, or time limit).
	StopCondition = core.StopCondition
	// Result is the outcome of a query: the estimated PPV, the accuracy-aware
	// L1 error bound, and per-iteration statistics.
	Result = core.Result
	// QueryState is an in-progress incremental query; Step applies one more
	// PPV increment.
	QueryState = core.QueryState
	// IterationStat describes one online iteration.
	IterationStat = core.IterationStat
	// OfflineStats summarizes offline precomputation cost.
	OfflineStats = core.OfflineStats
	// GraphUpdate is a batch of edge insertions/deletions for ApplyUpdate.
	GraphUpdate = core.GraphUpdate
	// UpdateStats reports the cost of an incremental index update.
	UpdateStats = core.UpdateStats
	// Partition restricts an engine to one horizontal shard of the hub index
	// (set Options.Partition); shard routing and ownership are a pure
	// function of (hub id, shard count), see core.Partition.
	Partition = core.Partition
	// PartialIncrement is the outcome of one shard-local step of a
	// distributed query (Engine.PartialRoot / Engine.PartialExpand).
	PartialIncrement = core.PartialIncrement
)

// ParsePartition parses an "i/n" shard spec (shard i of n), as accepted by
// the fastppvd -shard flag.
func ParsePartition(s string) (Partition, error) { return core.ParsePartition(s) }

// Vector types.
type (
	// Vector is a sparse score vector indexed by node.
	Vector = sparse.Vector
	// Entry is a (node, score) pair of a ranked result.
	Entry = sparse.Entry
)

// AccuracyReport bundles the four accuracy metrics of the paper's evaluation.
type AccuracyReport = metrics.Report

// InvalidNode is returned by lookups that find no node.
const InvalidNode = graph.InvalidNode

// ErrBadIndexFormat reports a corrupt, truncated or foreign index file; both
// OpenDiskIndex and later reads through the engine can return it (wrapped).
var ErrBadIndexFormat = ppvindex.ErrBadIndexFormat

// ErrClosed reports an operation on a disk index store whose close function
// has already run; queries against a closed engine fail with it (wrapped)
// instead of reading a closed file descriptor or serving stale overlay hits.
var ErrClosed = errors.New("fastppv: disk index store is closed")

// ErrCompactionInProgress reports that Compact was called while another
// compaction of the same index was still running.
var ErrCompactionInProgress = ppvindex.ErrCompactionInProgress

// DurabilityStats summarizes the durable-update machinery of a disk-served
// index (update-log size, overlay population, compaction count).
type DurabilityStats = ppvindex.DurabilityStats

// CompactionResult reports what one compaction of a disk-served index did.
type CompactionResult = ppvindex.CompactionResult

// DefaultAlpha is the teleporting probability used throughout the paper.
const DefaultAlpha = pagerank.DefaultAlpha

// NewBuilder returns a Builder for a directed (true) or undirected (false)
// graph.
func NewBuilder(directed bool) *Builder { return graph.NewBuilder(directed) }

// FromEdges builds a graph directly from an edge list over numNodes nodes.
func FromEdges(numNodes int, directed bool, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numNodes, directed, edges)
}

// LoadEdgeList parses a text edge-list (optionally with a "nodes <n>
// directed|undirected" header).
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// LoadEdgeListFile reads a text edge-list file from disk.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// SaveEdgeListFile writes a graph as a text edge-list file.
func SaveEdgeListFile(path string, g *Graph) error { return graph.SaveEdgeListFile(path, g) }

// LoadBinaryFile reads a graph in the compact binary format.
func LoadBinaryFile(path string) (*Graph, error) { return graph.LoadBinaryFile(path) }

// SaveBinaryFile writes a graph in the compact binary format.
func SaveBinaryFile(path string, g *Graph) error { return graph.SaveBinaryFile(path, g) }

// New creates a FastPPV engine over g with an in-memory PPV index. Call
// Precompute before Query.
func New(g *Graph, opts Options) (*Engine, error) { return core.NewEngine(g, nil, opts) }

// DefaultCompactThresholdBytes is the update-log size at which a disk-served
// index compacts itself in the background, unless configured otherwise.
const DefaultCompactThresholdBytes = 64 << 20

// DiskIndexOptions tune the durable-update machinery of a disk-backed index
// (NewWithDiskIndex and OpenDiskIndexWithOptions). The zero value enables the
// update log at <index path>.log with the default compaction threshold and no
// block cache restrictions beyond the package defaults.
type DiskIndexOptions struct {
	// BlockCacheBytes budgets an in-memory cache of decoded hub blocks
	// between the engine and the disk: 0 means a 64 MiB default, negative
	// disables caching (every fetched hub costs one random disk access, the
	// raw Sect. 6.3 cost model).
	BlockCacheBytes int64
	// UpdateLogPath overrides where post-finalize index updates are logged;
	// empty means <index path>.log.
	UpdateLogPath string
	// DisableUpdateLog turns durable updates off: incremental updates then
	// live only in the in-memory overlay and are lost on restart (the
	// pre-durability behaviour).
	DisableUpdateLog bool
	// CompactThresholdBytes triggers a background compaction once the update
	// log grows past it; 0 means DefaultCompactThresholdBytes, negative
	// disables automatic compaction (manual Compact still works).
	CompactThresholdBytes int64
	// GraphLogPath overrides where committed graph updates themselves are
	// logged; empty means <index path>.graphlog. Replayed on open, so the
	// served graph (and the index epoch) survive a restart instead of
	// reverting to the graph file the daemon was started with.
	GraphLogPath string
	// DisableGraphLog turns graph-mutation logging off: after a restart the
	// engine serves the original graph again while the index still replays
	// the updated hub PPVs (the pre-graph-log behaviour).
	DisableGraphLog bool
	// Mmap maps the index file into memory and serves hub records as
	// zero-copy views instead of pread-ing them into fresh buffers. Falls
	// back to pread silently when the platform (or the file) cannot be
	// mapped; MmapActive on the store reports which mode is live.
	Mmap bool
}

// storeConfig resolves the public knobs into the internal store config.
func (o DiskIndexOptions) storeConfig(indexPath string) diskStoreConfig {
	cfg := diskStoreConfig{cacheBytes: o.BlockCacheBytes, mmap: o.Mmap}
	if !o.DisableUpdateLog {
		cfg.logPath = o.UpdateLogPath
		if cfg.logPath == "" {
			cfg.logPath = indexPath + ".log"
		}
		cfg.compactThreshold = o.CompactThresholdBytes
		if cfg.compactThreshold == 0 {
			cfg.compactThreshold = DefaultCompactThresholdBytes
		}
	}
	if !o.DisableGraphLog {
		cfg.graphLogPath = o.GraphLogPath
		if cfg.graphLogPath == "" {
			cfg.graphLogPath = indexPath + ".graphlog"
		}
	}
	return cfg
}

// NewWithDiskIndex creates a FastPPV engine whose hub prime PPVs are written
// to (and later read from) the index file at path, for deployments where the
// index should not live in memory. Records stream into <path>.tmp and the
// finished index is renamed into place when it is finalized (by the first
// read, or by the close function after a successful Precompute), so a crash
// or failure mid-precompute never leaves a partial file at path.
//
// The returned close function releases the file handles and must be called
// when the engine is no longer needed; if Precompute never succeeded it
// discards the temporary file instead of publishing an incomplete index.
func NewWithDiskIndex(g *Graph, opts Options, path string) (*Engine, func() error, error) {
	cfg := DiskIndexOptions{BlockCacheBytes: -1}.storeConfig(path)
	store, err := newDiskStore(path, cfg)
	if err != nil {
		return nil, nil, err
	}
	engine, err := core.NewEngine(g, store, opts)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	closer := func() error {
		if !engine.Precomputed() {
			return store.Abort()
		}
		return store.Close()
	}
	return engine, closer, nil
}

// BlockCacheStats summarizes the hub-block cache fronting a disk index.
type BlockCacheStats = ppvindex.BlockCacheStats

// OpenDiskIndex opens an index file precomputed earlier (by NewWithDiskIndex
// or `fastppv precompute`) and returns an engine that serves queries from it
// without redoing the offline phase: the hub set is recovered from the index
// directory and the engine is immediately query-ready.
//
// blockCacheBytes budgets an in-memory cache of decoded hub blocks between
// the engine and the disk: 0 means a 64 MiB default, negative disables
// caching (every fetched hub costs one random disk access, the raw Sect. 6.3
// cost model). opts must match the options used at precompute time.
//
// Incremental updates applied through the engine are durable: each batch of
// recomputed hub PPVs is committed to <path>.log before the update returns,
// and reopening the index replays the log, so updates survive a restart. The
// log is folded back into the base file by compaction (automatic past
// DefaultCompactThresholdBytes, or on demand through the store's Compact
// method / the daemon's /v1/compact endpoint). Use OpenDiskIndexWithOptions
// to tune or disable this.
//
// The returned close function releases the file handles; afterwards queries
// fail with ErrClosed (wrapped).
func OpenDiskIndex(g *Graph, opts Options, path string, blockCacheBytes int64) (*Engine, func() error, error) {
	return OpenDiskIndexWithOptions(g, opts, path, DiskIndexOptions{BlockCacheBytes: blockCacheBytes})
}

// OpenDiskIndexWithOptions is OpenDiskIndex with explicit control over the
// update log, graph-mutation log and compaction behaviour.
//
// When the graph log is enabled (the default), the batches it holds are
// replayed onto g before the engine is created, and the engine's index epoch
// starts at the replayed batch count: a restarted daemon serves the same
// graph, the same PPVs and the same epoch as the process that applied the
// updates live, instead of reverting non-hub answers to the original graph
// file.
func OpenDiskIndexWithOptions(g *Graph, opts Options, path string, dio DiskIndexOptions) (*Engine, func() error, error) {
	cfg := dio.storeConfig(path)
	served := g
	if cfg.graphLogPath != "" {
		bind := ppvindex.GraphLogBinding{Nodes: g.NumNodes(), Edges: g.NumEdges(), Directed: g.Directed()}
		glog, err := ppvindex.OpenGraphLog(cfg.graphLogPath, bind, func(m ppvindex.GraphMutation) error {
			next, err := core.ReplayGraphUpdate(served, core.GraphUpdate{
				AddedEdges:   m.AddedEdges,
				RemovedEdges: m.RemovedEdges,
				NumNodes:     m.NumNodes,
			})
			if err != nil {
				return fmt.Errorf("fastppv: replaying the graph-mutation log: %w", err)
			}
			served = next
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		cfg.graphLog = glog
		opts.InitialEpoch = uint64(glog.Records())
	}
	store, err := openDiskStore(path, cfg)
	if err != nil {
		if cfg.graphLog != nil {
			cfg.graphLog.Close()
		}
		return nil, nil, err
	}
	engine, err := core.NewServingEngine(served, store, opts)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return engine, store.Close, nil
}

// DefaultStop returns the paper's default stopping condition (eta = 2).
func DefaultStop() StopCondition { return core.DefaultStop() }

// ExactPPV computes the exact Personalized PageRank Vector of q on g by power
// iteration. It is the ground truth oracle; use Engine.Query for fast
// approximate answers.
func ExactPPV(g *Graph, q NodeID, alpha float64) (Vector, error) {
	return pagerank.ExactPPV(g, q, pagerank.Options{Alpha: alpha})
}

// GlobalPageRank computes the global (non-personalized) PageRank of every
// node; it is the popularity signal used by hub selection.
func GlobalPageRank(g *Graph, alpha float64) ([]float64, error) {
	return pagerank.Global(g, pagerank.Options{Alpha: alpha})
}

// Evaluate scores an approximate PPV against the exact one at ranking depth
// k, returning the paper's four accuracy metrics.
func Evaluate(exact, approx Vector, k int) AccuracyReport {
	return metrics.Evaluate(exact, approx, k)
}

// diskStoreConfig tunes a diskStore beyond its index path.
type diskStoreConfig struct {
	// cacheBytes budgets the hub-block cache: <0 disables it, 0 means the
	// package default.
	cacheBytes int64
	// logPath is where post-finalize Puts are persisted; empty disables the
	// update log (volatile overlay only).
	logPath string
	// compactThreshold triggers a background compaction once the update log
	// grows past it; <=0 disables automatic compaction.
	compactThreshold int64
	// graphLogPath is where committed graph updates are persisted; empty
	// disables the graph-mutation log. In write mode (a fresh precompute) it
	// is only used for stale-file cleanup when the new base is published.
	graphLogPath string
	// graphLog is the already opened and replayed graph-mutation log handed
	// over by OpenDiskIndexWithOptions (opening it needs the graph, which the
	// store never sees); the store takes ownership and appends/commits/closes
	// it.
	graphLog *ppvindex.GraphLog
	// mmap opens every base-index generation memory-mapped (zero-copy record
	// views); unsupported platforms fall back to pread silently.
	mmap bool
}

// diskStore adapts the disk index writer/reader pair to the engine's
// IndexStore interface. During precompute, Put streams to the writer; the
// first Get finalizes the writer and opens the index for reading (guarded by
// mu — concurrent first Gets from parallel queries must not race the
// transition). Reads optionally go through a ppvindex.BlockCache, and Puts
// after finalization (incremental updates recomputing a hub) land in an
// in-memory overlay that shadows the on-disk record, with the hub's cached
// block invalidated.
//
// When an update log is configured, every post-finalize Put is also appended
// to it and CommitUpdates (the engine's update-commit hook) fsyncs the batch,
// so incremental updates survive a restart: opening the store replays the log
// back into the overlay. Compact folds log + overlay into a rewritten base
// file (built in <path>.tmp, atomically renamed over <path>) and resets the
// log; in-flight reads drain on the old file descriptor before it is closed,
// while new reads move to the freshly published state.
type diskStore struct {
	path string
	cfg  diskStoreConfig

	// state is the published read-side view. It is swapped atomically: once
	// at the writer->reader transition, and again by every compaction. The
	// read hot path loads it without taking mu, so warm cache hits never
	// serialize on a store-wide lock.
	state atomic.Pointer[diskReadState]

	mu     sync.Mutex
	writer *ppvindex.DiskWriter
	reader *ppvindex.DiskIndex
	log    *ppvindex.UpdateLog
	// graphLog persists the graph-update batches themselves (opened and
	// replayed by OpenDiskIndexWithOptions, which owns the graph); nil when
	// graph logging is disabled or the store was created in write mode.
	graphLog *ppvindex.GraphLog
	closed   bool
	// logWedged flips when a compaction renamed the rewritten base into
	// place but failed before re-binding the log to it: frames appended from
	// then on would be bound to the replaced base and silently discarded on
	// restart, so Puts fail instead until a retried compaction (which
	// re-binds the log) or a restart recovers.
	logWedged bool

	compacting  atomic.Bool
	compactions atomic.Int64
	// logBytes/logRecords mirror the log counters so DurabilityStats can
	// report them without taking mu (which compaction holds for its whole
	// rewrite). Updated under mu, read atomically. graphLogBytes/-Records do
	// the same for the graph-mutation log.
	logBytes        atomic.Int64
	logRecords      atomic.Int64
	graphLogBytes   atomic.Int64
	graphLogRecords atomic.Int64
}

// diskReadState is one immutable read-side view of a finalized store. The
// overlay it carries is mutable (updates shadow base records through it), but
// src and reader never change; compaction publishes a whole new state instead.
// A retired state's descriptor is closed by DiskIndex.Close, which drains
// in-flight record reads first; a straggler that loaded this state before it
// was unpublished either completes against the still-open descriptor or gets
// ErrIndexClosed and retries on the current state.
type diskReadState struct {
	// src is where reads come from: the block cache when enabled, the raw
	// reader otherwise.
	src ppvindex.Index
	// overlay holds hubs rewritten after finalization; it only ever contains
	// hubs that are also in the on-disk directory, so membership queries can
	// keep delegating to src.
	overlay *ppvindex.MemIndex
	// reader owns the file descriptor behind src; cache is the block cache
	// fronting it (nil when caching is disabled).
	reader *ppvindex.DiskIndex
	cache  *ppvindex.BlockCache
	// viewSrc is src's view interface, asserted once at state construction so
	// the per-query GetView hot path skips the dynamic type check.
	viewSrc ppvindex.ViewGetter
}

// newDiskStore creates a store in write mode: Puts stream to a fresh index
// file at path until the first Get finalizes it. A leftover update log from a
// previous index at the same path is left alone until the new index is
// actually published (finalize time) — if this rebuild fails or crashes, the
// old index and its durable updates remain fully intact.
func newDiskStore(path string, cfg diskStoreConfig) (*diskStore, error) {
	w, err := ppvindex.CreateDisk(path)
	if err != nil {
		return nil, err
	}
	return &diskStore{path: path, cfg: cfg, writer: w}, nil
}

// openDiskStore opens an existing index file in read mode, replaying the
// update log (when configured) into the overlay. A stale <path>.tmp from a
// crashed precompute or compaction is removed: whatever it held either never
// completed or was already renamed into place.
func openDiskStore(path string, cfg diskStoreConfig) (*diskStore, error) {
	if err := os.Remove(path + ".tmp"); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	s := &diskStore{path: path, cfg: cfg}
	if cfg.graphLog != nil {
		s.graphLog = cfg.graphLog
		s.graphLogBytes.Store(s.graphLog.SizeBytes())
		s.graphLogRecords.Store(s.graphLog.Records())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureReaderLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *diskStore) Put(h NodeID, ppv Vector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.writer != nil {
		return s.writer.Put(h, ppv)
	}
	// Finalized: the rewrite (an incremental update recomputing this hub) is
	// logged first — write-ahead discipline — then shadows the on-disk record
	// and evicts the stale cached block. The overlay Put below never errors.
	if err := s.ensureReaderLocked(); err != nil {
		return err
	}
	if s.log != nil {
		if s.logWedged {
			return fmt.Errorf("fastppv: update log is out of sync with the rewritten base (a compaction failed after its rename); retry compaction or restart to recover")
		}
		if err := s.log.Append(h, ppv); err != nil {
			return fmt.Errorf("fastppv: appending hub %d to the update log: %w", h, err)
		}
		s.logBytes.Store(s.log.SizeBytes())
		s.logRecords.Store(s.log.Records())
	}
	st := s.state.Load()
	if err := st.overlay.Put(h, ppv); err != nil {
		return err
	}
	if st.cache != nil {
		st.cache.Invalidate([]NodeID{h})
	}
	return nil
}

// AppendGraphUpdate implements core.GraphUpdateLogger: the committed batch's
// graph mutation is staged into the graph-mutation log alongside the PPV
// rewrites already staged by Put, and CommitUpdates below makes both durable.
// Without a graph log (disabled, or a store still being precomputed) it is a
// no-op — the update then only survives restarts in its PPV half.
func (s *diskStore) AppendGraphUpdate(upd core.GraphUpdate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.graphLog == nil {
		return nil
	}
	m := ppvindex.GraphMutation{
		AddedEdges:   upd.AddedEdges,
		RemovedEdges: upd.RemovedEdges,
		NumNodes:     upd.NumNodes,
	}
	if err := s.graphLog.Append(m); err != nil {
		return fmt.Errorf("fastppv: appending to the graph-mutation log: %w", err)
	}
	s.graphLogBytes.Store(s.graphLog.SizeBytes())
	s.graphLogRecords.Store(s.graphLog.Records())
	return nil
}

// CommitUpdates implements core.UpdateCommitter: it makes the batch of Puts
// staged by one incremental update durable with a single fsync, and kicks off
// a background compaction when the log has outgrown its threshold.
func (s *diskStore) CommitUpdates() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	var trigger bool
	if s.log != nil {
		if err := s.log.Commit(); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("fastppv: committing the update log: %w", err)
		}
		trigger = s.cfg.compactThreshold > 0 && s.log.SizeBytes() >= s.cfg.compactThreshold
	}
	// The PPV half commits first: a crash between the two fsyncs then leaves
	// a replica whose graph (and epoch) are one batch behind its hub PPVs —
	// it reports the older epoch and a router folds it out. The opposite
	// order would let a replica claim the new epoch while serving the old
	// PPVs, which no epoch check could catch.
	if s.graphLog != nil {
		if err := s.graphLog.Commit(); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("fastppv: committing the graph-mutation log: %w", err)
		}
	}
	s.mu.Unlock()
	if trigger && !s.compacting.Load() {
		go func() {
			// Best effort: a failed or concurrent background compaction is
			// retried at the next commit past the threshold.
			_, _ = s.Compact()
		}()
	}
	return nil
}

func (s *diskStore) Get(h NodeID) (Vector, bool, error) {
	for {
		st, err := s.reading()
		if err != nil {
			return nil, false, err
		}
		if v, ok, _ := st.overlay.Get(h); ok {
			return v, true, nil
		}
		v, ok, err := st.src.Get(h)
		if err != nil && errors.Is(err, ppvindex.ErrIndexClosed) && s.state.Load() != st {
			// The state was retired under us (compaction swap, or Close);
			// retry against the current one — reading() reports ErrClosed
			// when the whole store is gone.
			continue
		}
		return v, ok, err
	}
}

// GetView implements ppvindex.ViewGetter: it serves a hub record as a
// zero-copy (mmap) or single-copy (pread / cached payload) view, which the
// engine's hot loop folds straight into its estimate accumulator. A hub
// shadowed by the overlay (rewritten by an incremental update) reports a miss
// so the caller falls back to Get, which serves the fresh overlay version —
// a view of the stale base record must never win over a newer rewrite.
func (s *diskStore) GetView(h NodeID) (ppvindex.HubRecordView, bool, error) {
	for {
		st, err := s.reading()
		if err != nil {
			return ppvindex.HubRecordView{}, false, err
		}
		if st.overlay.Has(h) {
			return ppvindex.HubRecordView{}, false, nil
		}
		if st.viewSrc == nil {
			return ppvindex.HubRecordView{}, false, nil
		}
		view, ok, err := st.viewSrc.GetView(h)
		if err != nil && errors.Is(err, ppvindex.ErrIndexClosed) && s.state.Load() != st {
			// The state was retired under us (compaction swap, or Close);
			// retry against the current one.
			continue
		}
		return view, ok, err
	}
}

// MmapActive reports whether the published read state serves its base index
// from a memory mapping (false when pread fallback engaged, the store is in
// write mode, or it is closed).
func (s *diskStore) MmapActive() bool {
	st := s.state.Load()
	return st != nil && st.reader != nil && st.reader.MmapActive()
}

func (s *diskStore) Has(h NodeID) bool {
	st, err := s.reading()
	if err != nil {
		return false
	}
	return st.src.Has(h)
}

func (s *diskStore) Hubs() []NodeID {
	st, err := s.reading()
	if err != nil {
		return nil
	}
	return st.src.Hubs()
}

func (s *diskStore) Len() int {
	st, err := s.reading()
	if err != nil {
		return 0
	}
	return st.src.Len()
}

func (s *diskStore) SizeBytes() int64 {
	st, err := s.reading()
	if err != nil {
		return 0
	}
	return st.src.SizeBytes()
}

// WarmHubs preloads the given hubs' records through the block cache and
// returns how many of them are now cached, so a freshly started shard can
// front-load its hottest blocks instead of paying a cold random read per
// first request. Without a block cache (or on a closed store) it is a no-op
// reporting zero. The serving layer drives it via server.Config.WarmHubs.
func (s *diskStore) WarmHubs(hubs []NodeID) int {
	st, err := s.reading()
	if err != nil || st.cache == nil {
		return 0
	}
	warmed := 0
	for _, h := range hubs {
		if _, ok, err := st.src.Get(h); err == nil && ok {
			warmed++
		}
	}
	return warmed
}

// BlockCacheStats reports the hub-block cache counters; ok is false when the
// store runs without a cache. The serving layer's /v1/stats exposes these.
// Lock-free (state load only), so stats stay responsive during a compaction.
func (s *diskStore) BlockCacheStats() (BlockCacheStats, bool) {
	st := s.state.Load()
	if st == nil || st.cache == nil {
		return BlockCacheStats{}, false
	}
	return st.cache.Stats(), true
}

// DurabilityStats reports the update-log and overlay counters; ok is false
// while the store is still in write mode (nothing finalized yet) or closed.
// Lock-free: the log counters come from mirrored atomics, so /v1/stats does
// not stall behind a running compaction (which holds mu for its rewrite).
func (s *diskStore) DurabilityStats() (DurabilityStats, bool) {
	st := s.state.Load()
	if st == nil {
		return DurabilityStats{}, false
	}
	ds := DurabilityStats{
		LogEnabled:      s.cfg.logPath != "",
		GraphLogEnabled: s.graphLog != nil,
		OverlayHubs:     st.overlay.Len(),
		Compactions:     s.compactions.Load(),
	}
	if ds.LogEnabled {
		ds.LogBytes = s.logBytes.Load()
		ds.LogRecords = s.logRecords.Load()
	}
	if ds.GraphLogEnabled {
		ds.GraphLogBytes = s.graphLogBytes.Load()
		ds.GraphLogRecords = s.graphLogRecords.Load()
	}
	return ds, true
}

// reading returns the read-side state, opening the reader first if the store
// is still in write mode. The fast path is a single atomic load — the same
// cost as before durable updates existed, so warm-read latency is unchanged.
func (s *diskStore) reading() (*diskReadState, error) {
	if st := s.state.Load(); st != nil {
		return st, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureReaderLocked(); err != nil {
		return nil, err
	}
	return s.state.Load(), nil
}

// ensureReaderLocked finalizes the writer (if still open), opens the index
// for reading, replays the update log into the overlay and publishes the read
// state. Callers must hold s.mu.
func (s *diskStore) ensureReaderLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.reader != nil {
		return nil
	}
	freshBase := s.writer != nil
	if s.writer != nil {
		if err := s.writer.Close(); err != nil {
			return err
		}
		s.writer = nil
	}
	r, err := ppvindex.OpenDiskWithOptions(s.path, ppvindex.DiskOptions{Mmap: s.cfg.mmap})
	if err != nil {
		return err
	}
	st := s.newReadState(r)
	if freshBase && s.cfg.graphLogPath != "" {
		// A fresh base means a fresh precompute over the caller's graph: a
		// graph-mutation log from a previous index at this path would replay
		// mutations the new PPVs were never computed against, so it must go.
		// (Stores built in write mode never open a graph log themselves —
		// OpenDiskIndexWithOptions does, on the reopen that starts serving.)
		if err := os.Remove(s.cfg.graphLogPath); err != nil && !os.IsNotExist(err) {
			r.Close()
			return err
		}
	}
	if s.cfg.logPath != "" {
		if freshBase {
			// The base was just rebuilt from scratch; a log from the previous
			// index must not replay onto it. (The binding check below covers
			// the cross-process crash cases; this keeps even a byte-identical
			// rebuild from resurrecting pre-rebuild updates.)
			if err := os.Remove(s.cfg.logPath); err != nil && !os.IsNotExist(err) {
				r.Close()
				return err
			}
		}
		lg, err := ppvindex.OpenUpdateLog(s.cfg.logPath, r.SizeBytes(), r.Len(), func(h NodeID, ppv Vector) error {
			// A logged hub missing from the base directory means the log does
			// not belong to this index file; refusing keeps the overlay
			// invariant (overlay ⊆ directory) and surfaces the mismatch.
			if !r.Has(h) {
				return fmt.Errorf("%w: update log %s has a record for hub %d not present in %s",
					ErrBadIndexFormat, s.cfg.logPath, h, s.path)
			}
			return st.overlay.Put(h, ppv)
		})
		if err != nil {
			r.Close()
			return err
		}
		s.log = lg
		s.logBytes.Store(lg.SizeBytes())
		s.logRecords.Store(lg.Records())
	}
	s.reader = r
	s.state.Store(st)
	return nil
}

// newReadState builds a read-side view over r, wiring the block cache when
// configured. Callers must hold s.mu.
func (s *diskStore) newReadState(r *ppvindex.DiskIndex) *diskReadState {
	st := &diskReadState{src: ppvindex.Index(r), overlay: ppvindex.NewMemIndex(), reader: r}
	if s.cfg.cacheBytes >= 0 {
		st.cache = ppvindex.NewBlockCache(r, s.cfg.cacheBytes, 0)
		st.src = st.cache
	}
	st.viewSrc, _ = st.src.(ppvindex.ViewGetter)
	return st
}

// Compact folds the update log and overlay into a rewritten base index:
// every hub record is streamed into <path>.tmp (overlay version when present,
// base record otherwise), the finished file is fsync'd and atomically renamed
// over <path>, the log is reset, and a fresh read state over the new file is
// published. Queries are served throughout — the hot path keeps reading the
// old state, whose descriptor stays open until in-flight reads drain — while
// Puts wait on mu for the duration. At most one compaction runs at a time.
func (s *diskStore) Compact() (CompactionResult, error) {
	var res CompactionResult
	if !s.compacting.CompareAndSwap(false, true) {
		return res, ErrCompactionInProgress
	}
	defer s.compacting.Store(false)
	start := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return res, ErrClosed
	}
	if err := s.ensureReaderLocked(); err != nil {
		return res, err
	}
	st := s.state.Load()
	res.TotalHubs = st.reader.Len()
	var logBytes, logRecords int64
	if s.log != nil {
		// An update batch between its first Put and its CommitUpdates has
		// appended-but-undurable frames; folding its overlay entries now
		// would make half the batch durable. Bail and let the trigger retry
		// after the commit.
		if s.log.Uncommitted() {
			return res, ppvindex.ErrUpdateInFlight
		}
		logBytes, logRecords = s.log.SizeBytes(), s.log.Records()
	}
	if st.overlay.Len() == 0 && logRecords == 0 {
		// Nothing to fold in; report the current file size and return.
		res.IndexBytes = st.reader.SizeBytes()
		res.DurationMS = float64(time.Since(start)) / 1e6
		return res, nil
	}

	w, err := ppvindex.CreateDisk(s.path)
	if err != nil {
		return res, err
	}
	for _, h := range st.reader.Hubs() {
		v, ok, err := st.overlay.Get(h)
		if ok {
			res.RewrittenHubs++
		} else {
			// Read the base record straight from the descriptor, not through
			// the block cache: a full-index sweep would evict the hot set.
			if v, ok, err = st.reader.Get(h); err != nil {
				w.Abort()
				return res, fmt.Errorf("fastppv: compaction reading hub %d: %w", h, err)
			} else if !ok {
				w.Abort()
				return res, fmt.Errorf("fastppv: compaction: hub %d vanished from the base index", h)
			}
		}
		if err := w.Put(h, v); err != nil {
			w.Abort()
			return res, fmt.Errorf("fastppv: compaction writing hub %d: %w", h, err)
		}
	}
	// Close fsyncs the file and its directory, then atomically renames the
	// rewritten file over s.path. From here the durable on-disk base owns
	// every logged update, so resetting the log is safe; a crash before the
	// reset leaves old log frames whose base binding no longer matches the
	// new file, so the next open discards instead of replaying them.
	if err := w.Close(); err != nil {
		return res, fmt.Errorf("fastppv: compaction finalizing rewritten index: %w", err)
	}
	r, err := ppvindex.OpenDiskWithOptions(s.path, ppvindex.DiskOptions{Mmap: s.cfg.mmap})
	if err != nil {
		// The old state keeps serving: its overlay still shadows the base
		// records the rewrite folded in, so answers stay correct, and the
		// rewritten file on disk already holds the merged data for recovery.
		// The log, however, is still bound to the replaced base — frames
		// appended now would be discarded on restart — so wedge updates
		// until a retried compaction re-binds it.
		s.logWedged = s.log != nil
		return res, fmt.Errorf("fastppv: compaction reopening rewritten index: %w", err)
	}
	if s.log != nil {
		if err := s.log.Reset(r.SizeBytes(), r.Len()); err != nil {
			r.Close()
			s.logWedged = true
			return res, fmt.Errorf("fastppv: compaction resetting the update log: %w", err)
		}
		s.logBytes.Store(s.log.SizeBytes())
		s.logRecords.Store(s.log.Records())
	}
	newSt := s.newReadState(r)
	old := s.state.Swap(newSt)
	s.reader = r
	if old != nil {
		// DiskIndex.Close drains in-flight record reads before releasing the
		// descriptor; stragglers still holding the old state retry against
		// the new one.
		old.reader.Close()
	}
	s.logWedged = false
	s.compactions.Add(1)

	res.LogRecordsFolded = logRecords
	res.LogBytesFreed = logBytes
	res.IndexBytes = r.SizeBytes()
	res.DurationMS = float64(time.Since(start)) / 1e6
	return res, nil
}

// Close releases the underlying file handles. The published read state is
// cleared first, so late Gets fail with ErrClosed instead of reading a closed
// descriptor or serving stale overlay hits; in-flight reads drain before the
// descriptor goes away. A store still in write mode is finalized (the index
// file is published) — use Abort to discard instead.
func (s *diskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked(false)
}

// Abort is Close for the failure path: a store still in write mode discards
// its temporary file instead of publishing it. A finalized store closes
// normally.
func (s *diskStore) Abort() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked(true)
}

func (s *diskStore) closeLocked(discard bool) error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.state.Store(nil)
	var firstErr error
	if s.writer != nil {
		var err error
		if discard {
			err = s.writer.Abort()
		} else {
			err = s.writer.Close()
			if err == nil && s.cfg.logPath != "" {
				// A fresh base was just published without ever opening the
				// log; drop any log left over from the previous index so a
				// later open does not consider replaying it. (Its binding
				// would reject it anyway unless the rebuild is
				// byte-identical.)
				if rmErr := os.Remove(s.cfg.logPath); rmErr != nil && !os.IsNotExist(rmErr) {
					err = rmErr
				}
			}
			if err == nil && s.cfg.graphLogPath != "" {
				// Same for the graph-mutation log: the freshly precomputed
				// PPVs belong to the caller's graph, not to one with old
				// mutations replayed on top.
				if rmErr := os.Remove(s.cfg.graphLogPath); rmErr != nil && !os.IsNotExist(rmErr) {
					err = rmErr
				}
			}
		}
		s.writer = nil
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.reader != nil {
		if err := s.reader.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.reader = nil
	}
	if s.log != nil {
		if err := s.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.log = nil
	}
	if s.graphLog != nil {
		if err := s.graphLog.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.graphLog = nil
	}
	return firstErr
}
