// Package ppvindex stores the precomputed building blocks of FastPPV's
// offline phase: the prime PPV of every hub node (Algorithm 1 of the paper).
// Two implementations are provided: an in-memory index for memory-resident
// graphs and a disk-backed index with random access for the disk-based
// configuration of Sect. 5.3, where fetching the prime PPV of a hub during
// online query processing costs one random read.
package ppvindex

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// Index is the read interface used by online query processing.
type Index interface {
	// Get returns the stored prime PPV of hub h. The boolean is false when h
	// is not indexed. Implementations may return shared data; callers must
	// not modify the returned vector.
	Get(h graph.NodeID) (sparse.Vector, bool, error)
	// Has reports whether h is indexed without materializing the vector.
	Has(h graph.NodeID) bool
	// Hubs returns the indexed hub nodes in ascending order.
	Hubs() []graph.NodeID
	// Len returns the number of indexed hubs.
	Len() int
	// SizeBytes estimates the storage footprint of the index payload, used by
	// the offline-space experiments (Fig. 7b, 9, 11, 15).
	SizeBytes() int64
}

// Writer is the write interface used by offline precomputation.
type Writer interface {
	// Put stores the prime PPV of hub h, replacing any previous entry.
	Put(h graph.NodeID, ppv sparse.Vector) error
}

// entryBytes is the storage cost per (node, score) pair: a uint32 node id and
// a float64 score, matching the binary disk layout.
const entryBytes = 4 + 8

// perHubOverheadBytes is the fixed per-hub cost in the binary layout: the hub
// id and the entry count.
const perHubOverheadBytes = 4 + 4

// MemIndex is an in-memory PPV index. It is safe for concurrent use.
type MemIndex struct {
	mu   sync.RWMutex
	ppvs map[graph.NodeID]sparse.Vector
	// count mirrors len(ppvs) so Has can answer "empty" without taking the
	// read lock. MemIndex doubles as the overlay of a disk store, where the
	// serving hot path probes it once per record read and it is empty except
	// in the window between an incremental update and the next compaction.
	count atomic.Int64
}

// NewMemIndex returns an empty in-memory index.
func NewMemIndex() *MemIndex {
	return &MemIndex{ppvs: make(map[graph.NodeID]sparse.Vector)}
}

// Put stores the prime PPV of hub h. The vector is stored by reference; the
// caller must not modify it afterwards.
func (m *MemIndex) Put(h graph.NodeID, ppv sparse.Vector) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ppvs[h] = ppv
	m.count.Store(int64(len(m.ppvs)))
	return nil
}

// Get returns the stored prime PPV of h.
func (m *MemIndex) Get(h graph.NodeID) (sparse.Vector, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.ppvs[h]
	return v, ok, nil
}

// Has reports whether h is indexed. An empty index answers from the atomic
// count alone, keeping the common empty-overlay probe off the lock.
func (m *MemIndex) Has(h graph.NodeID) bool {
	if m.count.Load() == 0 {
		return false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.ppvs[h]
	return ok
}

// Hubs returns the indexed hubs in ascending order.
func (m *MemIndex) Hubs() []graph.NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]graph.NodeID, 0, len(m.ppvs))
	for h := range m.ppvs {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of indexed hubs.
func (m *MemIndex) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.ppvs)
}

// SizeBytes estimates the payload size as if it were serialized to the binary
// disk layout, so that in-memory and on-disk experiments report comparable
// space numbers.
func (m *MemIndex) SizeBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, v := range m.ppvs {
		total += perHubOverheadBytes + int64(v.NonZeros())*entryBytes
	}
	return total
}

// TotalEntries returns the total number of stored (node, score) pairs.
func (m *MemIndex) TotalEntries() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, v := range m.ppvs {
		total += int64(v.NonZeros())
	}
	return total
}

// Stats summarizes an index for experiment reports.
type Stats struct {
	Hubs         int
	TotalEntries int64
	SizeBytes    int64
}

// StatsOf computes Stats for any Index. For disk indexes the entry count is
// derived from the payload size.
func StatsOf(idx Index) Stats {
	s := Stats{Hubs: idx.Len(), SizeBytes: idx.SizeBytes()}
	if m, ok := idx.(*MemIndex); ok {
		s.TotalEntries = m.TotalEntries()
	} else if s.Hubs > 0 {
		s.TotalEntries = (s.SizeBytes - int64(s.Hubs)*perHubOverheadBytes) / entryBytes
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%d hubs, %d entries, %.2f MB", s.Hubs, s.TotalEntries, float64(s.SizeBytes)/(1<<20))
}
