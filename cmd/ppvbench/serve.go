// serve.go is the -serve mode of ppvbench: the standing serving benchmark
// behind the BENCH_*.json perf trajectory. Unlike the experiment drivers
// (which regenerate the paper's tables), -serve measures the system as
// deployed: it starts an in-process fastppvd serving stack on a loopback
// listener, replays a Zipfian workload over real HTTP, and measures
// throughput, latency percentiles, response size and reported error bounds —
// then times warm and cold hub-block reads against an on-disk index, and
// replays a recorded query log across a simulated restart to compare
// log-driven cache warming against the out-degree heuristic (warm_source /
// warm_hit_rate in the report). The result is written in the shared
// internal/benchfmt schema, the same one `ppvload -json` emits, so CI
// artifacts and ad-hoc runs are comparable.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"fastppv"
	"fastppv/internal/benchfmt"
	"fastppv/internal/cluster"
	"fastppv/internal/core"
	"fastppv/internal/gen"
	"fastppv/internal/ppvindex"
	"fastppv/internal/querylog"
	"fastppv/internal/server"
	"fastppv/internal/telemetry"
	"fastppv/internal/workload"
)

// serveScales maps the -scale flag to serving-benchmark dataset sizes. They
// are intentionally smaller than the experiment scales: the serving benchmark
// runs on every CI push.
var serveScales = map[string]struct{ nodes, hubs int }{
	"tiny":   {3000, 300},
	"small":  {20000, 2000},
	"medium": {60000, 6000},
}

type serveConfig struct {
	scale       string
	out         string
	requests    int
	concurrency int
	zipfS       float64
	eta         int
	top         int
	seed        int64
	diskReads   int
	mmap        bool
	logFormat   string
	logLevel    string

	// clusterTransport selects the shard transport of the cluster comparison
	// pass ("binary" or "json"); empty skips the pass.
	clusterTransport string
}

// runServe executes the serving benchmark and writes the benchfmt report.
func runServe(cfg serveConfig) error {
	logger, err := telemetry.NewLogger(os.Stderr, cfg.logFormat, cfg.logLevel, "ppvbench")
	if err != nil {
		return err
	}
	size, ok := serveScales[cfg.scale]
	if !ok {
		return fmt.Errorf("-serve supports -scale tiny, small or medium (got %q)", cfg.scale)
	}
	if cfg.requests < 1 || cfg.concurrency < 1 {
		return fmt.Errorf("-requests and -concurrency must be positive")
	}

	gc := gen.DefaultSocialConfig()
	gc.Nodes = size.nodes
	gc.Seed = cfg.seed
	g, err := gen.SocialGraph(gc)
	if err != nil {
		return err
	}
	engine, err := fastppv.New(g, fastppv.Options{NumHubs: size.hubs})
	if err != nil {
		return err
	}
	logger.Info("precomputing hub index", "nodes", size.nodes, "hubs", size.hubs)
	if err := engine.Precompute(); err != nil {
		return err
	}

	srv, err := server.New(engine, server.Config{Logger: logger})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	logger.Info("serving benchmark stack", "addr", base,
		"requests", cfg.requests, "concurrency", cfg.concurrency, "zipf", cfg.zipfS)

	// Allocation accounting brackets the workload: the client and server run
	// in one process, so the Mallocs delta divided by successful requests is
	// the whole-stack allocation bill per query (request parsing, the pooled
	// query loop, response encoding, plus the measuring client itself).
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	qps, latencies, bounds, bytesPerQuery, hitRate, failures, err := driveWorkload(base, g.NumNodes(), cfg)
	if err != nil {
		return err
	}
	runtime.ReadMemStats(&msAfter)
	allocsPerQuery := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(len(latencies))
	poolStats := core.QueryPoolStats()

	warmNS, coldNS, mmapActive, err := diskReadCosts(g, size.hubs, cfg.diskReads, cfg.mmap, logger)
	if err != nil {
		return err
	}

	var cl clusterPassResult
	if cfg.clusterTransport != "" {
		if cl, err = clusterPass(g, size.hubs, cfg, logger); err != nil {
			return err
		}
	}

	wp, err := warmingPass(g, size.hubs, cfg, logger)
	if err != nil {
		return err
	}

	report := &benchfmt.Report{
		Source:    "ppvbench-serve",
		Mode:      "engine",
		Timestamp: time.Now().UTC(),
		Graph: benchfmt.GraphInfo{
			Nodes: g.NumNodes(),
			Edges: g.NumEdges(),
			Hubs:  size.hubs,
		},
		Workload: benchfmt.WorkloadInfo{
			Requests:    cfg.requests,
			Concurrency: cfg.concurrency,
			ZipfS:       cfg.zipfS,
			Eta:         cfg.eta,
			Top:         cfg.top,
		},
		QPS:           qps,
		LatencyMS:     benchfmt.SummarizeDurations(latencies),
		BytesPerQuery: bytesPerQuery,
		ErrorBound:    benchfmt.Summarize(bounds),
		CacheHitRate:  hitRate,
		Failures:      failures,
		WarmReadNS:    warmNS,
		ColdReadNS:    coldNS,

		AllocsPerQuery: allocsPerQuery,
		PoolHitRate:    poolStats.HitRate(),
		MmapActive:     mmapActive,

		ClusterP50MS:         cl.p50MS,
		ClusterVsSingleRatio: cl.vsSingleRatio,
		ClusterTransport:     cl.transport,
		SpeculationHitRate:   cl.specHitRate,
		WireBytesPerQuery:    cl.wireBytesPerQuery,

		WarmSource:  wp.source,
		WarmHitRate: wp.hitRate,
	}
	if err := benchfmt.WriteFile(cfg.out, report); err != nil {
		return err
	}
	logger.Info("bench report written", "path", cfg.out,
		"qps", fmt.Sprintf("%.1f", qps),
		"p50_ms", fmt.Sprintf("%.3f", report.LatencyMS.P50),
		"p99_ms", fmt.Sprintf("%.3f", report.LatencyMS.P99),
		"warm_read_ns", fmt.Sprintf("%.0f", warmNS),
		"cold_read_ns", fmt.Sprintf("%.0f", coldNS),
		"allocs_per_query", fmt.Sprintf("%.1f", allocsPerQuery),
		"pool_hit_rate", fmt.Sprintf("%.3f", poolStats.HitRate()),
		"mmap", mmapActive,
		"cluster_p50_ms", fmt.Sprintf("%.3f", cl.p50MS),
		"cluster_vs_single_ratio", fmt.Sprintf("%.2f", cl.vsSingleRatio),
		"speculation_hit_rate", fmt.Sprintf("%.3f", cl.specHitRate),
		"wire_bytes_per_query", fmt.Sprintf("%.0f", cl.wireBytesPerQuery),
		"warm_source", wp.source,
		"warm_hit_rate", fmt.Sprintf("%.3f", wp.hitRate),
		"heuristic_hit_rate", fmt.Sprintf("%.3f", wp.heuristicRate))
	return nil
}

type clusterPassResult struct {
	p50MS             float64
	vsSingleRatio     float64
	transport         string
	specHitRate       float64
	wireBytesPerQuery float64
}

// clusterPass replays the workload through a 2-shard cluster — shard daemons
// with the production /v1/stream handler, a router on the configured
// transport, and a router-fronting server — and through an uncached
// single-node server over the same engine partitioning-free, so the ratio
// compares computation paths, not cache hit rates.
func clusterPass(g *fastppv.Graph, numHubs int, cfg serveConfig, logger interface {
	Info(msg string, args ...any)
}) (clusterPassResult, error) {
	var res clusterPassResult

	serveEngine := func(e *core.Engine) (string, func(), error) {
		srv, err := server.New(e, server.Config{CacheBytes: -1})
		if err != nil {
			return "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return "http://" + ln.Addr().String(), func() { srv.CloseStreams(); hs.Close() }, nil
	}

	const shards = 2
	targets := make([]string, shards)
	logger.Info("precomputing sharded engines for the cluster pass", "shards", shards, "transport", cfg.clusterTransport)
	for i := 0; i < shards; i++ {
		e, err := core.NewEngine(g, nil, core.Options{
			NumHubs:   numHubs,
			Partition: core.Partition{Shard: i, Shards: shards},
		})
		if err != nil {
			return res, err
		}
		if err := e.Precompute(); err != nil {
			return res, err
		}
		base, stop, err := serveEngine(e)
		if err != nil {
			return res, err
		}
		defer stop()
		targets[i] = base
	}

	// The uncached single-node reference recomputes the full index once.
	single, err := core.NewEngine(g, nil, core.Options{NumHubs: numHubs})
	if err != nil {
		return res, err
	}
	if err := single.Precompute(); err != nil {
		return res, err
	}
	singleBase, stopSingle, err := serveEngine(single)
	if err != nil {
		return res, err
	}
	defer stopSingle()

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Targets:        targets,
		HealthInterval: -1,
		Transport:      cfg.clusterTransport,
	})
	if err != nil {
		return res, err
	}
	defer rt.Close()
	rsrv, err := server.NewRouter(rt, server.Config{CacheBytes: -1})
	if err != nil {
		return res, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	rhs := &http.Server{Handler: rsrv.Handler()}
	go rhs.Serve(rln)
	defer rhs.Close()
	routerBase := "http://" + rln.Addr().String()

	// Warm both stacks (connections, streams, block layout) with a slice of
	// the workload before the timed passes.
	warm := cfg
	warm.requests = cfg.requests / 10
	if warm.requests < 10 {
		warm.requests = 10
	}
	if _, _, _, _, _, _, err := driveWorkload(routerBase, g.NumNodes(), warm); err != nil {
		return res, err
	}
	if _, _, _, _, _, _, err := driveWorkload(singleBase, g.NumNodes(), warm); err != nil {
		return res, err
	}

	statsBefore := rt.Stats()
	_, clusterLat, _, _, _, clusterFailures, err := driveWorkload(routerBase, g.NumNodes(), cfg)
	if err != nil {
		return res, err
	}
	statsAfter := rt.Stats()
	if clusterFailures > 0 {
		return res, fmt.Errorf("cluster pass had %d failed requests", clusterFailures)
	}
	_, singleLat, _, _, _, _, err := driveWorkload(singleBase, g.NumNodes(), cfg)
	if err != nil {
		return res, err
	}

	res.transport = statsAfter.Transport
	res.p50MS = benchfmt.SummarizeDurations(clusterLat).P50
	singleP50 := benchfmt.SummarizeDurations(singleLat).P50
	if singleP50 > 0 {
		res.vsSingleRatio = res.p50MS / singleP50
	}
	if sent := statsAfter.SpeculationsSent - statsBefore.SpeculationsSent; sent > 0 {
		res.specHitRate = float64(statsAfter.SpeculationHits-statsBefore.SpeculationHits) / float64(sent)
	}
	wire := (statsAfter.WireBytesSent - statsBefore.WireBytesSent) +
		(statsAfter.WireBytesReceived - statsBefore.WireBytesReceived)
	res.wireBytesPerQuery = float64(wire) / float64(len(clusterLat))
	logger.Info("cluster pass complete",
		"transport", res.transport,
		"cluster_p50_ms", fmt.Sprintf("%.3f", res.p50MS),
		"single_p50_ms", fmt.Sprintf("%.3f", singleP50),
		"ratio", fmt.Sprintf("%.2f", res.vsSingleRatio),
		"speculation_hit_rate", fmt.Sprintf("%.3f", res.specHitRate),
		"wire_bytes_per_query", fmt.Sprintf("%.0f", res.wireBytesPerQuery))
	return res, nil
}

// warmingPassResult compares the two startup block-cache warming strategies.
type warmingPassResult struct {
	// source is what the restarted server reported choosing its hubs with —
	// "querylog" when the replayed log drove warming, as it should here.
	source string
	// hitRate / heuristicRate are the block-cache hit rates of the measured
	// workload served right after log-driven and heuristic warming
	// respectively (result cache disabled, so every request exercises the
	// block cache).
	hitRate       float64
	heuristicRate float64
}

// warmSources is the warming budget of both passes: the heuristic preloads
// this many hottest hubs, the log path replays this many top sources (and
// warms their hub dependencies).
const warmSources = 64

// warmingPass measures what the persistent query log buys at startup. It
// serves the benchmark workload once against a disk index while recording a
// query log (simulating yesterday's traffic), then "restarts" twice with a
// cold block cache — once warming from the replayed log, once from the
// out-degree heuristic — and reports the block-cache hit rate each restart
// achieves on the same workload.
func warmingPass(g *fastppv.Graph, numHubs int, cfg serveConfig, logger interface {
	Info(msg string, args ...any)
}) (warmingPassResult, error) {
	var res warmingPassResult
	dir, err := os.MkdirTemp("", "ppvbench-warm")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	path := dir + "/index.ppv"
	qlogPath := dir + "/queries.qlog"

	opts := fastppv.Options{NumHubs: numHubs}
	build, closeBuild, err := fastppv.NewWithDiskIndex(g, opts, path)
	if err != nil {
		return res, err
	}
	if err := build.Precompute(); err != nil {
		closeBuild()
		return res, err
	}
	if err := closeBuild(); err != nil {
		return res, err
	}

	// The block cache is sized to hold the whole index, so the hit-rate
	// difference between the restarts reflects only what warming preloaded.
	dio := fastppv.DiskIndexOptions{
		DisableUpdateLog: true, DisableGraphLog: true, BlockCacheBytes: 256 << 20,
	}
	servePhase := func(qlog *querylog.Log, warmHubs int) (warming string, rate float64, err error) {
		eng, closeIdx, err := fastppv.OpenDiskIndexWithOptions(g, opts, path, dio)
		if err != nil {
			return "", 0, err
		}
		defer closeIdx()
		srv, err := server.New(eng, server.Config{
			QueryLog: qlog, WarmHubs: warmHubs, CacheBytes: -1,
		})
		if err != nil {
			return "", 0, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", 0, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() { srv.CloseStreams(); hs.Close() }()
		base := "http://" + ln.Addr().String()

		// Snapshot after server.New so warming's own block loads don't count
		// against the workload's hit rate.
		before, err := fetchWarmStats(base)
		if err != nil {
			return "", 0, err
		}
		if _, _, _, _, _, fails, err := driveWorkload(base, g.NumNodes(), cfg); err != nil {
			return "", 0, err
		} else if fails > 0 {
			return "", 0, fmt.Errorf("warming pass had %d failed requests", fails)
		}
		after, err := fetchWarmStats(base)
		if err != nil {
			return "", 0, err
		}
		if after.Warming != nil {
			warming = after.Warming.Source
		}
		if after.BlockCache != nil && before.BlockCache != nil {
			hits := after.BlockCache.Hits - before.BlockCache.Hits
			misses := after.BlockCache.Misses - before.BlockCache.Misses
			if hits+misses > 0 {
				rate = float64(hits) / float64(hits+misses)
			}
		}
		return warming, rate, nil
	}

	// Day one: serve the workload cold while the query log records it.
	qlog, err := querylog.Open(qlogPath, querylog.Options{}, nil)
	if err != nil {
		return res, err
	}
	if _, _, err := servePhase(qlog, 0); err != nil {
		qlog.Close()
		return res, err
	}
	if err := qlog.Close(); err != nil {
		return res, err
	}

	// Restart A: heuristic warming (no log configured).
	if _, res.heuristicRate, err = servePhase(nil, warmSources); err != nil {
		return res, err
	}

	// Restart B: the log is replayed on open and drives warming.
	qlog, err = querylog.Open(qlogPath, querylog.Options{}, nil)
	if err != nil {
		return res, err
	}
	defer qlog.Close()
	if res.source, res.hitRate, err = servePhase(qlog, warmSources); err != nil {
		return res, err
	}
	logger.Info("warming pass complete",
		"source", res.source,
		"warm_hit_rate", fmt.Sprintf("%.3f", res.hitRate),
		"heuristic_hit_rate", fmt.Sprintf("%.3f", res.heuristicRate))
	return res, nil
}

// warmStatsView is the slice of /v1/stats the warming pass reads.
type warmStatsView struct {
	Warming *struct {
		Source    string `json:"source"`
		Requested int    `json:"requested"`
		Warmed    int    `json:"warmed"`
	} `json:"warming"`
	BlockCache *struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"block_cache"`
}

func fetchWarmStats(base string) (*warmStatsView, error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/stats returned %d", resp.StatusCode)
	}
	var st warmStatsView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// driveWorkload replays the Zipfian query workload over HTTP and returns the
// client-side measurements.
func driveWorkload(base string, numNodes int, cfg serveConfig) (qps float64, latencies []time.Duration, bounds []float64, bytesPerQuery, hitRate float64, failures int, err error) {
	type sample struct {
		latency time.Duration
		bound   float64
		bytes   int
		hit     bool
		failed  bool
	}
	samples := make([]sample, cfg.requests)
	var next int
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= cfg.requests {
			return -1
		}
		next++
		return next - 1
	}

	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: cfg.concurrency},
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		sampler, serr := workload.NewZipfSampler(numNodes, workload.ZipfOptions{
			S:    cfg.zipfS,
			Seed: cfg.seed + int64(w),
		})
		if serr != nil {
			err = serr
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				url := fmt.Sprintf("%s/v1/ppv?node=%d&eta=%d&top=%d", base, sampler.Next(), cfg.eta, cfg.top)
				t0 := time.Now()
				resp, rerr := client.Get(url)
				if rerr != nil {
					samples[i] = sample{failed: true}
					continue
				}
				raw, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					samples[i] = sample{failed: true}
					continue
				}
				var body struct {
					L1ErrorBound float64 `json:"l1_error_bound"`
				}
				if json.Unmarshal(raw, &body) != nil {
					samples[i] = sample{failed: true}
					continue
				}
				samples[i] = sample{
					latency: time.Since(t0),
					bound:   body.L1ErrorBound,
					bytes:   len(raw),
					hit:     resp.Header.Get("X-Fastppv-Cache") == "hit",
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var totalBytes int64
	hits := 0
	for _, s := range samples {
		if s.failed {
			failures++
			continue
		}
		latencies = append(latencies, s.latency)
		bounds = append(bounds, s.bound)
		totalBytes += int64(s.bytes)
		if s.hit {
			hits++
		}
	}
	if len(latencies) == 0 {
		err = fmt.Errorf("all %d benchmark requests failed", cfg.requests)
		return
	}
	qps = float64(len(latencies)) / elapsed.Seconds()
	bytesPerQuery = float64(totalBytes) / float64(len(latencies))
	hitRate = float64(hits) / float64(len(latencies))
	return
}

// diskReadCosts builds a disk index for the benchmark graph in a temporary
// directory and times per-hub-block reads with the block cache disabled
// (cold) and warm (steady state of a skewed serving workload). The timed read
// uses the same path the query hot loop does: a zero-copy record view when
// the store serves one (mmap, or the raw-payload block cache), falling back
// to a decoded-vector Get. Returns mean ns per read and whether the store
// actually served from a memory mapping.
func diskReadCosts(g *fastppv.Graph, numHubs, reads int, mmap bool, logger interface {
	Info(msg string, args ...any)
}) (warmNS, coldNS float64, mmapActive bool, err error) {
	dir, err := os.MkdirTemp("", "ppvbench-disk")
	if err != nil {
		return 0, 0, false, err
	}
	defer os.RemoveAll(dir)
	path := dir + "/index.ppv"

	opts := fastppv.Options{NumHubs: numHubs}
	build, closeBuild, err := fastppv.NewWithDiskIndex(g, opts, path)
	if err != nil {
		return 0, 0, false, err
	}
	if err := build.Precompute(); err != nil {
		closeBuild()
		return 0, 0, false, err
	}
	if err := closeBuild(); err != nil {
		return 0, 0, false, err
	}
	logger.Info("disk index built for read-cost measurement", "path", path, "reads", reads, "mmap", mmap)

	dio := fastppv.DiskIndexOptions{DisableUpdateLog: true, DisableGraphLog: true, Mmap: mmap}

	measure := func(cacheBytes int64, prefill bool) (float64, error) {
		d := dio
		d.BlockCacheBytes = cacheBytes
		eng, closeIdx, err := fastppv.OpenDiskIndexWithOptions(g, opts, path, d)
		if err != nil {
			return 0, err
		}
		defer closeIdx()
		idx := eng.Index()
		hubs := idx.Hubs()
		if len(hubs) == 0 {
			return 0, fmt.Errorf("disk index holds no hubs")
		}
		if ma, ok := idx.(interface{ MmapActive() bool }); ok && ma.MmapActive() {
			mmapActive = true
		}
		if prefill {
			for _, h := range hubs {
				if _, ok, err := idx.Get(h); !ok || err != nil {
					return 0, fmt.Errorf("prefilling hub %d: ok=%v err=%v", h, ok, err)
				}
			}
		}
		vg, _ := idx.(ppvindex.ViewGetter)
		start := time.Now()
		for i := 0; i < reads; i++ {
			h := hubs[i%len(hubs)]
			if vg != nil {
				view, ok, err := vg.GetView(h)
				if err == nil && ok {
					view.Release()
					continue
				}
			}
			if _, ok, err := idx.Get(h); !ok || err != nil {
				return 0, fmt.Errorf("reading hub %d: ok=%v err=%v", h, ok, err)
			}
		}
		return float64(time.Since(start)) / float64(reads), nil
	}

	if coldNS, err = measure(-1, false); err != nil { // cache disabled
		return 0, 0, false, err
	}
	if warmNS, err = measure(64<<20, true); err != nil {
		return 0, 0, false, err
	}
	return warmNS, coldNS, mmapActive, nil
}
