package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// framesafePackages hold the decoders of the framed binary formats: the FPS1
// stream frames (internal/api), the FPL1 update log, FPG1 graph log and the
// disk-index record format (internal/ppvindex), and the FPQ1 query log
// (internal/querylog). Their shared contract: corrupt, torn or truncated
// input must surface as a structured error (ErrBadFrame / ErrBadIndexFormat /
// ErrBadFormat), never as a panic or an over-read.
var framesafePackages = []string{
	"internal/api",
	"internal/ppvindex",
	"internal/querylog",
}

// framesafeEntryPrefixes name the exported decode entry points: a function or
// method whose name starts with one of these takes bytes from disk or the
// wire and must uphold the never-panic contract, as must everything it calls.
var framesafeEntryPrefixes = []string{"Decode", "Read", "Open", "Replay", "Scan", "Parse", "Get"}

// FrameSafe checks the decode paths of the framed formats: inside functions
// reachable from an exported decode entry point, a fixed-width binary read
// (binary.<order>.Uint16/32/64) or a slice index must be preceded by length
// evidence for the buffer it reads (a len() check, a make() of known size, a
// full-read io call, or derivation from an already-checked buffer), and no
// panic call may be reachable at all.
var FrameSafe = &Analyzer{
	Name: "framesafe",
	Doc: "flags unchecked fixed-width reads and reachable panics in the " +
		"decode paths of the framed formats (FPS1/FPL1/FPG1/FPQ1/disk records)",
	Run: runFrameSafe,
}

func runFrameSafe(pass *Pass) (interface{}, error) {
	if !pathHasSuffix(pass.Path, framesafePackages...) {
		return nil, nil
	}

	// Index every function declaration in the package by its object.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var order []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
				order = append(order, fd)
			}
		}
	}

	// Intra-package static call graph.
	callees := make(map[*ast.FuncDecl][]*ast.FuncDecl)
	for _, fd := range order {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			if callee, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				if target, ok := decls[callee]; ok {
					callees[fd] = append(callees[fd], target)
				}
			}
			return true
		})
	}

	// Reachability from the exported decode entry points, remembering one
	// entry name per function for the diagnostic.
	entryOf := make(map[*ast.FuncDecl]string)
	var queue []*ast.FuncDecl
	for _, fd := range order {
		if !fd.Name.IsExported() || !hasAnyPrefix(fd.Name.Name, framesafeEntryPrefixes) {
			continue
		}
		if _, seen := entryOf[fd]; !seen {
			entryOf[fd] = fd.Name.Name
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		for _, callee := range callees[fd] {
			if _, seen := entryOf[callee]; !seen {
				entryOf[callee] = entryOf[fd]
				queue = append(queue, callee)
			}
		}
	}

	for _, fd := range order {
		entry, reachable := entryOf[fd]
		if !reachable {
			continue
		}
		checkFrameSafeFunc(pass, fd, entry)
	}
	return nil, nil
}

func hasAnyPrefix(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// frameEvent is one position-ordered occurrence inside a function body that
// the length-evidence sweep cares about.
type frameEvent struct {
	pos token.Pos
	// kind: 'l' len evidence, 'm' make/full-read evidence, 'd' derived-slice
	// assignment, 'u' fixed-width binary read use, 'i' index-expression use,
	// 'p' panic call.
	kind byte
	// base is the printed root expression of the buffer involved.
	base string
	// src is the source base of a derived-slice assignment.
	src string
}

// checkFrameSafeFunc sweeps one function body in source order, accumulating
// length evidence per buffer expression and reporting reads that precede any
// evidence, plus panic calls.
func checkFrameSafeFunc(pass *Pass, fd *ast.FuncDecl, entry string) {
	var events []frameEvent
	info := pass.TypesInfo
	comparators := sortComparatorRanges(info, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				switch {
				case isBuiltin(info, fun, "len") && len(n.Args) == 1:
					events = append(events, frameEvent{pos: n.Pos(), kind: 'l', base: rootBase(n.Args[0])})
				case isBuiltin(info, fun, "panic"):
					events = append(events, frameEvent{pos: n.Pos(), kind: 'p'})
				}
			case *ast.SelectorExpr:
				if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
					pkgPath, name := obj.Pkg().Path(), fun.Sel.Name
					switch {
					case pkgPath == "encoding/binary" && (name == "Uint16" || name == "Uint32" || name == "Uint64"):
						if len(n.Args) == 1 {
							events = append(events, binaryReadEvent(pass, n.Args[0])...)
						}
					case pkgPath == "io" && name == "ReadFull" && len(n.Args) == 2:
						// io.ReadFull(r, buf) fills buf entirely or errors.
						events = append(events, frameEvent{pos: n.Pos(), kind: 'm', base: rootBase(n.Args[1])})
					case name == "ReadAt" && len(n.Args) == 2:
						// f.ReadAt(buf, off) is a full read or an error.
						events = append(events, frameEvent{pos: n.Pos(), kind: 'm', base: rootBase(n.Args[0])})
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := n.Rhs[i].(type) {
				case *ast.CallExpr:
					if fun, ok := rhs.Fun.(*ast.Ident); ok && isBuiltin(info, fun, "make") {
						events = append(events, frameEvent{pos: n.Pos(), kind: 'm', base: id.Name})
					}
				case *ast.SliceExpr:
					events = append(events, frameEvent{pos: n.Pos(), kind: 'd', base: id.Name, src: rootBase(rhs)})
				}
			}
		case *ast.IndexExpr:
			if isAssignTarget(fd.Body, n) {
				return true
			}
			tv, ok := info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
				return true
			}
			if selfBoundedIndex(info, n) || inRanges(comparators, n.Pos()) {
				return true
			}
			events = append(events, frameEvent{pos: n.Pos(), kind: 'i', base: rootBase(n.X)})
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	checked := make(map[string]bool)
	for _, ev := range events {
		switch ev.kind {
		case 'l', 'm':
			if ev.base != "" {
				checked[ev.base] = true
			}
		case 'd':
			if checked[ev.src] {
				checked[ev.base] = true
			}
		case 'u':
			if !checked[ev.base] {
				pass.Reportf(ev.pos,
					"fixed-width binary read of %q without a preceding length check in decode path of %s (reachable from exported entry %s); corrupt input must fail with a structured error, not over-read",
					ev.base, pass.Path, entry)
				checked[ev.base] = true // report each buffer once per function
			}
		case 'i':
			if !checked[ev.base] {
				pass.Reportf(ev.pos,
					"slice index of %q without a preceding length check in decode path of %s (reachable from exported entry %s)",
					ev.base, pass.Path, entry)
				checked[ev.base] = true
			}
		case 'p':
			pass.Reportf(ev.pos,
				"panic reachable from exported decode entry point %s in %s; decoders must return structured errors on corrupt input",
				entry, pass.Path)
		}
	}
}

// binaryReadEvent classifies the buffer argument of a fixed-width binary
// read. Reads of arrays (or slices of arrays) are compile-time sized and
// safe; everything else produces a use event for the evidence sweep.
func binaryReadEvent(pass *Pass, arg ast.Expr) []frameEvent {
	operand := arg
	if sl, ok := arg.(*ast.SliceExpr); ok {
		operand = sl.X
	}
	if tv, ok := pass.TypesInfo.Types[operand]; ok && tv.Type != nil {
		switch t := tv.Type.Underlying().(type) {
		case *types.Array:
			return nil
		case *types.Pointer:
			if _, ok := t.Elem().Underlying().(*types.Array); ok {
				return nil
			}
		}
	}
	return []frameEvent{{pos: arg.Pos(), kind: 'u', base: rootBase(arg)}}
}

// rootBase strips slice and index expressions and returns the printed root
// buffer expression: rootBase(r.b[r.off:]) == "r.b", rootBase(buf) == "buf".
func rootBase(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return types.ExprString(e)
		}
	}
}

// selfBoundedIndex reports whether the index expression itself contains
// len(<same base>) — the `x[i%len(x)]` / `x[min(i, len(x)-1)]` family, where
// the index is bounded by construction and no separate prior check exists.
func selfBoundedIndex(info *types.Info, n *ast.IndexExpr) bool {
	base := rootBase(n.X)
	found := false
	ast.Inspect(n.Index, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(info, id, "len") && len(call.Args) == 1 && rootBase(call.Args[0]) == base {
			found = true
			return false
		}
		return true
	})
	return found
}

// sortComparatorRanges returns the source ranges of function literals passed
// to sort.Slice / sort.SliceStable / sort.SliceIsSorted / sort.Search. The
// indices those closures receive are supplied by the sort package and are in
// range by contract, so slice indexing inside them needs no prior length
// evidence.
func sortComparatorRanges(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
			return true
		}
		switch sel.Sel.Name {
		case "Slice", "SliceStable", "SliceIsSorted", "Search":
		default:
			return true
		}
		for _, a := range call.Args {
			if fl, ok := a.(*ast.FuncLit); ok {
				ranges = append(ranges, [2]token.Pos{fl.Pos(), fl.End()})
			}
		}
		return true
	})
	return ranges
}

func inRanges(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

// isBuiltin reports whether id resolves to the named builtin.
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// isAssignTarget reports whether expr appears as an assignment left-hand side
// anywhere in body. Writes into a slice cannot over-read wire input, so only
// index reads feed the evidence sweep.
func isAssignTarget(body *ast.BlockStmt, expr ast.Expr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if lhs == expr {
				found = true
			}
		}
		return true
	})
	return found
}
