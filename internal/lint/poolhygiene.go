package lint

import (
	"go/ast"
	"go/types"
)

// PoolHygiene flags sync.Pool.Put calls whose argument's type carries a
// Reset (or unexported reset) method that is not invoked on that value
// anywhere in the same function. A pooled value that re-enters the pool
// un-reset leaks one query's state — accumulator entries, frontier slices,
// retained views — into an unrelated later query, which is both a
// correctness and an isolation hazard. Resetting at Put time (rather than
// after Get) also drops references earlier, so the GC can reclaim what the
// buffers point at while they sit in the pool.
var PoolHygiene = &Analyzer{
	Name: "poolhygiene",
	Doc: "flags sync.Pool.Put of a value with a Reset method when the same " +
		"function never calls Reset on it",
	Run: runPoolHygiene,
}

func runPoolHygiene(pass *Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
			return true
		}
		if !isSyncPool(info, sel.X) {
			return true
		}
		arg := call.Args[0]
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			return true
		}
		resetName, ok := resetMethodOf(tv.Type)
		if !ok {
			return true
		}
		if callsMethodOn(info, fd.Body, arg, resetName) {
			return true
		}
		pass.Reportf(call.Pos(),
			"sync.Pool.Put of %s whose type has a %s method that is never called in this function; un-reset pooled values leak state across queries",
			types.ExprString(arg), resetName)
		return true
	})
}

// isSyncPool reports whether e is a sync.Pool or *sync.Pool value.
func isSyncPool(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// resetMethodOf returns the name of the Reset/reset method in the method set
// of t (or its pointer type), if one exists.
func resetMethodOf(t types.Type) (string, bool) {
	for _, name := range []string{"Reset", "reset"} {
		if hasMethod(t, name) {
			return name, true
		}
	}
	return "", false
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		ms = types.NewMethodSet(types.NewPointer(t))
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

// callsMethodOn reports whether body contains a call <recv>.<method>() whose
// printed receiver expression equals the printed form of value (or of &value
// / *value, so pointer-vs-value spellings still match).
func callsMethodOn(info *types.Info, body *ast.BlockStmt, value ast.Expr, method string) bool {
	want := types.ExprString(value)
	if u, ok := value.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		want = types.ExprString(u.X)
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		recv := types.ExprString(sel.X)
		if recv == want || recv == "&"+want || recv == "*"+want {
			found = true
		}
		return true
	})
	return found
}
