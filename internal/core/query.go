package core

import (
	"fmt"
	"sort"
	"time"

	"fastppv/internal/graph"
	"fastppv/internal/prime"
	"fastppv/internal/sparse"
)

// IterationStat records what one online iteration did.
type IterationStat struct {
	// Iteration is the iteration number (0 is the query node's prime PPV).
	Iteration int
	// HubsExpanded is the number of hub prime PPVs fetched and assembled in
	// this iteration (0 for iteration 0).
	HubsExpanded int
	// HubsSkipped counts candidate hubs pruned by the delta threshold.
	HubsSkipped int
	// FrontierSize is the number of border hubs in the frontier this iteration
	// expanded (candidates before delta pruning); for iteration 0 it is the
	// size of the frontier the root produced for iteration 1.
	FrontierSize int
	// MassAdded is the total score mass contributed by this iteration's PPV
	// increment; Theorem 2 predicts it shrinks exponentially with the
	// iteration number.
	MassAdded float64
	// L1ErrorBound is phi(i) = 1 - sum(estimate) after this iteration.
	L1ErrorBound float64
	// Duration is the wall time of the iteration.
	Duration time.Duration
}

// Result is the outcome of an online FastPPV query.
type Result struct {
	// Query is the query node.
	Query graph.NodeID
	// Estimate is the approximate PPV accumulated over all processed
	// iterations.
	Estimate sparse.Vector
	// Iterations is the number of PPV increments applied beyond iteration 0.
	Iterations int
	// L1ErrorBound is the accuracy-aware error phi after the last iteration:
	// an upper bound on the L1 distance to the exact PPV, computable without
	// knowing the exact PPV (Eq. 6).
	L1ErrorBound float64
	// PerIteration holds one entry per processed iteration, including
	// iteration 0.
	PerIteration []IterationStat
	// QueryPPVComputed reports whether the query node's prime PPV had to be
	// computed on the fly (true when the query is not a hub).
	QueryPPVComputed bool
	// Duration is the total query wall time.
	Duration time.Duration
}

// TopK returns the k best nodes of the estimate.
func (r *Result) TopK(k int) []sparse.Entry { return r.Estimate.TopK(k) }

// Query runs online FastPPV query processing (Algorithm 2) for query node q
// under the stopping condition stop, assembling PPV increments from the
// precomputed hub prime PPVs.
func (e *Engine) Query(q graph.NodeID, stop StopCondition) (*Result, error) {
	qs, err := e.NewQuery(q)
	if err != nil {
		return nil, err
	}
	res := qs.Run(stop)
	qs.Close()
	return res, nil
}

// QueryState is an in-progress incremental query. It exposes the scheduled
// approximation directly: Step applies one more PPV increment and returns the
// updated accuracy bound, so callers can trade accuracy for time dynamically
// (the "accuracy-aware" property of Sect. 3).
//
// The working state — the running estimate, the per-step increment and the
// frontier — lives in a pooled flat-slice bundle, not in maps: Step folds hub
// records (zero-copy views when the index provides them) into a sorted
// accumulator with linear merges, and the map-based Result.Estimate is
// materialized lazily at the API boundary (Result, Run, Close). Callers that
// drive QueryState directly should Close it when done to recycle the bundle;
// a state that is never Closed is still correct, just not pooled.
type QueryState struct {
	engine *Engine
	query  graph.NodeID

	// bufs holds the pooled working set: bufs.acc is the running estimate,
	// bufs.inc the per-step increment, bufs.frontier the border hubs of the
	// next iteration (sorted by ascending hub, prefix weights of Theorem 4).
	// nil after Close.
	bufs      *queryBufs
	iteration int
	result    *Result
	// estimateDirty marks that bufs.acc has advanced past the materialized
	// result.Estimate (or that no materialization happened yet).
	estimateDirty bool
	started       time.Time
	// mass is the running total of the estimate, accumulated increment by
	// increment in deterministic (node-ordered) summation order so the error
	// bound 1-mass is byte-reproducible without re-summing the whole estimate
	// on every Step.
	mass float64
	// deps records the hubs whose indexed prime PPV this query consumed
	// (iteration 0 when the query node is a hub, plus every hub expanded by a
	// Step). Result caches use it for targeted invalidation after a graph
	// update: a cached answer is stale once any of these hubs is recomputed.
	deps map[graph.NodeID]struct{}
}

// NewQuery starts incremental query processing for q and performs iteration 0
// (the prime PPV of the query node, loaded from the index when q is a hub).
func (e *Engine) NewQuery(q graph.NodeID) (*QueryState, error) {
	return e.NewQueryOn(e.g, q)
}

// QueryOn is Query, but prime-subgraph identification for the query node runs
// against the supplied adjacency view instead of the in-memory graph. The
// disk-based configuration of Sect. 5.3 passes a diskgraph.View here so that
// cluster faults are charged to the query.
func (e *Engine) QueryOn(adj prime.Adjacency, q graph.NodeID, stop StopCondition) (*Result, error) {
	qs, err := e.NewQueryOn(adj, q)
	if err != nil {
		return nil, err
	}
	res := qs.Run(stop)
	qs.Close()
	return res, nil
}

// NewQueryOn is NewQuery over an alternative adjacency view (see QueryOn).
func (e *Engine) NewQueryOn(adj prime.Adjacency, q graph.NodeID) (*QueryState, error) {
	if !e.precomputed {
		return nil, fmt.Errorf("core: Query before Precompute")
	}
	if q < 0 || int(q) >= adj.NumNodes() {
		return nil, fmt.Errorf("core: %w: query %d", graph.ErrNodeOutOfRange, q)
	}
	started := time.Now()

	b := getQueryBufs()
	var (
		computed  bool
		fromIndex bool
	)
	// Iteration 0: the query node's prime PPV. Prefer the zero-copy view
	// path; fall back to the map Get (which also covers overlay records) and
	// finally to computing the prime PPV on the fly for non-hub queries.
	if e.viewIndex != nil {
		if view, ok, verr := e.viewIndex.GetView(q); verr == nil && ok {
			b.acc.SetEncoded(view.EntryBytes())
			view.Release()
			fromIndex = true
		}
	}
	if !fromIndex {
		if stored, ok, err := e.index.Get(q); err != nil {
			putQueryBufs(b)
			return nil, fmt.Errorf("core: loading prime PPV of query %d: %w", q, err)
		} else if ok {
			b.acc.SetVector(stored)
		} else {
			queryPPV, _, err := prime.ComputePPV(adj, q, e.hubs, e.opts.primeOptions())
			if err != nil {
				putQueryBufs(b)
				return nil, fmt.Errorf("core: prime PPV of query %d: %w", q, err)
			}
			b.acc.SetVector(queryPPV)
			computed = true
		}
	}

	qs := &QueryState{
		engine:        e,
		query:         q,
		bufs:          b,
		deps:          make(map[graph.NodeID]struct{}),
		estimateDirty: true,
		started:       started,
		iteration:     0,
	}
	if !computed {
		qs.deps[q] = struct{}{}
	}
	// The frontier after iteration 0 is the hub entries of the query's prime
	// PPV. If the query node is itself a hub, its self-entry includes the
	// empty tour, which must not be extended (the starting node is excluded
	// from hub length), so subtract alpha from it. Scanning the sorted
	// accumulator entries yields the frontier already in expansion order.
	for _, en := range b.acc.Entries() {
		if !e.hubs.Contains(en.Node) {
			continue
		}
		w := en.Score
		if en.Node == q {
			w -= e.opts.Alpha
		}
		if w > 0 {
			b.frontier = append(b.frontier, frontierEntry{hub: en.Node, prefix: w})
		}
	}
	qs.mass = b.acc.Sum()
	bound := 1 - qs.mass
	qs.result = &Result{
		Query:            q,
		L1ErrorBound:     bound,
		QueryPPVComputed: computed,
		PerIteration: []IterationStat{{
			Iteration:    0,
			MassAdded:    qs.mass,
			L1ErrorBound: bound,
			FrontierSize: len(b.frontier),
			Duration:     time.Since(started),
		}},
	}
	qs.result.Duration = time.Since(started)
	return qs, nil
}

// syncEstimate materializes the accumulator into the public map-based
// Result.Estimate if it is stale. This is the only place the hot-loop state
// crosses into the map representation.
func (qs *QueryState) syncEstimate() {
	if qs.bufs == nil {
		return // Closed: the last sync already produced the final estimate.
	}
	if qs.estimateDirty || qs.result.Estimate == nil {
		qs.result.Estimate = qs.bufs.acc.ToVector()
		qs.estimateDirty = false
	}
}

// Result returns the current result snapshot. The estimate is shared with the
// query state; callers that keep iterating should not modify it.
func (qs *QueryState) Result() *Result {
	qs.syncEstimate()
	return qs.result
}

// Close materializes the final result and returns the query's pooled working
// buffers for reuse. The returned Result (and everything previously obtained
// via Result or Run) stays valid; further Steps are no-ops. Close is
// idempotent. Long-running servers should Close every query they finish so
// the per-query working set is recycled instead of re-allocated.
func (qs *QueryState) Close() {
	if qs.bufs == nil {
		return
	}
	qs.syncEstimate()
	putQueryBufs(qs.bufs)
	qs.bufs = nil
}

// L1ErrorBound returns the current accuracy-aware error bound.
func (qs *QueryState) L1ErrorBound() float64 { return qs.result.L1ErrorBound }

// Iteration returns the number of Steps applied so far (0 right after
// NewQuery). Serving layers use it to report how far a degraded answer got.
func (qs *QueryState) Iteration() int { return qs.iteration }

// HubDeps returns, in ascending order, the hubs whose indexed prime PPV this
// query has consumed so far. A cached result derived from this state must be
// invalidated when any of these hubs' prime PPVs is recomputed.
func (qs *QueryState) HubDeps() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(qs.deps))
	//lint:ordered collect-then-sort: deps are sorted by id before returning
	for h := range qs.deps {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Exhausted reports whether no extendable hubs remain, i.e. further Steps
// cannot improve the estimate.
func (qs *QueryState) Exhausted() bool {
	return qs.bufs == nil || len(qs.bufs.frontier) == 0
}

// Step applies the next PPV increment (one more iteration of Algorithm 2's
// while loop) and returns its statistics. Calling Step when Exhausted is a
// no-op that returns a zero-mass stat.
func (qs *QueryState) Step() IterationStat {
	e := qs.engine
	iterStart := time.Now()
	qs.iteration++
	stat := IterationStat{Iteration: qs.iteration}
	b := qs.bufs
	if b != nil {
		stat.FrontierSize = len(b.frontier)
	}

	if b == nil || len(b.frontier) == 0 {
		stat.L1ErrorBound = qs.result.L1ErrorBound
		qs.result.PerIteration = append(qs.result.PerIteration, stat)
		return stat
	}

	inc := &b.inc
	inc.Reset()
	// The frontier slice is already sorted by ascending hub id, so hubs are
	// expanded in deterministic order and floating-point accumulation is
	// reproducible: two queries at the same eta return entry-wise identical
	// estimates, which lets serving-layer caches promise byte-identical
	// cached responses.
	for _, fe := range b.frontier {
		if fe.prefix <= e.opts.Delta {
			stat.HubsSkipped++
			continue
		}
		// Theorem 4: extend the prefix ending at hub h by h's prime PPV,
		// excluding h's empty tour (an extension must advance the walk). The
		// self-correction is applied inline by the accumulate kernel — no
		// per-hub clone of the prime PPV.
		scale := fe.prefix / e.opts.Alpha
		if e.viewIndex != nil {
			if view, ok, verr := e.viewIndex.GetView(fe.hub); verr == nil && ok {
				inc.StageEncodedExtension(view.EntryBytes(), scale, fe.hub, e.opts.Alpha)
				view.Release()
				qs.deps[fe.hub] = struct{}{}
				stat.HubsExpanded++
				continue
			}
		}
		hubPPV, ok, err := e.index.Get(fe.hub)
		if err != nil || !ok {
			// A hub missing from the index (or an I/O error) is recovered by
			// computing its prime PPV on the fly; this keeps queries usable
			// with partially built indexes at the cost of extra work.
			hubPPV, _, err = prime.ComputePPV(e.g, fe.hub, e.hubs, e.opts.primeOptions())
			if err != nil {
				stat.HubsSkipped++
				continue
			}
		}
		inc.StageVectorExtension(hubPPV, scale, fe.hub, e.opts.Alpha)
		qs.deps[fe.hub] = struct{}{}
		stat.HubsExpanded++
	}
	// One stable-sort fold of everything staged: per-node contributions sum
	// in ascending-hub order, bit-equal to merging hub by hub.
	inc.Combine()

	b.acc.AddAccumulator(inc)
	qs.estimateDirty = true
	// The next frontier is the hub entries of the increment; the increment is
	// sorted, so the frontier slice is born sorted.
	b.nextFrontier = b.nextFrontier[:0]
	for _, en := range inc.Entries() {
		if en.Score > 0 && e.hubs.Contains(en.Node) {
			b.nextFrontier = append(b.nextFrontier, frontierEntry{hub: en.Node, prefix: en.Score})
		}
	}
	b.frontier, b.nextFrontier = b.nextFrontier, b.frontier

	stat.MassAdded = inc.Sum()
	qs.mass += stat.MassAdded
	stat.L1ErrorBound = 1 - qs.mass
	stat.Duration = time.Since(iterStart)

	qs.result.Iterations = qs.iteration
	qs.result.L1ErrorBound = stat.L1ErrorBound
	qs.result.PerIteration = append(qs.result.PerIteration, stat)
	qs.result.Duration = time.Since(qs.started)
	return stat
}

// Run keeps stepping until the stopping condition is met and returns the
// final result.
func (qs *QueryState) Run(stop StopCondition) *Result {
	maxIter := stop.maxIterations()
	for qs.iteration < maxIter {
		if stop.TargetL1Error > 0 && qs.result.L1ErrorBound <= stop.TargetL1Error {
			break
		}
		if stop.TimeLimit > 0 && time.Since(qs.started) >= stop.TimeLimit {
			break
		}
		if qs.Exhausted() {
			break
		}
		prev := qs.result.L1ErrorBound
		st := qs.Step()
		// Defensive convergence guard: if an iteration added no mass (all
		// candidate hubs pruned by delta), further iterations cannot help.
		if st.MassAdded == 0 && st.L1ErrorBound >= prev {
			break
		}
	}
	qs.result.Duration = time.Since(qs.started)
	qs.syncEstimate()
	return qs.result
}
