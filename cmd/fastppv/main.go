// Command fastppv is the end-user CLI of the FastPPV library. It supports
// three subcommands:
//
//	fastppv precompute -graph g.txt -hubs 20000 -index idx.ppv
//	    select hubs and precompute their prime PPVs into a disk index.
//
//	fastppv query -graph g.txt -index idx.ppv -node 42 -eta 2 -top 10
//	    answer a single query from a precomputed index (or precompute an
//	    in-memory index on the fly when -index is omitted).
//
//	fastppv evaluate -graph g.txt -hubs 20000 -queries 50 -eta 2
//	    precompute, run a random query workload, and report the paper's
//	    accuracy metrics against exact PPVs.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"fastppv"
	"fastppv/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fastppv: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "precompute":
		err = runPrecompute(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "evaluate":
		err = runEvaluate(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fastppv precompute -graph <file> [-hubs N] [-alpha 0.15] [-shard i/n] -index <file>
  fastppv query      -graph <file> [-index <file>] [-hubs N] -node <id> [-eta 2] [-top 10]
  fastppv evaluate   -graph <file> [-hubs N] [-queries 50] [-eta 2] [-seed 1]`)
}

// loadGraph reads either the edge-list or binary format, dispatching on a
// quick magic check.
func loadGraph(path string) (*fastppv.Graph, error) {
	if g, err := fastppv.LoadBinaryFile(path); err == nil {
		return g, nil
	}
	return fastppv.LoadEdgeListFile(path)
}

func runPrecompute(args []string) error {
	fs := flag.NewFlagSet("precompute", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (edge list or binary)")
	hubs := fs.Int("hubs", 0, "number of hubs (0 = choose automatically)")
	alpha := fs.Float64("alpha", fastppv.DefaultAlpha, "teleporting probability")
	indexPath := fs.String("index", "", "output index file")
	shardSpec := fs.String("shard", "", "build one hub partition only, as \"i/n\" (for fastppvd -shard i/n)")
	fs.Parse(args)
	if *graphPath == "" || *indexPath == "" {
		return fmt.Errorf("precompute requires -graph and -index")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	fmt.Println(g.Stats())
	opts := fastppv.Options{NumHubs: *hubs, Alpha: *alpha}
	if *shardSpec != "" {
		if opts.Partition, err = fastppv.ParsePartition(*shardSpec); err != nil {
			return err
		}
		fmt.Printf("building hub partition %s\n", opts.Partition)
	}
	engine, closeIndex, err := fastppv.NewWithDiskIndex(g, opts, *indexPath)
	if err != nil {
		return err
	}
	if err := engine.Precompute(); err != nil {
		// The close function discards the temporary file when Precompute
		// failed, so no partial index is left at -index.
		closeIndex()
		return err
	}
	// Finalizing publishes the index (fsync + atomic rename); a failure here
	// means no usable file was written, so it must be reported.
	if err := closeIndex(); err != nil {
		return fmt.Errorf("finalizing index %s: %w", *indexPath, err)
	}
	off := engine.OfflineStats()
	fmt.Printf("indexed %d hubs in %v (hub selection %v, prime PPVs %v)\n",
		off.Hubs, off.Total.Round(time.Millisecond),
		off.HubSelection.Round(time.Millisecond), off.PrimePPV.Round(time.Millisecond))
	fmt.Printf("index: %s (%.2f MB, %d entries)\n", *indexPath, float64(off.IndexBytes)/(1<<20), off.IndexEntries)
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (edge list or binary)")
	hubs := fs.Int("hubs", 0, "number of hubs when precomputing in memory")
	alpha := fs.Float64("alpha", fastppv.DefaultAlpha, "teleporting probability")
	node := fs.Int("node", -1, "query node id")
	eta := fs.Int("eta", 2, "number of online iterations")
	top := fs.Int("top", 10, "number of results to print")
	targetErr := fs.Float64("target-error", 0, "stop once the L1 error bound drops below this (0 = ignore)")
	fs.Parse(args)
	if *graphPath == "" || *node < 0 {
		return fmt.Errorf("query requires -graph and -node")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	engine, err := fastppv.New(g, fastppv.Options{NumHubs: *hubs, Alpha: *alpha})
	if err != nil {
		return err
	}
	start := time.Now()
	if err := engine.Precompute(); err != nil {
		return err
	}
	fmt.Printf("precomputed %d hubs in %v\n", engine.OfflineStats().Hubs, time.Since(start).Round(time.Millisecond))

	res, err := engine.Query(fastppv.NodeID(*node), fastppv.StopCondition{
		MaxIterations: *eta,
		TargetL1Error: *targetErr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("query %d: %d iterations, L1 error bound %.4f, %v\n",
		*node, res.Iterations, res.L1ErrorBound, res.Duration.Round(time.Microsecond))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tnode\tlabel\tscore")
	for i, e := range res.TopK(*top) {
		fmt.Fprintf(w, "%d\t%d\t%s\t%.6f\n", i+1, e.Node, g.Label(e.Node), e.Score)
	}
	return w.Flush()
}

func runEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (edge list or binary)")
	hubs := fs.Int("hubs", 0, "number of hubs (0 = choose automatically)")
	alpha := fs.Float64("alpha", fastppv.DefaultAlpha, "teleporting probability")
	queries := fs.Int("queries", 50, "number of random query nodes")
	eta := fs.Int("eta", 2, "number of online iterations")
	seed := fs.Int64("seed", 1, "workload seed")
	fs.Parse(args)
	if *graphPath == "" {
		return fmt.Errorf("evaluate requires -graph")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	fmt.Println(g.Stats())
	engine, err := fastppv.New(g, fastppv.Options{NumHubs: *hubs, Alpha: *alpha})
	if err != nil {
		return err
	}
	if err := engine.Precompute(); err != nil {
		return err
	}
	off := engine.OfflineStats()
	fmt.Printf("offline: %d hubs, %v, %.2f MB\n", off.Hubs, off.Total.Round(time.Millisecond), float64(off.IndexBytes)/(1<<20))

	rng := rand.New(rand.NewSource(*seed))
	var (
		reports   []metrics.Report
		totalTime time.Duration
	)
	for i := 0; i < *queries; i++ {
		q := fastppv.NodeID(rng.Intn(g.NumNodes()))
		start := time.Now()
		res, err := engine.Query(q, fastppv.StopCondition{MaxIterations: *eta})
		totalTime += time.Since(start)
		if err != nil {
			return err
		}
		exact, err := fastppv.ExactPPV(g, q, *alpha)
		if err != nil {
			return err
		}
		reports = append(reports, fastppv.Evaluate(exact, res.Estimate, 10))
	}
	avg := metrics.Average(reports)
	fmt.Printf("online (%d queries, eta=%d): %.3f ms/query\n",
		*queries, *eta, float64(totalTime.Microseconds())/float64(*queries)/1000.0)
	fmt.Printf("accuracy: kendall=%.4f precision=%.4f rag=%.4f l1sim=%.4f\n",
		avg.KendallTau, avg.Precision, avg.RAG, avg.L1Similarity)
	return nil
}
