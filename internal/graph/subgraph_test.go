package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(true)
	b.EnsureNodes(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(5, 0)
	g := b.Finalize()

	sub, mapping := InducedSubgraph(g, []NodeID{0, 1, 2, 2}) // duplicate on purpose
	if sub.NumNodes() != 3 {
		t.Fatalf("induced subgraph has %d nodes, want 3", sub.NumNodes())
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping has %d entries, want 3", len(mapping))
	}
	// Edges 0->1 and 1->2 survive; 2->3 does not.
	if sub.NumEdges() != 2 {
		t.Errorf("induced subgraph has %d edges, want 2", sub.NumEdges())
	}
	for newID, oldID := range mapping {
		if oldID != NodeID(newID) {
			t.Errorf("mapping[%d] = %d, want identity here", newID, oldID)
		}
	}
}

func TestSampleEdgesKeepsNodeSetAndBounds(t *testing.T) {
	b := NewBuilder(true)
	b.EnsureNodes(20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		u, v := NodeID(rng.Intn(20)), NodeID(rng.Intn(20))
		if u != v {
			b.MustAddEdge(u, v)
		}
	}
	g := b.Finalize()

	s := SampleEdges(g, 10, 7)
	if s.NumNodes() != g.NumNodes() {
		t.Errorf("sample changed the node count: %d vs %d", s.NumNodes(), g.NumNodes())
	}
	if s.NumLogicalEdges() != 10 {
		t.Errorf("sample has %d edges, want 10", s.NumLogicalEdges())
	}
	// Every sampled edge exists in the original graph.
	s.Edges(func(e Edge) bool {
		if !g.HasEdge(e.From, e.To) {
			t.Errorf("sampled edge %v not present in the original graph", e)
		}
		return true
	})
	// Requesting more edges than available returns all of them.
	all := SampleEdges(g, 10_000, 7)
	if all.NumLogicalEdges() != g.NumLogicalEdges() {
		t.Errorf("oversized sample has %d edges, want %d", all.NumLogicalEdges(), g.NumLogicalEdges())
	}
	// Deterministic for a fixed seed.
	again := SampleEdges(g, 10, 7)
	if len(again.EdgeList()) != len(s.EdgeList()) {
		t.Fatal("sampling is not deterministic for a fixed seed")
	}
	for i, e := range s.EdgeList() {
		if again.EdgeList()[i] != e {
			t.Fatal("sampling is not deterministic for a fixed seed")
		}
	}
}

func TestLargestComponentNodes(t *testing.T) {
	// Two components: {0,1,2,3} connected, {4,5} connected.
	b := NewBuilder(true)
	b.EnsureNodes(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(4, 5)
	g := b.Finalize()
	got := LargestComponentNodes(g)
	if len(got) != 4 {
		t.Fatalf("largest component has %d nodes, want 4: %v", len(got), got)
	}
	for i, v := range got {
		if v != NodeID(i) {
			t.Errorf("largest component = %v, want [0 1 2 3]", got)
			break
		}
	}
}

// TestCSRInvariantsQuick property-tests the builder: for random edge sets the
// finalized CSR must validate, preserve the edge multiset, and report
// consistent degree sums.
func TestCSRInvariantsQuick(t *testing.T) {
	f := func(rawEdges []uint16, directed bool, numNodesRaw uint8) bool {
		numNodes := int(numNodesRaw%64) + 2
		b := NewBuilder(directed)
		b.EnsureNodes(numNodes)
		want := 0
		for i := 0; i+1 < len(rawEdges); i += 2 {
			u := NodeID(int(rawEdges[i]) % numNodes)
			v := NodeID(int(rawEdges[i+1]) % numNodes)
			if u == v {
				continue
			}
			b.MustAddEdge(u, v)
			want++
		}
		g := b.Finalize()
		if err := g.Validate(); err != nil {
			return false
		}
		if g.NumLogicalEdges() != want {
			return false
		}
		// Sum of out-degrees equals the number of stored arcs, and so does
		// the sum of in-degrees.
		outSum, inSum := 0, 0
		for u := 0; u < g.NumNodes(); u++ {
			outSum += g.OutDegree(NodeID(u))
			inSum += g.InDegree(NodeID(u))
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBinaryRoundTripQuick property-tests the binary codec: any graph the
// builder produces survives a write/read round trip unchanged.
func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(rawEdges []uint16, directed bool, numNodesRaw uint8) bool {
		numNodes := int(numNodesRaw%32) + 2
		b := NewBuilder(directed)
		b.EnsureNodes(numNodes)
		for i := 0; i+1 < len(rawEdges); i += 2 {
			u := NodeID(int(rawEdges[i]) % numNodes)
			v := NodeID(int(rawEdges[i+1]) % numNodes)
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Finalize()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() || got.Directed() != g.Directed() {
			return false
		}
		for u := 0; u < g.NumNodes(); u++ {
			a, c := g.OutNeighbors(NodeID(u)), got.OutNeighbors(NodeID(u))
			if len(a) != len(c) {
				return false
			}
			for i := range a {
				if a[i] != c[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
