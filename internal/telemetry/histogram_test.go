package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramObserveBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Boundaries are inclusive upper bounds: 1 lands in the le="1" bucket.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 106 {
		t.Fatalf("sum = %v, want 106", s.Sum)
	}
}

func TestHistogramTrailingInfStripped(t *testing.T) {
	h := NewHistogram([]float64{1, math.Inf(1)})
	if len(h.upper) != 1 {
		t.Fatalf("trailing +Inf should be stripped, got bounds %v", h.upper)
	}
}

func TestHistogramUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets should panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

// TestHistogramConcurrentWriters hammers one histogram from many goroutines
// and checks the final snapshot is exact once writers are quiesced. Run under
// -race this also proves Observe and Snapshot are data-race free.
func TestHistogramConcurrentWriters(t *testing.T) {
	h := NewHistogram([]float64{0.25, 0.5, 0.75})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One concurrent reader taking snapshots while writes are in flight: every
	// intermediate snapshot must be internally consistent (Count == sum of
	// bucket counts, by construction) and monotonically growing.
	go func() {
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var total uint64
			for _, c := range s.Counts {
				total += c
			}
			if total != s.Count {
				t.Errorf("snapshot count %d != bucket total %d", s.Count, total)
				return
			}
			if s.Count < last {
				t.Errorf("snapshot count went backwards: %d -> %d", last, s.Count)
				return
			}
			last = s.Count
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%4) / 4) // 0, 0.25, 0.5, 0.75 round-robin
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	// Bucket le=0.25 holds values 0 and 0.25; the next two hold one value each.
	if s.Counts[0] != workers*perWorker/2 {
		t.Fatalf("bucket le=0.25 = %d, want %d", s.Counts[0], workers*perWorker/2)
	}
	if s.Counts[1] != workers*perWorker/4 || s.Counts[2] != workers*perWorker/4 {
		t.Fatalf("mid buckets = %v, want %d each", s.Counts[1:3], workers*perWorker/4)
	}
	if s.Counts[3] != 0 {
		t.Fatalf("+Inf bucket = %d, want 0", s.Counts[3])
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(1.5)
	b.Observe(10)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 4 {
		t.Fatalf("merged count = %d, want 4", sa.Count)
	}
	wantCounts := []uint64{1, 2, 1}
	for i, w := range wantCounts {
		if sa.Counts[i] != w {
			t.Fatalf("merged bucket %d = %d, want %d", i, sa.Counts[i], w)
		}
	}
	if sa.Sum != 13.5 {
		t.Fatalf("merged sum = %v, want 13.5", sa.Sum)
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	a := NewHistogram([]float64{1}).Snapshot()
	b := NewHistogram([]float64{1, 2}).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch should panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(3)
	}
	h.Observe(7)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := s.Quantile(0.95); got != 4 {
		t.Fatalf("p95 = %v, want 4", got)
	}
	if got := s.Quantile(0.999); got != 8 {
		t.Fatalf("p99.9 = %v, want 8", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	over := NewHistogram([]float64{1})
	over.Observe(5)
	os := over.Snapshot()
	if got := os.Quantile(0.5); !math.IsInf(got, 1) {
		t.Fatalf("overflow-bucket quantile = %v, want +Inf", got)
	}
}

func TestLinearBuckets(t *testing.T) {
	got := LinearBuckets(0, 0.5, 3)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", got, want)
		}
	}
}

// BenchmarkHistogramObserve bounds the hot-path cost of one latency
// observation — the dominant per-request instrumentation work in the server.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_observe_seconds", "bench.", DefLatencyBuckets)
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0001
		for pb.Next() {
			h.Observe(v)
			v += 0.0001
			if v > 10 {
				v = 0.0001
			}
		}
	})
}

// BenchmarkCounterInc bounds the cost of one status-class increment.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_inc_total", "bench.")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
