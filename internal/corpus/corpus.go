// Package corpus writes committed Go fuzz seed corpora. Each seed becomes one
// file under testdata/fuzz/<FuzzName>/ in the native `go test fuzz v1`
// encoding, so `go test -run=Fuzz<Name>` and `go test -fuzz` pick it up with
// no flags. Generators are ordinary tests gated behind PPV_REGEN_CORPUS=1:
// seeds are built with the real encoders, regenerated only when a codec
// change invalidates them, and reviewed like any other checked-in file.
package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// SkipUnlessRegen skips t unless corpus regeneration was requested via
// PPV_REGEN_CORPUS=1.
func SkipUnlessRegen(t *testing.T) {
	t.Helper()
	if os.Getenv("PPV_REGEN_CORPUS") == "" {
		t.Skip("corpus generator; run with PPV_REGEN_CORPUS=1 to regenerate testdata/fuzz")
	}
}

// Write replaces the seed corpus of fuzzName (relative to the calling
// package's testdata/fuzz directory) with the given seeds, one file each,
// named seed-NN in argument order.
func Write(t *testing.T, fuzzName string, seeds ...[]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
