// Package workload builds query workloads and formats experiment results.
// The paper evaluates every configuration over 1000 uniformly random query
// nodes and reports averages (Sect. 6, Test queries); QuerySet reproduces
// that protocol at a configurable size.
package workload

import (
	"fmt"
	"math/rand"

	"fastppv/internal/graph"
)

// QueryOptions configure query sampling.
type QueryOptions struct {
	// Count is the number of query nodes to draw.
	Count int
	// Seed makes the workload deterministic.
	Seed int64
	// RequireOutEdges, when true, only samples nodes with at least one
	// out-edge, so every query has a non-trivial neighbourhood.
	RequireOutEdges bool
}

// QuerySet draws query nodes uniformly at random without replacement. If
// fewer eligible nodes exist than requested, all eligible nodes are returned.
func QuerySet(g *graph.Graph, opts QueryOptions) []graph.NodeID {
	eligible := make([]graph.NodeID, 0, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		id := graph.NodeID(u)
		if opts.RequireOutEdges && g.OutDegree(id) == 0 {
			continue
		}
		eligible = append(eligible, id)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if opts.Count < len(eligible) {
		eligible = eligible[:opts.Count]
	}
	return eligible
}

// Table is a minimal text table used by the benchmark harness to print
// paper-style result tables.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := ""
	for i, c := range t.Columns {
		line += pad(c, widths[i]) + "  "
	}
	out += line + "\n"
	for _, row := range t.Rows {
		line = ""
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			line += pad(cell, w) + "  "
		}
		out += line + "\n"
	}
	return out
}

func pad(s string, width int) string {
	for len(s) < width {
		s += " "
	}
	return s
}
