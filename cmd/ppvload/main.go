// Command ppvload is a load generator for the fastppvd daemon: it replays a
// Zipfian-skewed query workload against the HTTP API with a configurable
// concurrency, then reports client-side throughput and latency percentiles
// together with the server's own cache and admission statistics.
//
//	ppvload -addr http://localhost:8080 -requests 5000 -concurrency 16 -zipf 1.2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"fastppv/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppvload: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// serverStats mirrors the slice of /v1/stats the client reports.
type serverStats struct {
	Graph struct {
		Nodes int `json:"nodes"`
	} `json:"graph"`
	Cache *struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
		Bytes   int64 `json:"bytes"`
	} `json:"cache"`
	BlockCache *struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Loads   int64 `json:"loads"`
		Entries int   `json:"entries"`
		Bytes   int64 `json:"bytes"`
	} `json:"block_cache"`
	Admission struct {
		Admitted int64 `json:"admitted"`
		Degraded int64 `json:"degraded"`
	} `json:"admission"`
	Coalesced int64 `json:"coalesced"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppvload", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the fastppvd daemon")
	requests := fs.Int("requests", 2000, "total number of queries to send")
	concurrency := fs.Int("concurrency", 8, "concurrent client workers")
	zipfS := fs.Float64("zipf", workload.DefaultZipfS, "Zipf exponent of the query skew (>1)")
	eta := fs.Int("eta", 2, "online iterations per query")
	top := fs.Int("top", 10, "ranked results per query")
	seed := fs.Int64("seed", 1, "workload seed")
	fs.Parse(args)
	if *requests < 1 || *concurrency < 1 {
		return fmt.Errorf("requests and concurrency must be positive")
	}

	before, err := fetchStats(*addr)
	if err != nil {
		return fmt.Errorf("fetching /v1/stats (is fastppvd running?): %w", err)
	}
	numNodes := before.Graph.Nodes
	if numNodes < 1 {
		return fmt.Errorf("server reports empty graph")
	}
	log.Printf("target %s: %d nodes; sending %d requests, concurrency %d, zipf %.2f",
		*addr, numNodes, *requests, *concurrency, *zipfS)

	type outcome struct {
		latency  time.Duration
		state    string // X-Fastppv-Cache
		degraded bool
		err      error
	}
	outcomes := make([]outcome, *requests)
	var next int
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= *requests {
			return -1
		}
		next++
		return next - 1
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		sampler, err := workload.NewZipfSampler(numNodes, workload.ZipfOptions{
			S:    *zipfS,
			Seed: *seed + int64(w),
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				node := sampler.Next()
				url := fmt.Sprintf("%s/v1/ppv?node=%d&eta=%d&top=%d", *addr, node, *eta, *top)
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					outcomes[i] = outcome{err: err}
					continue
				}
				var body struct {
					Degraded bool `json:"degraded"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				o := outcome{
					latency:  time.Since(t0),
					state:    resp.Header.Get("X-Fastppv-Cache"),
					degraded: body.Degraded,
				}
				if resp.StatusCode != http.StatusOK {
					o.err = fmt.Errorf("status %d", resp.StatusCode)
				} else if decErr != nil {
					o.err = decErr
				}
				outcomes[i] = o
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []time.Duration
	states := map[string]int{}
	failures, degraded := 0, 0
	for _, o := range outcomes {
		if o.err != nil {
			failures++
			continue
		}
		latencies = append(latencies, o.latency)
		states[o.state]++
		if o.degraded {
			degraded++
		}
	}
	if len(latencies) == 0 {
		return fmt.Errorf("all %d requests failed", *requests)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) time.Duration {
		idx := int(q * float64(len(latencies)-1))
		return latencies[idx]
	}

	fmt.Printf("sent %d requests in %v: %.1f req/s (%d failed)\n",
		*requests, elapsed.Round(time.Millisecond),
		float64(len(latencies))/elapsed.Seconds(), failures)
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	fmt.Printf("responses: hit=%d miss=%d coalesced=%d degraded=%d\n",
		states["hit"], states["miss"], states["coalesced"], degraded)

	after, err := fetchStats(*addr)
	if err != nil {
		return err
	}
	if after.Cache != nil && before.Cache != nil {
		hits := after.Cache.Hits - before.Cache.Hits
		misses := after.Cache.Misses - before.Cache.Misses
		total := hits + misses
		rate := 0.0
		if total > 0 {
			rate = float64(hits) / float64(total)
		}
		fmt.Printf("server cache: %.1f%% hit rate this run (%d entries, %.2f MB held)\n",
			rate*100, after.Cache.Entries, float64(after.Cache.Bytes)/(1<<20))
	}
	if after.BlockCache != nil {
		bc := after.BlockCache
		var before_ struct{ hits, misses int64 }
		if before.BlockCache != nil {
			before_.hits, before_.misses = before.BlockCache.Hits, before.BlockCache.Misses
		}
		hits := bc.Hits - before_.hits
		misses := bc.Misses - before_.misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("server block cache: %.1f%% hub-block hit rate this run (%d blocks, %.2f MB held, %d disk loads lifetime)\n",
			rate*100, bc.Entries, float64(bc.Bytes)/(1<<20), bc.Loads)
	}
	fmt.Printf("server admission: admitted=%d degraded=%d coalesced=%d (lifetime)\n",
		after.Admission.Admitted, after.Admission.Degraded, after.Coalesced)
	return nil
}

func fetchStats(addr string) (*serverStats, error) {
	resp, err := http.Get(addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/stats returned %d", resp.StatusCode)
	}
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
