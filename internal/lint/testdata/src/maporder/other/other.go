// Package other is outside the answer-affecting package set, so maporder
// must ignore its map iteration entirely.
package other

func Fold(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
