// trace.go implements per-query tracing: a request ID minted here (or taken
// from an incoming X-Fastppv-Trace header), propagated to every shard leg by
// the cluster router, and a per-iteration span report returned in the
// response's "trace" block when the client asks with ?trace=1.
//
// Traced requests bypass the result cache and the flight group — a trace must
// describe the computation this request performed, not one some earlier
// request performed — and their answers are never cached, so the cacheable
// response bodies stay a deterministic function of the query parameters.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fastppv/internal/api"
	"fastppv/internal/cluster"
	"fastppv/internal/core"
)

// TraceSpan is one per-iteration span of a traced query. Engine-mode spans
// carry hub expansion counts; router-mode spans carry per-shard leg timings.
type TraceSpan struct {
	Iteration    int     `json:"iteration"`
	FrontierSize int     `json:"frontier_size"`
	HubsExpanded int     `json:"hubs_expanded,omitempty"`
	HubsSkipped  int     `json:"hubs_skipped,omitempty"`
	MassAdded    float64 `json:"mass_added"`
	L1ErrorBound float64 `json:"l1_error_bound"`
	DurationMS   float64 `json:"duration_ms"`
	// Legs are the shard sub-requests of this iteration (router mode only).
	Legs []cluster.ShardLegSpan `json:"legs,omitempty"`
}

// TraceBlock is the "trace" member of a ?trace=1 query response.
type TraceBlock struct {
	TraceID string `json:"trace_id"`
	// Mode is "engine" (local computation) or "router" (scatter-gather).
	Mode       string      `json:"mode"`
	DurationMS float64     `json:"duration_ms"`
	Iterations []TraceSpan `json:"iterations"`
}

// Trace IDs are a per-process random prefix plus an atomic counter: unique
// across a deployment with overwhelming probability, and cheap enough (two
// atomic ops, no crypto per request) to never show up on the hot path.
var (
	traceSeq    atomic.Uint64
	tracePrefix = func() string {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "fastppv"
		}
		return hex.EncodeToString(b[:])
	}()
)

func newTraceID() string {
	return tracePrefix + "-" + strconv.FormatUint(traceSeq.Add(1), 16)
}

// wantTrace reports whether the request opted into tracing.
func wantTrace(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// spansFromCore converts engine per-iteration stats to trace spans.
func spansFromCore(stats []core.IterationStat) []TraceSpan {
	out := make([]TraceSpan, 0, len(stats))
	for _, st := range stats {
		out = append(out, TraceSpan{
			Iteration:    st.Iteration,
			FrontierSize: st.FrontierSize,
			HubsExpanded: st.HubsExpanded,
			HubsSkipped:  st.HubsSkipped,
			MassAdded:    st.MassAdded,
			L1ErrorBound: st.L1ErrorBound,
			DurationMS:   float64(st.Duration) / 1e6,
		})
	}
	return out
}

// spansFromCluster converts routed per-iteration spans to trace spans.
func spansFromCluster(spans []cluster.IterationSpan) []TraceSpan {
	out := make([]TraceSpan, 0, len(spans))
	for _, sp := range spans {
		out = append(out, TraceSpan{
			Iteration:    sp.Iteration,
			FrontierSize: sp.FrontierSize,
			MassAdded:    sp.MassAdded,
			L1ErrorBound: sp.L1ErrorBound,
			DurationMS:   sp.DurationMS,
			Legs:         sp.Legs,
		})
	}
	return out
}

// computeTraced computes one traced answer fresh, under the same admission
// gate as compute but outside the cache and the flight group. The answer is
// never cached (its body carries volatile timing data) and never shared with
// concurrent identical requests.
func (s *Server) computeTraced(req queryRequest, traceID string) (*cachedAnswer, *TraceBlock, error) {
	s.metrics.tracedQueries.Inc()
	level := s.adm.acquire()
	if level == svcShed {
		return nil, nil, &httpError{status: http.StatusServiceUnavailable, code: api.CodeOverloaded,
			msg: "overloaded: admission and degradation pools are full"}
	}
	defer s.adm.release(level)
	eta := req.eta
	degraded := false
	if level == svcDegraded && s.cfg.DegradedEta < eta {
		eta = s.cfg.DegradedEta
		degraded = true
	}
	stop := core.StopCondition{MaxIterations: eta, TargetL1Error: req.targetError}

	if s.router != nil {
		cres, err := s.router.QueryTrace(req.node, stop, traceID)
		if err != nil {
			var aerr *api.Error
			if errors.As(err, &aerr) && aerr.Code == api.CodeBadRequest {
				return nil, nil, &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: aerr.Message}
			}
			return nil, nil, &httpError{status: http.StatusServiceUnavailable, code: api.CodeUnavailable, msg: err.Error()}
		}
		ans := &cachedAnswer{
			result: &core.Result{
				Query:        cres.Query,
				Estimate:     cres.Estimate,
				Iterations:   cres.Iterations,
				L1ErrorBound: cres.L1ErrorBound,
				Duration:     cres.Duration,
			},
			degraded:     degraded || cres.Degraded,
			shardsDown:   cres.ShardsDown,
			shardsBehind: cres.ShardsBehind,
			lostMass:     cres.LostFrontierMass,
			epoch:        cres.Epoch,
			legs:         legSummaries(cres.Spans),
		}
		s.metrics.observeQuery(cres.Iterations, cres.L1ErrorBound, cres.HubsExpanded, cres.HubsSkipped, ans.degraded)
		tb := &TraceBlock{
			TraceID:    traceID,
			Mode:       "router",
			DurationMS: float64(cres.Duration) / 1e6,
			Iterations: spansFromCluster(cres.Spans),
		}
		return ans, tb, nil
	}

	start := time.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	qs, err := s.engine.NewQuery(req.node)
	if err != nil {
		return nil, nil, err
	}
	res := qs.Run(stop)
	deps := qs.HubDeps()
	qs.Close()
	ans := &cachedAnswer{result: res, deps: deps, degraded: degraded, epoch: s.engine.Epoch()}
	s.observeEngineResult(res, degraded)
	tb := &TraceBlock{
		TraceID:    traceID,
		Mode:       "engine",
		DurationMS: float64(time.Since(start)) / 1e6,
		Iterations: spansFromCore(res.PerIteration),
	}
	return ans, tb, nil
}

// observeEngineResult records the query metrics of one local computation.
func (s *Server) observeEngineResult(res *core.Result, degraded bool) {
	expanded, skipped := 0, 0
	for _, st := range res.PerIteration {
		expanded += st.HubsExpanded
		skipped += st.HubsSkipped
	}
	s.metrics.observeQuery(res.Iterations, res.L1ErrorBound, expanded, skipped, degraded)
}
