// Command fastppvd is the FastPPV serving daemon: it loads (or generates) a
// graph, precomputes the hub index, and serves Personalized PageRank queries
// over an HTTP JSON API with result caching, request coalescing and
// accuracy-aware admission control.
//
//	fastppvd -graph g.txt -hubs 20000 -addr :8080
//	fastppvd -social 60000 -addr :8080            # synthetic social graph
//
// Endpoints:
//
//	GET  /v1/ppv?node=&eta=&target-error=&top=   answer one query
//	POST /v1/ppv/batch                           answer a batch of queries
//	POST /v1/update                              apply a graph update
//	GET  /v1/stats                               serving + offline statistics
//	GET  /healthz                                readiness
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastppv"
	"fastppv/internal/gen"
	"fastppv/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fastppvd: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fastppvd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	graphPath := fs.String("graph", "", "graph file (edge list or binary); empty generates a synthetic graph")
	social := fs.Int("social", 60000, "synthetic social graph size when -graph is empty")
	seed := fs.Int64("seed", 7, "synthetic graph seed")
	hubs := fs.Int("hubs", 0, "number of hubs (0 = choose automatically)")
	alpha := fs.Float64("alpha", fastppv.DefaultAlpha, "teleporting probability")
	eta := fs.Int("eta", 2, "default online iterations per query")
	maxEta := fs.Int("max-eta", 8, "largest eta a client may request")
	degradedEta := fs.Int("degraded-eta", 0, "eta served under overload")
	cacheMB := fs.Int64("cache-mb", 64, "result cache budget in MiB (0 disables)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrent full-accuracy computations (0 = GOMAXPROCS)")
	queueWait := fs.Duration("queue-wait", 25*time.Millisecond, "max wait for a computation slot before degrading")
	fs.Parse(args)

	g, err := loadOrGenerate(*graphPath, *social, *seed)
	if err != nil {
		return err
	}
	log.Printf("graph: %v", g.Stats())

	engine, err := fastppv.New(g, fastppv.Options{NumHubs: *hubs, Alpha: *alpha})
	if err != nil {
		return err
	}
	log.Printf("precomputing hub index ...")
	if err := engine.Precompute(); err != nil {
		return err
	}
	off := engine.OfflineStats()
	log.Printf("indexed %d hubs in %v (%.2f MB, %d entries)",
		off.Hubs, off.Total.Round(time.Millisecond), float64(off.IndexBytes)/(1<<20), off.IndexEntries)

	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	srv, err := server.New(engine, server.Config{
		DefaultEta:    *eta,
		MaxEta:        *maxEta,
		DegradedEta:   *degradedEta,
		CacheBytes:    cacheBytes,
		MaxConcurrent: *maxConcurrent,
		QueueWait:     *queueWait,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}

// loadOrGenerate reads a graph file, or generates a deterministic synthetic
// social graph when no file is given.
func loadOrGenerate(path string, socialNodes int, seed int64) (*fastppv.Graph, error) {
	if path != "" {
		if g, err := fastppv.LoadBinaryFile(path); err == nil {
			return g, nil
		}
		return fastppv.LoadEdgeListFile(path)
	}
	if socialNodes < 2 {
		return nil, fmt.Errorf("need -graph or -social >= 2")
	}
	cfg := gen.DefaultSocialConfig()
	cfg.Nodes = socialNodes
	cfg.Seed = seed
	return gen.SocialGraph(cfg)
}
