// metrics.go is the server's Prometheus surface: the hot-path metric handles
// (pre-resolved at wiring time so a request never touches the registry's
// label maps) and the scrape-time collectors that export the stats structs
// the server already keeps — cache, admission, coalescing, block cache,
// durability — at zero per-request cost. GET /metrics renders the shared
// telemetry.Registry in the Prometheus text format; in router mode the
// cluster.Router contributes its shard-leg and epoch families to the same
// registry (see internal/cluster/telemetry.go).
package server

import (
	"net/http"
	"strconv"
	"time"

	"fastppv/internal/core"
	"fastppv/internal/telemetry"
)

// serverMetrics holds the handles the request path observes into. Everything
// else (cache hit/miss counters, admission outcomes, index durability) is
// read off the existing stats structs by the collectors below, only when
// /metrics is scraped.
type serverMetrics struct {
	httpLatency  *telemetry.HistogramVec
	httpRequests *telemetry.CounterVec

	queriesComputed *telemetry.Counter
	queriesDegraded *telemetry.Counter
	queryIterations *telemetry.Histogram
	queryBound      *telemetry.Histogram
	hubsExpanded    *telemetry.Counter
	hubsSkipped     *telemetry.Counter
	tracedQueries   *telemetry.Counter
	slowQueries     *telemetry.Counter
}

// newServerMetrics registers the hot-path handles. latencyBuckets optionally
// overrides the HTTP latency family's bucket bounds (Config.LatencyBuckets);
// nil takes the shared default.
func newServerMetrics(reg *telemetry.Registry, latencyBuckets []float64) *serverMetrics {
	if latencyBuckets == nil {
		latencyBuckets = telemetry.DefLatencyBuckets
	}
	return &serverMetrics{
		httpLatency: reg.HistogramVec("fastppv_http_request_seconds",
			"HTTP request latency by endpoint.", latencyBuckets, "endpoint"),
		httpRequests: reg.CounterVec("fastppv_http_requests_total",
			"HTTP requests by endpoint and status class.", "endpoint", "code"),
		queriesComputed: reg.Counter("fastppv_queries_computed_total",
			"Queries that reached the engine or router (cache misses and traced queries)."),
		queriesDegraded: reg.Counter("fastppv_queries_degraded_total",
			"Computed queries answered on the degradation path (admission pressure or cluster faults)."),
		queryIterations: reg.Histogram("fastppv_query_iterations",
			"Expansion iterations per computed query (0 = iteration 0 only).",
			telemetry.LinearBuckets(0, 1, 9)),
		queryBound: reg.Histogram("fastppv_query_l1_error_bound",
			"Exact L1 error bound at stop, per computed query.", telemetry.DefBoundBuckets),
		hubsExpanded: reg.Counter("fastppv_hubs_expanded_total",
			"Hub prime PPVs assembled across all computed queries."),
		hubsSkipped: reg.Counter("fastppv_hubs_skipped_total",
			"Candidate hubs pruned by the delta threshold across all computed queries."),
		tracedQueries: reg.Counter("fastppv_traced_queries_total",
			"Queries served with ?trace=1 (computed fresh, never cached)."),
		slowQueries: reg.Counter("fastppv_slow_queries_total",
			"Computed queries over the slow threshold (trace retained in the debug ring)."),
	}
}

// observeQuery records the end-of-computation metrics shared by the engine
// and router paths of compute/computeTraced.
func (m *serverMetrics) observeQuery(iterations int, bound float64, hubsExpanded, hubsSkipped int, degraded bool) {
	m.queriesComputed.Inc()
	if degraded {
		m.queriesDegraded.Inc()
	}
	m.queryIterations.Observe(float64(iterations))
	m.queryBound.Observe(bound)
	m.hubsExpanded.Add(float64(hubsExpanded))
	m.hubsSkipped.Add(float64(hubsSkipped))
}

// registerCollectors exports the server's point-in-time state. Called once
// from New/NewRouter after the backend is attached; every emitted sample is
// computed at scrape time from state the server maintains anyway.
func (s *Server) registerCollectors(reg *telemetry.Registry) {
	reg.Collect(func(e *telemetry.Emitter) {
		e.Counter("fastppv_coalesced_total",
			"Requests answered by sharing another request's in-flight computation.",
			float64(s.flights.Coalesced()))
		e.Counter("fastppv_updates_applied_total",
			"Graph-update batches accepted by this server.", float64(s.updates.Load()))
		adm := s.adm.stats()
		e.Counter("fastppv_admission_admitted_total", "Computations granted a full-accuracy slot.", float64(adm.Admitted))
		e.Counter("fastppv_admission_degraded_total", "Computations downgraded to the degradation pool.", float64(adm.Degraded))
		e.Counter("fastppv_admission_shed_total", "Requests rejected with 503: both pools full.", float64(adm.Shed))
		e.Gauge("fastppv_admission_in_flight", "Full-accuracy computations currently running.", float64(adm.InFlight))
		e.Gauge("fastppv_admission_in_flight_degraded", "Degraded computations currently running.", float64(adm.InFlightDegraded))
		e.Gauge("fastppv_admission_max_concurrent", "Full-accuracy slot capacity.", float64(adm.MaxConcurrent))
		if s.cache != nil {
			cs := s.cache.Stats()
			e.Counter("fastppv_cache_hits_total", "Result-cache hits.", float64(cs.Hits))
			e.Counter("fastppv_cache_misses_total", "Result-cache misses.", float64(cs.Misses))
			e.Counter("fastppv_cache_puts_total", "Result-cache fills.", float64(cs.Puts))
			e.Counter("fastppv_cache_evictions_total", "Result-cache entries evicted under the byte budget.", float64(cs.Evictions))
			e.Counter("fastppv_cache_invalidations_total", "Result-cache entries dropped by update invalidation.", float64(cs.Invalidations))
			e.Gauge("fastppv_cache_entries", "Result-cache entries resident.", float64(cs.Entries))
			e.Gauge("fastppv_cache_bytes", "Result-cache bytes resident.", float64(cs.Bytes))
			e.Gauge("fastppv_cache_budget_bytes", "Result-cache byte budget.", float64(cs.BudgetBytes))
		}
		if s.traces != nil {
			e.Counter("fastppv_traces_retained_total",
				"Traces retained by the always-on capturer (slow, degraded, sampled or explicit).",
				float64(s.traces.captured()))
		}
		if s.qlog != nil {
			qst := s.qlog.Stats()
			e.Counter("fastppv_querylog_records_total",
				"Records appended to the persistent query log since start.", float64(qst.Appended))
			e.Gauge("fastppv_querylog_bytes", "Bytes in the active query-log generation.", float64(qst.ActiveBytes))
			e.Counter("fastppv_querylog_rotations_total", "Query-log generation rollovers.", float64(qst.Rotations))
		}
		if s.slo != nil {
			st := s.slo.stats()
			e.Counter("fastppv_slo_good_total", "Requests that met every configured SLO objective.", float64(st.Good))
			e.Counter("fastppv_slo_bad_total", "Requests that failed or violated an SLO objective.", float64(st.Bad))
			now := time.Now()
			for _, wdw := range sloWindows {
				burn, _, _ := s.slo.windowRates(now, wdw.buckets)
				e.Gauge("fastppv_slo_burn_rate",
					"Error-budget burn rate over the window: windowed bad fraction / 1% budget.",
					burn, telemetry.L("window", wdw.name))
			}
		}
		ps := core.QueryPoolStats()
		e.Counter("fastppv_query_pool_gets_total",
			"Query working-set bundles taken from the pool.", float64(ps.Gets))
		e.Counter("fastppv_query_pool_hits_total",
			"Bundle acquisitions served by reuse instead of allocation.", float64(ps.Hits))
		e.Gauge("fastppv_query_pool_hit_rate",
			"Cumulative pool reuse rate (hits/gets); converges to ~1 at steady state.", ps.HitRate())
		if s.engine == nil {
			return
		}
		ss := s.streams.stats()
		e.Gauge("fastppv_stream_open", "Binary partial streams currently open.", float64(ss.Open))
		e.Counter("fastppv_stream_accepted_total", "Binary partial streams accepted since start.", float64(ss.Accepted))
		e.Counter("fastppv_stream_frames_in_total", "Frames read off binary streams.", float64(ss.FramesIn))
		e.Counter("fastppv_stream_frames_out_total", "Frames written to binary streams.", float64(ss.FramesOut))
		e.Counter("fastppv_stream_bytes_in_total", "Bytes read off binary streams.", float64(ss.BytesIn))
		e.Counter("fastppv_stream_bytes_out_total", "Bytes written to binary streams.", float64(ss.BytesOut))
		e.Counter("fastppv_stream_partials_total", "Partial sub-requests answered over binary streams.", float64(ss.Partials))
		e.Counter("fastppv_stream_speculative_total", "Speculative (pre-sent) sub-requests received over streams.", float64(ss.Speculative))
		e.Counter("fastppv_stream_speculation_discarded_total", "Speculative sub-requests withdrawn by cancel before compute.", float64(ss.SpeculationDiscarded))
		e.Counter("fastppv_stream_shed_total", "Stream sub-requests rejected by the admission gate.", float64(ss.Shed))
		e.Counter("fastppv_stream_decode_errors_total", "Streams torn down on a corrupt or torn frame.", float64(ss.DecodeErrors))
		s.mu.RLock()
		g := s.engine.Graph()
		nodes, edges := g.NumNodes(), g.NumEdges()
		epoch := s.engine.Epoch()
		off := s.engine.OfflineStats()
		index := s.engine.Index()
		s.mu.RUnlock()
		e.Gauge("fastppv_index_epoch", "Index epoch: graph-update batches folded into the served state.", float64(epoch))
		e.Gauge("fastppv_graph_nodes", "Nodes in the served graph.", float64(nodes))
		e.Gauge("fastppv_graph_edges", "Edges in the served graph.", float64(edges))
		e.Gauge("fastppv_index_hubs", "Hubs with a precomputed prime PPV.", float64(off.Hubs))
		e.Gauge("fastppv_index_bytes", "Estimated bytes of the hub index.", float64(off.IndexBytes))
		if bcs, ok := index.(blockCacheStatser); ok {
			if st, enabled := bcs.BlockCacheStats(); enabled {
				e.Counter("fastppv_block_cache_hits_total", "Hub reads answered from the block cache.", float64(st.Hits))
				e.Counter("fastppv_block_cache_misses_total", "Hub reads that went to the disk index.", float64(st.Misses))
				e.Counter("fastppv_block_cache_coalesced_total", "Hub reads that shared another read's in-flight load.", float64(st.Coalesced))
				e.Counter("fastppv_block_cache_loads_total", "Actual disk-index reads.", float64(st.Loads))
				e.Counter("fastppv_block_cache_evictions_total", "Cached hub blocks evicted under the byte budget.", float64(st.Evictions))
				e.Gauge("fastppv_block_cache_entries", "Hub blocks resident in the block cache.", float64(st.Entries))
				e.Gauge("fastppv_block_cache_bytes", "Bytes resident in the block cache.", float64(st.Bytes))
			}
		}
		if ma, ok := index.(interface{ MmapActive() bool }); ok {
			active := 0.0
			if ma.MmapActive() {
				active = 1
			}
			e.Gauge("fastppv_index_mmap_active",
				"1 when the base index is served from a memory mapping (zero-copy views), 0 on the pread fallback.", active)
		}
		if dss, ok := index.(durabilityStatser); ok {
			if st, enabled := dss.DurabilityStats(); enabled {
				e.Counter("fastppv_wal_records_total", "Records appended to the index update log.", float64(st.LogRecords))
				e.Gauge("fastppv_wal_bytes", "Bytes in the index update log.", float64(st.LogBytes))
				e.Counter("fastppv_graphlog_records_total", "Graph-update batches appended to the graph-mutation log.", float64(st.GraphLogRecords))
				e.Gauge("fastppv_graphlog_bytes", "Bytes in the graph-mutation log.", float64(st.GraphLogBytes))
				e.Counter("fastppv_compactions_total", "Completed disk-index compactions.", float64(st.Compactions))
				e.Gauge("fastppv_overlay_hubs", "Hubs currently served from the in-memory overlay.", float64(st.OverlayHubs))
			}
		}
	})
}

// statusWriter captures the response status for the per-endpoint request
// counter; handlers that never call WriteHeader answered 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClasses pre-resolves the status-class counter children of one
// endpoint, so the hot path indexes an array instead of formatting labels.
func (m *serverMetrics) statusClasses(endpoint string) [6]*telemetry.Counter {
	var out [6]*telemetry.Counter
	for c := 1; c <= 5; c++ {
		out[c] = m.httpRequests.With(endpoint, strconv.Itoa(c)+"xx")
	}
	return out
}
