package querylog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzQueryLogReplay opens arbitrary bytes as an FPQ1 query log. Open either
// succeeds (truncating a torn tail) or fails with ErrBadFormat — never a
// panic — and an accepted file replays identically on reopen.
func FuzzQueryLogReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FPQ1garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "query.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		opts := Options{FlushInterval: -1}
		replayed := 0
		l, err := Open(path, opts, func(r Record) error {
			replayed++
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("Open returned unstructured error %v", err)
			}
			return
		}
		if err := l.Close(); err != nil {
			t.Fatalf("closing an accepted query log failed: %v", err)
		}
		again := 0
		l2, err := Open(path, opts, func(r Record) error {
			again++
			return nil
		})
		if err != nil {
			t.Fatalf("reopening a repaired query log failed: %v", err)
		}
		defer l2.Close()
		if again != replayed {
			t.Fatalf("reopen replayed %d records, first open replayed %d", again, replayed)
		}
	})
}
