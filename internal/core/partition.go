package core

import (
	"fmt"
	"strconv"
	"strings"

	"fastppv/internal/graph"
)

// Partition describes one horizontal shard of the hub index: hub h belongs to
// shard Owner(h) of Shards. Partitioning is by a fixed hash over the hub id,
// so ownership is a pure function of (hub, Shards) — every process that agrees
// on the shard count agrees on the assignment without any coordination, and a
// router can address the owner of a hub without a directory service.
//
// The scheduled-approximation decomposition makes this split clean: a PPV
// query is a sum of per-hub sub-queries aggregated in decreasing order of
// importance, so a shard holding 1/n of the hub PPVs can evaluate exactly its
// share of every increment (Engine.PartialExpand) and the error bound composes
// additively across shards — mass a shard does not contribute is exactly the
// mass missing from 1 - sum(estimate).
type Partition struct {
	// Shard is this engine's shard number in [0, Shards).
	Shard int
	// Shards is the total number of shards; 0 or 1 means unsharded.
	Shards int
}

// Enabled reports whether the partition actually splits the hub set.
func (p Partition) Enabled() bool { return p.Shards > 1 }

// validate rejects inconsistent shard specs.
func (p Partition) validate() error {
	if p.Shards < 0 || p.Shard < 0 {
		return fmt.Errorf("core: negative shard spec %s", p)
	}
	if p.Shards > 1 && p.Shard >= p.Shards {
		return fmt.Errorf("core: shard %d outside [0,%d)", p.Shard, p.Shards)
	}
	return nil
}

// Owner returns the shard that owns hub h. The mapping is the splitmix64
// finalizer over the node id, reduced modulo the shard count — chosen over a
// plain modulus so that graphs whose high-degree nodes cluster in an id range
// (common for generators and crawl orders) still spread their hubs evenly.
// The constants are part of the on-the-wire contract between shards and
// routers and must not change.
func (p Partition) Owner(h graph.NodeID) int {
	if p.Shards <= 1 {
		return 0
	}
	x := uint64(uint32(h))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(p.Shards))
}

// Owns reports whether this partition's shard owns hub h. An unsharded
// partition owns everything.
func (p Partition) Owns(h graph.NodeID) bool {
	return !p.Enabled() || p.Owner(h) == p.Shard
}

// String renders the spec in the "shard/shards" form the CLIs accept.
func (p Partition) String() string {
	if !p.Enabled() {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", p.Shard, p.Shards)
}

// ParsePartition parses a "i/n" shard spec (e.g. "0/4"): shard i of n.
func ParsePartition(s string) (Partition, error) {
	var p Partition
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return p, fmt.Errorf("core: shard spec %q is not of the form i/n", s)
	}
	var err error
	if p.Shard, err = strconv.Atoi(strings.TrimSpace(i)); err != nil {
		return p, fmt.Errorf("core: bad shard index in %q", s)
	}
	if p.Shards, err = strconv.Atoi(strings.TrimSpace(n)); err != nil {
		return p, fmt.Errorf("core: bad shard count in %q", s)
	}
	if p.Shards < 1 || p.Shard < 0 || p.Shard >= p.Shards {
		return p, fmt.Errorf("core: shard spec %q outside 0 <= i < n", s)
	}
	return p, p.validate()
}
