package experiments

import (
	"fmt"
	"time"

	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/metrics"
	"fastppv/internal/sparse"
	"fastppv/internal/workload"
)

// HubSweepPoint is one point of the |H| sweep (Fig. 10 online / Fig. 11
// offline).
type HubSweepPoint struct {
	Dataset DatasetName
	NumHubs int
	Result  MethodResult
}

// hubSweepCounts returns the |H| values swept for a dataset, centered on its
// default (the paper sweeps 10K..50K on DBLP and 40K..150K on LiveJournal).
func hubSweepCounts(d *Dataset) []int {
	base := d.DefaultHubs()
	fractions := []float64{0.5, 0.75, 1.0, 1.5, 2.0}
	out := make([]int, 0, len(fractions))
	for _, f := range fractions {
		h := int(float64(base) * f)
		if h < 8 {
			h = 8
		}
		out = append(out, h)
	}
	return out
}

// HubCountSweep evaluates FastPPV across hub counts (E6/E7 in DESIGN.md,
// Fig. 10 and 11 of the paper).
func HubCountSweep(scale Scale) ([]HubSweepPoint, error) {
	var out []HubSweepPoint
	for _, name := range []DatasetName{DBLP, LiveJournal} {
		d, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		for _, hubs := range hubSweepCounts(d) {
			res, err := runFastPPV(d, FastPPVConfig{NumHubs: hubs, Iterations: core.DefaultIterations})
			if err != nil {
				return nil, fmt.Errorf("|H|=%d on %s: %w", hubs, name, err)
			}
			out = append(out, HubSweepPoint{Dataset: name, NumHubs: hubs, Result: res})
		}
	}
	return out, nil
}

// Fig10Table renders the effect of |H| on online processing.
func Fig10Table(points []HubSweepPoint) *workload.Table {
	t := workload.NewTable(
		"Fig. 10 — effect of the number of hubs on online processing",
		"Dataset", "|H|", "Kendall", "Precision", "RAG", "L1 similarity", "Online ms/query")
	for _, p := range points {
		t.AddRow(string(p.Dataset), p.NumHubs,
			p.Result.Accuracy.KendallTau, p.Result.Accuracy.Precision,
			p.Result.Accuracy.RAG, p.Result.Accuracy.L1Similarity,
			float64(p.Result.AvgQueryTime.Microseconds())/1000.0)
	}
	return t
}

// Fig11Table renders the effect of |H| on offline precomputation.
func Fig11Table(points []HubSweepPoint) *workload.Table {
	t := workload.NewTable(
		"Fig. 11 — effect of the number of hubs on offline precomputation",
		"Dataset", "|H|", "Offline space MB", "Offline time s")
	for _, p := range points {
		t.AddRow(string(p.Dataset), p.NumHubs,
			float64(p.Result.OfflineBytes)/(1<<20), p.Result.OfflineTime.Seconds())
	}
	return t
}

// IterationPoint is one point of the eta sweep (Fig. 12): FastPPV accuracy
// and query time as the number of online iterations grows, on a single
// precomputed index.
type IterationPoint struct {
	Dataset    DatasetName
	Iterations int
	Accuracy   metrics.Report
	// AvgL1Bound is the average accuracy-aware error bound phi(eta) reported
	// by the engine itself, demonstrating the accuracy-aware property.
	AvgL1Bound   float64
	AvgQueryTime time.Duration
}

// IterationSweep evaluates FastPPV for eta = 0..maxEta on both datasets (E8
// in DESIGN.md, Fig. 12 of the paper). The offline index is built once per
// dataset and shared across eta values, mirroring the paper's point that eta
// is a purely online knob.
func IterationSweep(scale Scale, maxEta int) ([]IterationPoint, error) {
	if maxEta < 0 {
		maxEta = core.DefaultIterations
	}
	var out []IterationPoint
	for _, name := range []DatasetName{DBLP, LiveJournal} {
		d, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		engine, err := buildFastPPV(d, FastPPVConfig{NumHubs: d.DefaultHubs()})
		if err != nil {
			return nil, err
		}
		for eta := 0; eta <= maxEta; eta++ {
			point := IterationPoint{Dataset: name, Iterations: eta}
			reports := make([]metrics.Report, 0, len(d.Queries))
			var total time.Duration
			var boundSum float64
			for _, q := range d.Queries {
				start := time.Now()
				r, err := engine.Query(q, core.StopCondition{MaxIterations: eta})
				total += time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("eta=%d on %s: %w", eta, name, err)
				}
				exact, err := d.ExactPPV(q)
				if err != nil {
					return nil, err
				}
				reports = append(reports, metrics.Evaluate(exact, r.Estimate, metrics.DefaultTopK))
				boundSum += r.L1ErrorBound
			}
			point.Accuracy = metrics.Average(reports)
			point.AvgQueryTime = total / time.Duration(len(d.Queries))
			point.AvgL1Bound = boundSum / float64(len(d.Queries))
			out = append(out, point)
		}
	}
	return out, nil
}

// Fig12Table renders the incremental online processing results.
func Fig12Table(points []IterationPoint) *workload.Table {
	t := workload.NewTable(
		"Fig. 12 — incremental online processing by varying eta",
		"Dataset", "eta", "Kendall", "Precision", "RAG", "L1 similarity", "phi bound", "Online ms/query")
	for _, p := range points {
		t.AddRow(string(p.Dataset), p.Iterations,
			p.Accuracy.KendallTau, p.Accuracy.Precision, p.Accuracy.RAG, p.Accuracy.L1Similarity,
			p.AvgL1Bound, float64(p.AvgQueryTime.Microseconds())/1000.0)
	}
	return t
}

// queryEstimates is a small helper used by ablation drivers: it runs the
// engine over the workload and returns the per-query estimates.
func queryEstimates(d *Dataset, engine *core.Engine, stop core.StopCondition) (map[graph.NodeID]sparse.Vector, time.Duration, error) {
	out := make(map[graph.NodeID]sparse.Vector, len(d.Queries))
	var total time.Duration
	for _, q := range d.Queries {
		start := time.Now()
		r, err := engine.Query(q, stop)
		total += time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		out[q] = r.Estimate
	}
	return out, total / time.Duration(len(d.Queries)), nil
}
