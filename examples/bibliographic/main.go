// Command bibliographic reproduces Scenario 1 of the paper's introduction:
// expert finding on a bibliographic network. It generates a synthetic
// author-paper-venue network, takes a paper node as the query, and uses
// FastPPV to rank author nodes as candidate reviewers for that paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"fastppv"
)

func main() {
	var (
		papers  = flag.Int("papers", 4000, "number of paper nodes")
		authors = flag.Int("authors", 2500, "number of author nodes")
		venues  = flag.Int("venues", 60, "number of venue nodes")
		hubs    = flag.Int("hubs", 200, "number of hub nodes to index")
		eta     = flag.Int("eta", 2, "number of online iterations")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	g, labels := buildNetwork(*papers, *authors, *venues, *seed)
	fmt.Println(g.Stats())

	engine, err := fastppv.New(g, fastppv.Options{NumHubs: *hubs})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		log.Fatal(err)
	}
	off := engine.OfflineStats()
	fmt.Printf("offline: %d hubs indexed in %v (%.2f MB)\n",
		off.Hubs, off.Total.Round(1000000), float64(off.IndexBytes)/(1<<20))

	// Query: the first paper node. Who should review it?
	query := labels.papers[0]
	res, err := engine.Query(query, fastppv.StopCondition{MaxIterations: *eta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery %s — candidate reviewers (top authors by personalized PageRank):\n", g.Label(query))
	shown := 0
	for _, e := range res.Estimate.TopK(200) {
		if !strings.HasPrefix(g.Label(e.Node), "author/") {
			continue
		}
		// Exclude the paper's own authors: they cannot review it.
		if labels.isAuthorOf(e.Node, query) {
			continue
		}
		shown++
		fmt.Printf("  %2d. %-12s score %.5f\n", shown, g.Label(e.Node), e.Score)
		if shown == 10 {
			break
		}
	}
	fmt.Printf("\nquery processed in %v over %d iterations (L1 error bound %.4f)\n",
		res.Duration.Round(1000), res.Iterations, res.L1ErrorBound)
}

// network keeps the node-kind bookkeeping of the generated graph.
type network struct {
	papers    []fastppv.NodeID
	authors   []fastppv.NodeID
	venues    []fastppv.NodeID
	authorsOf map[fastppv.NodeID][]fastppv.NodeID
}

func (n *network) isAuthorOf(author, paper fastppv.NodeID) bool {
	for _, a := range n.authorsOf[paper] {
		if a == author {
			return true
		}
	}
	return false
}

// buildNetwork generates an undirected author-paper-venue network with skewed
// author productivity and venue sizes, using only the public API.
func buildNetwork(papers, authors, venues int, seed int64) (*fastppv.Graph, *network) {
	rng := rand.New(rand.NewSource(seed))
	b := fastppv.NewBuilder(false)
	net := &network{authorsOf: make(map[fastppv.NodeID][]fastppv.NodeID, papers)}

	for i := 0; i < authors; i++ {
		net.authors = append(net.authors, b.AddLabeledNode(fmt.Sprintf("author/%d", i)))
	}
	for i := 0; i < venues; i++ {
		net.venues = append(net.venues, b.AddLabeledNode(fmt.Sprintf("venue/%d", i)))
	}
	authorPick := rand.NewZipf(rng, 1.3, 1, uint64(authors-1))
	venuePick := rand.NewZipf(rng, 1.3, 1, uint64(venues-1))
	for i := 0; i < papers; i++ {
		p := b.AddLabeledNode(fmt.Sprintf("paper/%d", i))
		net.papers = append(net.papers, p)
		b.MustAddEdge(p, net.venues[venuePick.Uint64()])
		coauthors := 1 + rng.Intn(4)
		for a := 0; a < coauthors; a++ {
			author := net.authors[authorPick.Uint64()]
			b.MustAddEdge(p, author)
			net.authorsOf[p] = append(net.authorsOf[p], author)
		}
	}
	return b.Finalize(), net
}
