package gen

import (
	"strings"
	"testing"

	"fastppv/internal/graph"
)

func smallBibConfig() BibliographicConfig {
	cfg := DefaultBibliographicConfig()
	cfg.Papers, cfg.Authors, cfg.Venues = 500, 300, 20
	return cfg
}

func TestBibliographicStructure(t *testing.T) {
	bib, err := NewBibliographic(smallBibConfig())
	if err != nil {
		t.Fatalf("NewBibliographic: %v", err)
	}
	g := bib.Graph
	if g.Directed() {
		t.Error("bibliographic network must be undirected")
	}
	wantNodes := 500 + 300 + 20
	if g.NumNodes() != wantNodes {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	if len(bib.Papers) != 500 || len(bib.Authors) != 300 || len(bib.Venues) != 20 {
		t.Fatalf("node partitions sized %d/%d/%d", len(bib.Papers), len(bib.Authors), len(bib.Venues))
	}
	// Labels encode node kinds.
	if !strings.HasPrefix(g.Label(bib.Papers[0]), "paper/") ||
		!strings.HasPrefix(g.Label(bib.Authors[0]), "author/") ||
		!strings.HasPrefix(g.Label(bib.Venues[0]), "venue/") {
		t.Error("node labels should encode node kinds")
	}
	// Every paper connects to exactly one venue and at least one author.
	for _, p := range bib.Papers {
		deg := g.OutDegree(p)
		if deg < 2 {
			t.Fatalf("paper %d has degree %d, want at least 2 (venue + author)", p, deg)
		}
		year, ok := bib.PaperYear[p]
		if !ok || year < 1994 || year > 2010 {
			t.Fatalf("paper %d has year %d", p, year)
		}
	}
	// The tripartite structure holds: papers only connect to authors/venues.
	for _, p := range bib.Papers {
		for _, nb := range g.OutNeighbors(p) {
			if strings.HasPrefix(g.Label(nb), "paper/") {
				t.Fatalf("paper %d connects to another paper %d", p, nb)
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBibliographicDeterministicPerSeed(t *testing.T) {
	a, err := NewBibliographic(smallBibConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBibliographic(smallBibConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Errorf("same seed produced different edge counts: %d vs %d", a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	other := smallBibConfig()
	other.Seed = 99
	c, err := NewBibliographic(other)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumEdges() == a.Graph.NumEdges() && c.Graph.NumLogicalEdges() == a.Graph.NumLogicalEdges() {
		// Edge counts may coincide, but the structures should not be byte
		// identical; compare a few adjacency lists.
		same := true
		for u := 0; u < 20; u++ {
			x, y := a.Graph.OutNeighbors(graph.NodeID(u)), c.Graph.OutNeighbors(graph.NodeID(u))
			if len(x) != len(y) {
				same = false
				break
			}
		}
		if same {
			t.Log("different seeds produced suspiciously similar graphs (not fatal)")
		}
	}
}

func TestBibliographicSnapshotsGrowMonotonically(t *testing.T) {
	bib, err := NewBibliographic(smallBibConfig())
	if err != nil {
		t.Fatal(err)
	}
	prevEdges := -1
	for _, year := range []int{1994, 1998, 2002, 2006, 2010} {
		snap := bib.Snapshot(year)
		if snap.NumNodes() != bib.Graph.NumNodes() {
			t.Fatalf("snapshot %d changed the node set", year)
		}
		if snap.NumLogicalEdges() < prevEdges {
			t.Fatalf("snapshot %d has fewer edges (%d) than the previous snapshot (%d)",
				year, snap.NumLogicalEdges(), prevEdges)
		}
		prevEdges = snap.NumLogicalEdges()
	}
	if full := bib.Snapshot(2010); full.NumLogicalEdges() != bib.Graph.NumLogicalEdges() {
		t.Errorf("final snapshot has %d edges, want all %d", full.NumLogicalEdges(), bib.Graph.NumLogicalEdges())
	}
}

func TestBibliographicValidation(t *testing.T) {
	bad := smallBibConfig()
	bad.Papers = 0
	if _, err := NewBibliographic(bad); err == nil {
		t.Error("zero papers should be rejected")
	}
	bad = smallBibConfig()
	bad.Zipf = 0.5
	if _, err := NewBibliographic(bad); err == nil {
		t.Error("Zipf <= 1 should be rejected")
	}
	bad = smallBibConfig()
	bad.YearMax = bad.YearMin - 1
	if _, err := NewBibliographic(bad); err == nil {
		t.Error("inverted year range should be rejected")
	}
}

func TestSocialGraphProperties(t *testing.T) {
	cfg := SocialConfig{Nodes: 2000, OutDegreeMean: 6, Attachment: 0.85, Seed: 11}
	g, err := SocialGraph(cfg)
	if err != nil {
		t.Fatalf("SocialGraph: %v", err)
	}
	if !g.Directed() {
		t.Error("social graph must be directed")
	}
	if g.NumNodes() != cfg.Nodes {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), cfg.Nodes)
	}
	if len(g.DanglingNodes()) != 0 {
		t.Errorf("social graph should have no dangling nodes, found %d", len(g.DanglingNodes()))
	}
	// Preferential attachment concentrates in-degree: the most popular node
	// should have far more than the mean in-degree.
	maxIn := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.InDegree(graph.NodeID(u)); d > maxIn {
			maxIn = d
		}
	}
	meanIn := float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(maxIn) < 5*meanIn {
		t.Errorf("max in-degree %d is not heavy-tailed relative to the mean %.1f", maxIn, meanIn)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSocialGraphValidation(t *testing.T) {
	if _, err := SocialGraph(SocialConfig{Nodes: 1}); err == nil {
		t.Error("a single-node social graph should be rejected")
	}
	if _, err := SocialGraph(SocialConfig{Nodes: 10, OutDegreeMean: 0.5}); err == nil {
		t.Error("sub-unit mean degree should be rejected")
	}
	if _, err := SocialGraph(SocialConfig{Nodes: 10, OutDegreeMean: 2, Attachment: 2}); err == nil {
		t.Error("attachment outside [0,1] should be rejected")
	}
}

func TestRandomDirected(t *testing.T) {
	g, err := RandomDirected(50, 3, 1)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		if g.OutDegree(graph.NodeID(u)) != 3 {
			t.Fatalf("node %d has out-degree %d, want exactly 3", u, g.OutDegree(graph.NodeID(u)))
		}
	}
	if _, err := RandomDirected(1, 1, 1); err == nil {
		t.Error("too few nodes should be rejected")
	}
	if _, err := RandomDirected(10, 10, 1); err == nil {
		t.Error("out-degree >= nodes should be rejected")
	}
}
