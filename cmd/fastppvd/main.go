// Command fastppvd is the FastPPV serving daemon: it loads (or generates) a
// graph, precomputes the hub index, and serves Personalized PageRank queries
// over an HTTP JSON API with result caching, request coalescing and
// accuracy-aware admission control.
//
//	fastppvd -graph g.txt -hubs 20000 -addr :8080
//	fastppvd -social 60000 -addr :8080            # synthetic social graph
//
// With -index the hub index lives on disk instead of in memory — the paper's
// Sect. 5.3 disk-based configuration, for indexes larger than RAM. An
// existing index file (e.g. built by `fastppv precompute`) is opened and
// served immediately without redoing the offline phase; a missing one is
// precomputed first. Reads go through a byte-budgeted hub-block cache
// (-block-cache-bytes) whose counters appear under "block_cache" in
// /v1/stats:
//
//	fastppvd -graph g.txt -index idx.ppv -block-cache-bytes 134217728
//
// Incremental updates applied to a disk-served index are durable: each
// update's recomputed hub PPVs are committed to an update log (-update-log,
// default <index>.log) and the graph mutation itself to a graph-mutation log
// (-graph-log, default <index>.graphlog) before the update returns, and a
// restart replays both — the daemon serves the updated graph, PPVs and index
// epoch even though -graph still names the original file. The update log is
// folded back into the index by compaction — automatic past
// -compact-threshold-bytes, or on demand via POST /v1/compact.
//
// Cluster mode splits the hub index horizontally across processes. A shard
// serves one hash partition of the hub set (-shard i/n) and exposes the
// partial-query endpoint the cluster protocol needs; a router fronts the
// shards (-router url1,url2,...) and scatter-gathers every query across them,
// composing the exact error bound from the partial answers — with a down
// shard, answers degrade to a wider reported bound instead of failing:
//
//	fastppvd -graph g.txt -shard 0/2 -addr :8081
//	fastppvd -graph g.txt -shard 1/2 -addr :8082
//	fastppvd -router localhost:8081,localhost:8082 -addr :8080
//
// Updates in cluster mode go through the router: POST /v1/update fans the
// batch out to every shard in a deterministic order, each shard's index epoch
// advances in lockstep, and a shard that misses a batch (down, failed, or
// updated directly behind the router's back) is detected by its divergent
// epoch at query time and folded into the reported error bound instead of
// contributing answers from a different graph.
//
// On a disk-serving shard, -warm-hubs K preloads the K hottest hub blocks
// (by out-degree) into the block cache at startup, so a cold shard does not
// serve its first requests at cold-read latency; the result appears under
// "warming" in /v1/stats.
//
// Observability: every mode exposes a Prometheus text-format GET /metrics
// (the router additionally exports per-shard leg latency and epoch families),
// ?trace=1 on /v1/ppv returns a per-iteration trace block, logs are
// structured log/slog records (-log-format text|json, -log-level), and
// -pprof-addr serves net/http/pprof on a separate listener.
//
// With -query-log PATH every completed query is appended to a persistent,
// CRC-framed binary log (rotated past -query-log-max-mb, replayed on
// startup); with -warm-hubs set, a restart warms the block cache from the
// replayed workload's frequency-decayed top sources instead of the static
// out-degree heuristic ("warming" in /v1/stats reports which). cmd/ppvlog
// aggregates or replays a query log offline. Independently, every query's
// trace is retained after the fact when it was slow (-slow-ms), ended
// degraded, or landed on the -trace-sample cadence — GET /v1/debug/slow lists
// the retained ring, GET /v1/debug/trace/{id} fetches one by the id echoed in
// the X-Fastppv-Trace response header. -slo-p99-ms / -slo-bound declare
// serving objectives: good/bad event totals and 1m/5m/1h error-budget burn
// rates appear in /metrics and under "slo" in /v1/stats.
//
// Endpoints:
//
//	GET  /v1/ppv?node=&eta=&target-error=&top=   answer one query
//	POST /v1/ppv/batch                           answer a batch of queries
//	POST /v1/partial                             cluster sub-query (shards only)
//	POST /v1/update                              apply a graph update
//	POST /v1/compact                             fold the update log into the index
//	GET  /v1/stats                               serving + offline + cluster statistics
//	GET  /v1/debug/slow                          retained slow/degraded/sampled traces
//	GET  /v1/debug/trace/{id}                    one retained trace by id
//	GET  /metrics                                Prometheus text-format metrics
//	GET  /healthz                                readiness
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fastppv"
	"fastppv/internal/cluster"
	"fastppv/internal/gen"
	"fastppv/internal/querylog"
	"fastppv/internal/server"
	"fastppv/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "fastppvd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fastppvd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	graphPath := fs.String("graph", "", "graph file (edge list or binary); empty generates a synthetic graph")
	social := fs.Int("social", 60000, "synthetic social graph size when -graph is empty")
	seed := fs.Int64("seed", 7, "synthetic graph seed")
	hubs := fs.Int("hubs", 0, "number of hubs (0 = choose automatically)")
	shardSpec := fs.String("shard", "", "serve one hub partition, as \"i/n\" (shard i of n)")
	routerTargets := fs.String("router", "", "run as a cluster router over these comma-separated shard URLs (no local engine)")
	clusterTransport := fs.String("cluster-transport", "binary", "-router shard transport: binary (persistent streams, JSON fallback) or json")
	warmHubs := fs.Int("warm-hubs", 0, "preload this many of the hottest hub blocks into the block cache at startup")
	indexPath := fs.String("index", "", "serve from this on-disk index file (opened if present, precomputed into it otherwise)")
	blockCacheBytes := fs.Int64("block-cache-bytes", 0, "hub-block cache budget for -index mode (0 = 64 MiB default, negative disables)")
	mmap := fs.Bool("mmap", false, "serve the -index file from a memory mapping (zero-copy record views); falls back to pread when the platform cannot map it")
	updateLog := fs.String("update-log", "", "update log for -index mode (empty = <index>.log, \"none\" disables durable updates)")
	graphLog := fs.String("graph-log", "", "graph-mutation log for -index mode (empty = <index>.graphlog, \"none\" disables graph durability)")
	compactThreshold := fs.Int64("compact-threshold-bytes", 0, "auto-compact the update log past this size (0 = 64 MiB default, negative = manual /v1/compact only)")
	alpha := fs.Float64("alpha", fastppv.DefaultAlpha, "teleporting probability")
	eta := fs.Int("eta", 2, "default online iterations per query")
	maxEta := fs.Int("max-eta", 8, "largest eta a client may request")
	degradedEta := fs.Int("degraded-eta", 0, "eta served under overload")
	cacheMB := fs.Int64("cache-mb", 64, "result cache budget in MiB (0 disables)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrent full-accuracy computations (0 = GOMAXPROCS)")
	queueWait := fs.Duration("queue-wait", 25*time.Millisecond, "max wait for a computation slot before degrading")
	queryLogPath := fs.String("query-log", "", "persistent query log: one binary record per completed query, replayed on startup to drive log-based cache warming (empty disables)")
	queryLogMaxMB := fs.Int64("query-log-max-mb", 64, "rotate the query log past this size (negative = never rotate)")
	slowMS := fs.Float64("slow-ms", 250, "compute time past which a query's trace is retained unconditionally in /v1/debug/slow (negative disables)")
	traceSample := fs.Int("trace-sample", 128, "retain every Nth computed query's trace regardless of latency (negative disables)")
	traceRetain := fs.Int("trace-retain", 256, "capacity of the retained-trace ring behind /v1/debug/slow")
	sloP99MS := fs.Float64("slo-p99-ms", 0, "p99 latency objective in ms: slower answers burn the 1% error budget (0 = no latency objective)")
	sloBound := fs.Float64("slo-bound", 0, "L1 error-bound objective: wider answers burn the error budget (0 = no bound objective)")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	fs.Parse(args)

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel, "fastppvd")
	if err != nil {
		return err
	}
	startPprof(*pprofAddr, logger)

	// One registry serves GET /metrics for the whole process: the server's
	// families always, plus the router's shard-leg and epoch families in
	// router mode.
	registry := telemetry.NewRegistry()

	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	var qlog *querylog.Log
	if *queryLogPath != "" {
		maxBytes := *queryLogMaxMB << 20
		if *queryLogMaxMB < 0 {
			maxBytes = -1
		}
		qlog, err = querylog.Open(*queryLogPath, querylog.Options{MaxBytes: maxBytes}, nil)
		if err != nil {
			return fmt.Errorf("open query log: %w", err)
		}
		defer qlog.Close()
		st := qlog.Stats()
		logger.Info("query log open", "path", *queryLogPath,
			"replayed", st.Replayed, "bytes", st.ActiveBytes, "truncated", st.TruncatedBytes)
	}
	srvCfg := server.Config{
		DefaultEta:       *eta,
		MaxEta:           *maxEta,
		DegradedEta:      *degradedEta,
		CacheBytes:       cacheBytes,
		MaxConcurrent:    *maxConcurrent,
		QueueWait:        *queueWait,
		WarmHubs:         *warmHubs,
		QueryLog:         qlog,
		SlowThreshold:    time.Duration(*slowMS * float64(time.Millisecond)),
		TraceSampleEvery: *traceSample,
		TraceRetain:      *traceRetain,
		SLOLatency:       time.Duration(*sloP99MS * float64(time.Millisecond)),
		SLOBound:         *sloBound,
		Registry:         registry,
		Logger:           logger,
	}

	if *routerTargets != "" {
		if *shardSpec != "" {
			return fmt.Errorf("-router and -shard are mutually exclusive")
		}
		targets := strings.Split(*routerTargets, ",")
		rt, err := cluster.NewRouter(cluster.RouterConfig{
			Targets:   targets,
			Transport: *clusterTransport,
			Registry:  registry,
			Logger:    logger,
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		st := rt.Stats()
		logger.Info("routing across shards",
			"shards", len(st.Shards), "healthy", st.ShardsHealthy,
			"transport", st.Transport, "nodes", st.Nodes)
		srv, err := server.NewRouter(rt, srvCfg)
		if err != nil {
			return err
		}
		return serve(*addr, srv, logger)
	}

	g, err := loadOrGenerate(*graphPath, *social, *seed)
	if err != nil {
		return err
	}
	gs := g.Stats()
	logger.Info("graph loaded", "nodes", gs.Nodes, "arcs", gs.Arcs,
		"directed", gs.Directed, "dangling", gs.Dangling)

	opts := fastppv.Options{NumHubs: *hubs, Alpha: *alpha}
	if *shardSpec != "" {
		if opts.Partition, err = fastppv.ParsePartition(*shardSpec); err != nil {
			return err
		}
		logger.Info("serving hub partition", "shard", opts.Partition.String())
	}
	dio := fastppv.DiskIndexOptions{
		BlockCacheBytes:       *blockCacheBytes,
		CompactThresholdBytes: *compactThreshold,
		Mmap:                  *mmap,
	}
	switch *updateLog {
	case "none":
		dio.DisableUpdateLog = true
	default:
		dio.UpdateLogPath = *updateLog
	}
	switch *graphLog {
	case "none":
		dio.DisableGraphLog = true
	default:
		dio.GraphLogPath = *graphLog
	}
	var engine *fastppv.Engine
	if *indexPath != "" {
		var closeIndex func() error
		engine, closeIndex, err = openOrBuildDiskIndex(g, opts, *indexPath, dio, logger)
		if err != nil {
			return err
		}
		defer closeIndex()
		mmapActive := false
		if ma, ok := engine.Index().(interface{ MmapActive() bool }); ok {
			mmapActive = ma.MmapActive()
		}
		if *mmap && !mmapActive {
			logger.Warn("mmap requested but unavailable; serving via pread")
		}
		off := engine.OfflineStats()
		logger.Info("serving disk index",
			"hubs", off.Hubs, "index", *indexPath,
			"index_mb", fmt.Sprintf("%.2f", float64(off.IndexBytes)/(1<<20)),
			"block_cache", blockCacheDesc(*blockCacheBytes),
			"update_log", updateLogDesc(*indexPath, dio),
			"mmap", mmapActive,
			"epoch", engine.Epoch())
	} else {
		engine, err = fastppv.New(g, opts)
		if err != nil {
			return err
		}
		logger.Info("precomputing hub index")
		if err := engine.Precompute(); err != nil {
			return err
		}
		off := engine.OfflineStats()
		logger.Info("hub index precomputed",
			"hubs", off.Hubs, "duration", off.Total.Round(time.Millisecond).String(),
			"index_mb", fmt.Sprintf("%.2f", float64(off.IndexBytes)/(1<<20)),
			"entries", off.IndexEntries)
	}

	srv, err := server.New(engine, srvCfg)
	if err != nil {
		return err
	}
	return serve(*addr, srv, logger)
}

// serve runs the HTTP server until an error or a termination signal.
func serve(addr string, srv *server.Server, logger *slog.Logger) error {
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		// Hijacked stream connections are invisible to http.Server.Shutdown;
		// close them explicitly so routers reconnect to another shard instead
		// of waiting on a dead stream.
		if n := srv.CloseStreams(); n > 0 {
			logger.Info("closed binary streams", "streams", n)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}

// startPprof serves the net/http/pprof handlers on their own listener, kept
// off the serving mux so profiling endpoints are never exposed on the query
// port.
func startPprof(addr string, logger *slog.Logger) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		logger.Info("pprof listening", "addr", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			logger.Error("pprof server exited", "err", err.Error())
		}
	}()
}

// openOrBuildDiskIndex serves from an existing index file, or runs the
// offline phase into it first when it does not exist yet. Serving always goes
// through OpenDiskIndexWithOptions so reads are fronted by the hub-block
// cache and updates land in the update log. No partial-file cleanup is needed
// on the build path: precomputation streams into <path>.tmp and the close
// function publishes the finished index atomically (or discards the
// temporary file when Precompute failed).
func openOrBuildDiskIndex(g *fastppv.Graph, opts fastppv.Options, path string, dio fastppv.DiskIndexOptions, logger *slog.Logger) (*fastppv.Engine, func() error, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		logger.Info("index not found, precomputing", "index", path)
		start := time.Now()
		builder, closeBuilder, err := fastppv.NewWithDiskIndex(g, opts, path)
		if err != nil {
			return nil, nil, err
		}
		if err := builder.Precompute(); err != nil {
			closeBuilder()
			return nil, nil, err
		}
		if err := closeBuilder(); err != nil {
			return nil, nil, err
		}
		logger.Info("index precomputed", "index", path,
			"duration", time.Since(start).Round(time.Millisecond).String())
	}
	return fastppv.OpenDiskIndexWithOptions(g, opts, path, dio)
}

// updateLogDesc renders the update-log configuration for the startup line.
func updateLogDesc(indexPath string, dio fastppv.DiskIndexOptions) string {
	if dio.DisableUpdateLog {
		return "disabled"
	}
	if dio.UpdateLogPath != "" {
		return dio.UpdateLogPath
	}
	return indexPath + ".log"
}

func blockCacheDesc(bytes int64) string {
	switch {
	case bytes < 0:
		return "disabled"
	case bytes == 0:
		return "64.00 MB"
	default:
		return fmt.Sprintf("%.2f MB", float64(bytes)/(1<<20))
	}
}

// loadOrGenerate reads a graph file, or generates a deterministic synthetic
// social graph when no file is given.
func loadOrGenerate(path string, socialNodes int, seed int64) (*fastppv.Graph, error) {
	if path != "" {
		if g, err := fastppv.LoadBinaryFile(path); err == nil {
			return g, nil
		}
		return fastppv.LoadEdgeListFile(path)
	}
	if socialNodes < 2 {
		return nil, fmt.Errorf("need -graph or -social >= 2")
	}
	cfg := gen.DefaultSocialConfig()
	cfg.Nodes = socialNodes
	cfg.Seed = seed
	return gen.SocialGraph(cfg)
}
