package cluster

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastppv/internal/api"
	"fastppv/internal/core"
	"fastppv/internal/gen"
	"fastppv/internal/graph"
)

// shardHandler exposes the minimal shard-side surface the router needs:
// /healthz, the graph size in /v1/stats, and the /v1/partial sub-query
// endpoint, all backed directly by a (possibly sharded) core engine.
func shardHandler(t testing.TB, e *core.Engine) http.Handler {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"graph": map[string]int{"nodes": e.Graph().NumNodes()},
		})
	})
	mux.HandleFunc("/v1/partial", func(w http.ResponseWriter, r *http.Request) {
		var preq api.PartialRequest
		if err := json.NewDecoder(r.Body).Decode(&preq); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.Error{Code: api.CodeBadRequest, Message: err.Error()}})
			return
		}
		var (
			part *core.PartialIncrement
			err  error
		)
		switch {
		case preq.Query != nil:
			part, err = e.PartialRoot(*preq.Query)
		case preq.Frontier != nil:
			var frontier map[graph.NodeID]float64
			if frontier, err = preq.Frontier.DecodeMap(); err == nil {
				part, err = e.PartialExpand(frontier)
			}
		default:
			err = &api.Error{Code: api.CodeBadRequest, Message: "neither query nor frontier"}
		}
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.Error{Code: api.CodeInternal, Message: err.Error()}})
			return
		}
		p := e.Partition()
		shards := p.Shards
		if shards < 2 {
			shards = 1
		}
		json.NewEncoder(w).Encode(api.PartialResponse{
			Shard:        p.Shard,
			Shards:       shards,
			Increment:    api.EncodeVector(part.Increment),
			Frontier:     api.EncodeMap(part.Frontier),
			HubsExpanded: part.HubsExpanded,
			HubsSkipped:  part.HubsSkipped,
			Unowned:      part.Unowned,
			FromIndex:    part.FromIndex,
		})
	})
	return mux
}

// testCluster builds one single-node engine plus n sharded engines over the
// same graph and returns them with their httptest servers.
func testCluster(t *testing.T, shards int) (*core.Engine, []*core.Engine, []*httptest.Server) {
	t.Helper()
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 700, OutDegreeMean: 6, Attachment: 0.7, Seed: 21})
	if err != nil {
		t.Fatalf("SocialGraph: %v", err)
	}
	base := core.Options{NumHubs: 90}
	single, err := core.NewEngine(g, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Precompute(); err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, shards)
	servers := make([]*httptest.Server, shards)
	for s := 0; s < shards; s++ {
		opts := base
		if shards > 1 {
			opts.Partition = core.Partition{Shard: s, Shards: shards}
		}
		e, err := core.NewEngine(g, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Precompute(); err != nil {
			t.Fatal(err)
		}
		engines[s] = e
		srv := httptest.NewServer(shardHandler(t, e))
		t.Cleanup(srv.Close)
		servers[s] = srv
	}
	return single, engines, servers
}

func targetsOf(servers []*httptest.Server) []string {
	out := make([]string, len(servers))
	for i, s := range servers {
		out[i] = s.URL
	}
	return out
}

func TestRouterMatchesSingleNode(t *testing.T) {
	single, _, servers := testCluster(t, 2)
	r, err := NewRouter(RouterConfig{Targets: targetsOf(servers), HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumNodes() != single.Graph().NumNodes() {
		t.Fatalf("router discovered %d nodes, want %d", r.NumNodes(), single.Graph().NumNodes())
	}

	for _, q := range []graph.NodeID{0, 3, 42, 311, 699} {
		for _, eta := range []int{0, 2, 4} {
			want, err := single.Query(q, core.StopCondition{MaxIterations: eta})
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Query(q, core.StopCondition{MaxIterations: eta})
			if err != nil {
				t.Fatalf("router Query(%d, eta=%d): %v", q, eta, err)
			}
			if got.Degraded || got.ShardsDown != 0 {
				t.Fatalf("q=%d eta=%d: healthy cluster answered degraded (%d shards down)", q, eta, got.ShardsDown)
			}
			if math.Abs(got.L1ErrorBound-want.L1ErrorBound) > 1e-12 {
				t.Errorf("q=%d eta=%d: bound %.15f, single node %.15f", q, eta, got.L1ErrorBound, want.L1ErrorBound)
			}
			if d := got.Estimate.L1Distance(want.Estimate); d > 1e-12 {
				t.Errorf("q=%d eta=%d: estimate L1 distance %.3e from single node", q, eta, d)
			}
			wantTop, gotTop := want.TopK(10), got.TopK(10)
			for i := range wantTop {
				if wantTop[i].Node != gotTop[i].Node {
					t.Errorf("q=%d eta=%d: top-k rank %d node %d, want %d", q, eta, i, gotTop[i].Node, wantTop[i].Node)
				}
			}
		}
	}
}

func TestRouterTargetErrorStop(t *testing.T) {
	single, _, servers := testCluster(t, 2)
	r, err := NewRouter(RouterConfig{Targets: targetsOf(servers), HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	stop := core.StopCondition{MaxIterations: 8, TargetL1Error: 0.25}
	want, err := single.Query(5, stop)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Query(5, stop)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("router stopped after %d iterations, single node after %d", got.Iterations, want.Iterations)
	}
	if math.Abs(got.L1ErrorBound-want.L1ErrorBound) > 1e-12 {
		t.Errorf("bound %.15f, want %.15f", got.L1ErrorBound, want.L1ErrorBound)
	}
}

func TestRouterShardDownWidensBound(t *testing.T) {
	_, _, servers := testCluster(t, 2)
	r, err := NewRouter(RouterConfig{Targets: targetsOf(servers), HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Pick a query node owned by shard 0 so iteration 0 survives shard 1
	// going down.
	part := core.Partition{Shards: 2}
	var q graph.NodeID
	for ; part.Owner(q) != 0; q++ {
	}
	stop := core.StopCondition{MaxIterations: 3}
	healthy, err := r.Query(q, stop)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Degraded {
		t.Fatal("healthy cluster reported degraded")
	}

	servers[1].Close()
	down, err := r.Query(q, stop)
	if err != nil {
		t.Fatalf("query with one shard down must degrade, not fail: %v", err)
	}
	if !down.Degraded || down.ShardsDown != 1 {
		t.Errorf("Degraded=%v ShardsDown=%d, want degraded with 1 shard down", down.Degraded, down.ShardsDown)
	}
	if down.LostFrontierMass <= 0 {
		t.Errorf("LostFrontierMass = %v, want > 0 when a contributing shard is lost", down.LostFrontierMass)
	}
	if down.L1ErrorBound <= healthy.L1ErrorBound {
		t.Errorf("bound with shard down %.12f not wider than healthy %.12f", down.L1ErrorBound, healthy.L1ErrorBound)
	}
	// The reported bound must stay exact: 1 - sum(estimate).
	if got := 1 - down.Estimate.SumOrdered(); math.Abs(got-down.L1ErrorBound) > 1e-12 {
		t.Errorf("reported bound %.15f but 1-mass is %.15f", down.L1ErrorBound, got)
	}
	// Subsequent queries (passive mode re-attempts the dead shard and fails
	// fast on the refused connection) stay degraded, not erroring.
	again, err := r.Query(q, stop)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Degraded {
		t.Error("dead shard came back without a health probe?")
	}

	servers[0].Close()
	if _, err := r.Query(q, stop); err == nil {
		t.Error("query must fail when no shard can answer iteration 0")
	}
}

func TestRouterRootFallsBackToOtherShard(t *testing.T) {
	_, _, servers := testCluster(t, 2)
	// Pick a query node owned by shard 1, then kill shard 1 before the router
	// ever sees it: iteration 0 must fall back to shard 0.
	part := core.Partition{Shards: 2}
	var q graph.NodeID
	for ; part.Owner(q) != 1; q++ {
	}
	servers[1].Close()
	r, err := NewRouter(RouterConfig{Targets: targetsOf(servers), HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Query(q, core.StopCondition{MaxIterations: 2})
	if err != nil {
		t.Fatalf("root fallback failed: %v", err)
	}
	if !res.Degraded {
		t.Error("non-owner root must be flagged degraded")
	}
	if res.L1ErrorBound >= 1 || len(res.Estimate) == 0 {
		t.Errorf("fallback answer is empty: bound=%v entries=%d", res.L1ErrorBound, len(res.Estimate))
	}
}

// TestRouterRetriesTransientErrors: a shard answering with the structured
// "retry" code (index descriptor swapped mid-read, e.g. a restart or
// compaction) is retried once instead of being declared down.
func TestRouterRetriesTransientErrors(t *testing.T) {
	_, engines, _ := testCluster(t, 1)
	inner := shardHandler(t, engines[0])
	var failures atomic.Int32
	failures.Store(1)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/partial" && failures.Add(-1) >= 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.Error{Code: api.CodeRetry, Message: "index closed during restart"}})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	r, err := NewRouter(RouterConfig{Targets: []string{flaky.URL}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Query(3, core.StopCondition{MaxIterations: 2})
	if err != nil {
		t.Fatalf("query should survive one transient retry-coded failure: %v", err)
	}
	if res.Degraded {
		t.Error("a retried transient failure must not mark the answer degraded")
	}
	if got := r.Stats().Shards[0].Retries; got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

// TestRouterRejectsMisconfiguredShardMap: a target answering with the wrong
// partition is treated as failed, not silently merged.
func TestRouterRejectsMisconfiguredShardMap(t *testing.T) {
	_, _, servers := testCluster(t, 2)
	// Swap the targets: shard 1's server listed as shard 0 and vice versa.
	r, err := NewRouter(RouterConfig{Targets: []string{servers[1].URL, servers[0].URL}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Query(1, core.StopCondition{MaxIterations: 2})
	if err == nil && !res.Degraded {
		t.Error("swapped shard map must degrade or fail, not answer cleanly")
	}
}

// TestRouterDeterministicUnderConcurrency: concurrent identical queries must
// merge shard increments in the same order and agree bit-for-bit (run under
// -race in CI).
func TestRouterDeterministicUnderConcurrency(t *testing.T) {
	_, _, servers := testCluster(t, 3)
	r, err := NewRouter(RouterConfig{Targets: targetsOf(servers), HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const workers = 8
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := r.Query(11, core.StopCondition{MaxIterations: 3})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = res
		}(w)
	}
	wg.Wait()
	ref := results[0]
	if ref == nil {
		t.Fatal("no reference result")
	}
	for w := 1; w < workers; w++ {
		got := results[w]
		if got == nil {
			continue
		}
		if got.L1ErrorBound != ref.L1ErrorBound {
			t.Errorf("worker %d bound %v differs from %v", w, got.L1ErrorBound, ref.L1ErrorBound)
		}
		if len(got.Estimate) != len(ref.Estimate) {
			t.Fatalf("worker %d estimate has %d entries, want %d", w, len(got.Estimate), len(ref.Estimate))
		}
		for n, s := range ref.Estimate {
			if got.Estimate[n] != s {
				t.Fatalf("worker %d estimate[%d] = %v, want bit-identical %v", w, n, got.Estimate[n], s)
			}
		}
	}
}

func TestRouterHealthProbeRecovery(t *testing.T) {
	_, engines, _ := testCluster(t, 1)
	inner := shardHandler(t, engines[0])
	var downFlag atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if downFlag.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	r, err := NewRouter(RouterConfig{Targets: []string{srv.URL}, HealthInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Healthy() {
		t.Fatal("shard should be healthy at start")
	}
	downFlag.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for r.Healthy() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Healthy() {
		t.Fatal("health probe never noticed the shard going down")
	}
	downFlag.Store(false)
	for !r.Healthy() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !r.Healthy() {
		t.Fatal("health probe never restored the shard")
	}
	if res, err := r.Query(2, core.StopCondition{MaxIterations: 2}); err != nil || res.Degraded {
		t.Errorf("recovered shard should serve cleanly: res=%+v err=%v", res, err)
	}
}

// TestRouterPassiveModeRecovers: with the background probe disabled, a shard
// that failed once must be re-attempted by later queries and restored on the
// first success — a transient failure must not disable it forever.
func TestRouterPassiveModeRecovers(t *testing.T) {
	_, engines, _ := testCluster(t, 1)
	inner := shardHandler(t, engines[0])
	var downFlag atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if downFlag.Load() && r.URL.Path == "/v1/partial" {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.Error{Code: api.CodeInternal, Message: "boom"}})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	r, err := NewRouter(RouterConfig{Targets: []string{srv.URL}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	downFlag.Store(true)
	if _, err := r.Query(2, core.StopCondition{MaxIterations: 1}); err == nil {
		t.Fatal("query against the failing single shard should error (no root)")
	}
	if r.Healthy() {
		t.Fatal("shard fault should have marked the shard unhealthy")
	}
	downFlag.Store(false)
	res, err := r.Query(2, core.StopCondition{MaxIterations: 2})
	if err != nil {
		t.Fatalf("passive mode never recovered the shard: %v", err)
	}
	if res.Degraded {
		t.Error("recovered shard answered the whole query; result must not be degraded")
	}
	if !r.Healthy() {
		t.Error("a successful request must restore shard health in passive mode")
	}
}

// TestRouterOverloadDoesNotPoisonHealth: a shard shedding one request under
// admission pressure stays healthy — only shard faults flip the flag.
func TestRouterOverloadDoesNotPoisonHealth(t *testing.T) {
	_, engines, _ := testCluster(t, 1)
	inner := shardHandler(t, engines[0])
	var partials atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Shed exactly the second partial: the root succeeds, the first
		// frontier expansion is rejected by admission.
		if r.URL.Path == "/v1/partial" && partials.Add(1) == 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.Error{Code: api.CodeOverloaded, Message: "pools full"}})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	r, err := NewRouter(RouterConfig{Targets: []string{srv.URL}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Query(2, core.StopCondition{MaxIterations: 2})
	if err != nil {
		t.Fatalf("a shed expansion must degrade, not fail: %v", err)
	}
	if !res.Degraded || res.LostFrontierMass <= 0 {
		t.Errorf("shed expansion should cost its mass: degraded=%v lost=%v", res.Degraded, res.LostFrontierMass)
	}
	if res.ShardsDown != 0 {
		t.Errorf("ShardsDown = %d: an admission-shed sub-request is not a shard outage", res.ShardsDown)
	}
	if !r.Healthy() {
		t.Error("one admission rejection must not mark the shard unhealthy")
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Error("empty target list should be rejected")
	}
	if _, err := NewRouter(RouterConfig{Targets: []string{"  "}}); err == nil {
		t.Error("blank target should be rejected")
	}
}
