package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets is the default bucket layout for request/leg latency
// histograms, in seconds: 10µs to 60s with roughly 2.5x steps. The range is
// deliberately wide at both ends — at tiny benchmark scale warm cache hits
// land well under 100µs and everything past the top bound collapses into the
// +Inf bucket, clamping the reported p99 at the last finite edge, so the
// bottom reaches 10µs and the top 60s. Families with a tighter known range
// can pass their own layout (server.Config.LatencyBuckets,
// cluster.RouterConfig.LegLatencyBuckets).
var DefLatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 60,
}

// DefBoundBuckets is the default layout for L1-error-bound observations
// (residual mass at stop), log-spaced across the useful accuracy range.
var DefBoundBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
}

// LinearBuckets returns count buckets starting at start with the given width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe. Bucket
// counts, the running sum and the total count are independent atomics: a
// snapshot taken under concurrent writers is approximate by at most the
// observations in flight (the standard Prometheus scrape contract), and the
// rendered cumulative buckets are always internally monotonic because they
// are summed from one read of the per-bucket counts.
type Histogram struct {
	upper  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// NewHistogram creates a histogram over the given ascending upper bounds.
// A trailing +Inf bound is stripped (it is implicit); nil buckets default to
// DefLatencyBuckets.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	upper := append([]float64(nil), buckets...)
	if n := len(upper); n > 0 && math.IsInf(upper[n-1], 1) {
		upper = upper[:n-1]
	}
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic("telemetry: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search beats a linear scan only past ~16 buckets; bucket layouts
	// here are small, but sort.SearchFloat64s keeps it O(log n) regardless.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveDuration records a latency sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// HistogramSnapshot is a point-in-time copy of a histogram: Counts[i] is the
// (non-cumulative) count of bucket i, with Counts[len(Buckets)] the implicit
// +Inf bucket.
type HistogramSnapshot struct {
	Buckets []float64
	Counts  []uint64
	Sum     float64
	Count   uint64
}

// Snapshot copies the bucket counts. Count is recomputed as the sum of the
// copied buckets, so the snapshot is internally consistent (cumulative
// buckets never exceed the reported count) even under concurrent writers.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: h.upper,
		Counts:  make([]uint64, len(h.counts)),
		Sum:     h.sum.value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Merge adds other's counts into s (same bucket layout required); used to
// combine per-worker histograms into one report.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if len(s.Counts) != len(other.Counts) {
		panic("telemetry: merging histogram snapshots with different bucket layouts")
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	s.Count += other.Count
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// from the bucket boundaries: the upper edge of the bucket the quantile falls
// in, or +Inf when it lands in the overflow bucket.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > target {
			if i == len(s.Buckets) {
				return math.Inf(1)
			}
			return s.Buckets[i]
		}
	}
	return math.Inf(1)
}
