package sparse

import (
	"math"
	"math/rand"
	"testing"

	"fastppv/internal/graph"
)

// randomVector builds a reproducible sparse vector over [0, n) node ids.
func randomVector(rng *rand.Rand, n, entries int) Vector {
	v := New(entries)
	for len(v) < entries {
		v[graph.NodeID(rng.Intn(n))] = rng.Float64()
	}
	return v
}

// encodeVector flattens v into the 12-byte encoded record layout, sorted by
// ascending node id, the same layout ppvindex writes to disk.
func encodeVector(v Vector) []byte {
	acc := &Accumulator{}
	acc.SetVector(v)
	buf := make([]byte, len(v)*EncodedEntrySize)
	for i, e := range acc.Entries() {
		PutEncodedEntry(buf[i*EncodedEntrySize:], e.Node, e.Score)
	}
	return buf
}

func TestEncodedEntryRoundTrip(t *testing.T) {
	buf := make([]byte, 2*EncodedEntrySize)
	PutEncodedEntry(buf, 7, 0.125)
	PutEncodedEntry(buf[EncodedEntrySize:], 2_000_000_000, -1.5)
	if id, s := EncodedEntryAt(buf, 0); id != 7 || s != 0.125 {
		t.Fatalf("entry 0 = (%d, %v), want (7, 0.125)", id, s)
	}
	if id, s := EncodedEntryAt(buf, 1); id != 2_000_000_000 || s != -1.5 {
		t.Fatalf("entry 1 = (%d, %v), want (4000000000, -1.5)", id, s)
	}
}

func TestAccumulatorSetAndSum(t *testing.T) {
	v := Vector{9: 0.1, 2: 0.2, 5: 0.3}
	acc := &Accumulator{}
	acc.SetVector(v)
	if acc.Len() != 3 {
		t.Fatalf("Len = %d, want 3", acc.Len())
	}
	ent := acc.Entries()
	if ent[0].Node != 2 || ent[1].Node != 5 || ent[2].Node != 9 {
		t.Fatalf("entries not sorted by node: %v", ent)
	}
	if got, want := acc.Sum(), v.SumOrdered(); got != want {
		t.Fatalf("Sum = %v, want %v (must be bit-equal to SumOrdered)", got, want)
	}
	if got := acc.Get(5); got != 0.3 {
		t.Fatalf("Get(5) = %v, want 0.3", got)
	}
	if got := acc.Get(4); got != 0 {
		t.Fatalf("Get(missing) = %v, want 0", got)
	}
	back := acc.ToVector()
	if back.L1Distance(v) != 0 {
		t.Fatalf("ToVector round trip distance = %v", back.L1Distance(v))
	}

	acc2 := &Accumulator{}
	acc2.SetEncoded(encodeVector(v))
	if acc2.ToVector().L1Distance(v) != 0 {
		t.Fatalf("SetEncoded round trip mismatch")
	}
}

// TestAccumulatorMatchesMapPath is the core equivalence check: a randomized
// sequence of hub-extension folds must produce bit-identical scores via the
// flat kernel (both encoded and map inputs) and via the legacy map-based
// clone-then-AddScaled composition.
func TestAccumulatorMatchesMapPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const alpha = 0.15
	for trial := 0; trial < 50; trial++ {
		ref := randomVector(rng, 200, 30)
		accEnc := &Accumulator{}
		accEnc.SetVector(ref)
		accMap := &Accumulator{}
		accMap.SetVector(ref)
		mapRef := ref.Clone()

		for step := 0; step < 8; step++ {
			hubPPV := randomVector(rng, 200, 20)
			owner := graph.NodeID(rng.Intn(200))
			if rng.Intn(2) == 0 { // sometimes the owner is present in its PPV
				hubPPV[owner] = alpha + rng.Float64()
			}
			if rng.Intn(4) == 0 { // sometimes the correction zeroes the self entry
				hubPPV[owner] = alpha
			}
			scale := rng.Float64() * 3

			// Legacy path: clone-corrected extension vector, then AddScaled.
			ext := New(len(hubPPV))
			for id, s := range hubPPV {
				if id == owner {
					s -= alpha
					if s <= 1e-15 {
						continue
					}
				}
				ext[id] = s
			}
			mapRef.AddScaled(ext, scale)

			accEnc.AccumulateEncodedExtension(encodeVector(hubPPV), scale, owner, alpha)
			accMap.AccumulateVectorExtension(hubPPV, scale, owner, alpha)
		}

		for _, acc := range []*Accumulator{accEnc, accMap} {
			got := acc.ToVector()
			for id, want := range mapRef {
				if got.Get(id) != want {
					t.Fatalf("trial %d: node %d = %v, want bit-equal %v", trial, id, got.Get(id), want)
				}
			}
			for id := range got {
				if _, ok := mapRef[id]; !ok {
					t.Fatalf("trial %d: unexpected node %d in accumulator", trial, id)
				}
			}
			if got, want := acc.Sum(), mapRef.SumOrdered(); got != want {
				t.Fatalf("trial %d: Sum = %v, want %v", trial, got, want)
			}
		}
	}
}

func TestAccumulatorAddAccumulator(t *testing.T) {
	a := &Accumulator{}
	a.SetVector(Vector{1: 1, 3: 3, 5: 5})
	b := &Accumulator{}
	b.SetVector(Vector{2: 2, 3: 30, 9: 9})
	a.AddAccumulator(b)
	want := Vector{1: 1, 2: 2, 3: 33, 5: 5, 9: 9}
	if got := a.ToVector(); got.L1Distance(want) != 0 {
		t.Fatalf("AddAccumulator = %v, want %v", got, want)
	}
	// Entries stay sorted after the merge.
	ent := a.Entries()
	for i := 1; i < len(ent); i++ {
		if ent[i-1].Node >= ent[i].Node {
			t.Fatalf("entries unsorted after merge: %v", ent)
		}
	}
	empty := &Accumulator{}
	a.AddAccumulator(empty)
	if got := a.ToVector(); got.L1Distance(want) != 0 {
		t.Fatalf("adding empty accumulator changed contents")
	}
}

func TestAccumulatorExtensionSelfCorrection(t *testing.T) {
	const alpha = 0.15
	// Owner entry exactly alpha: the corrected score is zero and the entry
	// must be dropped, not stored as an explicit zero.
	acc := &Accumulator{}
	acc.AccumulateEncodedExtension(encodeVector(Vector{4: alpha, 7: 0.5}), 2, 4, alpha)
	if got := acc.ToVector(); got.Get(4) != 0 || got.Get(7) != 1.0 || len(got) != 1 {
		t.Fatalf("self-correction drop: got %v, want {7:1}", got)
	}
	// Owner absent from the record: no correction applies.
	acc.Reset()
	acc.AccumulateEncodedExtension(encodeVector(Vector{7: 0.5}), 1, 4, alpha)
	if got := acc.ToVector(); got.Get(7) != 0.5 || len(got) != 1 {
		t.Fatalf("no-self-entry: got %v, want {7:0.5}", got)
	}
	// Owner entry above alpha: corrected score survives.
	acc.Reset()
	acc.AccumulateEncodedExtension(encodeVector(Vector{4: alpha + 0.25}), 1, 4, alpha)
	if got := acc.ToVector().Get(4); math.Abs(got-0.25) > 0 {
		t.Fatalf("self-correction keep: got %v, want 0.25", got)
	}
}

func TestAccumulatorResetReuse(t *testing.T) {
	acc := &Accumulator{}
	acc.SetVector(Vector{1: 1, 2: 2})
	acc.AccumulateVectorExtension(Vector{3: 3}, 1, 99, 0.15)
	acc.Reset()
	if acc.Len() != 0 || acc.Sum() != 0 {
		t.Fatalf("Reset left entries behind: len=%d sum=%v", acc.Len(), acc.Sum())
	}
	acc.SetVector(Vector{8: 0.5})
	if got := acc.ToVector(); len(got) != 1 || got.Get(8) != 0.5 {
		t.Fatalf("reuse after Reset = %v, want {8:0.5}", got)
	}
}

func TestFromDenseHintAndRoundTrip(t *testing.T) {
	dense := make([]float64, 100)
	for i := range dense {
		dense[i] = float64(i + 1) // fully dense: worst case for the size hint
	}
	v := FromDense(dense)
	if v.NonZeros() != 100 {
		t.Fatalf("FromDense kept %d entries, want 100", v.NonZeros())
	}
	back := v.Dense(100)
	for i := range dense {
		if back[i] != dense[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, back[i], dense[i])
		}
	}
}

func TestDenseTruncation(t *testing.T) {
	v := Vector{1: 0.1, 5: 0.5, 50: 0.9}
	out, dropped := v.DenseChecked(10)
	if len(out) != 10 {
		t.Fatalf("DenseChecked len = %d, want 10", len(out))
	}
	if dropped != 1 {
		t.Fatalf("DenseChecked dropped = %d, want 1 (node 50)", dropped)
	}
	if out[1] != 0.1 || out[5] != 0.5 {
		t.Fatalf("DenseChecked kept wrong values: %v", out)
	}
	// Dense documents the same truncation silently.
	plain := v.Dense(10)
	for i := range out {
		if plain[i] != out[i] {
			t.Fatalf("Dense and DenseChecked disagree at %d", i)
		}
	}
	if full, dropped := v.DenseChecked(51); dropped != 0 || full[50] != 0.9 {
		t.Fatalf("DenseChecked(51) dropped=%d full[50]=%v, want 0, 0.9", dropped, full[50])
	}
}
