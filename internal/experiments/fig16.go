package experiments

import (
	"fmt"
	"os"
	"time"

	"fastppv/internal/cluster"
	"fastppv/internal/core"
	"fastppv/internal/diskgraph"
	"fastppv/internal/workload"
)

// DiskPoint is one row of Fig. 16: disk-based online query processing with
// the graph segmented into a given number of clusters.
type DiskPoint struct {
	Dataset         DatasetName
	Clusters        int
	AvgFaults       float64
	AvgQueryTime    time.Duration
	MemoryNeedRatio float64
}

// DiskBased reproduces the disk-based online processing experiment (E12,
// Fig. 16 of the paper): the graph is clustered, written to per-cluster files
// on disk, and queries identify their prime subgraph through a one-cluster
// memory window, counting cluster faults. The fault cap equals the number of
// clusters, as in the paper.
func DiskBased(scale Scale, clusterCounts []int) ([]DiskPoint, error) {
	if len(clusterCounts) == 0 {
		clusterCounts = []int{10, 15, 25, 35, 50}
	}
	var out []DiskPoint
	for _, name := range []DatasetName{DBLP, LiveJournal} {
		d, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		// The PPV index itself stays in memory (as in Sect. 5.3 the index is
		// fetched per hub with one random access; its size is reported by
		// Fig. 7/11); only the graph is disk-resident here.
		engine, err := buildFastPPV(d, FastPPVConfig{NumHubs: d.DefaultHubs()})
		if err != nil {
			return nil, err
		}
		for _, k := range clusterCounts {
			point, err := diskBasedOne(d, engine, k)
			if err != nil {
				return nil, fmt.Errorf("disk-based %s with %d clusters: %w", name, k, err)
			}
			out = append(out, point)
		}
	}
	return out, nil
}

func diskBasedOne(d *Dataset, engine *core.Engine, clusters int) (DiskPoint, error) {
	point := DiskPoint{Dataset: d.Name, Clusters: clusters}

	clustering, err := cluster.Partition(d.Graph, cluster.Options{NumClusters: clusters, Seed: 31})
	if err != nil {
		return point, err
	}
	dir, err := os.MkdirTemp("", "fastppv-disk-*")
	if err != nil {
		return point, err
	}
	defer os.RemoveAll(dir)
	store, err := diskgraph.Build(d.Graph, clustering, dir)
	if err != nil {
		return point, err
	}

	var (
		totalFaults int
		totalTime   time.Duration
	)
	for _, q := range d.Queries {
		view := store.NewView(clusters) // fault cap = number of clusters, as in the paper
		start := time.Now()
		_, err := engine.QueryOn(view, q, core.DefaultStop())
		totalTime += time.Since(start)
		if err != nil {
			return point, err
		}
		if err := view.Err(); err != nil {
			return point, err
		}
		totalFaults += view.Faults()
	}
	largest, err := store.LargestClusterBytes()
	if err != nil {
		return point, err
	}
	total, err := store.TotalBytes()
	if err != nil {
		return point, err
	}
	n := len(d.Queries)
	point.AvgFaults = float64(totalFaults) / float64(n)
	point.AvgQueryTime = totalTime / time.Duration(n)
	if total > 0 {
		point.MemoryNeedRatio = float64(largest) / float64(total)
	}
	return point, nil
}

// Fig16Table renders the disk-based online processing results.
func Fig16Table(points []DiskPoint) *workload.Table {
	t := workload.NewTable(
		"Fig. 16 — disk-based online query processing",
		"Dataset", "#Clusters", "Faults/query", "Time/query ms", "Memory need %")
	for _, p := range points {
		t.AddRow(string(p.Dataset), p.Clusters, p.AvgFaults,
			float64(p.AvgQueryTime.Microseconds())/1000.0,
			p.MemoryNeedRatio*100)
	}
	return t
}
