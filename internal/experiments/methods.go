package experiments

import (
	"fmt"
	"time"

	"fastppv/internal/baseline/hubrankp"
	"fastppv/internal/baseline/montecarlo"
	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/metrics"
	"fastppv/internal/sparse"
)

// MethodResult aggregates one method's behaviour over a query workload: the
// average accuracy against exact PPVs, the average online query time, and the
// offline precomputation cost. It is the unit every figure's table is built
// from.
type MethodResult struct {
	Method       string
	Accuracy     metrics.Report
	AvgQueryTime time.Duration
	OfflineTime  time.Duration
	OfflineBytes int64
}

// queryFunc computes an approximate PPV for one query node.
type queryFunc func(q graph.NodeID) (sparse.Vector, error)

// evaluate runs fn over the dataset's query workload and scores it against
// the exact PPVs.
func evaluate(d *Dataset, method string, fn queryFunc) (MethodResult, error) {
	res := MethodResult{Method: method}
	if len(d.Queries) == 0 {
		return res, fmt.Errorf("experiments: dataset %s has no queries", d.Name)
	}
	reports := make([]metrics.Report, 0, len(d.Queries))
	var total time.Duration
	for _, q := range d.Queries {
		start := time.Now()
		approx, err := fn(q)
		total += time.Since(start)
		if err != nil {
			return res, fmt.Errorf("experiments: %s query %d: %w", method, q, err)
		}
		exact, err := d.ExactPPV(q)
		if err != nil {
			return res, fmt.Errorf("experiments: exact PPV of %d: %w", q, err)
		}
		reports = append(reports, metrics.Evaluate(exact, approx, metrics.DefaultTopK))
	}
	res.Accuracy = metrics.Average(reports)
	res.AvgQueryTime = total / time.Duration(len(d.Queries))
	return res, nil
}

// FastPPVConfig is the per-experiment FastPPV parameterization.
type FastPPVConfig struct {
	NumHubs    int
	Iterations int
	Options    core.Options
}

// buildFastPPV precomputes a FastPPV engine for the dataset.
func buildFastPPV(d *Dataset, cfg FastPPVConfig) (*core.Engine, error) {
	opts := cfg.Options
	opts.NumHubs = cfg.NumHubs
	if opts.PageRank == nil {
		opts.PageRank = d.PageRank
	}
	engine, err := core.NewEngine(d.Graph, nil, opts)
	if err != nil {
		return nil, err
	}
	if err := engine.Precompute(); err != nil {
		return nil, err
	}
	return engine, nil
}

// runFastPPV precomputes and evaluates FastPPV under cfg.
func runFastPPV(d *Dataset, cfg FastPPVConfig) (MethodResult, error) {
	engine, err := buildFastPPV(d, cfg)
	if err != nil {
		return MethodResult{}, err
	}
	stop := core.StopCondition{MaxIterations: cfg.Iterations}
	res, err := evaluate(d, "FastPPV", func(q graph.NodeID) (sparse.Vector, error) {
		r, err := engine.Query(q, stop)
		if err != nil {
			return nil, err
		}
		return r.Estimate, nil
	})
	if err != nil {
		return res, err
	}
	off := engine.OfflineStats()
	res.OfflineTime = off.Total
	res.OfflineBytes = off.IndexBytes
	return res, nil
}

// HubRankPConfig is the per-experiment HubRankP parameterization.
type HubRankPConfig struct {
	NumHubs int
	Push    float64
}

// runHubRankP precomputes and evaluates the HubRankP baseline.
func runHubRankP(d *Dataset, cfg HubRankPConfig) (MethodResult, error) {
	ranker, err := hubrankp.New(d.Graph, hubrankp.Options{
		NumHubs:  cfg.NumHubs,
		Push:     cfg.Push,
		PageRank: d.PageRank,
	})
	if err != nil {
		return MethodResult{}, err
	}
	if err := ranker.Precompute(); err != nil {
		return MethodResult{}, err
	}
	res, err := evaluate(d, "HubRankP", func(q graph.NodeID) (sparse.Vector, error) {
		r, err := ranker.Query(q)
		if err != nil {
			return nil, err
		}
		return r.Estimate, nil
	})
	if err != nil {
		return res, err
	}
	off := ranker.OfflineStats()
	res.OfflineTime = off.Total
	res.OfflineBytes = off.IndexBytes
	return res, nil
}

// MonteCarloConfig is the per-experiment MonteCarlo parameterization.
type MonteCarloConfig struct {
	NumHubs         int
	SamplesPerQuery int
}

// runMonteCarlo precomputes and evaluates the MonteCarlo baseline.
func runMonteCarlo(d *Dataset, cfg MonteCarloConfig) (MethodResult, error) {
	est, err := montecarlo.New(d.Graph, montecarlo.Options{
		NumHubs:         cfg.NumHubs,
		SamplesPerQuery: cfg.SamplesPerQuery,
		PageRank:        d.PageRank,
		Seed:            17,
	})
	if err != nil {
		return MethodResult{}, err
	}
	if err := est.Precompute(); err != nil {
		return MethodResult{}, err
	}
	res, err := evaluate(d, "MonteCarlo", func(q graph.NodeID) (sparse.Vector, error) {
		r, err := est.Query(q)
		if err != nil {
			return nil, err
		}
		return r.Estimate, nil
	})
	if err != nil {
		return res, err
	}
	off := est.OfflineStats()
	res.OfflineTime = off.Total
	res.OfflineBytes = off.IndexBytes
	return res, nil
}
