package ppvindex

import (
	"container/list"
	"sync"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// BlockCache is a sharded, byte-budgeted LRU cache of decoded prime-PPV
// records layered over a slower Index (in practice a DiskIndex). It is the
// serving-side answer to the paper's Sect. 5.3/6.3 disk-resident
// configuration: the full hub index stays on disk and each fetched hub costs
// one random access, but a skewed online workload re-fetches a small set of
// popular hubs over and over — the cache keeps that hot working set decoded
// in memory under an explicit byte budget, so indexes larger than RAM stay
// servable.
//
// Three properties matter under a concurrent server:
//
//   - sharding: hubs hash onto independent mutex+LRU shards, so cache lookups
//     on the query hot path do not serialize on one lock;
//   - singleflight: concurrent Gets for the same uncached hub perform one
//     disk read and share the decoded block, preventing a miss stampede on a
//     hub that just became popular (or was just invalidated);
//   - targeted invalidation: when ApplyUpdate recomputes a hub's prime PPV,
//     Invalidate evicts exactly that hub's block, so the next Get re-reads
//     the fresh record instead of serving the stale one.
//
// Cached vectors are shared with callers and must be treated as immutable,
// matching the Index.Get contract.
//
// When the inner index additionally implements ViewGetter (every DiskIndex
// does), the cache runs in view mode: blocks are retained as the raw 12-byte
// encoded entry payload — the same flat layout as the disk record, ~4x
// denser than a decoded map, so the same byte budget holds ~4x more hot hubs
// — and GetView serves cache hits as zero-copy, zero-allocation views over
// the retained buffer. The retained buffer is an owned copy, never an alias
// of the inner index's mapping, so cached views stay valid across compaction
// swaps and need no pin. Get still works in view mode by decoding the
// retained payload per call; it is the boundary/fallback path, not the query
// hot loop.
type BlockCache struct {
	inner Index
	// viewInner is non-nil when inner serves zero-copy record views, which
	// switches the cache to retaining raw encoded payloads.
	viewInner ViewGetter
	shards    []*blockShard
	budget    int64
}

type blockShard struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	lru    *list.List // front = most recently used; values are *blockEntry
	byHub  map[graph.NodeID]*list.Element
	// flights holds the in-progress load per hub; later arrivals block on the
	// call instead of issuing their own disk read.
	flights map[graph.NodeID]*blockFlight

	hits, misses, loads, evictions, invalidations, coalesced int64
}

type blockEntry struct {
	hub graph.NodeID
	// Exactly one of the two payloads is set: ppv in legacy (map) mode, raw
	// (the flat encoded entry payload) in view mode.
	ppv   sparse.Vector
	raw   []byte
	bytes int64
}

type blockFlight struct {
	done chan struct{}
	ppv  sparse.Vector // legacy mode
	raw  []byte        // view mode
	ok   bool
	err  error
}

// BlockCacheStats is a point-in-time summary of the cache, aggregated over
// shards.
type BlockCacheStats struct {
	// Hits are Gets answered from a cached block; Misses went to the inner
	// index (Coalesced of them by sharing another Get's in-flight load).
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Loads counts actual inner-index reads, i.e. Misses - Coalesced that
	// found the hub (plus loads whose block was too large to retain).
	Loads         int64 `json:"loads"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
}

// Per-block byte accounting: a decoded record lives as a Go map from NodeID
// to float64, which costs far more than the 12 bytes/entry of the disk
// layout. ~48 bytes/entry covers key+value+bucket overhead at typical load
// factors; the fixed term covers the map header, list element and entry
// struct.
const (
	blockFixedBytes    = 128
	blockPerEntryBytes = 48
)

// blockBytes prices a cached block: a view-mode block costs its flat payload
// (12 bytes/entry), a decoded map costs ~48 bytes/entry.
func blockBytes(ppv sparse.Vector, raw []byte) int64 {
	c := int64(blockFixedBytes) + int64(len(raw))
	if ppv != nil {
		c += int64(ppv.NonZeros()) * blockPerEntryBytes
	}
	return c
}

// NewBlockCache wraps inner with a cache of budgetBytes total budget split
// evenly across numShards shards. Non-positive budget or shard count fall
// back to defaults (64 MiB, 16 shards).
func NewBlockCache(inner Index, budgetBytes int64, numShards int) *BlockCache {
	if budgetBytes <= 0 {
		budgetBytes = 64 << 20
	}
	if numShards <= 0 {
		numShards = 16
	}
	c := &BlockCache{
		inner:  inner,
		shards: make([]*blockShard, numShards),
		budget: budgetBytes,
	}
	c.viewInner, _ = inner.(ViewGetter)
	perShard := budgetBytes / int64(numShards)
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		c.shards[i] = &blockShard{
			budget:  perShard,
			lru:     list.New(),
			byHub:   make(map[graph.NodeID]*list.Element),
			flights: make(map[graph.NodeID]*blockFlight),
		}
	}
	return c
}

// shardFor picks the shard of h with a fixed multiplicative mixer
// (Fibonacci hashing). Hub ids come from the hub-selection stage, not from
// untrusted input, so a seeded hash buys nothing here and its setup cost
// lands on every cache probe of the serving hot path.
func (c *BlockCache) shardFor(h graph.NodeID) *blockShard {
	x := uint64(uint32(h)) * 0x9E3779B97F4A7C15
	return c.shards[(x>>32)%uint64(len(c.shards))]
}

// Get returns the prime PPV of h, from cache when possible. On a miss the
// block is loaded from the inner index exactly once, no matter how many
// concurrent Gets race for it, then retained under the byte budget.
func (c *BlockCache) Get(h graph.NodeID) (sparse.Vector, bool, error) {
	// Membership is resolved from the inner index's in-memory directory
	// first: a Get for an unindexed node (every non-hub query node) is a map
	// lookup, never a flight registration, and does not distort miss stats.
	if !c.inner.Has(h) {
		return nil, false, nil
	}
	if c.viewInner != nil {
		raw, ok, err := c.getRaw(h)
		if err != nil || !ok {
			return nil, ok, err
		}
		return decodeEntries(raw), true, nil
	}
	s := c.shardFor(h)
	s.mu.Lock()
	if el, ok := s.byHub[h]; ok {
		s.hits++
		s.lru.MoveToFront(el)
		v := el.Value.(*blockEntry).ppv
		s.mu.Unlock()
		return v, true, nil
	}
	s.misses++
	if fl, ok := s.flights[h]; ok {
		s.coalesced++
		s.mu.Unlock()
		<-fl.done
		return fl.ppv, fl.ok, fl.err
	}
	fl := &blockFlight{done: make(chan struct{})}
	s.flights[h] = fl
	s.mu.Unlock()

	fl.ppv, fl.ok, fl.err = c.inner.Get(h)

	s.mu.Lock()
	s.loads++
	// The load may race with an Invalidate for the same hub (an update
	// rewrote the record while we were reading the old one). Invalidate
	// removes the flight from the map to mark it stale; only a still
	// registered flight may populate the cache.
	if cur, registered := s.flights[h]; registered && cur == fl {
		delete(s.flights, h)
		if fl.err == nil && fl.ok {
			s.insertLocked(h, fl.ppv, nil)
		}
	}
	s.mu.Unlock()
	close(fl.done)
	return fl.ppv, fl.ok, fl.err
}

// GetView returns a zero-copy view of the record of h, from cache when
// possible. Cache hits are allocation-free: the view aliases the retained
// payload copy, which stays valid even if the entry is later evicted,
// invalidated, or the inner index generation is compacted away. Only
// available in view mode (inner implements ViewGetter); otherwise reports
// not-found so callers fall back to Get.
func (c *BlockCache) GetView(h graph.NodeID) (HubRecordView, bool, error) {
	if c.viewInner == nil || !c.inner.Has(h) {
		return HubRecordView{}, false, nil
	}
	raw, ok, err := c.getRaw(h)
	if err != nil || !ok {
		return HubRecordView{}, ok, err
	}
	return NewHubRecordView(h, raw, nil), true, nil
}

// getRaw resolves the flat encoded payload of h through the cache in view
// mode, loading it from the inner index exactly once per miss. The payload
// handed to callers is an owned copy of the inner view's bytes, taken while
// the inner view's pin was held, so it never dangles into an unmapped
// generation.
func (c *BlockCache) getRaw(h graph.NodeID) ([]byte, bool, error) {
	s := c.shardFor(h)
	s.mu.Lock()
	if el, ok := s.byHub[h]; ok {
		s.hits++
		s.lru.MoveToFront(el)
		raw := el.Value.(*blockEntry).raw
		s.mu.Unlock()
		return raw, true, nil
	}
	s.misses++
	if fl, ok := s.flights[h]; ok {
		s.coalesced++
		s.mu.Unlock()
		<-fl.done
		return fl.raw, fl.ok, fl.err
	}
	fl := &blockFlight{done: make(chan struct{})}
	s.flights[h] = fl
	s.mu.Unlock()

	view, ok, err := c.viewInner.GetView(h)
	if err == nil && ok {
		fl.raw = append([]byte{}, view.EntryBytes()...)
		view.Release()
	}
	fl.ok, fl.err = ok, err

	s.mu.Lock()
	s.loads++
	if cur, registered := s.flights[h]; registered && cur == fl {
		delete(s.flights, h)
		if fl.err == nil && fl.ok {
			s.insertLocked(h, nil, fl.raw)
		}
	}
	s.mu.Unlock()
	close(fl.done)
	return fl.raw, fl.ok, fl.err
}

// insertLocked stores a block (decoded map in legacy mode, raw payload in
// view mode) and evicts LRU blocks until the shard is back under budget.
// Blocks larger than a whole shard budget are served but not retained.
func (s *blockShard) insertLocked(h graph.NodeID, v sparse.Vector, raw []byte) {
	nbytes := blockBytes(v, raw)
	if nbytes > s.budget {
		return
	}
	if el, ok := s.byHub[h]; ok {
		// A concurrent load for the same hub already filled the slot (both
		// started before either registered); keep the newer value.
		ent := el.Value.(*blockEntry)
		s.bytes += nbytes - ent.bytes
		ent.ppv, ent.raw, ent.bytes = v, raw, nbytes
		s.lru.MoveToFront(el)
	} else {
		s.byHub[h] = s.lru.PushFront(&blockEntry{hub: h, ppv: v, raw: raw, bytes: nbytes})
		s.bytes += nbytes
	}
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*blockEntry)
		s.lru.Remove(back)
		delete(s.byHub, ent.hub)
		s.bytes -= ent.bytes
		s.evictions++
	}
}

// Invalidate evicts the blocks of the given hubs (typically the hubs an
// incremental update recomputed) and reports how many cached blocks were
// dropped. In-flight loads for those hubs are marked stale so they cannot
// re-populate the cache with the pre-update record.
func (c *BlockCache) Invalidate(hubs []graph.NodeID) int {
	dropped := 0
	for _, h := range hubs {
		s := c.shardFor(h)
		s.mu.Lock()
		if el, ok := s.byHub[h]; ok {
			ent := el.Value.(*blockEntry)
			s.lru.Remove(el)
			delete(s.byHub, h)
			s.bytes -= ent.bytes
			s.invalidations++
			dropped++
		}
		delete(s.flights, h)
		s.mu.Unlock()
	}
	return dropped
}

// Has, Hubs, Len and SizeBytes delegate to the inner index: the cache changes
// where blocks are read from, not what is indexed.
func (c *BlockCache) Has(h graph.NodeID) bool { return c.inner.Has(h) }
func (c *BlockCache) Hubs() []graph.NodeID    { return c.inner.Hubs() }
func (c *BlockCache) Len() int                { return c.inner.Len() }
func (c *BlockCache) SizeBytes() int64        { return c.inner.SizeBytes() }

// Stats aggregates the per-shard counters.
func (c *BlockCache) Stats() BlockCacheStats {
	st := BlockCacheStats{BudgetBytes: c.budget}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Coalesced += s.coalesced
		st.Loads += s.loads
		st.Evictions += s.evictions
		st.Invalidations += s.invalidations
		st.Entries += len(s.byHub)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
