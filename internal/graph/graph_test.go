package graph

import (
	"testing"
)

// smallDirected builds a small directed graph used by several tests:
//
//	0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 (isolated)
func smallDirected(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(true)
	b.EnsureNodes(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 0)
	return b.Finalize()
}

func TestGraphBasicAccessors(t *testing.T) {
	g := smallDirected(t)
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	if got := g.NumLogicalEdges(); got != 4 {
		t.Fatalf("NumLogicalEdges = %d, want 4 for a directed graph", got)
	}
	if !g.Directed() {
		t.Error("Directed() = false, want true")
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(2); got != 2 {
		t.Errorf("InDegree(2) = %d, want 2", got)
	}
	if got := g.OutDegree(3); got != 0 {
		t.Errorf("OutDegree(3) = %d, want 0", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Errorf("HasEdge results wrong: HasEdge(0,1)=%v HasEdge(1,0)=%v", g.HasEdge(0, 1), g.HasEdge(1, 0))
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("HasEdge should be false for out-of-range nodes")
	}
	if got := g.MaxOutDegree(); got != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", got)
	}
	dangling := g.DanglingNodes()
	if len(dangling) != 1 || dangling[0] != 3 {
		t.Errorf("DanglingNodes = %v, want [3]", dangling)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestUndirectedGraphMaterializesBothDirections(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	g := b.Finalize()
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4 arcs for 2 undirected edges", got)
	}
	if got := g.NumLogicalEdges(); got != 2 {
		t.Fatalf("NumLogicalEdges = %d, want 2", got)
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Error("undirected edge should be traversable in both directions")
	}
	if g.OutDegree(1) != 2 || g.InDegree(1) != 2 {
		t.Errorf("degree of middle node = out %d in %d, want 2/2", g.OutDegree(1), g.InDegree(1))
	}
}

func TestInNeighborsMatchesOutEdges(t *testing.T) {
	g := smallDirected(t)
	in2 := g.InNeighbors(2)
	if len(in2) != 2 {
		t.Fatalf("InNeighbors(2) = %v, want two entries", in2)
	}
	seen := map[NodeID]bool{}
	for _, v := range in2 {
		seen[v] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("InNeighbors(2) = %v, want {0,1}", in2)
	}
	if got := g.InNeighbors(3); len(got) != 0 {
		t.Errorf("InNeighbors(3) = %v, want empty", got)
	}
}

func TestBuilderRejectsOutOfRangeEdges(t *testing.T) {
	b := NewBuilder(true)
	b.EnsureNodes(2)
	if err := b.AddEdge(0, 2); err == nil {
		t.Error("AddEdge(0,2) with 2 nodes should fail")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("AddEdge(-1,0) should fail")
	}
}

func TestBuilderSelfLoops(t *testing.T) {
	b := NewBuilder(true)
	b.EnsureNodes(2)
	b.MustAddEdge(0, 0) // dropped by default
	g := b.Finalize()
	if g.NumEdges() != 0 {
		t.Fatalf("self loop should be dropped by default, got %d edges", g.NumEdges())
	}
	b2 := NewBuilder(true)
	b2.AllowSelfLoops(true)
	b2.EnsureNodes(2)
	b2.MustAddEdge(0, 0)
	g2 := b2.Finalize()
	if g2.NumEdges() != 1 {
		t.Fatalf("self loop should be kept when allowed, got %d edges", g2.NumEdges())
	}
}

func TestBuilderDedupEdges(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 0) // same undirected edge
	b.MustAddEdge(0, 2)
	b.MustAddEdge(0, 2) // duplicate
	b.DedupEdges()
	g := b.Finalize()
	if got := g.NumLogicalEdges(); got != 2 {
		t.Fatalf("after dedup NumLogicalEdges = %d, want 2", got)
	}
}

func TestLabels(t *testing.T) {
	b := NewBuilder(true)
	a := b.AddLabeledNode("alpha")
	c := b.AddLabeledNode("beta")
	g := b.Finalize()
	if !g.HasLabels() {
		t.Fatal("HasLabels = false")
	}
	if g.Label(a) != "alpha" || g.Label(c) != "beta" {
		t.Errorf("labels wrong: %q %q", g.Label(a), g.Label(c))
	}
	if got := g.NodeByLabel("beta"); got != c {
		t.Errorf("NodeByLabel(beta) = %d, want %d", got, c)
	}
	if got := g.NodeByLabel("missing"); got != InvalidNode {
		t.Errorf("NodeByLabel(missing) = %d, want InvalidNode", got)
	}
}

func TestEdgesIterationAndEdgeList(t *testing.T) {
	g := smallDirected(t)
	var count int
	g.Edges(func(Edge) bool { count++; return true })
	if count != g.NumEdges() {
		t.Errorf("Edges visited %d arcs, want %d", count, g.NumEdges())
	}
	// Early termination.
	count = 0
	g.Edges(func(Edge) bool { count++; return false })
	if count != 1 {
		t.Errorf("Edges with early stop visited %d arcs, want 1", count)
	}
	if got := len(g.EdgeList()); got != g.NumEdges() {
		t.Errorf("EdgeList has %d arcs, want %d", got, g.NumEdges())
	}
}

func TestStatsString(t *testing.T) {
	g := smallDirected(t)
	s := g.Stats()
	if s.Nodes != 4 || s.Dangling != 1 || !s.Directed {
		t.Errorf("Stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("Stats.String should not be empty")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, true, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("FromEdges graph has %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if _, err := FromEdges(2, true, []Edge{{0, 5}}); err == nil {
		t.Error("FromEdges with out-of-range target should fail")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(true).Finalize()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate on empty graph: %v", err)
	}
	if g.MaxOutDegree() != 0 {
		t.Error("MaxOutDegree of empty graph should be 0")
	}
}
