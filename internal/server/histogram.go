package server

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket i counts
// observations in [2^i, 2^(i+1)) microseconds, so the histogram spans 1µs to
// about 67s with constant relative error.
const histBuckets = 27

// Histogram is a lock-free log-scale latency histogram. Observe is safe for
// concurrent use from request handlers.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	b := 0
	for v := us; v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	for {
		cur := h.maxNS.Load()
		if int64(d) <= cur || h.maxNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// HistogramSnapshot summarizes a histogram for the stats endpoint. Quantiles
// are upper bounds taken from the bucket boundaries.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Snapshot computes a consistent-enough view of the histogram (counters are
// read individually; under concurrent writes the quantiles are approximate,
// which is all a stats endpoint needs).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.MeanMS = float64(h.sumNS.Load()) / float64(s.Count) / 1e6
	s.MaxMS = float64(h.maxNS.Load()) / 1e6

	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) float64 {
		target := int64(q * float64(total))
		var cum int64
		for i, c := range counts {
			cum += c
			if cum > target {
				// Upper edge of bucket i in milliseconds.
				return float64(int64(1)<<(i+1)) / 1e3
			}
		}
		return s.MaxMS
	}
	s.P50MS = quantile(0.50)
	s.P90MS = quantile(0.90)
	s.P99MS = quantile(0.99)
	return s
}
