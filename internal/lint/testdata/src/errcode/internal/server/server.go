// Package server is an errcode fixture: its import path ends in
// internal/server, so naked http.Error calls are banned here.
package server

import "net/http"

// Bad writes a naked text/plain error: flagged.
func Bad(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want "structured internal/api error envelope"
}

// envelope is a stand-in for the structured error writer; its Error method
// shares a name with http.Error but lives in this package.
type envelope struct{}

func (envelope) Error(w http.ResponseWriter, msg string, code int) {}

// Good goes through the envelope writer: clean.
func Good(w http.ResponseWriter) {
	envelope{}.Error(w, "boom", http.StatusInternalServerError)
}
