package diskgraph

import (
	"testing"

	"fastppv/internal/cluster"
	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/hub"
	"fastppv/internal/prime"
)

func buildStore(t *testing.T, clusters int) (*graph.Graph, *Store) {
	t.Helper()
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 800, OutDegreeMean: 5, Attachment: 0.8, Seed: 6})
	if err != nil {
		t.Fatalf("SocialGraph: %v", err)
	}
	clustering, err := cluster.Partition(g, cluster.Options{NumClusters: clusters, Seed: 2})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	store, err := Build(g, clustering, t.TempDir())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, store
}

func TestViewMatchesInMemoryGraph(t *testing.T) {
	g, store := buildStore(t, 6)
	view := store.NewView(0)
	for u := 0; u < g.NumNodes(); u += 17 {
		id := graph.NodeID(u)
		if got, want := view.OutDegree(id), g.OutDegree(id); got != want {
			t.Fatalf("OutDegree(%d) = %d, want %d", u, got, want)
		}
		got := view.OutNeighbors(id)
		want := g.OutNeighbors(id)
		if len(got) != len(want) {
			t.Fatalf("OutNeighbors(%d) has %d entries, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("OutNeighbors(%d)[%d] = %d, want %d", u, i, got[i], want[i])
			}
		}
	}
	if err := view.Err(); err != nil {
		t.Fatalf("view error: %v", err)
	}
	if view.Faults() == 0 {
		t.Error("scanning nodes across clusters should have caused faults")
	}
	if view.NumNodes() != g.NumNodes() {
		t.Errorf("NumNodes = %d, want %d", view.NumNodes(), g.NumNodes())
	}
}

func TestViewCountsFaultsOnlyOnClusterSwitch(t *testing.T) {
	g, store := buildStore(t, 5)
	view := store.NewView(0)
	// Repeatedly touching nodes of a single cluster costs exactly one fault.
	target := 0
	var sameCluster []graph.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if store.ClusterOf(graph.NodeID(u)) == target {
			sameCluster = append(sameCluster, graph.NodeID(u))
		}
		if len(sameCluster) == 10 {
			break
		}
	}
	for _, u := range sameCluster {
		view.OutNeighbors(u)
	}
	if view.Faults() != 1 {
		t.Errorf("touching one cluster caused %d faults, want 1", view.Faults())
	}
}

func TestViewFaultCapTruncatesTraversal(t *testing.T) {
	g, store := buildStore(t, 8)
	capped := store.NewView(1)
	// Touch one node per cluster: after the first fault the budget is spent
	// and out-of-cluster nodes return empty adjacency.
	seenEmpty := false
	for c := 0; c < store.NumClusters(); c++ {
		for u := 0; u < g.NumNodes(); u++ {
			if store.ClusterOf(graph.NodeID(u)) == c {
				nbrs := capped.OutNeighbors(graph.NodeID(u))
				if c > 0 && len(nbrs) == 0 && g.OutDegree(graph.NodeID(u)) > 0 {
					seenEmpty = true
				}
				break
			}
		}
	}
	if capped.Faults() != 1 {
		t.Errorf("fault cap 1 but %d faults were taken", capped.Faults())
	}
	if !seenEmpty {
		t.Error("expected truncated adjacency after the fault budget was spent")
	}
}

func TestStoreSizes(t *testing.T) {
	_, store := buildStore(t, 4)
	largest, err := store.LargestClusterBytes()
	if err != nil {
		t.Fatal(err)
	}
	total, err := store.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if largest <= 0 || total < largest {
		t.Errorf("sizes look wrong: largest %d total %d", largest, total)
	}
}

func TestSaveMetaAndOpen(t *testing.T) {
	g, err := gen.RandomDirected(200, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	clustering, err := cluster.Partition(g, cluster.Options{NumClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := Build(g, clustering, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveMeta(); err != nil {
		t.Fatalf("SaveMeta: %v", err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if reopened.NumNodes() != g.NumNodes() || reopened.NumClusters() != 3 {
		t.Fatalf("reopened store has %d nodes / %d clusters", reopened.NumNodes(), reopened.NumClusters())
	}
	view := reopened.NewView(0)
	if got, want := view.OutNeighbors(5), g.OutNeighbors(5); len(got) != len(want) {
		t.Errorf("reopened adjacency of node 5 has %d entries, want %d", len(got), len(want))
	}
}

func TestBuildValidation(t *testing.T) {
	g, err := gen.RandomDirected(50, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := &cluster.Clustering{Assignment: make([]int32, 10), Anchors: []graph.NodeID{0}}
	if _, err := Build(g, bad, t.TempDir()); err == nil {
		t.Error("mismatched clustering should be rejected")
	}
}

// TestPrimePPVOnViewMatchesInMemory is the integration test of the disk-based
// path: a prime PPV computed through a fault-counting view (with an ample
// fault budget) equals the one computed on the in-memory graph.
func TestPrimePPVOnViewMatchesInMemory(t *testing.T) {
	g, store := buildStore(t, 6)
	hubs, err := hub.Select(g, hub.Options{Policy: hub.ByOutDegree, Count: 50})
	if err != nil {
		t.Fatal(err)
	}
	for q := graph.NodeID(0); q < 5; q++ {
		mem, _, err := prime.ComputePPV(g, q, hubs, prime.Options{})
		if err != nil {
			t.Fatal(err)
		}
		view := store.NewView(0)
		disk, _, err := prime.ComputePPV(view, q, hubs, prime.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := view.Err(); err != nil {
			t.Fatal(err)
		}
		if d := mem.L1Distance(disk); d > 1e-12 {
			t.Errorf("q=%d: disk-based prime PPV differs from in-memory by %v", q, d)
		}
		if view.Faults() == 0 {
			t.Errorf("q=%d: expected at least one cluster fault", q)
		}
	}
}
