package server

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("empty snapshot count = %d", s.Count)
	}
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.MeanMS < 1 || s.MeanMS > 100 {
		t.Errorf("mean %.3fms outside (1,100)", s.MeanMS)
	}
	if s.MaxMS < 100 {
		t.Errorf("max %.3fms, want >= 100", s.MaxMS)
	}
	// p50 sits in the 1ms bucket (upper bound 2ms); p99 in the 100ms bucket.
	if s.P50MS > 4 {
		t.Errorf("p50 %.3fms, want about 1-2ms", s.P50MS)
	}
	if s.P99MS < 64 {
		t.Errorf("p99 %.3fms, want >= 64ms", s.P99MS)
	}
	if s.P50MS > s.P90MS || s.P90MS > s.P99MS {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}
