// stream.go is the shard side of the binary streaming transport: GET
// /v1/stream upgrades the connection (101 + Hijack) and then speaks
// api.ReadFrame/WriteFrame both ways. Requests are multiplexed by id — each
// one is evaluated by the same evalPartial core as POST /v1/partial, under
// the same admission gate — and a cancel frame withdraws a speculative
// request the shard has not started computing yet.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fastppv/internal/api"
)

// streamWriteTimeout bounds one frame write so a wedged client cannot pin
// handler goroutines; a stream that cannot drain replies is torn down.
const streamWriteTimeout = 10 * time.Second

// streamSet tracks the server's open streams and their aggregate counters
// (counters survive the streams that produced them).
type streamSet struct {
	mu   sync.Mutex
	open map[*serverStream]struct{}

	accepted      atomic.Int64
	framesIn      atomic.Int64
	framesOut     atomic.Int64
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
	partials      atomic.Int64
	speculative   atomic.Int64
	specDiscarded atomic.Int64
	shed          atomic.Int64
	decodeErrors  atomic.Int64
}

func newStreamSet() *streamSet {
	return &streamSet{open: map[*serverStream]struct{}{}}
}

func (set *streamSet) add(st *serverStream) {
	set.accepted.Add(1)
	set.mu.Lock()
	set.open[st] = struct{}{}
	set.mu.Unlock()
}

func (set *streamSet) remove(st *serverStream) {
	set.mu.Lock()
	delete(set.open, st)
	set.mu.Unlock()
}

// StreamConnStats is the per-connection slice of the stream stats: one open
// stream's admission accounting.
type StreamConnStats struct {
	Remote     string  `json:"remote"`
	AgeSeconds float64 `json:"age_seconds"`
	// Partials counts sub-requests this stream got answered; Shed the ones
	// its peer had rejected by the admission gate; SpeculationDiscarded the
	// speculative ones withdrawn before compute.
	Partials             int64 `json:"partials"`
	Shed                 int64 `json:"shed"`
	SpeculationDiscarded int64 `json:"speculation_discarded"`
}

// StreamStats reports the binary stream surface in GET /v1/stats.
type StreamStats struct {
	Open     int   `json:"open"`
	Accepted int64 `json:"accepted"`
	// FramesIn/Out and BytesIn/Out count wire traffic across all streams,
	// including closed ones.
	FramesIn  int64 `json:"frames_in"`
	FramesOut int64 `json:"frames_out"`
	BytesIn   int64 `json:"bytes_in"`
	BytesOut  int64 `json:"bytes_out"`
	// Partials counts stream sub-requests answered (Speculative of them were
	// pre-sent by the router); SpeculationDiscarded counts speculative
	// requests cancelled before compute; Shed counts admission rejections.
	Partials             int64 `json:"partials"`
	Speculative          int64 `json:"speculative"`
	SpeculationDiscarded int64 `json:"speculation_discarded"`
	Shed                 int64 `json:"shed"`
	// DecodeErrors counts streams torn down on a corrupt or torn frame.
	DecodeErrors int64             `json:"decode_errors"`
	Conns        []StreamConnStats `json:"conns,omitempty"`
}

func (set *streamSet) stats() StreamStats {
	st := StreamStats{
		Accepted:             set.accepted.Load(),
		FramesIn:             set.framesIn.Load(),
		FramesOut:            set.framesOut.Load(),
		BytesIn:              set.bytesIn.Load(),
		BytesOut:             set.bytesOut.Load(),
		Partials:             set.partials.Load(),
		Speculative:          set.speculative.Load(),
		SpeculationDiscarded: set.specDiscarded.Load(),
		Shed:                 set.shed.Load(),
		DecodeErrors:         set.decodeErrors.Load(),
	}
	set.mu.Lock()
	st.Open = len(set.open)
	for s := range set.open {
		st.Conns = append(st.Conns, StreamConnStats{
			Remote:               s.remote,
			AgeSeconds:           time.Since(s.opened).Seconds(),
			Partials:             s.partials.Load(),
			Shed:                 s.shed.Load(),
			SpeculationDiscarded: s.specDiscarded.Load(),
		})
	}
	set.mu.Unlock()
	return st
}

// closeAll tears down every open stream (their serve loops exit on the read
// error) and returns how many were closed. Used by graceful shutdown:
// hijacked connections are invisible to http.Server.Shutdown.
func (set *streamSet) closeAll() int {
	set.mu.Lock()
	conns := make([]*serverStream, 0, len(set.open))
	for s := range set.open {
		conns = append(conns, s)
	}
	set.mu.Unlock()
	for _, s := range conns {
		s.conn.Close()
	}
	return len(conns)
}

// CloseStreams force-closes all open binary streams and returns how many
// there were. Call it during shutdown, before (or alongside)
// http.Server.Shutdown: hijacked stream connections are not tracked by the
// HTTP server, so nothing else closes them.
func (s *Server) CloseStreams() int {
	return s.streams.closeAll()
}

// serverStream is one upgraded connection.
type serverStream struct {
	s      *Server
	conn   net.Conn
	br     *bufio.Reader
	remote string
	opened time.Time

	wmu sync.Mutex

	mu   sync.Mutex
	reqs map[uint64]*streamReq

	partials      atomic.Int64
	shed          atomic.Int64
	specDiscarded atomic.Int64
}

// streamReq is one in-flight request's cancel slot.
type streamReq struct {
	hash      uint64
	cancelled atomic.Bool
}

// handleStream upgrades the connection and serves frames until it breaks. It
// is mounted outside instrument: a stream lives for hours and would only
// distort the request histograms.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeError(w, unsupported("/v1/stream is served by shards, not by the router"))
		return
	}
	if !headerContainsToken(r.Header, "Upgrade", api.StreamProtocol) {
		writeError(w, badRequest("upgrade to %q required", api.StreamProtocol))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, fmt.Errorf("stream: connection cannot be hijacked"))
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		writeError(w, fmt.Errorf("stream: hijack failed: %w", err))
		return
	}
	conn.SetDeadline(time.Now().Add(streamWriteTimeout))
	if _, err := fmt.Fprintf(conn, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n",
		api.StreamProtocol); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	st := &serverStream{
		s:      s,
		conn:   conn,
		br:     buf.Reader,
		remote: r.RemoteAddr,
		opened: time.Now(),
		reqs:   map[uint64]*streamReq{},
	}
	s.streams.add(st)
	s.logger.Info("stream opened", "remote", st.remote)
	st.serve()
	s.streams.remove(st)
	conn.Close()
	s.logger.Info("stream closed", "remote", st.remote,
		"partials", st.partials.Load(), "shed", st.shed.Load(),
		"speculation_discarded", st.specDiscarded.Load(),
		"age_seconds", time.Since(st.opened).Seconds())
}

// headerContainsToken reports whether any value of the header contains the
// token (comma-separated, case-insensitive) — the Upgrade header may list
// several protocols.
func headerContainsToken(h http.Header, key, token string) bool {
	for _, v := range h.Values(key) {
		for part := range splitCommaSeq(v) {
			if equalFold(part, token) {
				return true
			}
		}
	}
	return false
}

// splitCommaSeq yields the comma-separated, space-trimmed parts of v.
func splitCommaSeq(v string) func(func(string) bool) {
	return func(yield func(string) bool) {
		start := 0
		for i := 0; i <= len(v); i++ {
			if i == len(v) || v[i] == ',' {
				part := trimSpace(v[start:i])
				if part != "" && !yield(part) {
					return
				}
				start = i + 1
			}
		}
	}
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// serve is the stream's read loop: exactly one goroutine reads frames;
// requests are evaluated concurrently and answered through the write lock. A
// torn or corrupt frame tears the stream down (the protocol has no resync
// point) — a structured event, never a panic.
func (st *serverStream) serve() {
	set := st.s.streams
	for {
		ftype, payload, n, err := api.ReadFrame(st.br)
		if err != nil {
			if errors.Is(err, api.ErrBadFrame) {
				set.decodeErrors.Add(1)
				st.s.logger.Warn("stream torn down on bad frame", "remote", st.remote, "error", err)
			} else if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				st.s.logger.Debug("stream read failed", "remote", st.remote, "error", err)
			}
			return
		}
		set.framesIn.Add(1)
		set.bytesIn.Add(int64(n))
		switch ftype {
		case api.FramePartialRequest:
			id, traceID, preq, derr := api.DecodePartialRequest(payload)
			if derr != nil {
				set.decodeErrors.Add(1)
				st.s.logger.Warn("stream torn down on bad request payload", "remote", st.remote, "error", derr)
				return
			}
			rq := &streamReq{hash: preq.FrontierHash}
			st.mu.Lock()
			st.reqs[id] = rq
			st.mu.Unlock()
			go st.servePartial(id, traceID, preq, rq)
		case api.FrameCancel:
			id, hash, derr := api.DecodeCancel(payload)
			if derr != nil {
				set.decodeErrors.Add(1)
				return
			}
			st.mu.Lock()
			rq := st.reqs[id]
			st.mu.Unlock()
			// The hash must match the request being withdrawn: a cancel that
			// raced a reused id must not kill an unrelated request.
			if rq != nil && rq.hash == hash {
				rq.cancelled.Store(true)
			}
		default:
			// Unknown frame type: tolerated for forward compatibility.
		}
	}
}

// servePartial answers one multiplexed request. A request cancelled before
// this point (withdrawn speculation) is discarded without touching the
// engine and answered with the structured stale-speculation code.
func (st *serverStream) servePartial(id uint64, traceID string, preq *api.PartialRequest, rq *streamReq) {
	defer func() {
		st.mu.Lock()
		delete(st.reqs, id)
		st.mu.Unlock()
	}()
	set := st.s.streams
	if preq.Speculative {
		set.speculative.Add(1)
	}
	if rq.cancelled.Load() {
		set.specDiscarded.Add(1)
		st.specDiscarded.Add(1)
		st.writeErrorFrame(id, &api.Error{Code: api.CodeStaleSpeculation,
			Message: "speculative expansion withdrawn before compute"})
		return
	}
	presp, err := st.s.evalPartial(preq, traceID)
	if err != nil {
		ae := apiErrorOf(err)
		if ae.Code == api.CodeOverloaded {
			set.shed.Add(1)
			st.shed.Add(1)
		}
		st.writeErrorFrame(id, ae)
		return
	}
	payload, eerr := api.EncodePartialResponse(id, presp)
	if eerr != nil {
		st.writeErrorFrame(id, &api.Error{Code: api.CodeInternal, Message: eerr.Error()})
		return
	}
	if st.writeFrame(api.FramePartialResponse, payload) == nil {
		set.partials.Add(1)
		st.partials.Add(1)
	}
}

// writeFrame sends one frame under the write lock with a bounded deadline; a
// failed write closes the connection (the serve loop then exits on read).
func (st *serverStream) writeFrame(ftype byte, payload []byte) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	st.conn.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	n, err := api.WriteFrame(st.conn, ftype, payload)
	if err != nil {
		st.conn.Close()
		return err
	}
	set := st.s.streams
	set.framesOut.Add(1)
	set.bytesOut.Add(int64(n))
	return nil
}

func (st *serverStream) writeErrorFrame(id uint64, e *api.Error) {
	st.writeFrame(api.FrameError, api.EncodeError(id, e))
}

// apiErrorOf converts an evalPartial error to the structured wire error,
// preserving the machine-readable code the JSON surface would have sent.
func apiErrorOf(err error) *api.Error {
	var he *httpError
	if errors.As(err, &he) {
		return &api.Error{Code: he.code, Message: he.msg}
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	return &api.Error{Code: api.CodeInternal, Message: err.Error()}
}
