package ppvindex

import (
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// countingIndex wraps an Index and counts Gets, with an optional gate that
// holds loads open so tests can pile up concurrent requests.
type countingIndex struct {
	Index
	gets atomic.Int64
	gate chan struct{} // when non-nil, Get blocks until it is closed
}

func (c *countingIndex) Get(h graph.NodeID) (sparse.Vector, bool, error) {
	c.gets.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	return c.Index.Get(h)
}

func memIndexWith(t *testing.T, vectors map[graph.NodeID]sparse.Vector) *MemIndex {
	t.Helper()
	idx := NewMemIndex()
	for h, v := range vectors {
		if err := idx.Put(h, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	return idx
}

func TestBlockCacheHitsAvoidInnerReads(t *testing.T) {
	inner := &countingIndex{Index: memIndexWith(t, sampleVectors())}
	bc := NewBlockCache(inner, 1<<20, 4)

	for i := 0; i < 5; i++ {
		v, ok, err := bc.Get(3)
		if err != nil || !ok {
			t.Fatalf("Get(3) = %v, %v, %v", v, ok, err)
		}
		if v.Get(2) != 0.25 {
			t.Fatalf("Get(3)[2] = %v, want 0.25", v.Get(2))
		}
	}
	if got := inner.gets.Load(); got != 1 {
		t.Errorf("inner reads = %d, want 1 (first miss only)", got)
	}
	st := bc.Stats()
	if st.Hits != 4 || st.Misses != 1 || st.Loads != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 4 hits / 1 miss / 1 load / 1 entry", st)
	}
	if st.Bytes <= 0 || st.BudgetBytes != 1<<20 {
		t.Errorf("stats bytes = %d budget = %d", st.Bytes, st.BudgetBytes)
	}

	// Missing hubs pass through without caching or counting as entries.
	if _, ok, err := bc.Get(99); ok || err != nil {
		t.Errorf("Get(99) = %v, %v, want miss", ok, err)
	}
	if bc.Stats().Entries != 1 {
		t.Errorf("missing hub must not be cached")
	}
}

func TestBlockCacheBudgetEviction(t *testing.T) {
	vectors := make(map[graph.NodeID]sparse.Vector)
	for h := graph.NodeID(0); h < 8; h++ {
		vectors[h] = sparse.Vector{h: 0.5, h + 100: 0.25}
	}
	inner := &countingIndex{Index: memIndexWith(t, vectors)}
	// One shard so LRU order is global; budget fits ~3 two-entry blocks
	// (128 fixed + 2*48 = 224 bytes each).
	bc := NewBlockCache(inner, 700, 1)

	for h := graph.NodeID(0); h < 8; h++ {
		if _, ok, err := bc.Get(h); !ok || err != nil {
			t.Fatalf("Get(%d) = %v, %v", h, ok, err)
		}
	}
	st := bc.Stats()
	if st.Bytes > 700 {
		t.Errorf("cache holds %d bytes, budget 700", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions after exceeding the budget")
	}
	if st.Entries >= 8 {
		t.Errorf("entries = %d, want fewer than the 8 inserted", st.Entries)
	}

	// The most recently used hub must still be cached; re-reading it must not
	// touch the inner index again.
	before := inner.gets.Load()
	if _, ok, _ := bc.Get(7); !ok {
		t.Fatal("Get(7) after fill")
	}
	if inner.gets.Load() != before {
		t.Error("most recently used block should still be cached")
	}

	// A block larger than the whole budget is served but not retained.
	huge := sparse.New(64)
	for i := 0; i < 64; i++ {
		huge[graph.NodeID(1000+i)] = 0.001
	}
	if err := inner.Index.(*MemIndex).Put(200, huge); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := bc.Get(200); !ok || err != nil {
		t.Fatalf("Get(200) = %v, %v", ok, err)
	}
	if st := bc.Stats(); st.Bytes > 700 {
		t.Errorf("oversized block retained: %d bytes held", st.Bytes)
	}
}

func TestBlockCacheSingleflight(t *testing.T) {
	inner := &countingIndex{
		Index: memIndexWith(t, sampleVectors()),
		gate:  make(chan struct{}),
	}
	bc := NewBlockCache(inner, 1<<20, 4)

	const callers = 16
	var wg sync.WaitGroup
	results := make([]sparse.Vector, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ok, err := bc.Get(7)
			if !ok || err != nil {
				t.Errorf("Get(7) = %v, %v", ok, err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the one permitted load is in flight, then release it.
	for inner.gets.Load() == 0 {
	}
	close(inner.gate)
	wg.Wait()

	if got := inner.gets.Load(); got != 1 {
		t.Errorf("inner reads = %d, want 1 (singleflight)", got)
	}
	st := bc.Stats()
	if st.Coalesced == 0 {
		t.Errorf("stats = %+v, expected coalesced waiters", st)
	}
	for i := 1; i < callers; i++ {
		if results[i].Get(9) != results[0].Get(9) {
			t.Fatalf("caller %d saw a different vector", i)
		}
	}
}

func TestBlockCacheInvalidate(t *testing.T) {
	mem := memIndexWith(t, sampleVectors())
	inner := &countingIndex{Index: mem}
	bc := NewBlockCache(inner, 1<<20, 4)

	for h := range sampleVectors() {
		if _, ok, err := bc.Get(h); !ok || err != nil {
			t.Fatalf("Get(%d) = %v, %v", h, ok, err)
		}
	}

	// Simulate ApplyUpdate: hub 3's prime PPV is recomputed, its block must
	// be dropped so the next Get sees the new record.
	if err := mem.Put(3, sparse.Vector{5: 0.9}); err != nil {
		t.Fatal(err)
	}
	if dropped := bc.Invalidate([]graph.NodeID{3, 12345}); dropped != 1 {
		t.Errorf("Invalidate dropped %d blocks, want 1", dropped)
	}
	v, ok, err := bc.Get(3)
	if !ok || err != nil {
		t.Fatalf("Get(3) after invalidate = %v, %v", ok, err)
	}
	if v.Get(5) != 0.9 {
		t.Errorf("Get(3) returned the stale block: %v", v)
	}
	// Untouched hubs stay cached.
	before := inner.gets.Load()
	if _, ok, _ := bc.Get(7); !ok {
		t.Fatal("Get(7)")
	}
	if inner.gets.Load() != before {
		t.Error("invalidation of hub 3 must not evict hub 7")
	}
	if st := bc.Stats(); st.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", st.Invalidations)
	}
}

func TestBlockCacheInvalidateMarksInflightStale(t *testing.T) {
	mem := memIndexWith(t, sampleVectors())
	inner := &countingIndex{Index: mem, gate: make(chan struct{})}
	bc := NewBlockCache(inner, 1<<20, 4)

	done := make(chan sparse.Vector, 1)
	go func() {
		v, _, _ := bc.Get(7)
		done <- v
	}()
	for inner.gets.Load() == 0 {
	}
	// The load of the old record is in flight; the update lands now.
	if err := mem.Put(7, sparse.Vector{8: 0.7}); err != nil {
		t.Fatal(err)
	}
	bc.Invalidate([]graph.NodeID{7})
	close(inner.gate)
	<-done

	// Whatever the raced load returned, the cache must not serve the
	// pre-invalidation block afterwards.
	v, ok, err := bc.Get(7)
	if !ok || err != nil {
		t.Fatalf("Get(7) = %v, %v", ok, err)
	}
	if v.Get(8) != 0.7 {
		t.Errorf("stale block survived invalidation: %v", v)
	}
}

func TestBlockCacheOverDiskIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	for h, v := range sampleVectors() {
		if err := w.Put(h, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	bc := NewBlockCache(idx, 1<<20, 4)
	for i := 0; i < 3; i++ {
		for h, want := range sampleVectors() {
			got, ok, err := bc.Get(h)
			if !ok || err != nil {
				t.Fatalf("Get(%d) = %v, %v", h, ok, err)
			}
			if d := got.L1Distance(want); d > 1e-12 {
				t.Errorf("Get(%d) differs by %v", h, d)
			}
		}
	}
	if idx.Reads() != int64(len(sampleVectors())) {
		t.Errorf("disk reads = %d, want %d (one per hub, rest cached)", idx.Reads(), len(sampleVectors()))
	}
	if !bc.Has(7) || bc.Has(5) {
		t.Error("Has must delegate to the disk index")
	}
	if bc.Len() != idx.Len() || bc.SizeBytes() != idx.SizeBytes() {
		t.Error("Len/SizeBytes must delegate to the disk index")
	}
}

func TestBlockCachePropagatesErrors(t *testing.T) {
	inner := &erroringIndex{}
	bc := NewBlockCache(inner, 1<<20, 2)
	if _, _, err := bc.Get(1); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	// Errors must not be cached: the next Get retries the inner index.
	if _, _, err := bc.Get(1); !errors.Is(err, errBoom) {
		t.Fatalf("retry err = %v, want errBoom", err)
	}
	if inner.gets != 2 {
		t.Errorf("inner gets = %d, want 2 (errors are not cached)", inner.gets)
	}
}

var errBoom = errors.New("boom")

type erroringIndex struct{ gets int }

func (e *erroringIndex) Get(graph.NodeID) (sparse.Vector, bool, error) {
	e.gets++
	return nil, false, errBoom
}
func (e *erroringIndex) Has(graph.NodeID) bool { return true }
func (e *erroringIndex) Hubs() []graph.NodeID  { return nil }
func (e *erroringIndex) Len() int              { return 0 }
func (e *erroringIndex) SizeBytes() int64      { return 0 }
