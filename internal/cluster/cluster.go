// Package cluster holds the cluster-level machinery of the FastPPV
// reproduction, in two halves:
//
//   - node clustering for the disk-based configuration (this file): following
//     the technique the paper adopts from Sarkar & Moore (Sect. 5.3), anchor
//     nodes are chosen at random and every node is assigned to the anchor with
//     the highest personalized PageRank score, which produces tight clusters
//     even with random anchors;
//   - horizontal sharding of the hub index across processes (router.go): a
//     scatter-gather Router fans PPV queries out to fastppvd shards that each
//     own one hash partition of the hub set, merges their partial increments
//     deterministically, and composes the exact accuracy-aware error bound —
//     degrading to a wider bound, not an error, when shards are lost.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"fastppv/internal/graph"
	"fastppv/internal/pagerank"
	"fastppv/internal/sparse"
)

// Options configure the clustering.
type Options struct {
	// NumClusters is the number of anchors/clusters to create.
	NumClusters int
	// Alpha is the teleporting probability of the anchor PPVs; zero means
	// pagerank.DefaultAlpha.
	Alpha float64
	// PushThreshold is the residual threshold of the approximate anchor PPV
	// computation; zero means 1e-6. Smaller assigns faraway nodes more
	// faithfully but costs more time.
	PushThreshold float64
	// Seed makes anchor selection deterministic.
	Seed int64
}

func (o Options) withDefaults() (Options, error) {
	if o.NumClusters <= 0 {
		return o, fmt.Errorf("cluster: NumClusters must be positive, got %d", o.NumClusters)
	}
	if o.Alpha == 0 {
		o.Alpha = pagerank.DefaultAlpha
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("cluster: alpha %v outside (0,1)", o.Alpha)
	}
	if o.PushThreshold == 0 {
		o.PushThreshold = 1e-6
	}
	if o.PushThreshold < 0 {
		return o, errors.New("cluster: negative PushThreshold")
	}
	return o, nil
}

// Clustering is a partition of the node set into clusters.
type Clustering struct {
	// Assignment maps every node to its cluster in [0, NumClusters).
	Assignment []int32
	// Anchors are the anchor nodes, indexed by cluster id.
	Anchors []graph.NodeID
	// Sizes is the number of nodes per cluster.
	Sizes []int
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Anchors) }

// LargestClusterSize returns the node count of the largest cluster: the
// minimum working set of the disk-based online processing (Fig. 16's "memory
// need" column is LargestClusterSize / NumNodes).
func (c *Clustering) LargestClusterSize() int {
	max := 0
	for _, s := range c.Sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// Members returns the nodes assigned to cluster id.
func (c *Clustering) Members(id int) []graph.NodeID {
	var out []graph.NodeID
	for node, cl := range c.Assignment {
		if int(cl) == id {
			out = append(out, graph.NodeID(node))
		}
	}
	return out
}

// Partition clusters g around randomly chosen anchors by personalized
// PageRank affinity. Nodes unreachable from every anchor are distributed
// round-robin so that every node belongs to exactly one cluster.
func Partition(g *graph.Graph, opts Options) (*Clustering, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("cluster: empty graph")
	}
	k := opts.NumClusters
	if k > n {
		k = n
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(n)
	anchors := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		anchors[i] = graph.NodeID(perm[i])
	}

	assignment := make([]int32, n)
	bestScore := make([]float64, n)
	for i := range assignment {
		assignment[i] = -1
	}
	// Affinity of node v to anchor a is the PPV score of v with respect to a;
	// assign each node to its best anchor.
	for clusterID, anchor := range anchors {
		ppv := approximatePPV(g, anchor, opts.Alpha, opts.PushThreshold)
		//lint:ordered each node occurs once per anchor PPV and the strict-improvement update is per-node independent
		for node, score := range ppv {
			if assignment[node] == -1 || score > bestScore[node] {
				assignment[node] = int32(clusterID)
				bestScore[node] = score
			}
		}
	}
	// Anchors always belong to their own cluster.
	for clusterID, anchor := range anchors {
		assignment[anchor] = int32(clusterID)
	}
	// Nodes with no affinity to any anchor are spread round-robin.
	next := 0
	for node := range assignment {
		if assignment[node] == -1 {
			assignment[node] = int32(next % k)
			next++
		}
	}

	sizes := make([]int, k)
	for _, cl := range assignment {
		sizes[cl]++
	}
	return &Clustering{Assignment: assignment, Anchors: anchors, Sizes: sizes}, nil
}

// approximatePPV is a forward-push PPV approximation used only for clustering
// affinity; accuracy requirements here are mild.
func approximatePPV(g *graph.Graph, src graph.NodeID, alpha, threshold float64) sparse.Vector {
	estimate := sparse.New(256)
	residual := map[graph.NodeID]float64{src: 1}
	queue := []graph.NodeID{src}
	inQueue := map[graph.NodeID]bool{src: true}
	// FIFO processing keeps residual batched (see prime.ComputePPV).
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		inQueue[u] = false
		mass := residual[u]
		if mass < threshold {
			continue
		}
		delete(residual, u)
		estimate.Add(u, alpha*mass)
		deg := g.OutDegree(u)
		if deg == 0 {
			continue
		}
		share := (1 - alpha) * mass / float64(deg)
		for _, v := range g.OutNeighbors(u) {
			residual[v] += share
			if !inQueue[v] && residual[v] >= threshold {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}
	//lint:ordered each node occurs once in the residual map, so the per-node Add calls are independent
	for u, mass := range residual {
		estimate.Add(u, alpha*mass)
	}
	return estimate
}
