// Package hub implements the hub selection policies of Sect. 4 of the paper.
// Hubs play two roles in FastPPV: their high out-degree partitions tours by
// hub length (discriminating), and their high popularity makes their prime
// PPVs reusable across many queries (sharing). The paper's proposal is the
// expected-utility policy EU(v) = PageRank(v) * |Out(v)|; PageRank-only,
// out-degree-only, in-degree-only and random policies are provided as the
// comparison points of Fig. 8/9 and as ablations.
package hub

import (
	"fmt"
	"math/rand"
	"sort"

	"fastppv/internal/graph"
	"fastppv/internal/pagerank"
)

// Policy selects which score a node is ranked by when choosing hubs.
type Policy int

const (
	// ExpectedUtility ranks nodes by PageRank(v) * OutDegree(v), the paper's
	// proposed policy (Eq. 7).
	ExpectedUtility Policy = iota
	// ByPageRank ranks nodes by global PageRank only (popularity/sharing).
	ByPageRank
	// ByOutDegree ranks nodes by out-degree only (utility/discriminating).
	ByOutDegree
	// ByInDegree ranks nodes by in-degree, a cheap proxy for popularity
	// mentioned in Sect. 4.
	ByInDegree
	// Random selects hubs uniformly at random; the paper reports it performs
	// substantially worse and omits it from the figures, so it serves as an
	// ablation here.
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case ExpectedUtility:
		return "expected-utility"
	case ByPageRank:
		return "pagerank"
	case ByOutDegree:
		return "out-degree"
	case ByInDegree:
		return "in-degree"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a string (as accepted by the CLIs) into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "expected-utility", "eu":
		return ExpectedUtility, nil
	case "pagerank", "pr":
		return ByPageRank, nil
	case "out-degree", "outdeg":
		return ByOutDegree, nil
	case "in-degree", "indeg":
		return ByInDegree, nil
	case "random":
		return Random, nil
	default:
		return 0, fmt.Errorf("hub: unknown policy %q", s)
	}
}

// Set is a hub set with O(1) membership queries plus the selection order.
type Set struct {
	members map[graph.NodeID]struct{}
	ordered []graph.NodeID
}

// NewSet builds a Set from an ordered list of hubs.
func NewSet(hubs []graph.NodeID) *Set {
	s := &Set{
		members: make(map[graph.NodeID]struct{}, len(hubs)),
		ordered: append([]graph.NodeID(nil), hubs...),
	}
	for _, h := range hubs {
		s.members[h] = struct{}{}
	}
	return s
}

// Contains reports whether v is a hub.
func (s *Set) Contains(v graph.NodeID) bool {
	if s == nil {
		return false
	}
	_, ok := s.members[v]
	return ok
}

// Size returns the number of hubs.
func (s *Set) Size() int {
	if s == nil {
		return 0
	}
	return len(s.ordered)
}

// Hubs returns the hubs in selection order (highest score first). Callers must
// not modify the returned slice.
func (s *Set) Hubs() []graph.NodeID { return s.ordered }

// Options configure hub selection.
type Options struct {
	// Policy picks the ranking score; default ExpectedUtility.
	Policy Policy
	// Count is the number of hubs |H| to select. It is capped at the number
	// of nodes.
	Count int
	// PageRank optionally supplies precomputed global PageRank scores so that
	// several policies can be evaluated without recomputing them. When nil and
	// the policy needs PageRank, it is computed internally.
	PageRank []float64
	// PageRankOptions configure the internal PageRank run when needed.
	PageRankOptions pagerank.Options
	// Seed seeds the Random policy.
	Seed int64
}

// Select chooses opts.Count hubs from g according to the policy. Nodes are
// ranked by descending score, ties broken by ascending node id for
// determinism.
func Select(g *graph.Graph, opts Options) (*Set, error) {
	n := g.NumNodes()
	count := opts.Count
	if count < 0 {
		return nil, fmt.Errorf("hub: negative hub count %d", count)
	}
	if count > n {
		count = n
	}
	if count == 0 {
		return NewSet(nil), nil
	}

	if opts.Policy == Random {
		rng := rand.New(rand.NewSource(opts.Seed))
		perm := rng.Perm(n)
		hubs := make([]graph.NodeID, count)
		for i := 0; i < count; i++ {
			hubs[i] = graph.NodeID(perm[i])
		}
		return NewSet(hubs), nil
	}

	scores, err := policyScores(g, opts)
	if err != nil {
		return nil, err
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
	return NewSet(order[:count]), nil
}

// policyScores computes the per-node ranking score for deterministic policies.
func policyScores(g *graph.Graph, opts Options) ([]float64, error) {
	n := g.NumNodes()
	scores := make([]float64, n)
	needPR := opts.Policy == ExpectedUtility || opts.Policy == ByPageRank
	var pr []float64
	if needPR {
		pr = opts.PageRank
		if pr == nil {
			var err error
			pr, err = pagerank.Global(g, opts.PageRankOptions)
			if err != nil {
				return nil, err
			}
		}
		if len(pr) != n {
			return nil, fmt.Errorf("hub: PageRank vector has %d entries for %d nodes", len(pr), n)
		}
	}
	for u := 0; u < n; u++ {
		id := graph.NodeID(u)
		switch opts.Policy {
		case ExpectedUtility:
			scores[u] = pr[u] * float64(g.OutDegree(id))
		case ByPageRank:
			scores[u] = pr[u]
		case ByOutDegree:
			scores[u] = float64(g.OutDegree(id))
		case ByInDegree:
			scores[u] = float64(g.InDegree(id))
		default:
			return nil, fmt.Errorf("hub: unsupported policy %v", opts.Policy)
		}
	}
	return scores, nil
}

// SuggestHubCount implements the "automatic configuration" the paper lists as
// future work (Sect. 7): pick |H| so that the expected prime-subgraph size
// (roughly (|V|+|E|)/|H|, the working set of an online query for a non-hub
// query node) stays below targetWorkPerQuery. The result is clamped to
// [minHubs, |V|/2].
func SuggestHubCount(g *graph.Graph, targetWorkPerQuery int, minHubs int) int {
	if targetWorkPerQuery <= 0 {
		targetWorkPerQuery = 4096
	}
	if minHubs <= 0 {
		minHubs = 16
	}
	size := g.NumNodes() + g.NumEdges()
	count := size / targetWorkPerQuery
	if count < minHubs {
		count = minHubs
	}
	if max := g.NumNodes() / 2; count > max {
		count = max
	}
	return count
}
