// Command tradeoff demonstrates the incremental and accuracy-aware properties
// that give FastPPV its name: the same precomputed index answers queries at
// any accuracy/time trade-off chosen at query time, and the error of the
// current estimate is known without ever computing the exact PPV. The program
// compares three stopping policies on the same query workload:
//
//   - a fixed number of iterations (eta = 2, the paper's default),
//   - a target L1 error (stop as soon as phi <= 0.03),
//   - a per-query time budget.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"fastppv"
)

func main() {
	var (
		nodes = flag.Int("nodes", 30000, "number of nodes")
		deg   = flag.Int("deg", 6, "out-degree of every node")
		hubs  = flag.Int("hubs", 3000, "number of hub nodes to index")
		q     = flag.Int("queries", 20, "number of query nodes")
		seed  = flag.Int64("seed", 3, "generator seed")
	)
	flag.Parse()

	g := buildGraph(*nodes, *deg, *seed)
	fmt.Println(g.Stats())

	engine, err := fastppv.New(g, fastppv.Options{NumHubs: *hubs})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d hubs in %v\n\n", engine.OfflineStats().Hubs,
		engine.OfflineStats().Total.Round(time.Millisecond))

	rng := rand.New(rand.NewSource(*seed + 1))
	queries := make([]fastppv.NodeID, *q)
	for i := range queries {
		queries[i] = fastppv.NodeID(rng.Intn(*nodes))
	}

	policies := []struct {
		name string
		stop fastppv.StopCondition
	}{
		{"eta = 0 (prime PPV only)", fastppv.StopCondition{MaxIterations: 0}},
		{"eta = 2 (paper default)", fastppv.StopCondition{MaxIterations: 2}},
		{"target L1 error 0.03", fastppv.StopCondition{MaxIterations: -1, TargetL1Error: 0.03}},
		{"time budget 2ms", fastppv.StopCondition{MaxIterations: -1, TimeLimit: 2 * time.Millisecond}},
	}
	fmt.Printf("%-28s %14s %12s %12s %12s\n", "policy", "avg iterations", "avg phi", "avg L1 err", "avg time")
	for _, p := range policies {
		var (
			iterSum  int
			phiSum   float64
			trueSum  float64
			timeSum  time.Duration
			numExact int
		)
		for _, query := range queries {
			start := time.Now()
			res, err := engine.Query(query, p.stop)
			timeSum += time.Since(start)
			if err != nil {
				log.Fatal(err)
			}
			iterSum += res.Iterations
			phiSum += res.L1ErrorBound
			// Exact comparison on a subset to keep the demo fast.
			if numExact < 5 {
				exact, err := fastppv.ExactPPV(g, query, fastppv.DefaultAlpha)
				if err != nil {
					log.Fatal(err)
				}
				trueSum += exact.L1Distance(res.Estimate)
				numExact++
			}
		}
		n := float64(len(queries))
		fmt.Printf("%-28s %14.2f %12.4f %12.4f %12s\n",
			p.name, float64(iterSum)/n, phiSum/n, trueSum/float64(numExact),
			(timeSum / time.Duration(len(queries))).Round(time.Microsecond))
	}

	fmt.Println("\nper-iteration progress of a single query (accuracy-aware stopping):")
	qs, err := engine.NewQuery(queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  iter %d: phi = %.4f\n", 0, qs.L1ErrorBound())
	for i := 1; i <= 5 && !qs.Exhausted(); i++ {
		st := qs.Step()
		fmt.Printf("  iter %d: phi = %.4f (+%d hubs expanded, %.4f mass added, %v)\n",
			i, st.L1ErrorBound, st.HubsExpanded, st.MassAdded, st.Duration.Round(time.Microsecond))
	}
}

// buildGraph generates a random regular directed graph using the public API.
func buildGraph(nodes, deg int, seed int64) *fastppv.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := fastppv.NewBuilder(true)
	b.EnsureNodes(nodes)
	for u := 0; u < nodes; u++ {
		for d := 0; d < deg; d++ {
			v := fastppv.NodeID(rng.Intn(nodes))
			if v == fastppv.NodeID(u) {
				continue
			}
			b.MustAddEdge(fastppv.NodeID(u), v)
		}
	}
	return b.Finalize()
}
