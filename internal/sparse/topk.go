package sparse

import (
	"container/heap"
	"sync"

	"fastppv/internal/graph"
)

// topkHeapPool recycles the bounded min-heap used by TopK across queries so
// the serving render path does not allocate a fresh heap per response.
var topkHeapPool = sync.Pool{New: func() any { return new(entryMinHeap) }}

// TopK returns the k highest-scoring entries of v in descending score order
// (ties broken by ascending node id). It runs in O(len(v) log k), avoiding a
// full sort of potentially large vectors; the accuracy metrics of Sect. 6 only
// look at the top 10 nodes.
func (v Vector) TopK(k int) []Entry {
	if k <= 0 || len(v) == 0 {
		return nil
	}
	if k >= len(v) {
		return v.Entries()
	}
	hp := topkHeapPool.Get().(*entryMinHeap)
	h := (*hp)[:0]
	//lint:ordered the (score desc, node id asc) total order makes the selected k-set and its final ordering independent of visit order
	for id, s := range v {
		e := Entry{Node: id, Score: s}
		if len(h) < k {
			heap.Push(&h, e)
			continue
		}
		if entryLess(h[0], e) {
			h[0] = e
			heap.Fix(&h, 0)
		}
	}
	// Pop in ascending order, then reverse.
	out := make([]Entry, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Entry)
	}
	*hp = h[:0]
	topkHeapPool.Put(hp)
	return out
}

// TopKNodes returns only the node ids of the top k entries.
func (v Vector) TopKNodes(k int) []graph.NodeID {
	entries := v.TopK(k)
	out := make([]graph.NodeID, len(entries))
	for i, e := range entries {
		out[i] = e.Node
	}
	return out
}

// entryLess orders entries so that "smaller" means worse rank: lower score, or
// equal score with a larger node id.
func entryLess(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

// entryMinHeap is a min-heap over Entry keeping the k best entries seen so
// far: the root is the worst of the kept entries.
type entryMinHeap []Entry

func (h entryMinHeap) Len() int            { return len(h) }
func (h entryMinHeap) Less(i, j int) bool  { return entryLess(h[i], h[j]) }
func (h entryMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryMinHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *entryMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
