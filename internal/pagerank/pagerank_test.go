package pagerank

import (
	"math"
	"testing"

	"fastppv/internal/graph"
)

// cycleGraph builds a directed n-cycle, whose PageRank is uniform by symmetry.
func cycleGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(true)
	b.EnsureNodes(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Finalize()
}

func TestGlobalPageRankSumsToOne(t *testing.T) {
	g := cycleGraph(t, 10)
	pr, err := Global(g, Options{})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	var sum float64
	for _, s := range pr {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank sums to %v, want 1", sum)
	}
}

func TestGlobalPageRankUniformOnCycle(t *testing.T) {
	const n = 20
	g := cycleGraph(t, n)
	pr, err := Global(g, Options{})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	for i, s := range pr {
		if math.Abs(s-1.0/n) > 1e-9 {
			t.Errorf("node %d has score %v, want %v", i, s, 1.0/n)
		}
	}
}

func TestGlobalPageRankPrefersHighInDegree(t *testing.T) {
	// Star pointing at node 0: every other node links to 0, and 0 links back
	// to node 1 so it is not dangling.
	b := graph.NewBuilder(true)
	b.EnsureNodes(10)
	for i := 1; i < 10; i++ {
		b.MustAddEdge(graph.NodeID(i), 0)
	}
	b.MustAddEdge(0, 1)
	g := b.Finalize()
	pr, err := Global(g, Options{})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	for i := 2; i < 10; i++ {
		if pr[0] <= pr[i] {
			t.Errorf("hub node 0 (%.4f) should outrank leaf %d (%.4f)", pr[0], i, pr[i])
		}
	}
}

func TestGlobalPageRankHandlesDanglingNodes(t *testing.T) {
	// 0 -> 1, 1 has no out-edges.
	b := graph.NewBuilder(true)
	b.EnsureNodes(2)
	b.MustAddEdge(0, 1)
	g := b.Finalize()
	pr, err := Global(g, Options{})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	if math.Abs(pr[0]+pr[1]-1) > 1e-9 {
		t.Errorf("PageRank with dangling node sums to %v, want 1", pr[0]+pr[1])
	}
	if pr[1] <= pr[0] {
		t.Errorf("node 1 receives node 0's mass and should outrank it: %v vs %v", pr[1], pr[0])
	}
}

func TestGlobalOptionValidation(t *testing.T) {
	g := cycleGraph(t, 4)
	if _, err := Global(g, Options{Alpha: 1.2}); err == nil {
		t.Error("alpha > 1 should be rejected")
	}
	if _, err := Global(g, Options{Alpha: -0.1}); err == nil {
		t.Error("negative alpha should be rejected")
	}
	if _, err := Global(g, Options{Tolerance: -1}); err == nil {
		t.Error("negative tolerance should be rejected")
	}
	if _, err := Global(g, Options{MaxIterations: -1}); err == nil {
		t.Error("negative max iterations should be rejected")
	}
	if out, err := Global(graph.NewBuilder(true).Finalize(), Options{}); err != nil || out != nil {
		t.Errorf("empty graph should return nil, nil; got %v, %v", out, err)
	}
}
