package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := smallDirected(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	assertSameGraph(t, g, got)
}

func TestEdgeListRoundTripUndirected(t *testing.T) {
	b := NewBuilder(false)
	b.EnsureNodes(5)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(0, 4)
	g := b.Finalize()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if got.Directed() {
		t.Fatal("round-tripped graph lost its undirectedness")
	}
	assertSameGraph(t, g, got)
}

func TestReadEdgeListHeaderless(t *testing.T) {
	in := "# SNAP-style dump\n0 1\n1 2\n4 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 5 {
		t.Errorf("NumNodes = %d, want 5 (max id + 1)", g.NumNodes())
	}
	if !g.Directed() {
		t.Error("headerless edge lists should default to directed")
	}
	if !g.HasEdge(4, 0) {
		t.Error("edge 4->0 missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":          "nodes x directed\n0 1\n",
		"bad kind":            "nodes 3 sideways\n0 1\n",
		"negative node":       "0 -1\n",
		"non-numeric":         "a b\n",
		"too few fields":      "3\n",
		"node beyond declare": "nodes 2 directed\n0 5\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	b := NewBuilder(true)
	x := b.AddLabeledNode("x")
	y := b.AddLabeledNode("y")
	z := b.AddLabeledNode("z")
	b.MustAddEdge(x, y)
	b.MustAddEdge(y, z)
	b.MustAddEdge(z, x)
	g := b.Finalize()

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertSameGraph(t, g, got)
	if got.Label(y) != "y" {
		t.Errorf("label of y = %q, want %q", got.Label(y), "y")
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph"))); err == nil {
		t.Error("ReadBinary should fail on garbage input")
	}
	// Valid header but truncated body.
	g := smallDirected(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	trunc := buf.Bytes()[:buf.Len()-6]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("ReadBinary should fail on truncated input")
	}
}

func TestFileRoundTrips(t *testing.T) {
	dir := t.TempDir()
	g := smallDirected(t)

	edgePath := filepath.Join(dir, "g.txt")
	if err := SaveEdgeListFile(edgePath, g); err != nil {
		t.Fatalf("SaveEdgeListFile: %v", err)
	}
	fromText, err := LoadEdgeListFile(edgePath)
	if err != nil {
		t.Fatalf("LoadEdgeListFile: %v", err)
	}
	assertSameGraph(t, g, fromText)

	binPath := filepath.Join(dir, "g.bin")
	if err := SaveBinaryFile(binPath, g); err != nil {
		t.Fatalf("SaveBinaryFile: %v", err)
	}
	fromBin, err := LoadBinaryFile(binPath)
	if err != nil {
		t.Fatalf("LoadBinaryFile: %v", err)
	}
	assertSameGraph(t, g, fromBin)

	if _, err := LoadEdgeListFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

// assertSameGraph checks that two graphs have identical structure.
func assertSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", got.NumNodes(), want.NumNodes())
	}
	if got.Directed() != want.Directed() {
		t.Fatalf("Directed = %v, want %v", got.Directed(), want.Directed())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", got.NumEdges(), want.NumEdges())
	}
	for u := 0; u < want.NumNodes(); u++ {
		a, b := want.OutNeighbors(NodeID(u)), got.OutNeighbors(NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("node %d: out-degree %d, want %d", u, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d neighbour %d: got %d, want %d", u, i, b[i], a[i])
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
