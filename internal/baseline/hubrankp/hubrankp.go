// Package hubrankp implements the HubRankP baseline of the paper's evaluation
// (Sect. 6, Baselines): bookmark-coloring style push computation of an
// approximate PPV (Berkhin's BCA), accelerated by a precomputed index of hub
// PPVs chosen by a benefit model. Whenever the push frontier reaches an
// indexed hub, the hub's precomputed PPV is spliced in instead of continuing
// the push below it.
//
// The benefit model of Chakrabarti et al. estimates how much online work an
// indexed hub saves for the expected query workload. Following the paper's
// experimental setup ("we assume a uniformly distributed query log"), the
// benefit of a node is its probability of being touched by a push from a
// uniformly random query, which is proportional to its global PageRank; hubs
// are therefore the top-PageRank nodes weighted by their out-degree fan-out
// cost. The same dangling-node absorption convention as the rest of the
// repository is used, so all methods approximate the same exact PPV.
package hubrankp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fastppv/internal/graph"
	"fastppv/internal/pagerank"
	"fastppv/internal/sparse"
)

// Options configure a HubRankP instance.
type Options struct {
	// Alpha is the teleporting probability; zero means pagerank.DefaultAlpha.
	Alpha float64
	// NumHubs is the number of hub PPVs precomputed offline.
	NumHubs int
	// Push is the online residual threshold (the paper's `push` parameter):
	// push processing stops when no node holds residual above Push. Smaller
	// is more accurate and slower. Zero means 1e-4.
	Push float64
	// OfflinePush is the residual threshold used when precomputing hub PPVs;
	// zero means Push/10.
	OfflinePush float64
	// Clip discards stored hub PPV entries below this score; zero means 1e-4,
	// negative disables clipping.
	Clip float64
	// PageRank optionally supplies precomputed global PageRank scores for the
	// benefit model.
	PageRank []float64
	// MaxPushes caps the number of push operations per PPV computation as a
	// safety valve. Zero means 50 million.
	MaxPushes int
}

func (o Options) withDefaults() (Options, error) {
	if o.Alpha == 0 {
		o.Alpha = pagerank.DefaultAlpha
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("hubrankp: alpha %v outside (0,1)", o.Alpha)
	}
	if o.Push == 0 {
		o.Push = 1e-4
	}
	if o.Push < 0 {
		return o, errors.New("hubrankp: negative Push threshold")
	}
	if o.OfflinePush == 0 {
		o.OfflinePush = o.Push / 10
	}
	if o.Clip == 0 {
		o.Clip = 1e-4
	}
	if o.Clip < 0 {
		o.Clip = 0
	}
	if o.NumHubs < 0 {
		return o, errors.New("hubrankp: negative NumHubs")
	}
	if o.MaxPushes == 0 {
		o.MaxPushes = 50_000_000
	}
	return o, nil
}

// OfflineStats reports the cost of Precompute.
type OfflineStats struct {
	Hubs         int
	Total        time.Duration
	IndexBytes   int64
	IndexEntries int64
}

// Ranker is a HubRankP instance bound to a graph. Create it with New, call
// Precompute once, then Query for each query node. It is safe for concurrent
// queries after Precompute.
type Ranker struct {
	g       *graph.Graph
	opts    Options
	hubPPVs map[graph.NodeID]sparse.Vector
	offline OfflineStats
}

// New creates a HubRankP ranker over g.
func New(g *graph.Graph, opts Options) (*Ranker, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("hubrankp: empty graph")
	}
	return &Ranker{g: g, opts: opts, hubPPVs: make(map[graph.NodeID]sparse.Vector)}, nil
}

// OfflineStats returns the statistics of the last Precompute run.
func (r *Ranker) OfflineStats() OfflineStats { return r.offline }

// Hubs returns the indexed hub nodes.
func (r *Ranker) Hubs() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(r.hubPPVs))
	for h := range r.hubPPVs {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Precompute selects hubs by the benefit model and precomputes their PPVs
// with the offline push threshold. Hubs are processed in descending benefit
// order so that later hubs can splice in the PPVs of earlier ones, which is
// what makes HubRankP's offline phase cheaper than independent pushes (but
// still substantially more expensive than FastPPV's prime PPVs, since each
// hub PPV spans its whole reachable neighbourhood).
func (r *Ranker) Precompute() error {
	start := time.Now()
	pr := r.opts.PageRank
	if pr == nil {
		var err error
		pr, err = pagerank.Global(r.g, pagerank.Options{Alpha: r.opts.Alpha})
		if err != nil {
			return err
		}
	}
	n := r.g.NumNodes()
	if len(pr) != n {
		return fmt.Errorf("hubrankp: PageRank vector has %d entries for %d nodes", len(pr), n)
	}
	numHubs := r.opts.NumHubs
	if numHubs > n {
		numHubs = n
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	// Benefit of indexing v under a uniform query log: how often pushes touch
	// v (PageRank) times the fan-out work saved when they do (out-degree).
	benefit := func(v graph.NodeID) float64 {
		return pr[v] * float64(1+r.g.OutDegree(v))
	}
	sort.Slice(order, func(i, j int) bool {
		bi, bj := benefit(order[i]), benefit(order[j])
		if bi != bj {
			return bi > bj
		}
		return order[i] < order[j]
	})

	r.hubPPVs = make(map[graph.NodeID]sparse.Vector, numHubs)
	for _, h := range order[:numHubs] {
		ppv := r.push(h, r.opts.OfflinePush)
		if r.opts.Clip > 0 {
			ppv.Clip(r.opts.Clip)
		}
		r.hubPPVs[h] = ppv
	}
	r.offline = OfflineStats{
		Hubs:  numHubs,
		Total: time.Since(start),
	}
	for _, v := range r.hubPPVs {
		r.offline.IndexEntries += int64(v.NonZeros())
		r.offline.IndexBytes += 8 + int64(v.NonZeros())*12
	}
	return nil
}

// Result is the outcome of one online query.
type Result struct {
	Estimate sparse.Vector
	// Pushes is the number of push operations performed online.
	Pushes int
	// HubHits is the number of times a precomputed hub PPV was spliced in.
	HubHits  int
	Duration time.Duration
}

// Query computes an approximate PPV for q using bookmark-coloring push with
// hub reuse at the online threshold.
func (r *Ranker) Query(q graph.NodeID) (*Result, error) {
	if !r.g.Valid(q) {
		return nil, fmt.Errorf("hubrankp: %w: query %d", graph.ErrNodeOutOfRange, q)
	}
	start := time.Now()
	res := &Result{}
	res.Estimate = r.pushWithStats(q, r.opts.Push, res)
	res.Duration = time.Since(start)
	return res, nil
}

// push runs the bookmark-coloring algorithm from src down to the given
// residual threshold. Indexed hub PPVs are spliced in whenever the push
// frontier reaches a hub other than src; during offline precomputation the
// hubs indexed so far (higher-benefit ones) are spliced in the same way.
func (r *Ranker) push(src graph.NodeID, threshold float64) sparse.Vector {
	return r.pushWithStats(src, threshold, nil)
}

func (r *Ranker) pushWithStats(src graph.NodeID, threshold float64, stats *Result) sparse.Vector {
	alpha := r.opts.Alpha
	estimate := sparse.New(64)
	residual := map[graph.NodeID]float64{src: 1}
	queue := []graph.NodeID{src}
	inQueue := map[graph.NodeID]bool{src: true}
	pushes := 0

	// FIFO processing keeps residual batched, bounding the number of pushes
	// even for small thresholds.
	for head := 0; head < len(queue) && pushes < r.opts.MaxPushes; head++ {
		u := queue[head]
		inQueue[u] = false
		mass := residual[u]
		if mass < threshold {
			continue // below the push threshold; keep as residual
		}
		delete(residual, u)
		pushes++

		if u != src {
			if hubPPV, ok := r.hubPPVs[u]; ok {
				// Splice in the hub's precomputed PPV for the whole walk
				// continuing from u.
				estimate.AddScaled(hubPPV, mass)
				if stats != nil {
					stats.HubHits++
				}
				continue
			}
		}
		estimate.Add(u, alpha*mass)
		deg := r.g.OutDegree(u)
		if deg == 0 {
			continue // absorbed at dangling node
		}
		share := (1 - alpha) * mass / float64(deg)
		for _, v := range r.g.OutNeighbors(u) {
			residual[v] += share
			if !inQueue[v] && residual[v] >= threshold {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}
	// Unpushed residual mass is settled locally: the walk is at u and stops
	// there with probability alpha; the continuation is dropped, which is the
	// approximation error of the method.
	for u, mass := range residual {
		estimate.Add(u, alpha*mass)
	}
	if stats != nil {
		stats.Pushes = pushes
	}
	return estimate
}
