// Command ppvlog inspects and replays fastppvd's persistent query log
// (internal/querylog): the operator-side complement of -query-log.
//
// Summary mode aggregates the log offline — record counts by mode and
// outcome, a latency percentile summary, the frequency-decayed top sources
// (the exact ranking startup warming uses), and the slow/degraded records
// with their retained trace ids:
//
//	ppvlog -log queries.qlog
//	ppvlog -log queries.qlog -top 50 -slow-ms 100 -json
//
// Replay mode re-issues the logged queries, in order, against a live daemon —
// rebuilding its caches from yesterday's workload, or reproducing the traffic
// that preceded an incident:
//
//	ppvlog -log queries.qlog -replay -addr http://localhost:8080 -limit 10000
//
// Both modes read the previous generation (<path>.1) before the active file
// and tolerate a torn tail, exactly like the daemon's replay-on-open.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"fastppv/internal/benchfmt"
	"fastppv/internal/graph"
	"fastppv/internal/querylog"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ppvlog: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppvlog", flag.ExitOnError)
	logPath := fs.String("log", "", "query log to read (required)")
	topN := fs.Int("top", 20, "top sources to print, ranked by frequency-decayed weight")
	slowMS := fs.Float64("slow-ms", 250, "latency past which a record counts as slow")
	show := fs.Int("n", 10, "slow/degraded records to print, slowest first")
	jsonOut := fs.Bool("json", false, "print the summary as JSON")
	replay := fs.Bool("replay", false, "re-issue the logged queries against a live daemon instead of summarizing")
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL for -replay")
	limit := fs.Int("limit", 0, "cap on replayed queries (0 = all)")
	fs.Parse(args)

	if *logPath == "" {
		return fmt.Errorf("-log is required")
	}
	if *replay {
		return replayLog(*logPath, *addr, *limit)
	}
	return summarize(*logPath, *topN, *slowMS, *show, *jsonOut)
}

// sourceWeight is one entry of the top-sources ranking.
type sourceWeight struct {
	Node  int     `json:"node"`
	Count int     `json:"count"`
	Share float64 `json:"decayed_share"`
}

// flagged is one slow or degraded record, surfaced with its trace id.
type flagged struct {
	Node      int     `json:"node"`
	LatencyMS float64 `json:"latency_ms"`
	Mode      string  `json:"mode"`
	Slow      bool    `json:"slow,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	Bound     float64 `json:"l1_error_bound"`
	TraceID   string  `json:"trace_id,omitempty"`
}

// summary is the aggregate view of one query log.
type summary struct {
	Records    int                  `json:"records"`
	Engine     int                  `json:"engine"`
	Router     int                  `json:"router"`
	CacheHits  int                  `json:"cache_hits"`
	Coalesced  int                  `json:"coalesced"`
	Degraded   int                  `json:"degraded"`
	Slow       int                  `json:"slow"`
	Traced     int                  `json:"traced"`
	Epochs     int                  `json:"epochs"`
	LatencyMS  benchfmt.Percentiles `json:"latency_ms"`
	ErrorBound benchfmt.Percentiles `json:"error_bound"`
	TopSources []sourceWeight       `json:"top_sources"`
	Flagged    []flagged            `json:"flagged"`
}

func modeName(m uint8) string {
	if m == querylog.ModeRouter {
		return "router"
	}
	return "engine"
}

func summarize(path string, topN int, slowMS float64, show int, jsonOut bool) error {
	var (
		sum     summary
		lats    []float64
		bounds  []float64
		counts  = map[graph.NodeID]int{}
		epochs  = map[uint64]struct{}{}
		agg     = querylog.NewSourceAggregator(0)
		flags   []flagged
		slowThr = slowMS
	)
	n, err := querylog.Replay(path, func(r querylog.Record) error {
		sum.Records++
		latMS := float64(r.LatencyUS) / 1e3
		lats = append(lats, latMS)
		bounds = append(bounds, r.Bound)
		counts[r.Source]++
		epochs[r.Epoch] = struct{}{}
		agg.Add(r.Source)
		if r.Mode == querylog.ModeRouter {
			sum.Router++
		} else {
			sum.Engine++
		}
		if r.Flags&querylog.FlagCacheHit != 0 {
			sum.CacheHits++
		}
		if r.Flags&querylog.FlagCoalesced != 0 {
			sum.Coalesced++
		}
		if r.Flags&querylog.FlagTraced != 0 {
			sum.Traced++
		}
		degraded := r.Flags&querylog.FlagDegraded != 0
		slow := r.Flags&querylog.FlagSlow != 0 || (slowThr > 0 && latMS > slowThr)
		if degraded {
			sum.Degraded++
		}
		if slow {
			sum.Slow++
		}
		if slow || degraded {
			flags = append(flags, flagged{
				Node: int(r.Source), LatencyMS: latMS, Mode: modeName(r.Mode),
				Slow: slow, Degraded: degraded, Bound: r.Bound, TraceID: r.TraceID,
			})
		}
		return nil
	})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no records in %s", path)
	}
	sum.Epochs = len(epochs)
	sum.LatencyMS = benchfmt.Summarize(lats)
	sum.ErrorBound = benchfmt.Summarize(bounds)
	for _, src := range agg.TopSources(topN) {
		sum.TopSources = append(sum.TopSources, sourceWeight{
			Node: int(src), Count: counts[src],
			Share: float64(counts[src]) / float64(sum.Records),
		})
	}
	sort.Slice(flags, func(i, j int) bool { return flags[i].LatencyMS > flags[j].LatencyMS })
	if len(flags) > show {
		flags = flags[:show]
	}
	sum.Flagged = flags

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	fmt.Printf("%s: %d records (%d engine, %d router), %d epoch(s)\n",
		path, sum.Records, sum.Engine, sum.Router, sum.Epochs)
	fmt.Printf("outcomes: %d cache hits, %d coalesced, %d degraded, %d slow, %d traced\n",
		sum.CacheHits, sum.Coalesced, sum.Degraded, sum.Slow, sum.Traced)
	fmt.Printf("latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		sum.LatencyMS.P50, sum.LatencyMS.P90, sum.LatencyMS.P99, sum.LatencyMS.Max)
	fmt.Printf("error bound: p50=%.4g p99=%.4g max=%.4g\n",
		sum.ErrorBound.P50, sum.ErrorBound.P99, sum.ErrorBound.Max)
	fmt.Printf("top %d sources (decay-ranked, the warming order):\n", len(sum.TopSources))
	for i, s := range sum.TopSources {
		fmt.Printf("  %2d. node %-8d %6d queries  %5.1f%%\n", i+1, s.Node, s.Count, 100*s.Share)
	}
	if len(sum.Flagged) > 0 {
		fmt.Printf("slow/degraded (slowest %d):\n", len(sum.Flagged))
		for _, f := range sum.Flagged {
			kind := ""
			if f.Slow {
				kind += "slow "
			}
			if f.Degraded {
				kind += "degraded "
			}
			tid := f.TraceID
			if tid == "" {
				tid = "-"
			}
			fmt.Printf("  node %-8d %9.3fms  %-7s %sbound=%.4g trace=%s\n",
				f.Node, f.LatencyMS, f.Mode, kind, f.Bound, tid)
		}
	}
	return nil
}

// replayLog re-issues the logged queries in order against a live daemon.
func replayLog(path, addr string, limit int) error {
	client := &http.Client{Timeout: 30 * time.Second}
	var sent, failed int
	var lats []float64
	start := time.Now()
	_, err := querylog.Replay(path, func(r querylog.Record) error {
		if limit > 0 && sent >= limit {
			return nil
		}
		sent++
		url := fmt.Sprintf("%s/v1/ppv?node=%d&eta=%d&top=%d", addr, r.Source, r.Eta, r.Top)
		q0 := time.Now()
		resp, err := client.Get(url)
		if err != nil {
			failed++
			return nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			failed++
			return nil
		}
		lats = append(lats, float64(time.Since(q0))/1e6)
		return nil
	})
	if err != nil {
		return err
	}
	if sent == 0 {
		return fmt.Errorf("no records in %s", path)
	}
	wall := time.Since(start).Seconds()
	p := benchfmt.Summarize(lats)
	fmt.Printf("replayed %d queries against %s in %.2fs (%.0f qps), %d failed\n",
		sent, addr, wall, float64(len(lats))/wall, failed)
	fmt.Printf("latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n", p.P50, p.P90, p.P99, p.Max)
	return nil
}
