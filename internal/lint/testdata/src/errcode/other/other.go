// Package other is outside internal/server, where http.Error stays legal.
package other

import "net/http"

func Fine(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError)
}
