package ppvindex

import (
	"os"
	"path/filepath"
	"testing"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

func sampleVectors() map[graph.NodeID]sparse.Vector {
	return map[graph.NodeID]sparse.Vector{
		3:  {1: 0.5, 2: 0.25, 3: 0.15},
		7:  {7: 0.15, 9: 0.01},
		11: {0: 1e-3},
	}
}

func TestMemIndexRoundTrip(t *testing.T) {
	idx := NewMemIndex()
	for h, v := range sampleVectors() {
		if err := idx.Put(h, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if idx.Len() != 3 {
		t.Fatalf("Len = %d, want 3", idx.Len())
	}
	v, ok, err := idx.Get(3)
	if err != nil || !ok {
		t.Fatalf("Get(3) = %v, %v, %v", v, ok, err)
	}
	if v.Get(2) != 0.25 {
		t.Errorf("Get(3)[2] = %v, want 0.25", v.Get(2))
	}
	if _, ok, _ := idx.Get(99); ok {
		t.Error("Get(99) should miss")
	}
	if !idx.Has(7) || idx.Has(8) {
		t.Error("Has results wrong")
	}
	hubs := idx.Hubs()
	if len(hubs) != 3 || hubs[0] != 3 || hubs[2] != 11 {
		t.Errorf("Hubs = %v, want [3 7 11]", hubs)
	}
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	stats := StatsOf(idx)
	if stats.Hubs != 3 || stats.TotalEntries != 6 {
		t.Errorf("StatsOf = %+v, want 3 hubs and 6 entries", stats)
	}
	if stats.String() == "" {
		t.Error("Stats.String should not be empty")
	}
}

func TestMemIndexPutReplaces(t *testing.T) {
	idx := NewMemIndex()
	_ = idx.Put(1, sparse.Vector{2: 0.5})
	_ = idx.Put(1, sparse.Vector{3: 0.25})
	v, _, _ := idx.Get(1)
	if v.Get(2) != 0 || v.Get(3) != 0.25 {
		t.Errorf("Put should replace the previous vector, got %v", v)
	}
	if idx.Len() != 1 {
		t.Errorf("Len = %d, want 1", idx.Len())
	}
}

func TestDiskIndexRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatalf("CreateDisk: %v", err)
	}
	want := sampleVectors()
	for h, v := range want {
		if err := w.Put(h, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close should be a no-op, got %v", err)
	}
	if err := w.Put(1, sparse.Vector{1: 1}); err == nil {
		t.Error("Put after Close should fail")
	}

	idx, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer idx.Close()
	if idx.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(want))
	}
	for h, wantVec := range want {
		got, ok, err := idx.Get(h)
		if err != nil || !ok {
			t.Fatalf("Get(%d) = %v, %v, %v", h, got, ok, err)
		}
		if d := got.L1Distance(wantVec); d > 1e-12 {
			t.Errorf("Get(%d) differs from stored vector by %v", h, d)
		}
	}
	if _, ok, _ := idx.Get(12345); ok {
		t.Error("Get on a missing hub should miss")
	}
	if !idx.Has(7) || idx.Has(5) {
		t.Error("Has results wrong")
	}
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	if idx.Reads() != int64(len(want)) {
		t.Errorf("Reads = %d, want %d", idx.Reads(), len(want))
	}
	hubs := idx.Hubs()
	if len(hubs) != 3 || hubs[0] != 3 {
		t.Errorf("Hubs = %v", hubs)
	}
}

func TestOpenDiskRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "missing.ppv")
	if _, err := OpenDisk(missing); err == nil {
		t.Error("OpenDisk on a missing file should fail")
	}
	garbage := filepath.Join(dir, "garbage.ppv")
	if err := writeFile(garbage, []byte("this is not an index file at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(garbage); err == nil {
		t.Error("OpenDisk on garbage should fail")
	}
	tiny := filepath.Join(dir, "tiny.ppv")
	if err := writeFile(tiny, []byte("xx")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(tiny); err == nil {
		t.Error("OpenDisk on a too-small file should fail")
	}
}

func TestDiskIndexEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk on an empty index: %v", err)
	}
	defer idx.Close()
	if idx.Len() != 0 {
		t.Errorf("Len = %d, want 0", idx.Len())
	}
	if _, ok, _ := idx.Get(1); ok {
		t.Error("Get on an empty index should miss")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
