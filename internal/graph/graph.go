// Package graph provides the directed/undirected graph substrate used by the
// FastPPV reproduction: a compact adjacency representation (CSR), an
// incremental builder, text and binary serialization, induced subgraphs and
// edge sampling.
//
// Node identifiers are dense int32 indices in [0, NumNodes). Optional string
// labels can be attached to nodes, which the synthetic dataset generators use
// to mark node kinds (author/paper/venue, user ...).
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node. IDs are dense indices in [0, Graph.NumNodes()).
type NodeID int32

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// Edge is a single directed edge. For undirected graphs both orientations are
// materialized in the adjacency structure but an Edge value keeps the original
// orientation as added to the Builder.
type Edge struct {
	From NodeID
	To   NodeID
}

// Graph is an immutable graph in compressed sparse row (CSR) layout.
// Construct one with a Builder, with the I/O readers, or with the generators
// in internal/gen. The zero value is an empty graph.
//
// A Graph is safe for concurrent readers; it is never mutated after Finalize.
type Graph struct {
	directed bool

	// CSR over out-edges: the out-neighbours of node u are
	// outTargets[outOffsets[u]:outOffsets[u+1]].
	outOffsets []int64
	outTargets []NodeID

	// In-degrees are kept for policy computations (e.g. in-degree hub
	// selection). Full in-adjacency is built lazily on demand.
	inDegree []int32

	// inOffsets/inTargets form the reverse CSR; nil until BuildReverse or
	// the first call to InNeighbors.
	inOffsets []int64
	inTargets []NodeID

	labels       []string
	labelToNode  map[string]NodeID
	haveLabelIdx bool
}

// ErrNodeOutOfRange reports a node identifier outside [0, NumNodes).
var ErrNodeOutOfRange = errors.New("graph: node id out of range")

// Directed reports whether the graph is directed. In an undirected graph every
// edge {u,v} appears as both u->v and v->u in the adjacency structure.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if len(g.outOffsets) == 0 {
		return 0
	}
	return len(g.outOffsets) - 1
}

// NumEdges returns the number of stored arcs. For an undirected graph this is
// twice the number of logical edges (each edge is stored in both directions).
func (g *Graph) NumEdges() int { return len(g.outTargets) }

// NumLogicalEdges returns the number of edges as a user would count them:
// arcs for a directed graph, unordered pairs for an undirected graph.
func (g *Graph) NumLogicalEdges() int {
	if g.directed {
		return g.NumEdges()
	}
	return g.NumEdges() / 2
}

// Valid reports whether id addresses a node of g.
func (g *Graph) Valid(id NodeID) bool { return id >= 0 && int(id) < g.NumNodes() }

// OutDegree returns the out-degree of u. It panics if u is out of range.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outOffsets[u+1] - g.outOffsets[u])
}

// InDegree returns the in-degree of u. It panics if u is out of range.
func (g *Graph) InDegree(u NodeID) int { return int(g.inDegree[u]) }

// OutNeighbors returns the out-neighbours of u as a shared slice. Callers must
// not modify the returned slice.
func (g *Graph) OutNeighbors(u NodeID) []NodeID {
	return g.outTargets[g.outOffsets[u]:g.outOffsets[u+1]]
}

// InNeighbors returns the in-neighbours of u as a shared slice, building the
// reverse adjacency on first use. Callers must not modify the returned slice.
// InNeighbors is not safe to call concurrently with itself until the reverse
// CSR exists; call BuildReverse first if concurrent readers need it.
func (g *Graph) InNeighbors(u NodeID) []NodeID {
	if g.inOffsets == nil {
		g.BuildReverse()
	}
	return g.inTargets[g.inOffsets[u]:g.inOffsets[u+1]]
}

// BuildReverse materializes the reverse (in-edge) CSR. It is idempotent.
func (g *Graph) BuildReverse() {
	if g.inOffsets != nil {
		return
	}
	n := g.NumNodes()
	offsets := make([]int64, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + int64(g.inDegree[u])
	}
	targets := make([]NodeID, len(g.outTargets))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(NodeID(u)) {
			targets[cursor[v]] = NodeID(u)
			cursor[v]++
		}
	}
	g.inOffsets = offsets
	g.inTargets = targets
}

// Label returns the label attached to u, or the empty string if the graph has
// no labels.
func (g *Graph) Label(u NodeID) string {
	if int(u) >= len(g.labels) {
		return ""
	}
	return g.labels[u]
}

// HasLabels reports whether any node label is attached to the graph.
func (g *Graph) HasLabels() bool { return len(g.labels) > 0 }

// NodeByLabel returns the node with the given label, or InvalidNode when the
// label is unknown. The label index is built on first use.
func (g *Graph) NodeByLabel(label string) NodeID {
	if !g.haveLabelIdx {
		g.labelToNode = make(map[string]NodeID, len(g.labels))
		for i, l := range g.labels {
			if l != "" {
				g.labelToNode[l] = NodeID(i)
			}
		}
		g.haveLabelIdx = true
	}
	if id, ok := g.labelToNode[label]; ok {
		return id
	}
	return InvalidNode
}

// Edges iterates over every stored arc in source order and calls fn for each;
// iteration stops early when fn returns false.
func (g *Graph) Edges(fn func(Edge) bool) {
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(NodeID(u)) {
			if !fn(Edge{From: NodeID(u), To: v}) {
				return
			}
		}
	}
}

// EdgeList returns all stored arcs. For undirected graphs every logical edge
// appears twice (once per orientation).
func (g *Graph) EdgeList() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	g.Edges(func(e Edge) bool {
		edges = append(edges, e)
		return true
	})
	return edges
}

// HasEdge reports whether the arc u->v is present. It runs in O(OutDegree(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.Valid(u) || !g.Valid(v) {
		return false
	}
	for _, w := range g.OutNeighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// DanglingNodes returns the nodes with no out-edges. Random-walk based
// algorithms treat these specially (the surfer teleports).
func (g *Graph) DanglingNodes() []NodeID {
	var out []NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if g.OutDegree(NodeID(u)) == 0 {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// MaxOutDegree returns the largest out-degree in the graph, or 0 for an empty
// graph.
func (g *Graph) MaxOutDegree() int {
	max := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.OutDegree(NodeID(u)); d > max {
			max = d
		}
	}
	return max
}

// Validate performs internal consistency checks and returns a descriptive
// error when the CSR structure is corrupt. It is primarily used by tests and
// by the binary reader.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.outOffsets) != 0 && len(g.outOffsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d does not match %d nodes", len(g.outOffsets), n)
	}
	if n > 0 && g.outOffsets[0] != 0 {
		return errors.New("graph: first offset is not zero")
	}
	for u := 0; u < n; u++ {
		if g.outOffsets[u+1] < g.outOffsets[u] {
			return fmt.Errorf("graph: offsets not monotone at node %d", u)
		}
	}
	if n > 0 && g.outOffsets[n] != int64(len(g.outTargets)) {
		return fmt.Errorf("graph: last offset %d does not match %d targets", g.outOffsets[n], len(g.outTargets))
	}
	for _, v := range g.outTargets {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("graph: target %d out of range [0,%d)", v, n)
		}
	}
	if len(g.inDegree) != n {
		return fmt.Errorf("graph: in-degree length %d does not match %d nodes", len(g.inDegree), n)
	}
	var totalIn int64
	for _, d := range g.inDegree {
		if d < 0 {
			return errors.New("graph: negative in-degree")
		}
		totalIn += int64(d)
	}
	if totalIn != int64(len(g.outTargets)) {
		return fmt.Errorf("graph: in-degree sum %d does not match %d arcs", totalIn, len(g.outTargets))
	}
	if len(g.labels) != 0 && len(g.labels) != n {
		return fmt.Errorf("graph: labels length %d does not match %d nodes", len(g.labels), n)
	}
	return nil
}

// Stats summarizes a graph for logging and experiment reports.
type Stats struct {
	Nodes        int
	Arcs         int
	LogicalEdges int
	Directed     bool
	MaxOutDegree int
	Dangling     int
}

// Stats computes summary statistics of the graph.
func (g *Graph) Stats() Stats {
	return Stats{
		Nodes:        g.NumNodes(),
		Arcs:         g.NumEdges(),
		LogicalEdges: g.NumLogicalEdges(),
		Directed:     g.directed,
		MaxOutDegree: g.MaxOutDegree(),
		Dangling:     len(g.DanglingNodes()),
	}
}

// String implements fmt.Stringer with a short human readable summary.
func (s Stats) String() string {
	kind := "undirected"
	if s.Directed {
		kind = "directed"
	}
	return fmt.Sprintf("%s graph: %d nodes, %d edges (%d arcs), max out-degree %d, %d dangling",
		kind, s.Nodes, s.LogicalEdges, s.Arcs, s.MaxOutDegree, s.Dangling)
}
