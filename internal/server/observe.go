// observe.go is the always-on side of query observability: where PR 6's
// ?trace=1 produced a trace only when the caller asked up front, the capturer
// here retains traces after the fact — every computed query is considered,
// and its per-iteration spans are kept when it was slow (over a configurable
// threshold), ended degraded, or landed on the sampling cadence. Retained
// traces live in a bounded lock-free ring buffer served by GET /v1/debug/slow
// and GET /v1/debug/trace/{id}, so the trace for last minute's p99 spike is
// retrievable without anyone having passed ?trace=1. Completed queries are
// additionally appended to the persistent query log (internal/querylog) when
// one is configured, which is what startup cache warming replays.
package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fastppv/internal/api"
	"fastppv/internal/cluster"
	"fastppv/internal/graph"
	"fastppv/internal/querylog"
)

// RetainedTrace is one trace kept by the always-on capturer: the same span
// data a ?trace=1 response carries, plus why it was retained.
type RetainedTrace struct {
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
	Node    int       `json:"node"`
	Eta     int       `json:"eta"`
	// Mode is "engine" or "router".
	Mode       string  `json:"mode"`
	DurationMS float64 `json:"duration_ms"`
	// Slow, Degraded, Sampled and Explicit say why the trace was kept; more
	// than one may be set. Explicit marks a ?trace=1 request (retained too,
	// so the debug surface is a superset of on-demand tracing).
	Slow         bool        `json:"slow,omitempty"`
	Degraded     bool        `json:"degraded,omitempty"`
	Sampled      bool        `json:"sampled,omitempty"`
	Explicit     bool        `json:"explicit,omitempty"`
	L1ErrorBound float64     `json:"l1_error_bound"`
	Iterations   []TraceSpan `json:"iterations"`

	seq uint64
}

// traceRing is a bounded lock-free ring of retained traces: add is two atomic
// operations (a sequence fetch-add and a slot store), eviction is implicit —
// the oldest trace is overwritten once the ring wraps — and readers snapshot
// whatever is resident without blocking writers.
type traceRing struct {
	slots []atomic.Pointer[RetainedTrace]
	seq   atomic.Uint64
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{slots: make([]atomic.Pointer[RetainedTrace], capacity)}
}

func (r *traceRing) add(t *RetainedTrace) {
	t.seq = r.seq.Add(1)
	r.slots[int(t.seq%uint64(len(r.slots)))].Store(t)
}

// captured returns how many traces were ever retained (resident + evicted).
func (r *traceRing) captured() uint64 { return r.seq.Load() }

// snapshot returns the resident traces, newest first. Concurrent adds may or
// may not be included — the ring never blocks for a consistent cut.
func (r *traceRing) snapshot(limit int) []*RetainedTrace {
	out := make([]*RetainedTrace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	// Insertion sort on seq descending: the ring is small (hundreds) and
	// nearly sorted already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].seq > out[j-1].seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func (r *traceRing) find(id string) *RetainedTrace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil && t.TraceID == id {
			return t
		}
	}
	return nil
}

// captureCompute decides, at the end of one computation, whether its trace is
// retained: unconditionally when the computation exceeded the slow threshold
// or ended degraded, and on the sampling cadence otherwise (every
// TraceSampleEvery-th computation). spans is only invoked when the trace is
// actually kept, so the hot path pays one atomic increment and two compares.
// It returns the minted trace id ("" when not retained) and the slow verdict.
func (s *Server) captureCompute(mode string, node graph.NodeID, eta int, dur time.Duration, bound float64, degraded bool, spans func() []TraceSpan) (traceID string, slow bool) {
	if s.traces == nil {
		return "", false
	}
	slow = s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold
	sampled := s.cfg.TraceSampleEvery > 0 && s.sampleCtr.Add(1)%uint64(s.cfg.TraceSampleEvery) == 0
	if !slow && !degraded && !sampled {
		return "", slow
	}
	t := &RetainedTrace{
		TraceID:      newTraceID(),
		Time:         time.Now(),
		Node:         int(node),
		Eta:          eta,
		Mode:         mode,
		DurationMS:   float64(dur) / 1e6,
		Slow:         slow,
		Degraded:     degraded,
		Sampled:      sampled && !slow && !degraded,
		L1ErrorBound: bound,
		Iterations:   spans(),
	}
	s.traces.add(t)
	if slow {
		s.metrics.slowQueries.Inc()
	}
	return t.TraceID, slow
}

// retainExplicit keeps a ?trace=1 trace in the ring so explicitly traced
// queries show up on the debug surface alongside captured ones.
func (s *Server) retainExplicit(req queryRequest, ans *cachedAnswer, tb *TraceBlock) {
	if s.traces == nil {
		return
	}
	slow := s.cfg.SlowThreshold > 0 && ans.result.Duration >= s.cfg.SlowThreshold
	s.traces.add(&RetainedTrace{
		TraceID:      tb.TraceID,
		Time:         time.Now(),
		Node:         int(req.node),
		Eta:          req.eta,
		Mode:         tb.Mode,
		DurationMS:   tb.DurationMS,
		Slow:         slow,
		Degraded:     ans.degraded,
		Explicit:     true,
		L1ErrorBound: ans.result.L1ErrorBound,
		Iterations:   tb.Iterations,
	})
	ans.traceID = tb.TraceID
	ans.slow = slow
}

// legSummaries folds router-mode iteration spans into one per-shard summary
// (sub-request count and summed latency), the compact form the query log
// records. Skipped legs (down shards) are excluded — they carry no timing.
func legSummaries(spans []cluster.IterationSpan) []querylog.LegSummary {
	var out []querylog.LegSummary
	idx := map[int]int{}
	for _, it := range spans {
		for _, leg := range it.Legs {
			if leg.Skipped {
				continue
			}
			j, ok := idx[leg.Shard]
			if !ok {
				j = len(out)
				idx[leg.Shard] = j
				out = append(out, querylog.LegSummary{Shard: uint16(leg.Shard)})
			}
			out[j].Legs++
			us := out[j].DurationUS + uint32(leg.DurationMS*1e3)
			if us < out[j].DurationUS { // clamp on overflow
				us = ^uint32(0)
			}
			out[j].DurationUS = us
		}
	}
	// Leg spans arrive in ascending shard order per iteration, so first-seen
	// order is already sorted by shard.
	return out
}

// logQuery appends one completed query to the persistent log. Append is a
// short critical section and a buffered write (durability follows at the next
// batched fsync), so this sits directly on the serving path.
func (s *Server) logQuery(req queryRequest, ans *cachedAnswer, state cacheState, lat time.Duration, explicit bool) {
	if s.qlog == nil {
		return
	}
	mode := querylog.ModeEngine
	if s.router != nil {
		mode = querylog.ModeRouter
	}
	var flags uint8
	if ans.degraded {
		flags |= querylog.FlagDegraded
	}
	switch state {
	case cacheHit:
		flags |= querylog.FlagCacheHit
	case cacheCoalesced:
		flags |= querylog.FlagCoalesced
	}
	if ans.slow {
		flags |= querylog.FlagSlow
	}
	if explicit {
		flags |= querylog.FlagTraced
	}
	iters := ans.result.Iterations
	if iters > 255 {
		iters = 255
	}
	us := lat.Microseconds()
	if us > int64(^uint32(0)) {
		us = int64(^uint32(0))
	}
	eta := req.eta
	if eta > 255 {
		eta = 255
	}
	top := req.top
	if top > int(^uint16(0)) {
		top = int(^uint16(0))
	}
	_ = s.qlog.Append(querylog.Record{
		Source:     req.node,
		Top:        uint16(top),
		Eta:        uint8(eta),
		Mode:       mode,
		Flags:      flags,
		Iterations: uint8(iters),
		Epoch:      ans.epoch,
		LatencyUS:  uint32(us),
		Bound:      ans.result.L1ErrorBound,
		TraceID:    ans.traceID,
		Legs:       ans.legs,
	})
}

// debugSlowResponse is the body of GET /v1/debug/slow.
type debugSlowResponse struct {
	// Captured counts every trace ever retained; Retained is how many are
	// still resident in the ring (the rest were overwritten).
	Captured        uint64           `json:"captured"`
	Retained        int              `json:"retained"`
	SlowThresholdMS float64          `json:"slow_threshold_ms"`
	Traces          []*RetainedTrace `json:"traces"`
}

// handleDebugSlow serves the retained-trace ring, newest first. Like /metrics
// and /healthz it is mounted outside instrument: it is operator traffic whose
// latency would only dilute the request histograms.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, badRequest("bad n %q", v))
			return
		}
		limit = n
	}
	traces := s.traces.snapshot(limit)
	writeJSON(w, http.StatusOK, debugSlowResponse{
		Captured:        s.traces.captured(),
		Retained:        len(traces),
		SlowThresholdMS: float64(s.cfg.SlowThreshold) / 1e6,
		Traces:          traces,
	})
}

// handleDebugTrace serves one retained trace by id, 404 when it was never
// captured or has been overwritten.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.traces.find(id)
	if t == nil {
		writeError(w, &httpError{status: http.StatusNotFound, code: api.CodeBadRequest,
			msg: "trace " + id + " not retained (never captured, or evicted from the ring)"})
		return
	}
	writeJSON(w, http.StatusOK, t)
}
