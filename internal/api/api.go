// Package api defines the HTTP wire contract shared by the serving daemon,
// the cluster router and the load-generation tooling: the partial-query
// protocol that shards speak among themselves, the sparse-vector encoding it
// uses, and the structured error envelope every endpoint returns on failure.
//
// It deliberately contains no behaviour beyond encoding: both internal/server
// (the shard side of /v1/partial) and internal/cluster (the router side)
// import it, so it must not depend on either.
package api

import (
	"fmt"
	"sort"
	"strings"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// TraceHeader carries the per-query trace ID across the cluster: the serving
// layer mints one per traced request, the router forwards it on every
// /v1/partial leg, and shards echo it back (and key their structured logs on
// it), so one routed query can be followed end to end through the logs of
// every process it touched.
const TraceHeader = "X-Fastppv-Trace"

// NormalizeTarget canonicalizes a shard/daemon address as accepted by the
// CLIs and the router: surrounding space and trailing slashes are dropped and
// a bare host:port gets the http scheme. It returns an error for a blank
// entry (usually a stray comma in a target list).
func NormalizeTarget(t string) (string, error) {
	t = strings.TrimRight(strings.TrimSpace(t), "/")
	if t == "" {
		return "", fmt.Errorf("api: empty target address")
	}
	if !strings.Contains(t, "://") {
		t = "http://" + t
	}
	return t, nil
}

// Error codes distinguish failure classes machine-readably, so a router or
// load generator can react per class instead of pattern-matching messages:
// retry transient conditions, widen the error bound on unavailable shards,
// and surface client mistakes unchanged.
const (
	// CodeBadRequest is a malformed or out-of-range request; retrying is
	// pointless.
	CodeBadRequest = "bad_request"
	// CodeOverloaded reports admission rejection: both the full-accuracy and
	// the degraded pools were saturated. Back off before retrying.
	CodeOverloaded = "overloaded"
	// CodeRetry reports a transient server condition — typically an index
	// descriptor closing mid-read while the shard restarts or compacts — that
	// an immediate retry is expected to clear.
	CodeRetry = "retry"
	// CodeUnsupported reports an endpoint that exists but is not available in
	// this server's mode (e.g. /v1/update on a router, /v1/compact on an
	// in-memory index).
	CodeUnsupported = "unsupported"
	// CodeConflict reports an operation already in progress (e.g. concurrent
	// compactions) or a replica refusing writes on top of possibly corrupt
	// state (an engine flagged inconsistent rejects further updates with it).
	CodeConflict = "conflict"
	// CodeEpochMismatch reports a conditional update whose if_epoch
	// precondition failed: the target's index epoch is not the one the caller
	// expected, so applying the batch would put the replica out of sequence
	// with the rest of the cluster. The caller must re-read the current epoch
	// (or let the router fold the divergent replica out of query answers).
	CodeEpochMismatch = "epoch_mismatch"
	// CodeUnavailable reports that the service cannot answer at all — a
	// router with every shard down, or an engine flagged inconsistent.
	CodeUnavailable = "unavailable"
	// CodeInternal is an unclassified server-side failure.
	CodeInternal = "internal"
)

// Error is the structured error payload. It implements the error interface so
// a decoded remote failure can travel through ordinary error returns without
// losing its code.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// ErrorResponse is the body of every non-2xx answer: {"error": {code, message}}.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// Vector is the wire form of a sparse score vector: parallel node and score
// slices sorted by ascending node id. The sort makes encoded bodies a
// deterministic function of the vector, preserving the serving layer's
// byte-reproducibility guarantee across the cluster hop, and float64 values
// round-trip exactly through encoding/json's shortest-form rendering.
type Vector struct {
	Nodes  []graph.NodeID `json:"nodes"`
	Scores []float64      `json:"scores"`
}

// EncodeVector converts a sparse vector to wire form.
func EncodeVector(v sparse.Vector) Vector {
	w := Vector{
		Nodes:  make([]graph.NodeID, 0, len(v)),
		Scores: make([]float64, 0, len(v)),
	}
	for id := range v {
		w.Nodes = append(w.Nodes, id)
	}
	sort.Slice(w.Nodes, func(i, j int) bool { return w.Nodes[i] < w.Nodes[j] })
	for _, id := range w.Nodes {
		w.Scores = append(w.Scores, v[id])
	}
	return w
}

// EncodeMap converts a hub->weight map (a query frontier) to wire form.
func EncodeMap(m map[graph.NodeID]float64) Vector {
	v := make(sparse.Vector, len(m))
	for id, s := range m {
		v[id] = s
	}
	return EncodeVector(v)
}

// Decode converts the wire form back to a sparse vector.
func (w Vector) Decode() (sparse.Vector, error) {
	if len(w.Nodes) != len(w.Scores) {
		return nil, fmt.Errorf("api: vector has %d nodes but %d scores", len(w.Nodes), len(w.Scores))
	}
	v := sparse.New(len(w.Nodes))
	for i, id := range w.Nodes {
		v[id] = w.Scores[i]
	}
	return v, nil
}

// DecodeMap converts the wire form back to a hub->weight map.
func (w Vector) DecodeMap() (map[graph.NodeID]float64, error) {
	v, err := w.Decode()
	if err != nil {
		return nil, err
	}
	return map[graph.NodeID]float64(v), nil
}

// PartialRequest is the body of POST /v1/partial, the shard-side sub-query of
// a distributed PPV evaluation. Exactly one of Query and Frontier is set:
//
//   - Query asks for iteration 0 — the prime PPV of the query node, served
//     from the shard's index when it owns that hub and computed on the fly
//     otherwise;
//   - Frontier asks for one expansion iteration over the given hub->prefix
//     weights, which must all be hubs this shard owns.
type PartialRequest struct {
	Query    *graph.NodeID `json:"query,omitempty"`
	Frontier *Vector       `json:"frontier,omitempty"`
	// Iteration is the router's iteration number for this expansion; it only
	// feeds shard-side logging and stats.
	Iteration int `json:"iteration,omitempty"`
	// Speculative marks an expansion the router pre-sent before committing to
	// the iteration: the shard may discard it (answering CodeStaleSpeculation)
	// if a cancel for FrontierHash arrives before it starts computing. The
	// fields ride along in JSON too, so speculation works — minus the
	// cancel fast-path — over the fallback transport.
	Speculative bool `json:"speculative,omitempty"`
	// FrontierHash identifies the frontier of a speculative expansion
	// (api.Vector.Hash); the cancel protocol matches on it.
	FrontierHash uint64 `json:"frontier_hash,omitempty"`
}

// PartialResponse is the body answering a partial request.
type PartialResponse struct {
	// Shard and Shards echo the answering shard's partition, letting the
	// router detect a misconfigured target list.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Epoch is the answering shard's index epoch: the number of graph-update
	// batches folded into the state this partial was evaluated against. The
	// router compares epochs across the shards of one query and folds an
	// epoch-divergent shard's mass into the error bound instead of merging
	// answers computed on different graphs.
	Epoch uint64 `json:"epoch"`
	// Increment is the partial PPV mass this sub-query contributed.
	Increment Vector `json:"increment"`
	// Frontier holds the hub entries of Increment: prefix weights for the
	// next iteration, including hubs owned by other shards.
	Frontier Vector `json:"frontier"`
	// HubsExpanded and HubsSkipped count assembled and delta-pruned hubs.
	HubsExpanded int `json:"hubs_expanded"`
	HubsSkipped  int `json:"hubs_skipped"`
	// Unowned lists requested hubs the shard refused because its partition
	// does not own them; their mass was not expanded.
	Unowned []graph.NodeID `json:"unowned,omitempty"`
	// FromIndex reports, for a root request, whether the query node's prime
	// PPV came from the stored index.
	FromIndex bool `json:"from_index,omitempty"`
	// ComputeMS is the shard-side evaluation time in milliseconds.
	ComputeMS float64 `json:"compute_ms"`
}

// UpdateRequest is the body of POST /v1/update: batches of edges to add and
// remove, each edge a [from, to] pair. Pairs are decoded as slices so that a
// wrong-length entry is rejected instead of being zero-filled. It lives here
// because both sides of the cluster speak it: a client posts it to the router,
// and the router fans the identical body out to every shard.
type UpdateRequest struct {
	AddedEdges   [][]int `json:"added_edges,omitempty"`
	RemovedEdges [][]int `json:"removed_edges,omitempty"`
	NumNodes     int     `json:"num_nodes,omitempty"`
	// IfEpoch, when set, makes the update conditional: the target applies the
	// batch only if its current index epoch equals IfEpoch, and answers
	// CodeEpochMismatch otherwise. The router uses it on every fan-out leg so
	// a shard that missed an earlier batch can never apply later batches out
	// of sequence — it stays cleanly "behind" (and folded out of answers)
	// instead of diverging unboundedly.
	IfEpoch *uint64 `json:"if_epoch,omitempty"`
}

// UpdateResponse is the body answering an update applied to one engine.
type UpdateResponse struct {
	AffectedHubs   int     `json:"affected_hubs"`
	UnaffectedHubs int     `json:"unaffected_hubs"`
	Invalidated    int     `json:"invalidated"`
	DurationMS     float64 `json:"duration_ms"`
	// Epoch is the engine's index epoch after this update was applied.
	Epoch uint64 `json:"epoch"`
}

// ShardUpdateResult reports the outcome of one leg of a cluster update
// fan-out.
type ShardUpdateResult struct {
	Shard  int    `json:"shard"`
	Target string `json:"target"`
	// Applied reports whether this shard committed the batch; Epoch is its
	// index epoch afterwards (or the stale epoch that disqualified it).
	Applied bool   `json:"applied"`
	Epoch   uint64 `json:"epoch,omitempty"`
	// AffectedHubs counts the hubs the shard recomputed (owned hubs only).
	AffectedHubs int `json:"affected_hubs,omitempty"`
	// ErrorCode and Error describe the failure when Applied is false.
	ErrorCode string `json:"error_code,omitempty"`
	Error     string `json:"error,omitempty"`
}

// ClusterUpdateResponse is the body answering POST /v1/update on a router: the
// per-shard fan-out outcomes and the resulting cluster epoch.
type ClusterUpdateResponse struct {
	// Epoch is the cluster index epoch after the fan-out: every shard that
	// applied the batch now reports it.
	Epoch uint64 `json:"epoch"`
	// ShardsApplied and ShardsFailed partition the shard set; Degraded is set
	// when at least one shard did not apply the batch — that shard now serves
	// an older graph and the router folds its mass into query error bounds
	// until it is restarted or rebuilt.
	ShardsApplied int                 `json:"shards_applied"`
	ShardsFailed  int                 `json:"shards_failed"`
	Degraded      bool                `json:"degraded,omitempty"`
	Shards        []ShardUpdateResult `json:"shards"`
	// Invalidated counts router-cache entries dropped by this update.
	Invalidated int     `json:"invalidated"`
	DurationMS  float64 `json:"duration_ms"`
}
