package workload

import (
	"strings"
	"testing"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
)

func TestQuerySetSamplesWithoutReplacement(t *testing.T) {
	g, err := gen.RandomDirected(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs := QuerySet(g, QueryOptions{Count: 30, Seed: 1})
	if len(qs) != 30 {
		t.Fatalf("QuerySet returned %d queries, want 30", len(qs))
	}
	seen := make(map[graph.NodeID]bool)
	for _, q := range qs {
		if seen[q] {
			t.Fatalf("query %d sampled twice", q)
		}
		seen[q] = true
		if !g.Valid(q) {
			t.Fatalf("query %d out of range", q)
		}
	}
	// Deterministic per seed.
	again := QuerySet(g, QueryOptions{Count: 30, Seed: 1})
	for i := range qs {
		if qs[i] != again[i] {
			t.Fatal("QuerySet is not deterministic for a fixed seed")
		}
	}
}

func TestQuerySetRequireOutEdges(t *testing.T) {
	b := graph.NewBuilder(true)
	b.EnsureNodes(10)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	g := b.Finalize() // only nodes 0 and 1 have out-edges
	qs := QuerySet(g, QueryOptions{Count: 10, Seed: 2, RequireOutEdges: true})
	if len(qs) != 2 {
		t.Fatalf("QuerySet returned %d queries, want the 2 nodes with out-edges", len(qs))
	}
	for _, q := range qs {
		if g.OutDegree(q) == 0 {
			t.Errorf("query %d has no out-edges", q)
		}
	}
}

func TestQuerySetCountLargerThanGraph(t *testing.T) {
	g, err := gen.RandomDirected(10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	qs := QuerySet(g, QueryOptions{Count: 100, Seed: 1})
	if len(qs) != 10 {
		t.Fatalf("QuerySet returned %d queries, want all 10 nodes", len(qs))
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("My title", "Name", "Value", "Ratio")
	tab.AddRow("alpha", 12, 0.123456)
	tab.AddRow("a-much-longer-name", "text", 1.0)
	out := tab.String()
	if !strings.Contains(out, "My title") {
		t.Error("title missing from rendered table")
	}
	if !strings.Contains(out, "0.1235") {
		t.Errorf("floats should render with 4 decimals, got:\n%s", out)
	}
	if !strings.Contains(out, "a-much-longer-name") {
		t.Error("row cell missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+1+2 {
		t.Errorf("rendered table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Header columns are padded to at least the widest cell in the column.
	header := lines[1]
	if !strings.HasPrefix(header, "Name") || !strings.Contains(header, "Value") {
		t.Errorf("header line malformed: %q", header)
	}
}

func TestTableEmpty(t *testing.T) {
	tab := NewTable("", "A")
	out := tab.String()
	if !strings.Contains(out, "A") {
		t.Errorf("empty table should still render its header, got %q", out)
	}
}
