package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fastppv/internal/api"
	"fastppv/internal/cluster"
	"fastppv/internal/core"
	"fastppv/internal/telemetry"
)

// TestMetricsEndpointEngineMode scrapes /metrics on a single-node server and
// checks the families the engine mode must export are present and that the
// output is structurally valid Prometheus text.
func TestMetricsEndpointEngineMode(t *testing.T) {
	g := socialGraph(t, 300)
	srv, err := New(testEngine(t, g, 40), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Drive one miss and one hit so the counters move.
	get(t, ts, "/v1/ppv?node=5&eta=2")
	get(t, ts, "/v1/ppv?node=5&eta=2")

	st, hdr, body := get(t, ts, "/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", st, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition format", ct)
	}
	out := string(body)
	for _, want := range []string{
		`fastppv_http_request_seconds_bucket{endpoint="ppv",le="+Inf"}`,
		`fastppv_http_requests_total{endpoint="ppv",code="2xx"} 2`,
		"fastppv_queries_computed_total 1",
		"fastppv_cache_hits_total 1",
		"fastppv_cache_misses_total 1",
		"fastppv_index_epoch 0",
		"fastppv_graph_nodes 300",
		"fastppv_admission_admitted_total 1",
		"# TYPE fastppv_query_l1_error_bound histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// /metrics must not instrument itself: no "metrics" endpoint label.
	if strings.Contains(out, `endpoint="metrics"`) {
		t.Error("/metrics self-instrumented")
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in /metrics output")
		}
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, " ") {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestMetricsEndpointRouterMode shares one registry between a router and its
// fronting server and checks the shard-leg and epoch families appear on the
// router's /metrics.
func TestMetricsEndpointRouterMode(t *testing.T) {
	g := socialGraph(t, 300)
	shards := shardedServers(t, g, 40, 2)
	reg := telemetry.NewRegistry()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Targets:        []string{shards[0].URL, shards[1].URL},
		HealthInterval: -1,
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv, err := NewRouter(rt, Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if st, _, body := get(t, ts, "/v1/ppv?node=7&eta=2"); st != http.StatusOK {
		t.Fatalf("routed query failed: %d %s", st, body)
	}
	st, _, body := get(t, ts, "/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics = %d", st)
	}
	out := string(body)
	for _, want := range []string{
		`fastppv_shard_leg_seconds_bucket{shard="0",le="+Inf"}`,
		`fastppv_shard_leg_seconds_bucket{shard="1",le="+Inf"}`,
		"fastppv_cluster_epoch 0",
		"fastppv_cluster_shards_behind 0",
		"fastppv_cluster_shards_healthy 2",
		"fastppv_router_queries_total 1",
		`fastppv_shard_requests_total{shard="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
}

// TestTraceRoutedQuery sends ?trace=1 through the router front and checks the
// response carries per-iteration spans with per-shard leg timings, the trace
// header, and is never cached.
func TestTraceRoutedQuery(t *testing.T) {
	g := socialGraph(t, 400)
	shards := shardedServers(t, g, 60, 2)
	routerTS, _ := routerServer(t, []string{shards[0].URL, shards[1].URL})

	// Warm the cache with an untraced query so the traced one would hit if it
	// (incorrectly) consulted the cache.
	path := "/v1/ppv?node=9&eta=3&top=5"
	get(t, routerTS, path)

	st, hdr, body := get(t, routerTS, path+"&trace=1")
	if st != http.StatusOK {
		t.Fatalf("traced query = %d: %s", st, body)
	}
	if hdr.Get("X-Fastppv-Cache") != string(cacheBypass) {
		t.Errorf("traced query cache state = %q, want bypass", hdr.Get("X-Fastppv-Cache"))
	}
	tid := hdr.Get(api.TraceHeader)
	if tid == "" {
		t.Error("traced response missing the trace header")
	}
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatalf("no trace block in %s", body)
	}
	if resp.Trace.TraceID != tid {
		t.Errorf("trace block ID %q != header %q", resp.Trace.TraceID, tid)
	}
	if resp.Trace.Mode != "router" {
		t.Errorf("trace mode = %q, want router", resp.Trace.Mode)
	}
	if len(resp.Trace.Iterations) != resp.Iterations+1 {
		t.Fatalf("%d spans for %d iterations (+root)", len(resp.Trace.Iterations), resp.Iterations)
	}
	if resp.Trace.Iterations[0].Iteration != 0 || len(resp.Trace.Iterations[0].Legs) == 0 {
		t.Errorf("root span malformed: %+v", resp.Trace.Iterations[0])
	}
	sawLeg := false
	for _, span := range resp.Trace.Iterations[1:] {
		if span.FrontierSize == 0 {
			t.Errorf("iteration %d span has zero frontier", span.Iteration)
		}
		for _, leg := range span.Legs {
			sawLeg = true
			if leg.Skipped || leg.Error != "" {
				t.Errorf("healthy-cluster leg reports a fault: %+v", leg)
			}
			if leg.DurationMS <= 0 {
				t.Errorf("leg %d/%d has no timing", span.Iteration, leg.Shard)
			}
		}
	}
	if !sawLeg {
		t.Error("no shard legs in any expansion span")
	}

	// The traced response must not have been cached: the next untraced query
	// is a hit on the pre-trace entry (byte-identical, no trace block).
	_, hdr2, body2 := get(t, routerTS, path)
	if hdr2.Get("X-Fastppv-Cache") != string(cacheHit) {
		t.Errorf("untraced follow-up = %q, want hit", hdr2.Get("X-Fastppv-Cache"))
	}
	if strings.Contains(string(body2), `"trace"`) {
		t.Error("trace block leaked into a cached body")
	}
}

// TestTraceIDPropagation verifies the client-supplied trace ID travels
// router -> shard -> response: every shard leg carries it on the wire and the
// response echoes it. The router is pinned to the JSON transport because the
// assertion reads the HTTP trace header off each leg; on the binary transport
// the trace ID travels inside the request frame instead (covered by
// TestStreamTransportAgainstServer).
func TestTraceIDPropagation(t *testing.T) {
	g := socialGraph(t, 300)

	var mu sync.Mutex
	var seen []string
	record := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/partial" {
				mu.Lock()
				seen = append(seen, r.Header.Get(api.TraceHeader))
				mu.Unlock()
			}
			h.ServeHTTP(w, r)
		})
	}
	shardURLs := make([]string, 2)
	for i := 0; i < 2; i++ {
		e, err := core.NewEngine(g, nil, core.Options{NumHubs: 40, Partition: core.Partition{Shard: i, Shards: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Precompute(); err != nil {
			t.Fatal(err)
		}
		srv, err := New(e, Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(record(srv.Handler()))
		t.Cleanup(ts.Close)
		shardURLs[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Targets:        shardURLs,
		HealthInterval: -1,
		Transport:      cluster.TransportJSON,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rsrv, err := NewRouter(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	routerTS := httptest.NewServer(rsrv.Handler())
	t.Cleanup(routerTS.Close)

	const clientID = "test-trace-42"
	req, err := http.NewRequest(http.MethodGet, routerTS.URL+"/v1/ppv?node=3&eta=2&trace=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.TraceHeader, clientID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.TraceHeader); got != clientID {
		t.Errorf("response trace header = %q, want the client-supplied %q", got, clientID)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil || qr.Trace.TraceID != clientID {
		t.Fatalf("trace block does not carry the client ID: %+v", qr.Trace)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no /v1/partial legs observed")
	}
	for i, id := range seen {
		if id != clientID {
			t.Errorf("shard leg %d received trace ID %q, want %q", i, id, clientID)
		}
	}
}

// TestTraceEngineMode checks a single-node ?trace=1 answer: engine spans with
// hub expansion counts, no legs.
func TestTraceEngineMode(t *testing.T) {
	g := socialGraph(t, 300)
	srv, err := New(testEngine(t, g, 40), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, hdr, body := get(t, ts, "/v1/ppv?node=11&eta=3&trace=1")
	if st != http.StatusOK {
		t.Fatalf("traced query = %d: %s", st, body)
	}
	if hdr.Get(api.TraceHeader) == "" {
		t.Error("no trace header on engine-mode traced response")
	}
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || resp.Trace.Mode != "engine" {
		t.Fatalf("bad trace block: %+v", resp.Trace)
	}
	if len(resp.Trace.Iterations) != resp.Iterations+1 {
		t.Fatalf("%d spans for %d iterations", len(resp.Trace.Iterations), resp.Iterations)
	}
	expanded := 0
	for _, span := range resp.Trace.Iterations {
		if len(span.Legs) != 0 {
			t.Errorf("engine-mode span %d has shard legs", span.Iteration)
		}
		expanded += span.HubsExpanded
	}
	if resp.Iterations > 0 && expanded == 0 {
		t.Error("no hub expansions recorded across spans")
	}

	// Determinism cross-check: the traced body minus its trace block equals
	// the untraced body.
	_, _, plain := get(t, ts, "/v1/ppv?node=11&eta=3")
	var plainResp QueryResponse
	if err := json.Unmarshal(plain, &plainResp); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", plainResp.Results) != fmt.Sprintf("%v", resp.Results) ||
		plainResp.L1ErrorBound != resp.L1ErrorBound {
		t.Error("traced and untraced answers diverge")
	}
}

// TestInstrumentAllowlist verifies unknown endpoint names are refused at
// wiring time, which is what keeps the endpoint label set closed.
func TestInstrumentAllowlist(t *testing.T) {
	g := socialGraph(t, 100)
	srv, err := New(testEngine(t, g, 20), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("instrument accepted a name outside the allowlist")
		}
	}()
	srv.instrument("metrics", func(http.ResponseWriter, *http.Request) {})
}

// TestStatusClassCounter checks 4xx answers land in the right class.
func TestStatusClassCounter(t *testing.T) {
	g := socialGraph(t, 100)
	reg := telemetry.NewRegistry()
	srv, err := New(testEngine(t, g, 20), Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get(t, ts, "/v1/ppv?node=notanumber")
	_, _, body := get(t, ts, "/metrics")
	if !strings.Contains(string(body), `fastppv_http_requests_total{endpoint="ppv",code="4xx"} 1`) {
		t.Errorf("4xx not counted:\n%s", grepLines(string(body), "fastppv_http_requests_total"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
