package sparse

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"fastppv/internal/graph"
)

func TestTopKBasic(t *testing.T) {
	v := Vector{1: 0.4, 2: 0.1, 3: 0.3, 4: 0.2}
	top := v.TopK(2)
	if len(top) != 2 || top[0].Node != 1 || top[1].Node != 3 {
		t.Errorf("TopK(2) = %v, want nodes [1 3]", top)
	}
	nodes := v.TopKNodes(3)
	want := []graph.NodeID{1, 3, 4}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("TopKNodes(3) = %v, want %v", nodes, want)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	var empty Vector
	if got := empty.TopK(5); got != nil {
		t.Errorf("TopK on empty vector = %v, want nil", got)
	}
	v := Vector{7: 1}
	if got := v.TopK(0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
	if got := v.TopK(10); len(got) != 1 {
		t.Errorf("TopK(k > len) = %v, want the single entry", got)
	}
}

func TestTopKTieBreaking(t *testing.T) {
	v := Vector{9: 0.5, 3: 0.5, 6: 0.5}
	nodes := v.TopKNodes(2)
	// Equal scores: lower node ids win, deterministically.
	if nodes[0] != 3 || nodes[1] != 6 {
		t.Errorf("tie-broken TopK = %v, want [3 6]", nodes)
	}
}

// TestTopKQuickMatchesFullSort property-tests that the heap-based TopK agrees
// with sorting all entries.
func TestTopKQuickMatchesFullSort(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		v := New(len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v.Set(graph.NodeID(i), math.Abs(math.Mod(x, 1000)))
		}
		k := int(kRaw%40) + 1
		got := v.TopK(k)

		all := v.Entries()
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score > all[j].Score
			}
			return all[i].Node < all[j].Node
		})
		want := all
		if k < len(all) {
			want = all[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
