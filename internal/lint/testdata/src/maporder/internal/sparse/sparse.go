// Package sparse is a maporder fixture: its import path ends in
// internal/sparse, so it sits inside the analyzer's answer-affecting set.
package sparse

import "sort"

// Fold accumulates in map order with no hatch: flagged.
func Fold(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

// Keys collects then sorts, with a justified hatch on the line above: clean.
func Keys(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	//lint:ordered collect-then-sort: keys are sorted on the next line
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// SameLine carries the hatch on the statement line itself: clean.
func SameLine(m map[int]bool) int {
	n := 0
	for range m { //lint:ordered pure count; order-free
		n++
	}
	return n
}

// Hatchless carries a hatch with no justification: flagged.
func Hatchless(m map[int]bool) {
	//lint:ordered
	for range m { // want "requires a justification"
	}
}

// SliceRange ranges over a slice, not a map: clean.
func SliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
