// load.go enumerates, parses and type-checks packages for the analyzers
// without any dependency outside the standard library. The heavy lifting is
// delegated to the go tool: `go list -export -deps -json` compiles every
// package (through the build cache) and reports the gc export-data file of
// each, and go/importer's gc mode can import straight from those files via a
// lookup function. Only the packages under analysis are parsed from source;
// every dependency — stdlib included — is imported from export data, which is
// both fast and exactly what the compiler itself saw.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir), compiles
// them through the go tool, and returns each non-test package in the main
// module parsed and type-checked. Dependencies are imported from gc export
// data, so Load needs no network and no GOPATH layout.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !strings.HasPrefix(p.ImportPath, "vendor/") {
			targets = append(targets, p)
		}
	}

	var pkgs []*Package
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(p.ImportPath, p.Dir, p.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes the package stream.
// -deps pulls in every dependency (stdlib included) so the export map covers
// all import paths the targets' export data can reference.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var listed []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			_ = cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, nil
}

// checkPackage parses and type-checks one package from source, importing its
// dependencies from the export-data files in exports.
func checkPackage(path, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: newExportImporter(fset, exports)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// newExportImporter returns an importer that resolves every import path from
// the given map of gc export-data files.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
