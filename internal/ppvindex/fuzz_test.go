package ppvindex

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// fuzzUpdateBinding is the (baseBytes, baseHubs) binding both the fuzz target
// and the corpus generator open update logs with, so committed seeds replay
// instead of being reset as foreign.
const (
	fuzzUpdateBaseBytes = 123
	fuzzUpdateBaseHubs  = 7
)

// fuzzGraphBinding is the shared graph-log binding of target and seeds.
var fuzzGraphBinding = GraphLogBinding{Nodes: 100, Edges: 50, Directed: true}

// FuzzUpdateLogReplay opens arbitrary bytes as an FPL1 update log. The
// contract: OpenUpdateLog either succeeds (truncating a torn tail, resetting
// a foreign binding) or fails with an error wrapping ErrBadIndexFormat —
// never a panic — and a file it accepted replays identically on reopen.
func FuzzUpdateLogReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FPL1garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "update.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		replayed := 0
		l, err := OpenUpdateLog(path, fuzzUpdateBaseBytes, fuzzUpdateBaseHubs, func(h graph.NodeID, ppv sparse.Vector) error {
			replayed++
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrBadIndexFormat) {
				t.Fatalf("OpenUpdateLog returned unstructured error %v", err)
			}
			return
		}
		if err := l.Close(); err != nil {
			t.Fatalf("closing an accepted update log failed: %v", err)
		}
		// The first open repaired the file (torn tail truncated, foreign
		// binding reset); a reopen must be clean and replay the same records.
		again := 0
		l2, err := OpenUpdateLog(path, fuzzUpdateBaseBytes, fuzzUpdateBaseHubs, func(h graph.NodeID, ppv sparse.Vector) error {
			again++
			return nil
		})
		if err != nil {
			t.Fatalf("reopening a repaired update log failed: %v", err)
		}
		defer l2.Close()
		if again != replayed {
			t.Fatalf("reopen replayed %d records, first open replayed %d", again, replayed)
		}
	})
}

// FuzzGraphLogReplay is FuzzUpdateLogReplay for the FPG1 graph-mutation log.
func FuzzGraphLogReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FPG1garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "graph.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		replayed := 0
		l, err := OpenGraphLog(path, fuzzGraphBinding, func(m GraphMutation) error {
			replayed++
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrBadIndexFormat) {
				t.Fatalf("OpenGraphLog returned unstructured error %v", err)
			}
			return
		}
		if err := l.Close(); err != nil {
			t.Fatalf("closing an accepted graph log failed: %v", err)
		}
		again := 0
		l2, err := OpenGraphLog(path, fuzzGraphBinding, func(m GraphMutation) error {
			again++
			return nil
		})
		if err != nil {
			t.Fatalf("reopening a repaired graph log failed: %v", err)
		}
		defer l2.Close()
		if again != replayed {
			t.Fatalf("reopen replayed %d records, first open replayed %d", again, replayed)
		}
	})
}

// FuzzDiskRecordDecode drives the hub-record payload decoder with arbitrary
// bytes. Rejections must wrap ErrBadIndexFormat; an accepted payload must
// survive a decode -> encode -> decode round trip with every score
// bit-identical (encode canonicalizes entry order, so byte equality is only
// guaranteed from the canonical form onward).
func FuzzDiskRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeRecord(7, sparse.Vector{3: 0.25, 9: 1e-12}))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, v, err := decodeRecordPayload(data)
		if err != nil {
			if !errors.Is(err, ErrBadIndexFormat) {
				t.Fatalf("decodeRecordPayload returned unstructured error %v", err)
			}
			return
		}
		enc := encodeRecord(h, v)
		h2, v2, err := decodeRecordPayload(enc)
		if err != nil {
			t.Fatalf("decoding a re-encoded record failed: %v", err)
		}
		if h2 != h || len(v2) != len(v) {
			t.Fatalf("round trip changed identity: hub %d/%d, %d/%d entries", h2, h, len(v2), len(v))
		}
		for id, s := range v {
			got, ok := v2[id]
			if !ok || math.Float64bits(got) != math.Float64bits(s) {
				t.Fatalf("node %d: score %x round-tripped to %x (present=%v)",
					id, math.Float64bits(s), math.Float64bits(got), ok)
			}
		}
	})
}
