// router.go implements the horizontal-sharding half of this package: a
// scatter-gather router over fastppvd shards that each serve one hub
// partition of the index (see internal/core.Partition).
//
// The scheduled approximation of the paper decomposes a PPV query into
// per-hub sub-queries aggregated in decreasing order of importance; the
// router distributes exactly that decomposition. Iteration 0 (the query
// node's prime PPV) is answered by the node's owner shard; every further
// iteration partitions the border-hub frontier by hub owner, scatters one
// /v1/partial expansion per owning shard, and merges the returned increments
// in ascending shard order so responses stay deterministic. The estimate only
// accumulates non-negative tour mass, so the accuracy-aware bound
// 1 - sum(estimate) remains exact under any failure: a down or slow shard
// simply leaves its share of the mass unexpanded and the answer is returned
// with a correctly widened error bound instead of an error.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fastppv/internal/api"
	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/sparse"
	"fastppv/internal/telemetry"
)

// RouterConfig configures a shard router.
type RouterConfig struct {
	// Targets are the shard base URLs; Targets[i] must be the shard serving
	// partition i/len(Targets). The order is part of the partition contract.
	Targets []string
	// Client optionally overrides the HTTP client used for shard calls.
	Client *http.Client
	// RequestTimeout bounds one partial sub-request; zero means 10s.
	RequestTimeout time.Duration
	// Transport selects how partial sub-requests reach shards: TransportBinary
	// (persistent multiplexed binary streams with per-shard JSON fallback; the
	// default) or TransportJSON (one HTTP POST per sub-request).
	Transport string
	// DisableSpeculation turns off pre-sending the next iteration's frontier
	// while the current one folds. Mainly for differential testing; the
	// speculative path never changes answers, only overlaps work.
	DisableSpeculation bool
	// HealthInterval is the period of the background shard health probe; zero
	// means 2s, negative disables the probe (health then only changes
	// passively, on request outcomes).
	HealthInterval time.Duration
	// Registry optionally receives the router's metrics (per-shard leg
	// latency, query outcomes, and a scrape-time collector for epochs and
	// health); nil records into a private, unexported registry.
	Registry *telemetry.Registry
	// LegLatencyBuckets overrides the bucket bounds of the shard-leg latency
	// histogram family; nil means telemetry.DefLatencyBuckets. Bounds must be
	// strictly ascending.
	LegLatencyBuckets []float64
	// Logger optionally receives structured router logs (health transitions,
	// epoch raises, update fan-outs, traced queries); nil discards them.
	Logger *slog.Logger
}

// Router fans PPV queries out across hub-partitioned shards and aggregates
// the partial results. It is safe for concurrent use.
type Router struct {
	part    core.Partition
	shards  []*shardClient
	client  *http.Client
	timeout time.Duration
	// passive is set when the background health probe is disabled: unhealthy
	// shards are then still attempted by expand (a request outcome is the
	// only thing that can restore them), trading bounded tail latency for
	// liveness.
	passive bool
	// speculate enables pre-sending the next iteration's frontier before the
	// current estimate fold and stop check run.
	speculate bool
	transport string
	logger    *slog.Logger
	met       routerMetrics

	specSent atomic.Int64
	specHits atomic.Int64

	numNodes atomic.Int64
	// clusterEpoch is the highest index epoch the router has observed on any
	// shard (from partial responses, update fan-outs and stats probes); -1
	// until the first observation. It is the reference a query measures every
	// shard against: a shard answering below it is serving an older graph and
	// its mass is folded into the error bound instead of merged.
	clusterEpoch atomic.Int64

	// updateMu serializes update fan-outs: batches are applied cluster-wide
	// in one deterministic order, so every shard sees the same sequence and
	// equal epochs imply equal graphs.
	updateMu sync.Mutex

	stopHealth chan struct{}
	healthWG   sync.WaitGroup
	closeOnce  sync.Once
}

// shardClient is the router's view of one shard.
type shardClient struct {
	index   int
	target  string
	healthy atomic.Bool
	// epoch is the shard's last observed index epoch; -1 while unknown.
	epoch atomic.Int64

	requests  atomic.Int64
	failures  atomic.Int64
	retries   atomic.Int64
	latencyUS atomic.Int64
	maxUS     atomic.Int64

	// leg is the shard's pre-resolved latency histogram child, so the hot
	// path never touches the registry's label map.
	leg *telemetry.Histogram

	// tr carries this shard's partial sub-requests (binary stream or JSON).
	tr Transport
}

// setEpoch records the shard's last observed epoch.
func (s *shardClient) setEpoch(e uint64) { s.epoch.Store(int64(e)) }

// knownEpoch returns the shard's last observed epoch, if any.
func (s *shardClient) knownEpoch() (uint64, bool) {
	e := s.epoch.Load()
	if e < 0 {
		return 0, false
	}
	return uint64(e), true
}

func (s *shardClient) observe(d time.Duration, failed bool) {
	s.requests.Add(1)
	if failed {
		s.failures.Add(1)
	}
	s.leg.ObserveDuration(d)
	us := d.Microseconds()
	s.latencyUS.Add(us)
	for {
		old := s.maxUS.Load()
		if us <= old || s.maxUS.CompareAndSwap(old, us) {
			break
		}
	}
}

// NewRouter creates a router over the given shard targets, probes each shard
// once to seed its health state, and starts the background health loop. Call
// Close when done. Shards that are still starting are fine: they are marked
// unhealthy now and picked up by the next probe.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard target")
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		// The stdlib zero client has no timeout and keeps only 2 idle
		// connections per host — one scatter-gather fan-out would re-dial
		// shards on every iteration. Size the idle pool to the fan-out width
		// and give the JSON (fallback) path a real deadline too.
		client = &http.Client{
			Timeout: cfg.RequestTimeout + time.Second,
			Transport: &http.Transport{
				DialContext: (&net.Dialer{
					Timeout:   5 * time.Second,
					KeepAlive: 30 * time.Second,
				}).DialContext,
				MaxIdleConns:        32 * len(cfg.Targets),
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	switch cfg.Transport {
	case "", TransportBinary:
		cfg.Transport = TransportBinary
	case TransportJSON:
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q (want %q or %q)",
			cfg.Transport, TransportBinary, TransportJSON)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	r := &Router{
		part:       core.Partition{Shards: len(cfg.Targets)},
		client:     client,
		timeout:    cfg.RequestTimeout,
		passive:    cfg.HealthInterval < 0,
		speculate:  !cfg.DisableSpeculation,
		transport:  cfg.Transport,
		logger:     logger,
		met:        newRouterMetrics(reg, cfg.LegLatencyBuckets),
		stopHealth: make(chan struct{}),
	}
	r.clusterEpoch.Store(-1)
	for i, t := range cfg.Targets {
		target, err := api.NormalizeTarget(t)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard target at position %d: %w", i, err)
		}
		s := &shardClient{index: i, target: target, leg: r.met.legLatency.With(strconv.Itoa(i))}
		s.epoch.Store(-1)
		if cfg.Transport == TransportBinary {
			s.tr = newStreamTransport(target, i, client, r.timeout, logger)
		} else {
			s.tr = newJSONTransport(target, client, r.timeout)
		}
		r.shards = append(r.shards, s)
	}
	r.registerCollector(reg)
	r.probeAll()
	if cfg.HealthInterval > 0 {
		r.healthWG.Add(1)
		go func() {
			defer r.healthWG.Done()
			tick := time.NewTicker(cfg.HealthInterval)
			defer tick.Stop()
			for {
				select {
				case <-r.stopHealth:
					return
				case <-tick.C:
					r.probeAll()
				}
			}
		}()
	}
	return r, nil
}

// Close stops the background health loop and tears down shard transports.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		close(r.stopHealth)
		for _, s := range r.shards {
			s.tr.Close()
		}
	})
	r.healthWG.Wait()
}

// Shards returns the number of shards the router fans out to.
func (r *Router) Shards() int { return len(r.shards) }

// NumNodes returns the node count of the served graph, discovered from shard
// stats; zero while no shard has been reachable yet.
func (r *Router) NumNodes() int { return int(r.numNodes.Load()) }

// ClusterEpoch returns the highest index epoch observed on any shard, and
// whether any epoch has been observed yet. The serving layer keys its result
// cache on it, so an accepted update instantly retires every pre-update entry.
func (r *Router) ClusterEpoch() (uint64, bool) {
	e := r.clusterEpoch.Load()
	if e < 0 {
		return 0, false
	}
	return uint64(e), true
}

// observeEpoch raises the cluster epoch to e if it is the highest seen. The
// epoch never lowers: a shard reporting less than the maximum is the shard
// being behind, not the cluster.
func (r *Router) observeEpoch(e uint64) {
	for {
		old := r.clusterEpoch.Load()
		if int64(e) <= old {
			return
		}
		if r.clusterEpoch.CompareAndSwap(old, int64(e)) {
			r.logger.Info("cluster epoch raised", "epoch", e, "previous", old)
			return
		}
	}
}

// setShardHealth flips a shard's health state, logging the transition (only
// actual transitions: steady-state probes are silent).
func (r *Router) setShardHealth(s *shardClient, healthy bool) {
	if s.healthy.Swap(healthy) != healthy {
		r.logger.Info("shard health changed",
			"shard", s.index, "target", s.target, "healthy", healthy)
	}
}

// probeAll health-checks every shard concurrently (a down shard costs one
// probe timeout, not one per shard per round) and, while the graph size is
// still unknown, discovers it from the first healthy shard's stats.
func (r *Router) probeAll() {
	var wg sync.WaitGroup
	for _, s := range r.shards {
		wg.Add(1)
		go func(s *shardClient) {
			defer wg.Done()
			r.setShardHealth(s, r.probe(s))
		}(s)
	}
	wg.Wait()
	if r.numNodes.Load() == 0 {
		for _, s := range r.shards {
			if !s.healthy.Load() {
				continue
			}
			if n, _, ok := r.fetchShardStats(s); ok && n > 0 {
				r.numNodes.Store(int64(n))
				break
			}
		}
	}
}

// probe reports whether the shard answers its health endpoint.
func (r *Router) probe(s *shardClient) bool {
	timeout := r.timeout
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.target+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// fetchShardStats reads the shard's /v1/stats for the graph size and index
// epoch, recording the epoch on the shard (and raising the cluster epoch).
func (r *Router) fetchShardStats(s *shardClient) (nodes int, epoch uint64, ok bool) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.target+"/v1/stats", nil)
	if err != nil {
		return 0, 0, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, 0, false
	}
	var st struct {
		Graph struct {
			Nodes int `json:"nodes"`
		} `json:"graph"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, false
	}
	s.setEpoch(st.Epoch)
	r.observeEpoch(st.Epoch)
	return st.Graph.Nodes, st.Epoch, true
}

// shardFault reports whether a failed partial call indicates the shard
// itself is unusable (transport failure, internal error, persistent retry
// condition) rather than a property of this one request. Admission rejection
// (overloaded) and client-class errors must not flip shard health: one shed
// sub-request under a load spike would otherwise disable the shard for every
// query until the next probe.
func shardFault(err error) bool {
	var aerr *api.Error
	if errors.As(err, &aerr) {
		switch aerr.Code {
		case api.CodeBadRequest, api.CodeOverloaded, api.CodeConflict, api.CodeUnsupported,
			api.CodeStaleSpeculation:
			return false
		}
	}
	return true
}

// partial performs one partial sub-request against shard s over its
// transport, retrying once when the shard reports the transient CodeRetry
// condition (its index descriptor was swapped mid-read, e.g. by a compaction
// or restart). A shard-fault failure marks the shard unhealthy (the
// background probe restores it); a success marks it healthy, which is what
// brings a shard back in passive mode. A cancelled context (an abandoned
// speculative pre-send) is not a shard outcome at all: neither latency nor
// health is recorded for it.
func (r *Router) partial(ctx context.Context, s *shardClient, preq *api.PartialRequest, traceID string) (*api.PartialResponse, error) {
	start := time.Now()
	resp, err := s.tr.Partial(ctx, preq, traceID)
	if aerr, ok := err.(*api.Error); ok && aerr.Code == api.CodeRetry {
		s.retries.Add(1)
		resp, err = s.tr.Partial(ctx, preq, traceID)
	}
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	s.observe(time.Since(start), err != nil)
	if err != nil {
		if shardFault(err) {
			r.setShardHealth(s, false)
		}
		return nil, err
	}
	if resp.Shards != len(r.shards) || resp.Shard != s.index {
		r.setShardHealth(s, false)
		return nil, fmt.Errorf("cluster: target %s answers as shard %d/%d, expected %d/%d: shard map misconfigured",
			s.target, resp.Shard, resp.Shards, s.index, len(r.shards))
	}
	s.setEpoch(resp.Epoch)
	r.observeEpoch(resp.Epoch)
	r.setShardHealth(s, true)
	return resp, nil
}

// Result is the outcome of one routed cluster query. Estimate and
// L1ErrorBound have the single-node semantics: the bound is the exact L1
// distance budget 1 - sum(estimate), and it is valid even when shards were
// lost mid-query — their unexpanded mass is simply part of the bound.
type Result struct {
	Query        graph.NodeID
	Estimate     sparse.Vector
	Iterations   int
	L1ErrorBound float64
	HubsExpanded int
	HubsSkipped  int
	// Degraded reports that the cluster could not evaluate the full schedule:
	// at least one shard was down or failed, or the root had to be computed
	// by a non-owner. The answer is still correct; its bound is just wider
	// than a healthy cluster would have reported.
	Degraded bool
	// ShardsDown counts the shards that faulted (unreachable, internal
	// failure, misconfigured) during this query. A shard that merely shed a
	// sub-request under admission pressure degrades the answer but is not
	// counted here.
	ShardsDown int
	// Epoch is the index epoch this answer was evaluated at: every merged
	// increment came from a shard reporting exactly this epoch.
	Epoch uint64
	// ShardsBehind counts shards whose answers were discarded because they
	// reported a different index epoch than Epoch — they are serving a
	// different graph (a missed update fan-out, or a direct local update),
	// and merging their mass would silently mix two graphs' PPVs. Their
	// frontier mass is folded into the bound instead, like a down shard's.
	ShardsBehind int
	// LostFrontierMass is the total prefix weight that could not be expanded
	// because its owning shard was unavailable; it is an upper bound on how
	// much of the reported error bound is due to degradation rather than the
	// stopping condition.
	LostFrontierMass float64
	// RootFromIndex reports whether iteration 0 was served from a stored
	// prime PPV (the query node is a hub) rather than computed on the fly.
	RootFromIndex bool
	// SpeculationsSent counts iterations whose shard requests were pre-sent
	// before the previous iteration's fold and stop check ran;
	// SpeculationHits counts how many of those pre-sends the loop actually
	// consumed (the rest were cancelled by an early stop). Speculation never
	// changes the answer — a consumed pre-send carries bit-identical requests
	// to what the loop would have sent.
	SpeculationsSent int
	SpeculationHits  int
	// Spans holds one trace span per processed iteration (including iteration
	// 0), each with one leg entry per shard sub-request. Always collected:
	// the cost is bounded by iterations x shards, negligible next to the
	// network round trips themselves.
	Spans []IterationSpan
	// Duration is the end-to-end routed query time.
	Duration time.Duration
}

// TopK returns the k best nodes of the estimate.
func (res *Result) TopK(k int) []sparse.Entry { return res.Estimate.TopK(k) }

// Query evaluates the PPV of q across the cluster under the stopping
// condition stop, with the same semantics as core.Engine.Query: iteration 0
// plus up to eta frontier expansions, stopping early on the target error,
// the time limit, or an exhausted frontier.
//
// Failures degrade instead of erroring: the query only fails outright when no
// shard at all can answer iteration 0.
func (r *Router) Query(q graph.NodeID, stop core.StopCondition) (*Result, error) {
	return r.QueryTrace(q, stop, "")
}

// QueryTrace is Query with an end-to-end trace ID: the ID travels to every
// shard sub-request in the api.TraceHeader header — shards key their logs on
// it — and the returned result's Spans tie the per-iteration timings back to
// the same ID. An empty traceID sends no header.
func (r *Router) QueryTrace(q graph.NodeID, stop core.StopCondition, traceID string) (*Result, error) {
	started := time.Now()
	res := &Result{Query: q}
	downShards := make(map[int]struct{})
	staleShards := make(map[int]struct{})

	span := IterationSpan{Iteration: 0}
	root, rootShard, err := r.root(q, downShards, staleShards, res, traceID, &span)
	if err != nil {
		return nil, err
	}
	res.RootFromIndex = root.FromIndex
	// The root's epoch is the reference every further increment must match:
	// merging replies from different epochs would sum PPV mass of two
	// different graphs into one estimate.
	res.Epoch = root.Epoch
	if rootShard != r.part.Owner(q) {
		// A non-owner answered iteration 0; for a hub query node this means
		// the estimate starts from a freshly computed (unclipped) prime PPV
		// instead of the stored one, so the response is flagged degraded even
		// though the bound is exact.
		res.Degraded = true
	}
	estimate, err := root.Increment.Decode()
	if err != nil {
		return nil, fmt.Errorf("cluster: bad root increment: %w", err)
	}
	frontier, err := root.Frontier.DecodeMap()
	if err != nil {
		return nil, fmt.Errorf("cluster: bad root frontier: %w", err)
	}
	res.Estimate = estimate
	mass := estimate.SumOrdered()
	res.L1ErrorBound = 1 - mass
	span.FrontierSize = len(frontier)
	span.MassAdded = mass
	span.L1ErrorBound = res.L1ErrorBound
	span.DurationMS = float64(time.Since(started)) / 1e6
	res.Spans = append(res.Spans, span)

	maxIter := stop.EffectiveMaxIterations()
	// spec holds the one in-flight speculative pre-send: the next iteration's
	// shard requests, scattered before the loop has decided to run it. When
	// the stop rules fire first, discardSpec cancels it — the transports
	// withdraw it shard-side — so early stopping costs at most one wasted
	// pre-send and never waits on one.
	var spec *speculation
	discardSpec := func() {
		if spec != nil {
			spec.cancel()
			spec = nil
		}
	}
	for iter := 1; iter <= maxIter; iter++ {
		if stop.TargetL1Error > 0 && res.L1ErrorBound <= stop.TargetL1Error {
			// The residual bound already satisfies the target: stop here and
			// cancel any pre-sent expansion of this frontier.
			break
		}
		if stop.TimeLimit > 0 && time.Since(started) >= stop.TimeLimit {
			break
		}
		if len(frontier) == 0 {
			break
		}
		iterStart := time.Now()
		// Consume the pre-send only if it predicted exactly this frontier
		// (bit-identical by hash) for exactly this iteration; anything else is
		// stale and cancelled. The O(1) hash compare is the whole decision —
		// no statistics, per the greedy-beats-optimal idiom.
		var sc *scatterSet
		var consumed context.CancelFunc
		if spec != nil && spec.iter == iter && spec.hash == api.EncodeMap(frontier).Hash() {
			sc = spec.sc
			consumed = spec.cancel
			spec = nil
			res.SpeculationHits++
			r.specHits.Add(1)
			r.met.specHits.Inc()
		} else {
			discardSpec()
			sc = r.scatter(context.Background(), frontier, iter, downShards, staleShards, traceID, false)
		}
		merged, nextFrontier, span := r.gather(sc, res, downShards, staleShards)
		if consumed != nil {
			// Every leg of the consumed pre-send has answered by now; release
			// its context.
			consumed()
		}
		// The next frontier is fully known here, before this iteration's mass
		// is folded into the estimate: pre-send it now so the shards overlap
		// their expansion with our fold and stop bookkeeping.
		if r.speculate && iter+1 <= maxIter && len(nextFrontier) > 0 {
			sctx, cancel := context.WithCancel(context.Background())
			spec = &speculation{
				sc:     r.scatter(sctx, nextFrontier, iter+1, downShards, staleShards, traceID, true),
				cancel: cancel,
				hash:   api.EncodeMap(nextFrontier).Hash(),
				iter:   iter + 1,
			}
			res.SpeculationsSent++
			r.specSent.Add(1)
			r.met.specSent.Inc()
		}
		massAdded := merged.SumOrdered()
		estimate.AddVector(merged)
		mass += massAdded
		prev := res.L1ErrorBound
		res.Iterations = iter
		res.L1ErrorBound = 1 - mass
		frontier = nextFrontier
		span.MassAdded = massAdded
		span.L1ErrorBound = res.L1ErrorBound
		span.DurationMS = float64(time.Since(iterStart)) / 1e6
		res.Spans = append(res.Spans, span)
		if massAdded == 0 && res.L1ErrorBound >= prev {
			break
		}
	}
	discardSpec()
	res.ShardsDown = len(downShards)
	res.ShardsBehind = len(staleShards)
	if res.ShardsDown > 0 || res.ShardsBehind > 0 {
		res.Degraded = true
	}
	res.Duration = time.Since(started)
	r.met.observeQuery(res)
	if traceID != "" {
		r.logger.Debug("routed query traced",
			"trace_id", traceID, "query", int(q), "iterations", res.Iterations,
			"l1_error_bound", res.L1ErrorBound, "degraded", res.Degraded,
			"shards_down", res.ShardsDown, "shards_behind", res.ShardsBehind,
			"epoch", res.Epoch, "duration_ms", float64(res.Duration)/1e6)
	}
	return res, nil
}

// root obtains iteration 0 from the query node's owner shard, falling back to
// the other shards in ascending order (healthy ones first) — any shard can
// compute the prime PPV of any node from its graph copy, so a lost owner
// costs accuracy of the clip, not correctness.
//
// Epochs gate the fallback: a shard answering below the known cluster epoch
// is serving a graph that has since been updated, so its root is only used as
// a last resort (the freshest such answer, with the response flagged
// degraded) when no shard at the current epoch can answer at all.
func (r *Router) root(q graph.NodeID, down, stale map[int]struct{}, res *Result, traceID string, span *IterationSpan) (*api.PartialResponse, int, error) {
	owner := r.part.Owner(q)
	order := make([]*shardClient, 0, len(r.shards))
	order = append(order, r.shards[owner])
	for i, s := range r.shards {
		if i != owner {
			order = append(order, s)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].healthy.Load() && !order[j].healthy.Load()
	})
	clusterEpoch, epochKnown := r.ClusterEpoch()
	var (
		lastErr error
		behind  = make(map[int]*api.PartialResponse)
	)
	for _, s := range order {
		legStart := time.Now()
		resp, err := r.partial(context.Background(), s, &api.PartialRequest{Query: &q}, traceID)
		leg := ShardLegSpan{Shard: s.index, DurationMS: float64(time.Since(legStart)) / 1e6}
		if err != nil {
			leg.Error = err.Error()
		} else {
			leg.Epoch = resp.Epoch
		}
		span.Legs = append(span.Legs, leg)
		if err != nil {
			// Only a shard fault excludes the shard from the rest of this
			// query; a shed (overloaded) sub-request may well be accepted at
			// the next iteration.
			if shardFault(err) {
				down[s.index] = struct{}{}
			}
			lastErr = err
			continue
		}
		if epochKnown && resp.Epoch < clusterEpoch {
			// The shard is alive but behind the cluster epoch; keep its
			// answer only as a fallback and try to root on a current shard.
			behind[s.index] = resp
			continue
		}
		// Rooting at the cluster epoch (or discovering it): every shard that
		// answered below it is stale for the rest of this query.
		//lint:ordered per-shard set inserts are independent
		for i := range behind {
			stale[i] = struct{}{}
		}
		return resp, s.index, nil
	}
	if len(behind) > 0 {
		// No shard serves the cluster epoch; degrade to the freshest graph
		// still reachable. Shards at that same (older) epoch remain usable
		// for expansion — mass only folds for epochs differing from the
		// root's.
		best, bestShard := (*api.PartialResponse)(nil), -1
		//lint:ordered argmax under the (epoch desc, shard index asc) total order; the winner is visit-order independent
		for i, resp := range behind {
			if best == nil || resp.Epoch > best.Epoch || (resp.Epoch == best.Epoch && i < bestShard) {
				best, bestShard = resp, i
			}
		}
		//lint:ordered per-shard epoch comparison with independent set inserts
		for i, resp := range behind {
			if resp.Epoch != best.Epoch {
				stale[i] = struct{}{}
			}
		}
		res.Degraded = true
		return best, bestShard, nil
	}
	return nil, -1, fmt.Errorf("cluster: no shard could answer iteration 0 for node %d: %w", q, lastErr)
}

// speculation is one pre-sent iteration: its in-flight scatter, the hash of
// the frontier it predicted, and the cancel that withdraws it shard-side.
type speculation struct {
	sc     *scatterSet
	cancel context.CancelFunc
	hash   uint64
	iter   int
}

// legOutcome carries one shard sub-request's result into the fold loop.
type legOutcome struct {
	reply *api.PartialResponse
	err   error
	dur   time.Duration
}

// scatterSet is one scattered frontier: per-shard hub groups and the channels
// their outcomes arrive on (buffered, so an abandoned scatter never blocks a
// leg goroutine).
type scatterSet struct {
	frontier    map[graph.NodeID]float64
	groups      []map[graph.NodeID]float64
	chans       []chan legOutcome
	attempted   []bool
	iter        int
	speculative bool
}

// scatter partitions one frontier by hub owner and sends each group to its
// shard. Shards currently marked unhealthy (or already seen failing in this
// query) are skipped outright: their prefix mass is recorded as lost by the
// fold and the bound widens, keeping tail latency bounded by one request
// round instead of one timeout per down shard per iteration. In passive mode
// (no background probe) an unhealthy shard is attempted anyway — a successful
// request is then the only path back to healthy.
//
// A speculative scatter tags every request with the hash of its frontier
// vector; cancelling ctx withdraws not-yet-computed requests shard-side.
func (r *Router) scatter(ctx context.Context, frontier map[graph.NodeID]float64, iter int, down, stale map[int]struct{}, traceID string, speculative bool) *scatterSet {
	sc := &scatterSet{
		frontier:    frontier,
		groups:      make([]map[graph.NodeID]float64, len(r.shards)),
		chans:       make([]chan legOutcome, len(r.shards)),
		attempted:   make([]bool, len(r.shards)),
		iter:        iter,
		speculative: speculative,
	}
	//lint:ordered each hub occurs once and is routed to exactly one owner group; grouping is order-free
	for h, w := range frontier {
		owner := r.part.Owner(h)
		if sc.groups[owner] == nil {
			sc.groups[owner] = make(map[graph.NodeID]float64)
		}
		sc.groups[owner][h] = w
	}
	for i, group := range sc.groups {
		if group == nil {
			continue
		}
		ch := make(chan legOutcome, 1)
		sc.chans[i] = ch
		s := r.shards[i]
		if _, seenStale := stale[i]; seenStale {
			// Epoch-divergent in this query: no request, its mass is folded
			// by the gather loop (without marking the shard down — it is
			// alive, just serving a different graph).
			ch <- legOutcome{}
			continue
		}
		_, seenDown := down[i]
		if seenDown || (!s.healthy.Load() && !r.passive) {
			ch <- legOutcome{err: fmt.Errorf("cluster: shard %d (%s) is down", i, s.target)}
			continue
		}
		sc.attempted[i] = true
		wv := api.EncodeMap(group)
		preq := &api.PartialRequest{Frontier: &wv, Iteration: iter}
		if speculative {
			preq.Speculative = true
			preq.FrontierHash = wv.Hash()
		}
		go func(i int, s *shardClient) {
			legStart := time.Now()
			reply, err := r.partial(ctx, s, preq, traceID)
			ch <- legOutcome{reply: reply, err: err, dur: time.Since(legStart)}
		}(i, s)
	}
	return sc
}

// gather folds a scattered iteration's outcomes in ascending shard order:
// deterministic accumulation, so two routed queries over the same cluster
// state answer identically. The in-order receive still overlaps expansion
// with merging — shard i's reply is folded the moment it arrives once shards
// 0..i-1 are folded, while later shards are still computing.
//
// A reply whose index epoch differs from the query's reference epoch
// (res.Epoch, fixed at the root) is never merged: the shard evaluated against
// a different graph, so its mass folds into the bound exactly like a down
// shard's and the shard is skipped for the rest of this query. Unlike a
// fault, divergence does not mark the shard unhealthy — it is alive and
// answering, just inconsistent with the cluster.
func (r *Router) gather(sc *scatterSet, res *Result, down, stale map[int]struct{}) (sparse.Vector, map[graph.NodeID]float64, IterationSpan) {
	span := IterationSpan{Iteration: sc.iter, FrontierSize: len(sc.frontier), Speculative: sc.speculative}
	merged := sparse.New(64)
	next := make(map[graph.NodeID]float64)
	for i := range r.shards {
		group := sc.groups[i]
		if group == nil {
			continue
		}
		out := <-sc.chans[i]
		leg := ShardLegSpan{Shard: i, Hubs: len(group), DurationMS: float64(out.dur) / 1e6, Skipped: !sc.attempted[i]}
		if out.err != nil {
			leg.Error = out.err.Error()
		} else if out.reply != nil {
			leg.Epoch = out.reply.Epoch
		} else if leg.Skipped {
			leg.Error = "epoch-divergent in this query"
		}
		span.Legs = append(span.Legs, leg)
		// foldGroup accounts a sub-request that contributed nothing: its
		// prefix mass goes unexpanded, the exact bound widens by exactly that
		// much, and the answer is degraded.
		foldGroup := func() {
			//lint:ordered FP fold into the pessimistic lost-mass bound; rounding-order variance is far below the bound's width and it is never ranking input
			for _, w := range group {
				res.LostFrontierMass += w
			}
			res.Degraded = true
		}
		// loseGroup is foldGroup for a failed sub-request. Only shard faults
		// exclude the shard from the rest of the query — a shed (overloaded)
		// sub-request is retried at the next iteration and never reported as
		// a down shard.
		loseGroup := func(err error) {
			if shardFault(err) {
				down[i] = struct{}{}
			}
			foldGroup()
		}
		if _, seenStale := stale[i]; seenStale && out.err == nil && out.reply == nil {
			// Skipped as epoch-divergent before the scatter: the bound
			// widens, health and the down set stay untouched.
			foldGroup()
			continue
		}
		if out.err != nil || out.reply == nil {
			loseGroup(out.err)
			continue
		}
		reply := out.reply
		if reply.Epoch != res.Epoch {
			// Epoch divergence: the shard answered from a different graph.
			// Its mass folds into the (still exact) bound and the shard sits
			// out the rest of this query; health is untouched.
			stale[i] = struct{}{}
			foldGroup()
			continue
		}
		inc, err := reply.Increment.Decode()
		if err == nil {
			merged.AddVector(inc)
			var front map[graph.NodeID]float64
			if front, err = reply.Frontier.DecodeMap(); err == nil {
				//lint:ordered each hub occurs once per reply, so every next[h] sees exactly one add per shard regardless of order
				for h, w := range front {
					next[h] += w
				}
			}
		}
		if err != nil {
			loseGroup(err)
			continue
		}
		res.HubsExpanded += reply.HubsExpanded
		res.HubsSkipped += reply.HubsSkipped
		for _, h := range reply.Unowned {
			// The shard refused mass we routed to it: partition disagreement.
			// The mass is lost (bound stays exact); surface it as degradation.
			res.LostFrontierMass += group[h]
			res.Degraded = true
		}
	}
	return merged, next, span
}

// ClusterUpdate is the outcome of one update fan-out across the cluster.
type ClusterUpdate struct {
	// Epoch is the cluster epoch after the fan-out: target epoch + 1 when at
	// least one shard applied the batch.
	Epoch uint64
	// Applied counts the shards that committed the batch; the rest are listed
	// with their failure in Results.
	Applied int
	Results []api.ShardUpdateResult
	// Duration is the end-to-end fan-out time.
	Duration time.Duration
}

// Degraded reports whether the fan-out left the cluster divergent: at least
// one shard did not apply the batch and now serves an older graph (its mass
// folds into every query's bound until it is restarted or rebuilt).
func (cu *ClusterUpdate) Degraded() bool { return cu.Applied < len(cu.Results) }

// Update fans one graph-update batch out to every shard, in ascending shard
// order under a single fan-out lock, so concurrent updates reach all shards
// as the same sequence — equal epochs then imply equal graphs. (The epoch is
// a counter, not a content hash: the implication holds as long as shards only
// receive batches through routers or replay their own logs. An operator
// posting substitute batches directly to one shard can fabricate an equal
// count for a different graph; see the README caveat.)
//
// Every leg is conditional (api.UpdateRequest.IfEpoch = the cluster epoch at
// fan-out start): a shard whose epoch does not match — it missed an earlier
// batch, took a direct local update, or restarted without its logs — rejects
// the batch instead of applying it out of sequence, and is reported failed.
// Failed shards do not abort the fan-out (the healthy majority moves on and
// the stragglers are folded out of query answers by their stale epoch); only
// a fan-out no shard applied returns an error.
//
// When req.IfEpoch is set by the caller it is checked against the cluster
// epoch before anything is sent, turning the whole fan-out into a
// compare-and-set on the cluster state.
func (r *Router) Update(req api.UpdateRequest) (*ClusterUpdate, error) {
	r.updateMu.Lock()
	defer r.updateMu.Unlock()
	start := time.Now()

	// Establish the target epoch: every shard whose epoch is unknown (no
	// query has touched it yet) is asked directly.
	for _, s := range r.shards {
		if _, known := s.knownEpoch(); !known {
			r.fetchShardStats(s)
		}
	}
	clusterEpoch, epochKnown := r.ClusterEpoch()
	if !epochKnown {
		return nil, &api.Error{Code: api.CodeUnavailable,
			Message: "cluster: cannot establish the cluster epoch: no shard reachable"}
	}
	if req.IfEpoch != nil && *req.IfEpoch != clusterEpoch {
		return nil, &api.Error{Code: api.CodeEpochMismatch,
			Message: fmt.Sprintf("cluster: at epoch %d, not %d", clusterEpoch, *req.IfEpoch)}
	}
	req.IfEpoch = &clusterEpoch

	cu := &ClusterUpdate{Epoch: clusterEpoch}
	var firstErr error
	for _, s := range r.shards {
		out := api.ShardUpdateResult{Shard: s.index, Target: s.target}
		epoch, known := s.knownEpoch()
		switch {
		case !known:
			out.ErrorCode = api.CodeUnavailable
			out.Error = "shard unreachable; epoch unknown"
		case epoch != clusterEpoch:
			// Applying on top of a divergent shard would interleave batches
			// out of order; leave it cleanly behind instead.
			out.Epoch = epoch
			out.ErrorCode = api.CodeEpochMismatch
			out.Error = fmt.Sprintf("shard at epoch %d, cluster at %d", epoch, clusterEpoch)
		default:
			resp, err := r.postUpdate(s, &req)
			if err != nil {
				var aerr *api.Error
				if errors.As(err, &aerr) {
					out.ErrorCode = aerr.Code
					out.Error = aerr.Message
				} else {
					out.ErrorCode = api.CodeUnavailable
					out.Error = err.Error()
				}
				if shardFault(err) {
					r.setShardHealth(s, false)
				}
			} else {
				s.setEpoch(resp.Epoch)
				r.observeEpoch(resp.Epoch)
				out.Applied = true
				out.Epoch = resp.Epoch
				out.AffectedHubs = resp.AffectedHubs
				cu.Applied++
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		cu.Results = append(cu.Results, out)
	}
	cu.Duration = time.Since(start)
	if cu.Applied == 0 {
		r.logger.Warn("update fan-out applied on no shard",
			"epoch", clusterEpoch, "shards", len(r.shards), "duration_ms", float64(cu.Duration)/1e6)
		if firstErr != nil {
			return nil, fmt.Errorf("cluster: update applied on no shard: %w", firstErr)
		}
		return nil, &api.Error{Code: api.CodeUnavailable, Message: "cluster: update applied on no shard"}
	}
	cu.Epoch = clusterEpoch + 1
	r.logger.Info("update fan-out applied",
		"epoch", cu.Epoch, "shards_applied", cu.Applied,
		"shards_failed", len(cu.Results)-cu.Applied, "degraded", cu.Degraded(),
		"duration_ms", float64(cu.Duration)/1e6)
	return cu, nil
}

// postUpdate performs one /v1/update call against shard s.
func (r *Router) postUpdate(s *shardClient, ureq *api.UpdateRequest) (*api.UpdateResponse, error) {
	body, err := json.Marshal(ureq)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.target+"/v1/update", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		s.observe(time.Since(start), true)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.observe(time.Since(start), true)
		var eresp api.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&eresp); err == nil && eresp.Error.Code != "" {
			return nil, &eresp.Error
		}
		return nil, fmt.Errorf("cluster: %s/v1/update returned status %d", s.target, resp.StatusCode)
	}
	var uresp api.UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&uresp); err != nil {
		s.observe(time.Since(start), true)
		return nil, fmt.Errorf("cluster: decoding update response from %s: %w", s.target, err)
	}
	s.observe(time.Since(start), false)
	return &uresp, nil
}

// ShardStats is the router's view of one shard, for stats endpoints.
type ShardStats struct {
	Shard   int    `json:"shard"`
	Target  string `json:"target"`
	Healthy bool   `json:"healthy"`
	// Epoch is the shard's last observed index epoch; EpochKnown is false
	// until the router has seen any response from it.
	Epoch         uint64  `json:"epoch"`
	EpochKnown    bool    `json:"epoch_known"`
	Requests      int64   `json:"requests"`
	Failures      int64   `json:"failures"`
	Retries       int64   `json:"retries"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`
	// Transport is the shard's wire-level view: effective kind ("binary"
	// while the stream protocol is in use, "json" otherwise), stream health,
	// and frame/byte counters.
	Transport TransportStats `json:"transport"`
}

// Stats summarizes the cluster as the router sees it.
type Stats struct {
	Nodes int `json:"nodes"`
	// Epoch is the cluster index epoch (the highest observed on any shard);
	// ShardsBehind counts shards whose last observed epoch is below it —
	// their answers are currently folded out of every query.
	Epoch         uint64 `json:"epoch"`
	ShardsBehind  int    `json:"shards_behind"`
	ShardsHealthy int    `json:"shards_healthy"`
	// Transport is the configured shard transport kind ("binary" or "json");
	// individual shards may have degraded to JSON, see their Transport stats.
	Transport string `json:"transport"`
	// SpeculationsSent counts iterations pre-sent before their go/no-go
	// decision; SpeculationHits counts pre-sends consumed. The difference is
	// work cancelled by early stops. WireBytesSent/Received total the bytes
	// on the wire across all shard transports, both directions.
	SpeculationsSent  int64        `json:"speculations_sent"`
	SpeculationHits   int64        `json:"speculation_hits"`
	WireBytesSent     int64        `json:"wire_bytes_sent"`
	WireBytesReceived int64        `json:"wire_bytes_received"`
	Shards            []ShardStats `json:"shards"`
}

// Stats returns a point-in-time snapshot of shard health, epochs and latency.
func (r *Router) Stats() Stats {
	st := Stats{
		Nodes:            r.NumNodes(),
		Transport:        r.transport,
		SpeculationsSent: r.specSent.Load(),
		SpeculationHits:  r.specHits.Load(),
	}
	clusterEpoch, epochKnown := r.ClusterEpoch()
	st.Epoch = clusterEpoch
	for _, s := range r.shards {
		ss := ShardStats{
			Shard:     s.index,
			Target:    s.target,
			Healthy:   s.healthy.Load(),
			Requests:  s.requests.Load(),
			Failures:  s.failures.Load(),
			Retries:   s.retries.Load(),
			Transport: s.tr.Stats(),
		}
		st.WireBytesSent += ss.Transport.BytesSent
		st.WireBytesReceived += ss.Transport.BytesReceived
		ss.Epoch, ss.EpochKnown = s.knownEpoch()
		if epochKnown && ss.EpochKnown && ss.Epoch < clusterEpoch {
			st.ShardsBehind++
		}
		if ss.Requests > 0 {
			ss.MeanLatencyMS = float64(s.latencyUS.Load()) / float64(ss.Requests) / 1e3
		}
		ss.MaxLatencyMS = float64(s.maxUS.Load()) / 1e3
		if ss.Healthy {
			st.ShardsHealthy++
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}

// Healthy reports whether at least one shard is currently reachable.
func (r *Router) Healthy() bool {
	for _, s := range r.shards {
		if s.healthy.Load() {
			return true
		}
	}
	return false
}
