package core

import (
	"math"
	"testing"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/hub"
	"fastppv/internal/pagerank"
	"fastppv/internal/sparse"
)

// toyGraph builds the running example of Fig. 1: an 8-node DAG rooted at a.
// Node order: a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7.
func toyGraph(t testing.TB) (*graph.Graph, map[string]graph.NodeID) {
	t.Helper()
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	b := graph.NewBuilder(true)
	ids := make(map[string]graph.NodeID, len(names))
	for _, n := range names {
		ids[n] = b.AddLabeledNode(n)
	}
	edges := [][2]string{
		{"a", "b"}, {"a", "c"}, {"a", "d"}, {"a", "f"}, {"a", "h"},
		{"b", "c"}, {"b", "d"}, {"b", "e"},
		{"d", "c"}, {"d", "e"},
		{"f", "d"}, {"f", "g"},
		{"g", "d"},
		{"h", "c"},
	}
	for _, e := range edges {
		b.MustAddEdge(ids[e[0]], ids[e[1]])
	}
	return b.Finalize(), ids
}

// exactOptions returns engine options with all approximation knobs disabled,
// so that the engine should converge to the exact PPV when run to exhaustion.
func exactOptions(numHubs int) Options {
	return Options{
		NumHubs: numHubs,
		Delta:   -1, // disable the delta prune
		Clip:    -1, // disable storage clipping
		Epsilon: 1e-14,
	}
}

func newToyEngine(t testing.TB, hubNames []string) (*Engine, map[string]graph.NodeID) {
	t.Helper()
	g, ids := toyGraph(t)
	opts := exactOptions(len(hubNames))
	e, err := NewEngine(g, nil, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Force the exact hub set {b, d, f} of Fig. 3 regardless of policy by
	// selecting via a custom PageRank vector that ranks them on top.
	pr := make([]float64, g.NumNodes())
	for i := range pr {
		pr[i] = 0.001
	}
	for rank, name := range hubNames {
		pr[ids[name]] = 1 - float64(rank)*0.01
	}
	e.opts.PageRank = pr
	e.opts.HubPolicy = hub.ByPageRank
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	return e, ids
}

func TestToyGraphIteration0Reachability(t *testing.T) {
	e, ids := newToyEngine(t, []string{"b", "d", "f"})
	const alpha = pagerank.DefaultAlpha

	res, err := e.Query(ids["a"], StopCondition{MaxIterations: 0})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// T0 tours ending at c: a->c and a->h->c (h is not a hub).
	wantC := alpha*(1-alpha)/5 + alpha*(1-alpha)*(1-alpha)/5
	if got := res.Estimate.Get(ids["c"]); math.Abs(got-wantC) > 1e-12 {
		t.Errorf("iteration-0 score of c = %.6f, want %.6f", got, wantC)
	}
	// T0 tours ending at d: only a->d (a->f->d and a->b->d pass a hub...
	// no: f and b are hubs, so those tours have hub length 1). Only a->d.
	wantD := alpha * (1 - alpha) / 5
	if got := res.Estimate.Get(ids["d"]); math.Abs(got-wantD) > 1e-12 {
		t.Errorf("iteration-0 score of d = %.6f, want %.6f", got, wantD)
	}
	// e and g are only reachable through hubs, so their iteration-0 score is 0.
	if got := res.Estimate.Get(ids["e"]); got != 0 {
		t.Errorf("iteration-0 score of e = %v, want 0", got)
	}
	if res.Iterations != 0 {
		t.Errorf("Iterations = %d, want 0", res.Iterations)
	}
}

func TestToyGraphIteration1AddsOneHopHubTours(t *testing.T) {
	e, ids := newToyEngine(t, []string{"b", "d", "f"})
	const alpha = pagerank.DefaultAlpha

	res, err := e.Query(ids["a"], StopCondition{MaxIterations: 1})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// After iteration 1 the score of c covers tours with at most 1 interior
	// hub: a->c, a->h->c, a->d->c, a->b->c.
	want := alpha*(1-alpha)/5 +
		alpha*math.Pow(1-alpha, 2)/5 +
		alpha*math.Pow(1-alpha, 2)/(5*2) +
		alpha*math.Pow(1-alpha, 2)/(5*3)
	if got := res.Estimate.Get(ids["c"]); math.Abs(got-want) > 1e-12 {
		t.Errorf("iteration-1 score of c = %.6f, want %.6f", got, want)
	}
}

func TestToyGraphConvergesToExact(t *testing.T) {
	e, ids := newToyEngine(t, []string{"b", "d", "f"})
	exact, err := e.ExactPPV(ids["a"])
	if err != nil {
		t.Fatalf("ExactPPV: %v", err)
	}
	res, err := e.Query(ids["a"], Exhaustive(0))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if d := exact.L1Distance(res.Estimate); d > 1e-9 {
		t.Fatalf("exhaustive FastPPV differs from exact PPV by L1 %.3g", d)
	}
}

func TestConvergesToExactOnCyclicGraphs(t *testing.T) {
	// Directed cyclic graphs exercise the tour-assembly model where tours
	// revisit hubs; the corrected extension (ExtensionVector) is required for
	// this test to pass.
	configs := []struct {
		nodes, outDeg, hubs int
		seed                int64
	}{
		{nodes: 40, outDeg: 3, hubs: 6, seed: 1},
		{nodes: 80, outDeg: 4, hubs: 10, seed: 2},
		{nodes: 120, outDeg: 2, hubs: 15, seed: 3},
	}
	for _, cfg := range configs {
		g, err := gen.RandomDirected(cfg.nodes, cfg.outDeg, cfg.seed)
		if err != nil {
			t.Fatalf("RandomDirected: %v", err)
		}
		e, err := NewEngine(g, nil, exactOptions(cfg.hubs))
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if err := e.Precompute(); err != nil {
			t.Fatalf("Precompute: %v", err)
		}
		for q := graph.NodeID(0); q < 5; q++ {
			exact, err := e.ExactPPV(q)
			if err != nil {
				t.Fatalf("ExactPPV: %v", err)
			}
			res, err := e.Query(q, StopCondition{MaxIterations: 120})
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			if d := exact.L1Distance(res.Estimate); d > 1e-5 {
				t.Errorf("nodes=%d q=%d: L1 distance to exact %.3g > 1e-5 after %d iterations",
					cfg.nodes, q, d, res.Iterations)
			}
		}
	}
}

func TestTheorem1MonotonicEstimates(t *testing.T) {
	g, err := gen.RandomDirected(60, 3, 11)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	e, err := NewEngine(g, nil, exactOptions(8))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	qs, err := e.NewQuery(0)
	if err != nil {
		t.Fatalf("NewQuery: %v", err)
	}
	prev := qs.Result().Estimate.Clone()
	prevBound := qs.L1ErrorBound()
	for i := 0; i < 10; i++ {
		qs.Step()
		cur := qs.Result().Estimate
		for node, before := range prev {
			if cur.Get(node) < before-1e-12 {
				t.Fatalf("iteration %d decreased score of node %d: %.12f -> %.12f", i+1, node, before, cur.Get(node))
			}
		}
		if b := qs.L1ErrorBound(); b > prevBound+1e-12 {
			t.Fatalf("iteration %d increased the L1 error bound: %.12f -> %.12f", i+1, prevBound, b)
		}
		prev = cur.Clone()
		prevBound = qs.L1ErrorBound()
	}
}

func TestTheorem2ErrorBound(t *testing.T) {
	// On a graph with no dangling nodes, phi(k) <= (1-alpha)^(k+2).
	g, err := gen.RandomDirected(100, 4, 5)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	e, err := NewEngine(g, nil, exactOptions(12))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	alpha := e.Options().Alpha
	for q := graph.NodeID(0); q < 3; q++ {
		qs, err := e.NewQuery(q)
		if err != nil {
			t.Fatalf("NewQuery: %v", err)
		}
		for k := 0; k <= 8; k++ {
			bound := math.Pow(1-alpha, float64(k+2))
			if phi := qs.L1ErrorBound(); phi > bound+1e-9 {
				t.Errorf("q=%d k=%d: phi=%.6f exceeds theorem bound %.6f", q, k, phi, bound)
			}
			qs.Step()
		}
	}
}

func TestAccuracyAwareBoundMatchesTrueError(t *testing.T) {
	// With no dangling nodes and all pruning disabled, the computable bound
	// phi = 1 - sum(estimate) equals the true L1 error up to the exact-PPV
	// solver tolerance.
	g, err := gen.RandomDirected(60, 3, 21)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	e, err := NewEngine(g, nil, exactOptions(8))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	exact, err := e.ExactPPV(3)
	if err != nil {
		t.Fatalf("ExactPPV: %v", err)
	}
	qs, err := e.NewQuery(3)
	if err != nil {
		t.Fatalf("NewQuery: %v", err)
	}
	for k := 0; k < 6; k++ {
		trueErr := exact.L1Distance(qs.Result().Estimate)
		phi := qs.L1ErrorBound()
		if math.Abs(trueErr-phi) > 1e-6 {
			t.Errorf("k=%d: computable bound %.8f differs from true L1 error %.8f", k, phi, trueErr)
		}
		qs.Step()
	}
}

func TestQueryOnHubNodeUsesIndex(t *testing.T) {
	e, _ := newToyEngine(t, []string{"b", "d", "f"})
	hubNode := e.Hubs().Hubs()[0]
	res, err := e.Query(hubNode, StopCondition{MaxIterations: 1})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.QueryPPVComputed {
		t.Errorf("query on hub node %d recomputed its prime PPV instead of using the index", hubNode)
	}
	exact, err := e.ExactPPV(hubNode)
	if err != nil {
		t.Fatalf("ExactPPV: %v", err)
	}
	full, err := e.Query(hubNode, Exhaustive(0))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if d := exact.L1Distance(full.Estimate); d > 1e-9 {
		t.Errorf("hub-node query does not converge to exact PPV (L1 %.3g)", d)
	}
}

func TestStopConditionTargetL1Error(t *testing.T) {
	g, err := gen.RandomDirected(100, 4, 9)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	e, err := NewEngine(g, nil, exactOptions(12))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	target := 0.05
	res, err := e.Query(2, StopCondition{MaxIterations: -1, TargetL1Error: target})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.L1ErrorBound > target {
		t.Errorf("stopped with bound %.4f above target %.4f", res.L1ErrorBound, target)
	}
	// It should not have run to exhaustion: the bound of the second-to-last
	// iteration must have been above the target.
	if n := len(res.PerIteration); n >= 2 {
		if res.PerIteration[n-2].L1ErrorBound <= target {
			t.Errorf("ran an extra iteration after reaching the target")
		}
	}
}

func TestStopConditionMaxIterations(t *testing.T) {
	e, ids := newToyEngine(t, []string{"b", "d", "f"})
	for _, eta := range []int{0, 1, 2, 3} {
		res, err := e.Query(ids["a"], StopCondition{MaxIterations: eta})
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if res.Iterations > eta {
			t.Errorf("eta=%d but ran %d iterations", eta, res.Iterations)
		}
	}
}

func TestDeltaPruningSkipsLowMassHubs(t *testing.T) {
	g, err := gen.RandomDirected(200, 5, 17)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	strict, err := NewEngine(g, nil, Options{NumHubs: 30, Delta: -1, Clip: -1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := strict.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	pruned, err := NewEngine(g, nil, Options{NumHubs: 30, Delta: 0.01, Clip: -1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := pruned.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	rs, err := strict.Query(0, StopCondition{MaxIterations: 3})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	rp, err := pruned.Query(0, StopCondition{MaxIterations: 3})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var strictExpanded, prunedExpanded, prunedSkipped int
	for _, it := range rs.PerIteration {
		strictExpanded += it.HubsExpanded
	}
	for _, it := range rp.PerIteration {
		prunedExpanded += it.HubsExpanded
		prunedSkipped += it.HubsSkipped
	}
	if prunedSkipped == 0 {
		t.Errorf("delta=0.01 pruned no hubs; expected some pruning on this graph")
	}
	if prunedExpanded >= strictExpanded {
		t.Errorf("delta pruning did not reduce expanded hubs: %d >= %d", prunedExpanded, strictExpanded)
	}
	// Pruning only removes tours, so the pruned estimate is a lower
	// approximation of the strict one.
	if rp.Estimate.Sum() > rs.Estimate.Sum()+1e-12 {
		t.Errorf("pruned estimate mass %.6f exceeds unpruned mass %.6f", rp.Estimate.Sum(), rs.Estimate.Sum())
	}
	for node, score := range rp.Estimate {
		if score > rs.Estimate.Get(node)+1e-12 {
			t.Fatalf("pruned score of node %d exceeds unpruned score", node)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	g, _ := toyGraph(t)
	e, err := NewEngine(g, nil, exactOptions(2))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.Query(0, StopCondition{}); err == nil {
		t.Errorf("Query before Precompute should fail")
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	if _, err := e.Query(graph.NodeID(g.NumNodes()), StopCondition{}); err == nil {
		t.Errorf("Query with out-of-range node should fail")
	}
	if _, err := e.Query(-1, StopCondition{}); err == nil {
		t.Errorf("Query with negative node should fail")
	}
}

func TestNewEngineValidation(t *testing.T) {
	g, _ := toyGraph(t)
	if _, err := NewEngine(nil, nil, Options{}); err == nil {
		t.Errorf("NewEngine(nil graph) should fail")
	}
	if _, err := NewEngine(g, nil, Options{Alpha: 1.5}); err == nil {
		t.Errorf("NewEngine with alpha > 1 should fail")
	}
	if _, err := NewEngine(g, nil, Options{NumHubs: -3}); err == nil {
		t.Errorf("NewEngine with negative NumHubs should fail")
	}
}

func TestEstimateMassNeverExceedsOne(t *testing.T) {
	// The estimate is a lower approximation of a probability vector; its mass
	// must never exceed 1 (this is what the naive, uncorrected assembly would
	// violate by double counting tours ending at hubs).
	bib, err := gen.NewBibliographic(gen.BibliographicConfig{
		Papers: 400, Authors: 250, Venues: 20,
		AuthorsPerPaperMean: 2.5, Zipf: 1.4, YearMin: 2000, YearMax: 2010, Seed: 3,
	})
	if err != nil {
		t.Fatalf("NewBibliographic: %v", err)
	}
	e, err := NewEngine(bib.Graph, nil, exactOptions(40))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	for q := graph.NodeID(0); q < 10; q++ {
		res, err := e.Query(q, StopCondition{MaxIterations: 25})
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if sum := res.Estimate.Sum(); sum > 1+1e-9 {
			t.Errorf("q=%d: estimate mass %.9f exceeds 1", q, sum)
		}
	}
}

func TestResultTopK(t *testing.T) {
	e, ids := newToyEngine(t, []string{"b", "d", "f"})
	res, err := e.Query(ids["a"], Exhaustive(0))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	top := res.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d entries", len(top))
	}
	// The query node itself always carries the teleport mass alpha and ranks
	// first; c is the most reachable other node in the running example.
	if top[0].Node != ids["a"] {
		t.Errorf("top-1 node = %s, want the query node a", e.Graph().Label(top[0].Node))
	}
	if top[1].Node != ids["c"] {
		t.Errorf("top-2 node = %s, want c", e.Graph().Label(top[1].Node))
	}
	var _ sparse.Entry = top[0]
}
