package workload

import (
	"testing"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
)

func TestZipfSamplerDeterministic(t *testing.T) {
	a, err := NewZipfSampler(1000, ZipfOptions{S: 1.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewZipfSampler(1000, ZipfOptions{S: 1.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("sample %d: %d != %d with the same seed", i, x, y)
		}
	}
	c, err := NewZipfSampler(1000, ZipfOptions{S: 1.3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	a2, _ := NewZipfSampler(1000, ZipfOptions{S: 1.3, Seed: 42})
	for i := 0; i < 500; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same == 500 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestZipfSamplerSkew(t *testing.T) {
	const nodes, draws = 1000, 20000
	s, err := NewZipfSampler(nodes, ZipfOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[graph.NodeID]int)
	for _, id := range s.Draw(draws) {
		if id < 0 || int(id) >= nodes {
			t.Fatalf("sample %d outside [0,%d)", id, nodes)
		}
		counts[id]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Under the uniform protocol the expected count is draws/nodes = 20; a
	// Zipfian workload concentrates far more traffic on its hottest node.
	if max < 10*draws/nodes {
		t.Errorf("hottest node drew %d of %d samples; expected heavy skew", max, draws)
	}
	if len(counts) < 2 {
		t.Error("all samples hit a single node; exponent too extreme for a workload")
	}
}

func TestZipfQueriesRespectsOutEdges(t *testing.T) {
	// A star pointing inward: only leaves have out-edges.
	b := graph.NewBuilder(true)
	b.EnsureNodes(50)
	for u := 1; u < 50; u++ {
		b.MustAddEdge(graph.NodeID(u), 0)
	}
	g := b.Finalize()
	s, err := NewZipfQueries(g, ZipfOptions{Seed: 1, RequireOutEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if q := s.Next(); g.OutDegree(q) == 0 {
			t.Fatalf("sampled node %d with no out-edges", q)
		}
	}
}

func TestZipfSamplerErrors(t *testing.T) {
	if _, err := NewZipfSampler(0, ZipfOptions{}); err == nil {
		t.Error("no error for zero nodes")
	}
	if _, err := NewZipfSampler(10, ZipfOptions{S: 0.5}); err == nil {
		t.Error("no error for exponent <= 1")
	}
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 100, OutDegreeMean: 4, Attachment: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewZipfQueries(g, ZipfOptions{}); err != nil {
		t.Errorf("valid graph sampler: %v", err)
	}
}
