// Package prime implements prime subgraphs and prime PPVs (Definition 2 of
// the paper). The prime PPV of a node v is the reachability from v to every
// node through hub-free tours only: tours whose interior traverses no hub.
// Prime PPVs of hub nodes are the precomputed building blocks of FastPPV's
// offline phase, and the prime PPV of the query node is iteration 0 of the
// online phase.
//
// Rather than first materializing the prime subgraph and then running power
// iteration on it, ComputePPV uses an equivalent localized forward-push that
// expands tours outward from the source, backtracking at hub nodes (border
// hubs of the prime subgraph) and at "faraway" nodes whose reachability falls
// below the Epsilon threshold, exactly as the depth-first search of Sect. 5.1
// prescribes. Transition probabilities always use the out-degree of the full
// graph, so the resulting scores are reachabilities in the sense of Eq. 2.
package prime

import (
	"errors"
	"fmt"

	"fastppv/internal/graph"
	"fastppv/internal/hub"
	"fastppv/internal/pagerank"
	"fastppv/internal/sparse"
)

// Adjacency is the minimal read-only graph view needed to grow a prime
// subgraph. *graph.Graph satisfies it; the disk-resident cluster view in
// internal/diskgraph satisfies it too, which is how cluster faults are
// charged to prime-subgraph identification.
type Adjacency interface {
	NumNodes() int
	OutDegree(graph.NodeID) int
	OutNeighbors(graph.NodeID) []graph.NodeID
}

// DefaultEpsilon is the faraway-node reachability threshold of Sect. 5.1.
const DefaultEpsilon = 1e-8

// Options configure prime PPV computation.
type Options struct {
	// Alpha is the teleporting probability; zero means pagerank.DefaultAlpha.
	Alpha float64
	// Epsilon is the faraway threshold: tours are not extended past a node
	// whose accumulated reachability is below Epsilon. Zero means
	// DefaultEpsilon.
	Epsilon float64
	// MaxPushes caps the number of node expansions as a safety valve on
	// pathological graphs; zero means 50 million.
	MaxPushes int
}

func (o Options) withDefaults() (Options, error) {
	if o.Alpha == 0 {
		o.Alpha = pagerank.DefaultAlpha
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("prime: alpha %v outside (0,1)", o.Alpha)
	}
	if o.Epsilon == 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.Epsilon < 0 {
		return o, errors.New("prime: negative epsilon")
	}
	if o.MaxPushes == 0 {
		o.MaxPushes = 50_000_000
	}
	if o.MaxPushes < 0 {
		return o, errors.New("prime: negative MaxPushes")
	}
	return o, nil
}

// Stats describes the work done to compute one prime PPV; the offline and
// online complexity analyses of Sect. 5 are validated against these counters.
type Stats struct {
	// Pushes is the number of node expansions performed.
	Pushes int
	// NodesTouched is the number of distinct nodes that received mass, i.e.
	// the size of the prime subgraph (including border hubs).
	NodesTouched int
	// BorderHubs is the number of distinct hub nodes reached, |H'(v)|.
	BorderHubs int
	// Truncated reports whether MaxPushes stopped the expansion early.
	Truncated bool
}

// ComputePPV computes the prime PPV of src with respect to the hub set. The
// returned vector includes the src self-entry contributed by the empty tour
// (score alpha), plus the reachability of every node on hub-free tours from
// src. Entries at hub nodes are the "border hub" entries used to extend tours
// in later FastPPV iterations.
func ComputePPV(g Adjacency, src graph.NodeID, hubs *hub.Set, opts Options) (sparse.Vector, Stats, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, Stats{}, err
	}
	if src < 0 || int(src) >= g.NumNodes() {
		return nil, Stats{}, fmt.Errorf("prime: %w: source %d", graph.ErrNodeOutOfRange, src)
	}

	// reach[u] accumulates the settled reachability mass of hub-free tours
	// from src to u (without the trailing alpha stop factor). residual[u]
	// holds mass that still has to be either settled or expanded.
	//
	// The worklist is processed in FIFO order: breadth-first processing keeps
	// the residual arriving at a node batched into few expansions, so the
	// number of pushes stays near (prime-subgraph size) x (decay rounds) even
	// for very small Epsilon. Depth-first order would degenerate into
	// enumerating individual tours.
	reach := make(map[graph.NodeID]float64)
	residual := make(map[graph.NodeID]float64)
	var queue []graph.NodeID
	inQueue := make(map[graph.NodeID]bool)
	var stats Stats

	// The walk starts at src: the empty tour contributes mass 1 at src, and
	// the first step fans out over src's out-edges. This initial expansion is
	// done outside the loop because only the *starting* occurrence of src is
	// exempt from hub blocking — if src is itself a hub and a tour later
	// returns to it, that interior occurrence counts towards hub length and
	// must not be expanded further (Definition 1 excludes only the start and
	// end positions, not every occurrence of the start node).
	reach[src] = 1
	stats.Pushes++
	if deg := g.OutDegree(src); deg > 0 {
		share := (1 - opts.Alpha) / float64(deg)
		for _, v := range g.OutNeighbors(src) {
			residual[v] += share
			if !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}

	for head := 0; head < len(queue); head++ {
		if stats.Pushes >= opts.MaxPushes {
			stats.Truncated = true
			break
		}
		if head > 1<<16 && head*2 > len(queue) {
			// Reclaim the consumed prefix of the worklist.
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}
		u := queue[head]
		inQueue[u] = false
		r := residual[u]
		if r == 0 {
			continue
		}
		delete(residual, u)
		reach[u] += r
		stats.Pushes++

		// Tours may not be extended through an interior hub.
		if hubs.Contains(u) {
			continue
		}
		// Faraway node: keep its mass but stop extending tours through it.
		if r < opts.Epsilon {
			continue
		}
		deg := g.OutDegree(u)
		if deg == 0 {
			continue // dangling: the walk is absorbed
		}
		share := r * (1 - opts.Alpha) / float64(deg)
		for _, v := range g.OutNeighbors(u) {
			residual[v] += share
			if !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}
	// Settle whatever residual mass is left (nodes reached below the
	// expansion threshold, or left over after truncation).
	for u, r := range residual {
		reach[u] += r
	}

	out := sparse.New(len(reach))
	for u, w := range reach {
		out[u] = opts.Alpha * w
	}
	stats.NodesTouched = len(reach)
	for u := range reach {
		if u != src && hubs.Contains(u) {
			stats.BorderHubs++
		}
	}
	return out, stats, nil
}

// BorderHubs extracts the border hub nodes H'(src) from a prime PPV: the hubs
// (other than the source) reachable through hub-free tours.
func BorderHubs(primePPV sparse.Vector, src graph.NodeID, hubs *hub.Set) []graph.NodeID {
	var out []graph.NodeID
	for u := range primePPV {
		if u != src && hubs.Contains(u) {
			out = append(out, u)
		}
	}
	return out
}

// ExtensionVector returns the prime PPV of a hub as used when extending a
// tour through that hub (Theorem 4): identical to the prime PPV except that
// the empty tour's self-entry (alpha at the hub itself) is removed, because an
// extension through a hub must advance the walk by at least one edge. Without
// this correction, tours ending at a hub would be double counted across
// consecutive iterations. The input is not modified.
func ExtensionVector(primePPV sparse.Vector, owner graph.NodeID, alpha float64) sparse.Vector {
	self, ok := primePPV[owner]
	if !ok {
		return primePPV
	}
	out := primePPV.Clone()
	corrected := self - alpha
	if corrected <= 1e-15 {
		delete(out, owner)
	} else {
		out[owner] = corrected
	}
	return out
}

// Subgraph is an explicitly materialized prime subgraph, used by tests and by
// the disk-based experiments to reason about prime-subgraph size.
type Subgraph struct {
	// Source is the root of the prime subgraph.
	Source graph.NodeID
	// Nodes are all nodes reached through hub-free tours, including border
	// hubs and the source.
	Nodes []graph.NodeID
	// Border are the border hub nodes H'(Source).
	Border []graph.NodeID
	// Edges are the arcs of the prime subgraph (arcs leaving a border hub or
	// a faraway node are excluded).
	Edges []graph.Edge
}

// Extract materializes the prime subgraph of src by the same traversal rule
// as ComputePPV. It is more expensive than ComputePPV (it records edges) and
// exists for inspection, testing and the disk-based working-set measurements.
func Extract(g Adjacency, src graph.NodeID, hubs *hub.Set, opts Options) (*Subgraph, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if src < 0 || int(src) >= g.NumNodes() {
		return nil, fmt.Errorf("prime: %w: source %d", graph.ErrNodeOutOfRange, src)
	}
	residual := make(map[graph.NodeID]float64)
	var queue []graph.NodeID
	inQueue := make(map[graph.NodeID]bool)
	seen := map[graph.NodeID]bool{src: true}
	expanded := map[graph.NodeID]bool{}
	sub := &Subgraph{Source: src}

	// Initial expansion of the source (see ComputePPV for why the source's
	// starting occurrence is handled separately).
	if deg := g.OutDegree(src); deg > 0 {
		expanded[src] = true
		share := (1 - opts.Alpha) / float64(deg)
		for _, v := range g.OutNeighbors(src) {
			sub.Edges = append(sub.Edges, graph.Edge{From: src, To: v})
			seen[v] = true
			residual[v] += share
			if !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}

	pushes := 1
	for head := 0; head < len(queue) && pushes < opts.MaxPushes; head++ {
		u := queue[head]
		inQueue[u] = false
		r := residual[u]
		if r == 0 {
			continue
		}
		delete(residual, u)
		pushes++
		if hubs.Contains(u) {
			continue
		}
		if r < opts.Epsilon {
			continue
		}
		deg := g.OutDegree(u)
		if deg == 0 {
			continue
		}
		share := r * (1 - opts.Alpha) / float64(deg)
		if !expanded[u] {
			expanded[u] = true
			for _, v := range g.OutNeighbors(u) {
				sub.Edges = append(sub.Edges, graph.Edge{From: u, To: v})
			}
		}
		for _, v := range g.OutNeighbors(u) {
			seen[v] = true
			residual[v] += share
			if !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}
	for u := range residual {
		seen[u] = true
	}
	for u := range seen {
		sub.Nodes = append(sub.Nodes, u)
		if u != src && hubs.Contains(u) {
			sub.Border = append(sub.Border, u)
		}
	}
	return sub, nil
}
