// Command ppvload is a load generator for the fastppvd daemon: it replays a
// Zipfian-skewed query workload against the HTTP API with a configurable
// concurrency, then reports client-side throughput and latency percentiles
// together with the server's own cache and admission statistics.
//
//	ppvload -addr http://localhost:8080 -requests 5000 -concurrency 16 -zipf 1.2
//
// -addr accepts a comma-separated target list, which load-tests a cluster end
// to end: point it at the router for the full scatter-gather path, or at the
// shard daemons directly to compare per-shard latency. With multiple targets
// requests round-robin across them and latency percentiles are reported per
// target as well as overall. Every response's reported L1 error bound is
// collected, so the output also shows error-bound percentiles — with a
// degraded cluster (a shard down) the widened bounds are visible immediately.
// Failures are counted per structured error code (internal/api), separating
// admission rejection from shard-down degradation and client mistakes.
//
// -update-every N mixes writes into the workload: every Nth request becomes a
// POST /v1/update adding one random edge (sent to the first target — the
// router in a cluster, which fans it out to the shards). Update latency is
// reported with its own percentiles, and update failures appear in the
// per-code breakdown, so epoch-divergence drills (a shard refusing a batch)
// are visible immediately.
//
// -slow-ms sets a client-side slow threshold (default 250ms): queries over it
// are counted, and the slowest one's server-retained trace id (from the
// X-Fastppv-Trace response header) is printed ready to paste into
// GET /v1/debug/trace/{id}.
//
// -json FILE additionally writes a machine-readable report in the shared
// BENCH_*.json schema (internal/benchfmt), so ad-hoc runs are directly
// comparable with the standing CI benchmark artifacts; "-json -" writes the
// report to stdout and moves the human-readable summary to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"fastppv/internal/api"
	"fastppv/internal/benchfmt"
	"fastppv/internal/telemetry"
	"fastppv/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ppvload: %v\n", err)
		os.Exit(1)
	}
}

// serverStats mirrors the slice of /v1/stats the client reports.
type serverStats struct {
	Graph struct {
		Nodes int `json:"nodes"`
	} `json:"graph"`
	Shard string `json:"shard"`
	Cache *struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
		Bytes   int64 `json:"bytes"`
	} `json:"cache"`
	BlockCache *struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Loads   int64 `json:"loads"`
		Entries int   `json:"entries"`
		Bytes   int64 `json:"bytes"`
	} `json:"block_cache"`
	Cluster *struct {
		ShardsHealthy    int    `json:"shards_healthy"`
		Transport        string `json:"transport"`
		SpeculationsSent int64  `json:"speculations_sent"`
		SpeculationHits  int64  `json:"speculation_hits"`
		WireBytesSent    int64  `json:"wire_bytes_sent"`
		WireBytesRecv    int64  `json:"wire_bytes_received"`
		Shards           []struct {
			Shard         int     `json:"shard"`
			Target        string  `json:"target"`
			Healthy       bool    `json:"healthy"`
			Requests      int64   `json:"requests"`
			Failures      int64   `json:"failures"`
			MeanLatencyMS float64 `json:"mean_latency_ms"`
			Transport     struct {
				Kind             string `json:"kind"`
				StreamConnected  bool   `json:"stream_connected"`
				Reconnects       int64  `json:"reconnects"`
				FallbackRequests int64  `json:"fallback_requests"`
			} `json:"transport"`
		} `json:"shards"`
	} `json:"cluster"`
	Admission struct {
		Admitted int64 `json:"admitted"`
		Degraded int64 `json:"degraded"`
	} `json:"admission"`
	Coalesced int64 `json:"coalesced"`
}

type outcome struct {
	target    int
	latency   time.Duration
	state     string // X-Fastppv-Cache
	traceID   string // X-Fastppv-Trace: set when the server retained this query's trace
	isUpdate  bool
	degraded  bool
	bound     float64
	bytes     int
	errCode   string
	err       error
	shardsOff int
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppvload", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the fastppvd daemon, or a comma-separated list of targets (router and/or shards)")
	requests := fs.Int("requests", 2000, "total number of queries to send")
	concurrency := fs.Int("concurrency", 8, "concurrent client workers")
	zipfS := fs.Float64("zipf", workload.DefaultZipfS, "Zipf exponent of the query skew (>1)")
	eta := fs.Int("eta", 2, "online iterations per query")
	top := fs.Int("top", 10, "ranked results per query")
	updateEvery := fs.Int("update-every", 0, "make every Nth request a one-edge graph update posted to the first target (0 disables)")
	slowMS := fs.Float64("slow-ms", 250, "client-side latency past which a query counts as slow in the summary and JSON report (negative disables)")
	seed := fs.Int64("seed", 1, "workload seed")
	jsonOut := fs.String("json", "", "write a BENCH_*.json-schema report (internal/benchfmt) to this file; \"-\" writes it to stdout")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	fs.Parse(args)
	if *requests < 1 || *concurrency < 1 {
		return fmt.Errorf("requests and concurrency must be positive")
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel, "ppvload")
	if err != nil {
		return err
	}
	// The human-readable summary goes to stdout, unless the machine-readable
	// report claims stdout ("-json -"); then the summary moves to stderr so
	// the JSON stays parseable.
	out := io.Writer(os.Stdout)
	if *jsonOut == "-" {
		out = os.Stderr
	}
	targets := strings.Split(*addr, ",")
	for i := range targets {
		var err error
		if targets[i], err = api.NormalizeTarget(targets[i]); err != nil {
			return fmt.Errorf("-addr: %w", err)
		}
	}

	before := make([]*serverStats, len(targets))
	numNodes := 0
	isRouter := false
	for i, tgt := range targets {
		st, err := fetchStats(tgt)
		if err != nil {
			return fmt.Errorf("fetching %s/v1/stats (is fastppvd running?): %w", tgt, err)
		}
		before[i] = st
		if st.Graph.Nodes > numNodes {
			numNodes = st.Graph.Nodes
		}
		if st.Cluster != nil {
			isRouter = true
		}
	}
	if numNodes < 1 {
		return fmt.Errorf("no target reports a non-empty graph")
	}
	logger.Info("starting load",
		"targets", strings.Join(targets, ","), "nodes", numNodes,
		"requests", *requests, "concurrency", *concurrency, "zipf", *zipfS)

	outcomes := make([]outcome, *requests)
	var next int
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= *requests {
			return -1
		}
		next++
		return next - 1
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		sampler, err := workload.NewZipfSampler(numNodes, workload.ZipfOptions{
			S:    *zipfS,
			Seed: *seed + int64(w),
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				if *updateEvery > 0 && (i+1)%*updateEvery == 0 {
					// Updates go to the first target: the router in a cluster
					// drill, so the batch fans out to every shard.
					from, to := int(sampler.Next()), int(sampler.Next())
					if from == to {
						to = (to + 1) % numNodes
					}
					body := fmt.Sprintf(`{"added_edges":[[%d,%d]]}`, from, to)
					t0 := time.Now()
					resp, err := client.Post(targets[0]+"/v1/update", "application/json", strings.NewReader(body))
					o := outcome{target: 0, isUpdate: true}
					if err != nil {
						o.err, o.errCode = err, "transport"
						outcomes[i] = o
						continue
					}
					if resp.StatusCode != http.StatusOK {
						var eresp api.ErrorResponse
						decErr := json.NewDecoder(resp.Body).Decode(&eresp)
						o.err = fmt.Errorf("status %d", resp.StatusCode)
						if decErr == nil && eresp.Error.Code != "" {
							o.errCode = eresp.Error.Code
						} else {
							o.errCode = fmt.Sprintf("http_%d", resp.StatusCode)
						}
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					o.latency = time.Since(t0)
					outcomes[i] = o
					continue
				}
				tgt := i % len(targets)
				node := sampler.Next()
				url := fmt.Sprintf("%s/v1/ppv?node=%d&eta=%d&top=%d", targets[tgt], node, *eta, *top)
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					// A connect/timeout failure has no server error code;
					// bucket it so the per-code breakdown stays complete
					// during shard-kill drills.
					outcomes[i] = outcome{target: tgt, err: err, errCode: "transport"}
					continue
				}
				o := outcome{target: tgt}
				if resp.StatusCode != http.StatusOK {
					var eresp api.ErrorResponse
					decErr := json.NewDecoder(resp.Body).Decode(&eresp)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					o.err = fmt.Errorf("status %d", resp.StatusCode)
					if decErr == nil && eresp.Error.Code != "" {
						o.errCode = eresp.Error.Code
					} else {
						o.errCode = fmt.Sprintf("http_%d", resp.StatusCode)
					}
					outcomes[i] = o
					continue
				}
				raw, readErr := io.ReadAll(resp.Body)
				resp.Body.Close()
				var body struct {
					Degraded     bool    `json:"degraded"`
					ShardsDown   int     `json:"shards_down"`
					L1ErrorBound float64 `json:"l1_error_bound"`
				}
				decErr := readErr
				if decErr == nil {
					decErr = json.Unmarshal(raw, &body)
				}
				o.latency = time.Since(t0)
				o.state = resp.Header.Get("X-Fastppv-Cache")
				o.traceID = resp.Header.Get(api.TraceHeader)
				o.bytes = len(raw)
				o.degraded = body.Degraded
				o.shardsOff = body.ShardsDown
				o.bound = body.L1ErrorBound
				if decErr != nil {
					o.err = decErr
				}
				outcomes[i] = o
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies, updLatencies []time.Duration
	var bounds []float64
	var queryBytes int64
	perTarget := make([][]time.Duration, len(targets))
	states := map[string]int{}
	errCodes := map[string]int{}
	failures, updFailures, degraded, shardsDownMax := 0, 0, 0, 0
	slowThreshold := time.Duration(*slowMS * float64(time.Millisecond))
	slowCount, worstTraceID := 0, ""
	var worstSlow time.Duration
	for _, o := range outcomes {
		if o.err != nil {
			failures++
			if o.isUpdate {
				updFailures++
			}
			if o.errCode != "" {
				errCodes[o.errCode]++
			}
			continue
		}
		if o.isUpdate {
			updLatencies = append(updLatencies, o.latency)
			continue
		}
		latencies = append(latencies, o.latency)
		perTarget[o.target] = append(perTarget[o.target], o.latency)
		bounds = append(bounds, o.bound)
		queryBytes += int64(o.bytes)
		states[o.state]++
		if o.degraded {
			degraded++
		}
		if o.shardsOff > shardsDownMax {
			shardsDownMax = o.shardsOff
		}
		if slowThreshold > 0 && o.latency > slowThreshold {
			slowCount++
			// Prefer the slowest query the server retained a trace for, so
			// the reported id is always resolvable via /v1/debug/trace/{id}.
			if o.traceID != "" && (worstTraceID == "" || o.latency > worstSlow) {
				worstSlow, worstTraceID = o.latency, o.traceID
			}
		}
	}
	if len(latencies) == 0 && len(updLatencies) == 0 {
		return fmt.Errorf("all %d requests failed (%v)", *requests, errCodes)
	}

	fmt.Fprintf(out, "sent %d requests in %v: %.1f req/s (%d failed)\n",
		*requests, elapsed.Round(time.Millisecond),
		float64(len(latencies)+len(updLatencies))/elapsed.Seconds(), failures)
	if len(errCodes) > 0 {
		codes := make([]string, 0, len(errCodes))
		for c := range errCodes {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		parts := make([]string, 0, len(codes))
		for _, c := range codes {
			parts = append(parts, fmt.Sprintf("%s=%d", c, errCodes[c]))
		}
		fmt.Fprintf(out, "failures by code: %s\n", strings.Join(parts, " "))
	}
	if len(latencies) > 0 {
		fmt.Fprintf(out, "latency: %s\n", latencyLine(latencies))
	}
	if len(updLatencies) > 0 || updFailures > 0 {
		if len(updLatencies) > 0 {
			fmt.Fprintf(out, "update latency: %s (%d applied, %d failed)\n",
				latencyLine(updLatencies), len(updLatencies), updFailures)
		} else {
			fmt.Fprintf(out, "updates: all %d failed\n", updFailures)
		}
	}
	if len(targets) > 1 {
		for i, tgt := range targets {
			if len(perTarget[i]) == 0 {
				fmt.Fprintf(out, "  target %s: no successful requests\n", tgt)
				continue
			}
			fmt.Fprintf(out, "  target %s: %s (%d ok)\n", tgt, latencyLine(perTarget[i]), len(perTarget[i]))
		}
	}
	if len(bounds) > 0 {
		sort.Float64s(bounds)
		fpct := func(q float64) float64 { return bounds[int(q*float64(len(bounds)-1))] }
		fmt.Fprintf(out, "error bound: p50=%.4f p90=%.4f p99=%.4f max=%.4f\n",
			fpct(0.50), fpct(0.90), fpct(0.99), bounds[len(bounds)-1])
		fmt.Fprintf(out, "responses: hit=%d miss=%d coalesced=%d degraded=%d (max shards down %d)\n",
			states["hit"], states["miss"], states["coalesced"], degraded, shardsDownMax)
	}
	if slowThreshold > 0 && slowCount > 0 {
		line := fmt.Sprintf("slow queries (>%v): %d", slowThreshold, slowCount)
		if worstTraceID != "" {
			line += fmt.Sprintf(", worst retained trace %s (%v) — GET /v1/debug/trace/%s",
				worstTraceID, worstSlow.Round(time.Microsecond), worstTraceID)
		}
		fmt.Fprintln(out, line)
	}

	for i, tgt := range targets {
		if err := reportTarget(out, tgt, before[i], len(targets) > 1); err != nil {
			return err
		}
	}

	if *jsonOut != "" {
		mode := "engine"
		if isRouter {
			mode = "router"
		}
		hitRate := 0.0
		if len(latencies) > 0 {
			hitRate = float64(states["hit"]) / float64(len(latencies))
		}
		bytesPerQuery := 0.0
		if len(latencies) > 0 {
			bytesPerQuery = float64(queryBytes) / float64(len(latencies))
		}
		report := &benchfmt.Report{
			Source:    "ppvload",
			Mode:      mode,
			Timestamp: time.Now().UTC(),
			Graph:     benchfmt.GraphInfo{Nodes: numNodes},
			Workload: benchfmt.WorkloadInfo{
				Requests:    *requests,
				Concurrency: *concurrency,
				ZipfS:       *zipfS,
				Eta:         *eta,
				Top:         *top,
			},
			QPS:           float64(len(latencies)+len(updLatencies)) / elapsed.Seconds(),
			LatencyMS:     benchfmt.SummarizeDurations(latencies),
			BytesPerQuery: bytesPerQuery,
			ErrorBound:    benchfmt.Summarize(bounds),
			CacheHitRate:  hitRate,
			Failures:      failures,
			SlowQueries:   slowCount,
			WorstTraceID:  worstTraceID,
		}
		if err := benchfmt.WriteFile(*jsonOut, report); err != nil {
			return err
		}
		if *jsonOut != "-" {
			logger.Info("wrote bench report", "path", *jsonOut)
		}
	}
	return nil
}

func latencyLine(lat []time.Duration) string {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
	return fmt.Sprintf("p50=%v p90=%v p99=%v max=%v",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
}

// reportTarget prints the server-side statistics delta for one target.
func reportTarget(out io.Writer, tgt string, before *serverStats, prefix bool) error {
	after, err := fetchStats(tgt)
	if err != nil {
		// A target may legitimately be down by the end of a failure drill.
		fmt.Fprintf(out, "%s unreachable for final stats: %v\n", tgt, err)
		return nil
	}
	pfx := ""
	if prefix {
		pfx = tgt + " "
	}
	if after.Shard != "" {
		fmt.Fprintf(out, "%sserving hub partition %s\n", pfx, after.Shard)
	}
	if after.Cache != nil && before.Cache != nil {
		hits := after.Cache.Hits - before.Cache.Hits
		misses := after.Cache.Misses - before.Cache.Misses
		total := hits + misses
		rate := 0.0
		if total > 0 {
			rate = float64(hits) / float64(total)
		}
		fmt.Fprintf(out, "%sserver cache: %.1f%% hit rate this run (%d entries, %.2f MB held)\n",
			pfx, rate*100, after.Cache.Entries, float64(after.Cache.Bytes)/(1<<20))
	}
	if after.BlockCache != nil {
		bc := after.BlockCache
		var b struct{ hits, misses int64 }
		if before.BlockCache != nil {
			b.hits, b.misses = before.BlockCache.Hits, before.BlockCache.Misses
		}
		hits := bc.Hits - b.hits
		misses := bc.Misses - b.misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(out, "%sserver block cache: %.1f%% hub-block hit rate this run (%d blocks, %.2f MB held, %d disk loads lifetime)\n",
			pfx, rate*100, bc.Entries, float64(bc.Bytes)/(1<<20), bc.Loads)
	}
	if after.Cluster != nil {
		c := after.Cluster
		specRate := 0.0
		if c.SpeculationsSent > 0 {
			specRate = float64(c.SpeculationHits) / float64(c.SpeculationsSent)
		}
		fmt.Fprintf(out, "%scluster: %d/%d shards healthy, %s transport, %.1f%% speculation hit rate, %.2f MB on the wire (lifetime)\n",
			pfx, c.ShardsHealthy, len(c.Shards), c.Transport, specRate*100,
			float64(c.WireBytesSent+c.WireBytesRecv)/(1<<20))
		for _, sh := range c.Shards {
			link := sh.Transport.Kind
			if sh.Transport.StreamConnected {
				link = "stream up"
			} else if sh.Transport.Kind == "binary" {
				link = "stream down"
			}
			if sh.Transport.FallbackRequests > 0 {
				link += fmt.Sprintf(", %d JSON fallbacks", sh.Transport.FallbackRequests)
			}
			if sh.Transport.Reconnects > 0 {
				link += fmt.Sprintf(", %d reconnects", sh.Transport.Reconnects)
			}
			fmt.Fprintf(out, "%s  shard %d %s: healthy=%v %s requests=%d failures=%d mean=%.2fms\n",
				pfx, sh.Shard, sh.Target, sh.Healthy, "("+link+")", sh.Requests, sh.Failures, sh.MeanLatencyMS)
		}
	}
	fmt.Fprintf(out, "%sserver admission: admitted=%d degraded=%d coalesced=%d (lifetime)\n",
		pfx, after.Admission.Admitted, after.Admission.Degraded, after.Coalesced)
	return nil
}

func fetchStats(addr string) (*serverStats, error) {
	resp, err := http.Get(addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/stats returned %d", resp.StatusCode)
	}
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
