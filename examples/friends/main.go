// Command friends reproduces Scenario 2 of the paper's introduction: friend
// recommendation on a social network. It generates a synthetic directed
// friendship graph, picks a user, and uses FastPPV to recommend new friends —
// the highest-ranked users the query user has not already befriended. It also
// demonstrates incremental index maintenance: after the user adds a friend,
// only the affected hub prime PPVs are recomputed and the recommendations are
// refreshed.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"fastppv"
)

func main() {
	var (
		users = flag.Int("users", 20000, "number of users")
		deg   = flag.Int("deg", 8, "average number of declared friends")
		hubs  = flag.Int("hubs", 2000, "number of hub nodes to index")
		eta   = flag.Int("eta", 2, "number of online iterations")
		seed  = flag.Int64("seed", 7, "generator seed")
	)
	flag.Parse()

	g := buildSocialGraph(*users, *deg, *seed)
	fmt.Println(g.Stats())

	engine, err := fastppv.New(g, fastppv.Options{NumHubs: *hubs})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		log.Fatal(err)
	}
	off := engine.OfflineStats()
	fmt.Printf("offline: %d hubs indexed in %v (%.2f MB)\n",
		off.Hubs, off.Total.Round(1000000), float64(off.IndexBytes)/(1<<20))

	query := fastppv.NodeID(1)
	fmt.Printf("\nrecommendations for %s:\n", g.Label(query))
	recs := recommend(engine, g, query, *eta, 10)
	for i, e := range recs {
		fmt.Printf("  %2d. %-10s score %.5f\n", i+1, g.Label(e.Node), e.Score)
	}

	// The user follows the top recommendation; maintain the index
	// incrementally and refresh the recommendations.
	if len(recs) > 0 {
		newFriend := recs[0].Node
		fmt.Printf("\n%s adds %s as a friend — applying the update incrementally\n",
			g.Label(query), g.Label(newFriend))
		stats, err := engine.ApplyUpdate(fastppv.GraphUpdate{
			AddedEdges: []fastppv.Edge{{From: query, To: newFriend}},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("update: %d hub prime PPVs recomputed, %d reused (%v)\n",
			stats.AffectedHubs, stats.UnaffectedHubs, stats.Duration.Round(1000000))
		fmt.Printf("\nrefreshed recommendations for %s:\n", g.Label(query))
		for i, e := range recommend(engine, engine.Graph(), query, *eta, 10) {
			fmt.Printf("  %2d. %-10s score %.5f\n", i+1, g.Label(e.Node), e.Score)
		}
	}
}

// recommend ranks users by personalized PageRank and filters out the query
// user and everyone they already follow.
func recommend(engine *fastppv.Engine, g *fastppv.Graph, query fastppv.NodeID, eta, k int) []fastppv.Entry {
	res, err := engine.Query(query, fastppv.StopCondition{MaxIterations: eta})
	if err != nil {
		log.Fatal(err)
	}
	already := make(map[fastppv.NodeID]bool)
	already[query] = true
	for _, f := range g.OutNeighbors(query) {
		already[f] = true
	}
	var out []fastppv.Entry
	for _, e := range res.Estimate.TopK(k + len(already) + 16) {
		if already[e.Node] {
			continue
		}
		out = append(out, e)
		if len(out) == k {
			break
		}
	}
	return out
}

// buildSocialGraph generates a directed preferential-attachment friendship
// graph using only the public API.
func buildSocialGraph(users, avgDeg int, seed int64) *fastppv.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := fastppv.NewBuilder(true)
	for i := 0; i < users; i++ {
		b.AddLabeledNode(fmt.Sprintf("user/%d", i))
	}
	var pool []fastppv.NodeID
	for u := 0; u < users; u++ {
		friends := 1 + rng.Intn(2*avgDeg-1)
		for f := 0; f < friends; f++ {
			var v fastppv.NodeID
			if len(pool) > 0 && rng.Float64() < 0.8 {
				v = pool[rng.Intn(len(pool))]
			} else {
				v = fastppv.NodeID(rng.Intn(users))
			}
			if v == fastppv.NodeID(u) {
				continue
			}
			b.MustAddEdge(fastppv.NodeID(u), v)
			pool = append(pool, v)
		}
	}
	return b.Finalize()
}
