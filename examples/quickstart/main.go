// Command quickstart is the smallest end-to-end FastPPV example: it builds
// the running-example graph of the paper (Fig. 1), precomputes the hub index,
// and ranks all nodes with respect to a query node, printing the estimate
// after each incremental iteration together with the accuracy-aware L1 error
// bound.
package main

import (
	"fmt"
	"log"

	"fastppv"
)

func main() {
	// Build the 8-node running example of the paper: node a fans out to b, c,
	// d, f, h; the high out-degree nodes are selected as hubs below.
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	b := fastppv.NewBuilder(true)
	id := make(map[string]fastppv.NodeID, len(names))
	for _, n := range names {
		id[n] = b.AddLabeledNode(n)
	}
	edges := [][2]string{
		{"a", "b"}, {"a", "c"}, {"a", "d"}, {"a", "f"}, {"a", "h"},
		{"b", "c"}, {"b", "d"}, {"b", "e"},
		{"d", "c"}, {"d", "e"},
		{"f", "d"}, {"f", "g"},
		{"g", "d"},
		{"h", "c"},
	}
	for _, e := range edges {
		b.MustAddEdge(id[e[0]], id[e[1]])
	}
	g := b.Finalize()
	fmt.Println(g.Stats())

	// Precompute the hub index: three hubs selected by expected utility.
	engine, err := fastppv.New(g, fastppv.Options{NumHubs: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hubs selected: ")
	for _, h := range engine.Hubs().Hubs() {
		fmt.Printf("%s ", g.Label(h))
	}
	fmt.Println()

	// Query node a incrementally: print the ranking and the computable error
	// bound after every iteration.
	query := id["a"]
	qs, err := engine.NewQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	for iter := 0; iter <= 3; iter++ {
		res := qs.Result()
		fmt.Printf("\nafter iteration %d (L1 error bound %.4f):\n", iter, res.L1ErrorBound)
		for rank, e := range res.Estimate.TopK(5) {
			fmt.Printf("  %d. %-2s %.4f\n", rank+1, g.Label(e.Node), e.Score)
		}
		if qs.Exhausted() {
			fmt.Println("\nall tour partitions processed — the estimate is now exact")
			break
		}
		qs.Step()
	}

	// Compare with the exact PPV computed by power iteration.
	exact, err := fastppv.ExactPPV(g, query, fastppv.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}
	report := fastppv.Evaluate(exact, qs.Result().Estimate, 5)
	fmt.Printf("\naccuracy vs exact PPV: kendall=%.3f precision=%.3f rag=%.3f l1sim=%.4f\n",
		report.KendallTau, report.Precision, report.RAG, report.L1Similarity)
}
