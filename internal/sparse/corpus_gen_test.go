package sparse

import (
	"math"
	"testing"

	"fastppv/internal/corpus"
	"fastppv/internal/graph"
)

// TestRegenEncodedCorpus writes the committed seed corpus of
// FuzzEncodedRoundTrip. Gated behind PPV_REGEN_CORPUS=1.
func TestRegenEncodedCorpus(t *testing.T) {
	corpus.SkipUnlessRegen(t)
	entries := func(pairs ...float64) []byte {
		buf := make([]byte, (len(pairs)/2)*EncodedEntrySize)
		for i := 0; i+1 < len(pairs); i += 2 {
			PutEncodedEntry(buf[(i/2)*EncodedEntrySize:],
				graph.NodeID(pairs[i]), pairs[i+1])
		}
		return buf
	}
	corpus.Write(t, "FuzzEncodedRoundTrip",
		entries(1, 0.5, 2, 0.25, 3, 0.125),
		entries(7, -0.0, 7, 0.0), // duplicate id, signed zero
		entries(0, math.Inf(1), 4294967295, math.SmallestNonzeroFloat64),
		entries(5, 1e300, 6, 2.0)[:EncodedEntrySize+3], // ragged tail
		nil,
	)
}
