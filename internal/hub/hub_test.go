package hub

import (
	"testing"

	"fastppv/internal/graph"
)

// fanGraph builds a graph where node 0 has the highest out-degree, node 1 the
// highest in-degree, and the rest are leaves:
//
//	0 -> {2..9}, {2..9} -> 1, 1 -> 0
func fanGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(true)
	b.EnsureNodes(10)
	for i := 2; i < 10; i++ {
		b.MustAddEdge(0, graph.NodeID(i))
		b.MustAddEdge(graph.NodeID(i), 1)
	}
	b.MustAddEdge(1, 0)
	return b.Finalize()
}

func TestSelectByOutDegree(t *testing.T) {
	g := fanGraph(t)
	set, err := Select(g, Options{Policy: ByOutDegree, Count: 1})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if !set.Contains(0) {
		t.Errorf("out-degree policy should pick node 0, got %v", set.Hubs())
	}
}

func TestSelectByInDegree(t *testing.T) {
	g := fanGraph(t)
	set, err := Select(g, Options{Policy: ByInDegree, Count: 1})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if !set.Contains(1) {
		t.Errorf("in-degree policy should pick node 1, got %v", set.Hubs())
	}
}

func TestSelectByPageRankAndExpectedUtility(t *testing.T) {
	g := fanGraph(t)
	pr, err := Select(g, Options{Policy: ByPageRank, Count: 2})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	// Nodes 0 and 1 dominate the cycle structure; both should be chosen.
	if !pr.Contains(0) || !pr.Contains(1) {
		t.Errorf("PageRank policy chose %v, want {0,1}", pr.Hubs())
	}
	eu, err := Select(g, Options{Policy: ExpectedUtility, Count: 1})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	// Expected utility multiplies popularity by out-degree; node 0 (high
	// PageRank and out-degree 8) must win over node 1 (out-degree 1).
	if !eu.Contains(0) {
		t.Errorf("expected-utility policy chose %v, want node 0", eu.Hubs())
	}
}

func TestSelectWithPrecomputedPageRank(t *testing.T) {
	g := fanGraph(t)
	pr := make([]float64, g.NumNodes())
	pr[7] = 1 // pretend node 7 is the most popular
	set, err := Select(g, Options{Policy: ByPageRank, Count: 1, PageRank: pr})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if !set.Contains(7) {
		t.Errorf("supplied PageRank should drive selection, got %v", set.Hubs())
	}
	if _, err := Select(g, Options{Policy: ByPageRank, Count: 1, PageRank: []float64{1}}); err == nil {
		t.Error("mismatched PageRank length should fail")
	}
}

func TestSelectRandomDeterministicPerSeed(t *testing.T) {
	g := fanGraph(t)
	a, err := Select(g, Options{Policy: Random, Count: 4, Seed: 5})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	b, err := Select(g, Options{Policy: Random, Count: 4, Seed: 5})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(a.Hubs()) != 4 || len(b.Hubs()) != 4 {
		t.Fatalf("random selection returned %d/%d hubs, want 4", len(a.Hubs()), len(b.Hubs()))
	}
	for i := range a.Hubs() {
		if a.Hubs()[i] != b.Hubs()[i] {
			t.Fatal("random selection is not deterministic for a fixed seed")
		}
	}
}

func TestSelectCountClamping(t *testing.T) {
	g := fanGraph(t)
	set, err := Select(g, Options{Policy: ByOutDegree, Count: 100})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if set.Size() != g.NumNodes() {
		t.Errorf("oversized count should clamp to %d, got %d", g.NumNodes(), set.Size())
	}
	empty, err := Select(g, Options{Policy: ByOutDegree, Count: 0})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if empty.Size() != 0 {
		t.Errorf("count 0 should produce an empty set")
	}
	if _, err := Select(g, Options{Policy: ByOutDegree, Count: -1}); err == nil {
		t.Error("negative count should fail")
	}
}

func TestSetMembership(t *testing.T) {
	set := NewSet([]graph.NodeID{3, 5})
	if !set.Contains(3) || !set.Contains(5) || set.Contains(4) {
		t.Error("Set membership is wrong")
	}
	var nilSet *Set
	if nilSet.Contains(1) {
		t.Error("nil Set should contain nothing")
	}
	if nilSet.Size() != 0 {
		t.Error("nil Set should have size 0")
	}
}

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range []Policy{ExpectedUtility, ByPageRank, ByOutDegree, ByInDegree, Random} {
		s := p.String()
		parsed, err := ParsePolicy(s)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
			continue
		}
		if parsed != p {
			t.Errorf("ParsePolicy(%q) = %v, want %v", s, parsed, p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy should reject unknown names")
	}
}

func TestSuggestHubCount(t *testing.T) {
	g := fanGraph(t)
	if got := SuggestHubCount(g, 0, 0); got < 1 || got > g.NumNodes() {
		t.Errorf("SuggestHubCount default = %d, want within (0,%d]", got, g.NumNodes())
	}
	// A tiny per-query budget demands many hubs, but never more than half the
	// nodes.
	if got := SuggestHubCount(g, 1, 1); got != g.NumNodes()/2 {
		t.Errorf("SuggestHubCount with tiny budget = %d, want %d", got, g.NumNodes()/2)
	}
	// A huge budget falls back to the minimum.
	if got := SuggestHubCount(g, 1<<30, 4); got != 4 {
		t.Errorf("SuggestHubCount with huge budget = %d, want the minimum 4", got)
	}
}
