package api

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"fastppv/internal/graph"
)

func randVector(rng *rand.Rand, n int) Vector {
	seen := map[graph.NodeID]bool{}
	v := Vector{}
	for len(v.Nodes) < n {
		id := graph.NodeID(rng.Intn(1 << 20))
		if seen[id] {
			continue
		}
		seen[id] = true
		v.Nodes = append(v.Nodes, id)
	}
	// Encoder requires ascending ids, like EncodeVector produces.
	for i := 1; i < len(v.Nodes); i++ {
		for j := i; j > 0 && v.Nodes[j] < v.Nodes[j-1]; j-- {
			v.Nodes[j], v.Nodes[j-1] = v.Nodes[j-1], v.Nodes[j]
		}
	}
	for range v.Nodes {
		v.Scores = append(v.Scores, rng.Float64()*math.Pow(10, float64(rng.Intn(30)-15)))
	}
	return v
}

func TestBinaryPartialRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := graph.NodeID(12345)
	root := &PartialRequest{Query: &q}
	fr := randVector(rng, 257)
	exp := &PartialRequest{Frontier: &fr, Iteration: 7, Speculative: true, FrontierHash: fr.Hash()}
	for _, tc := range []struct {
		name  string
		id    uint64
		trace string
		preq  *PartialRequest
	}{
		{"root", 1, "trace-abc", root},
		{"expand", 1 << 40, "", exp},
	} {
		payload, err := EncodePartialRequest(tc.id, tc.trace, tc.preq)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		id, trace, got, err := DecodePartialRequest(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if id != tc.id || trace != tc.trace {
			t.Fatalf("%s: id/trace = %d/%q, want %d/%q", tc.name, id, trace, tc.id, tc.trace)
		}
		if tc.preq.Query != nil {
			if got.Query == nil || *got.Query != *tc.preq.Query {
				t.Fatalf("%s: query mismatch", tc.name)
			}
		} else {
			if got.Frontier == nil || got.Iteration != tc.preq.Iteration ||
				got.Speculative != tc.preq.Speculative || got.FrontierHash != tc.preq.FrontierHash {
				t.Fatalf("%s: metadata mismatch: %+v", tc.name, got)
			}
			assertVectorExact(t, *got.Frontier, *tc.preq.Frontier)
		}
	}
}

func assertVectorExact(t *testing.T, got, want Vector) {
	t.Helper()
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("vector length %d, want %d", len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("node[%d] = %d, want %d", i, got.Nodes[i], want.Nodes[i])
		}
		if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("score[%d] bits differ: %x vs %x", i,
				math.Float64bits(got.Scores[i]), math.Float64bits(want.Scores[i]))
		}
	}
}

func TestBinaryPartialResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	presp := &PartialResponse{
		Shard: 1, Shards: 2, Epoch: 99,
		Increment:    randVector(rng, 513),
		Frontier:     randVector(rng, 31),
		HubsExpanded: 12, HubsSkipped: 3,
		Unowned:   []graph.NodeID{4, 7, 1000000},
		FromIndex: true,
		ComputeMS: 1.25e-3,
	}
	payload, err := EncodePartialResponse(42, presp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	id, got, err := DecodePartialResponse(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if id != 42 {
		t.Fatalf("id = %d, want 42", id)
	}
	if got.Shard != 1 || got.Shards != 2 || got.Epoch != 99 ||
		got.HubsExpanded != 12 || got.HubsSkipped != 3 || !got.FromIndex ||
		got.ComputeMS != presp.ComputeMS {
		t.Fatalf("scalar mismatch: %+v", got)
	}
	assertVectorExact(t, got.Increment, presp.Increment)
	assertVectorExact(t, got.Frontier, presp.Frontier)
	if len(got.Unowned) != 3 || got.Unowned[2] != 1000000 {
		t.Fatalf("unowned mismatch: %v", got.Unowned)
	}
}

func TestBinaryErrorAndCancelRoundTrip(t *testing.T) {
	payload := EncodeError(9, &Error{Code: CodeRetry, Message: "index closed"})
	id, e, err := DecodeError(payload)
	if err != nil || id != 9 || e.Code != CodeRetry || e.Message != "index closed" {
		t.Fatalf("error round trip: id=%d e=%+v err=%v", id, e, err)
	}
	id, h, err := DecodeCancel(EncodeCancel(5, 0xdeadbeefcafe))
	if err != nil || id != 5 || h != 0xdeadbeefcafe {
		t.Fatalf("cancel round trip: id=%d h=%x err=%v", id, h, err)
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	payload := EncodeError(1, &Error{Code: CodeInternal, Message: "x"})
	var buf bytes.Buffer
	wrote, err := WriteFrame(&buf, FrameError, payload)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	if wrote != len(raw) {
		t.Fatalf("wrote %d bytes, frame is %d", wrote, len(raw))
	}

	ftype, got, n, err := ReadFrame(bytes.NewReader(raw))
	if err != nil || ftype != FrameError || n != len(raw) || !bytes.Equal(got, payload) {
		t.Fatalf("read: type=%d n=%d err=%v", ftype, n, err)
	}

	// Clean EOF at a frame boundary is io.EOF, not a framing error.
	if _, _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err=%v, want io.EOF", err)
	}

	// Every kind of damage must surface as ErrBadFrame — never a panic, and
	// never silently decoded.
	for name, corrupt := range map[string][]byte{
		"flipped payload bit": flipBit(raw, 12),
		"flipped crc bit":     flipBit(raw, len(raw)-1),
		"bad magic":           flipBit(raw, 0),
		"truncated mid-frame": raw[:len(raw)-3],
		"header only":         raw[:6],
	} {
		_, _, _, err := ReadFrame(bytes.NewReader(corrupt))
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err=%v, want ErrBadFrame", name, err)
		}
	}

	// A declared payload length beyond the limit is rejected before allocation.
	huge := append([]byte(nil), raw...)
	huge[5], huge[6], huge[7], huge[8] = 0xff, 0xff, 0xff, 0x7f
	if _, _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized length: err=%v, want ErrBadFrame", err)
	}
}

func flipBit(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x40
	return c
}

func TestBinaryDecodeTruncatedPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fr := randVector(rng, 64)
	reqPayload, err := EncodePartialRequest(3, "t", &PartialRequest{Frontier: &fr, Iteration: 2})
	if err != nil {
		t.Fatal(err)
	}
	respPayload, err := EncodePartialResponse(4, &PartialResponse{
		Increment: fr, Frontier: randVector(rng, 8), Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, decode := range map[string]func([]byte) error{
		"request": func(p []byte) error {
			_, _, _, err := DecodePartialRequest(p)
			return err
		},
		"response": func(p []byte) error {
			_, _, err := DecodePartialResponse(p)
			return err
		},
	} {
		payload := reqPayload
		if name == "response" {
			payload = respPayload
		}
		// Every strict prefix must fail cleanly, not panic or mis-decode.
		for cut := 0; cut < len(payload); cut++ {
			if err := decode(payload[:cut]); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("%s truncated at %d: err=%v, want ErrBadFrame", name, cut, err)
			}
		}
		if err := decode(payload); err != nil {
			t.Fatalf("%s full payload: %v", name, err)
		}
	}
}

func TestVectorHashDistinguishesContent(t *testing.T) {
	v := Vector{Nodes: []graph.NodeID{1, 2}, Scores: []float64{0.5, 0.25}}
	same := Vector{Nodes: []graph.NodeID{1, 2}, Scores: []float64{0.5, 0.25}}
	if v.Hash() != same.Hash() {
		t.Fatal("equal vectors must hash equal")
	}
	diffScore := Vector{Nodes: []graph.NodeID{1, 2}, Scores: []float64{0.5, 0.250000001}}
	diffNode := Vector{Nodes: []graph.NodeID{1, 3}, Scores: []float64{0.5, 0.25}}
	if v.Hash() == diffScore.Hash() || v.Hash() == diffNode.Hash() {
		t.Fatal("different vectors should hash differently")
	}
}
