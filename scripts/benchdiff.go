// Command benchdiff compares two BENCH_*.json perf-trajectory artifacts
// (internal/benchfmt schema) and fails when the newer run regressed past a
// tolerance. It is the CI gate that keeps the standing serving benchmark an
// enforced contract rather than a decorative artifact:
//
//	go run ./scripts BENCH_6.json BENCH_7.json
//	go run ./scripts -max-regress 0.10 OLD.json NEW.json
//
// Every headline metric is printed with its relative delta. Two of them gate
// the exit status: warm_read_ns (the per-hub-block read cost on the serving
// hot path) must not rise by more than the tolerance, and qps must not fall
// by more than it. The remaining metrics — tail latency, response size,
// allocations per query — are informational: they move with workload shape
// and host load, so they are surfaced for review instead of hard-failing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fastppv/internal/benchfmt"
)

func main() {
	maxRegress := flag.Float64("max-regress", 0.10,
		"maximum tolerated relative regression of the gated metrics (0.10 = 10%)")
	flag.BoolVar(&allowAdded, "allow-added", false,
		"tolerate gated metrics present only in NEW (additive schema growth along a perf trajectory)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-max-regress frac] [-allow-added] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRep, err := readReport(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRep, err := readReport(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchdiff: %s -> %s (tolerance %.0f%%)\n", flag.Arg(0), flag.Arg(1), *maxRegress*100)
	fmt.Printf("%-18s %14s %14s %9s\n", "metric", "old", "new", "delta")

	failures := 0
	// Gated metrics: lower warm-read cost is better, higher qps is better.
	failures += row("warm_read_ns", oldRep.WarmReadNS, newRep.WarmReadNS, lowerIsBetter, *maxRegress)
	failures += row("qps", oldRep.QPS, newRep.QPS, higherIsBetter, *maxRegress)
	// Cluster-pass metrics (additive in PR 8) compare when both artifacts
	// carry them; a gated metric present in only one artifact fails the run
	// (see row) unless -allow-added covers the NEW-only additive case. The
	// cluster/single ratio is gated instead of the raw cluster p50: the ratio
	// normalizes away host speed, so it tracks transport efficiency alone.
	failures += row("cluster_vs_single", oldRep.ClusterVsSingleRatio, newRep.ClusterVsSingleRatio, lowerIsBetter, *maxRegress)
	failures += row("wire_bytes_per_q", oldRep.WireBytesPerQuery, newRep.WireBytesPerQuery, lowerIsBetter, *maxRegress)
	failures += row("spec_hit_rate", oldRep.SpeculationHitRate, newRep.SpeculationHitRate, higherIsBetter, *maxRegress)
	// Warming-pass metric (additive in PR 9): the block-cache hit rate right
	// after log-driven startup warming must not erode — it is the measured
	// payoff of replaying the persistent query log across a restart.
	failures += row("warm_hit_rate", oldRep.WarmHitRate, newRep.WarmHitRate, higherIsBetter, *maxRegress)
	// Informational metrics.
	row("cluster_p50_ms", oldRep.ClusterP50MS, newRep.ClusterP50MS, lowerIsBetter, 0)
	row("cold_read_ns", oldRep.ColdReadNS, newRep.ColdReadNS, lowerIsBetter, 0)
	row("latency_p50_ms", oldRep.LatencyMS.P50, newRep.LatencyMS.P50, lowerIsBetter, 0)
	row("latency_p99_ms", oldRep.LatencyMS.P99, newRep.LatencyMS.P99, lowerIsBetter, 0)
	row("bytes_per_query", oldRep.BytesPerQuery, newRep.BytesPerQuery, lowerIsBetter, 0)
	row("allocs_per_query", oldRep.AllocsPerQuery, newRep.AllocsPerQuery, lowerIsBetter, 0)
	row("cache_hit_rate", oldRep.CacheHitRate, newRep.CacheHitRate, higherIsBetter, 0)
	row("pool_hit_rate", oldRep.PoolHitRate, newRep.PoolHitRate, higherIsBetter, 0)

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d gated metric(s) failed: regressed more than %.0f%% or present in only one artifact\n",
			failures, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: gated metrics within tolerance")
}

type direction int

const (
	lowerIsBetter direction = iota
	higherIsBetter
)

// allowAdded tolerates gated metrics that only the NEW artifact carries —
// the legitimate shape of a perf trajectory whose schema grew a field.
var allowAdded bool

// row prints one metric comparison and reports 1 when it is gated
// (maxRegress > 0) and either regressed past the tolerance or is present in
// only one artifact. A one-sided gated metric is an error, not an n/a: a
// field that disappeared from NEW means the gate silently stopped measuring
// it, and a field absent from OLD means the artifacts are not comparable
// (unless -allow-added accepts it as additive schema growth). Informational
// metrics (maxRegress == 0) show a zero side as n/a and never gate.
func row(name string, oldV, newV float64, dir direction, maxRegress float64) int {
	if maxRegress > 0 && (oldV == 0) != (newV == 0) {
		if oldV == 0 && allowAdded {
			fmt.Printf("%-18s %14.3f %14.3f %9s\n", name, oldV, newV, "added")
			return 0
		}
		fmt.Printf("%-18s %14.3f %14.3f %9s%s\n", name, oldV, newV, "n/a", "  << MISSING")
		if newV == 0 {
			fmt.Fprintf(os.Stderr,
				"benchdiff: gated metric %s disappeared from the new artifact; the benchmark stopped measuring it\n", name)
		} else {
			fmt.Fprintf(os.Stderr,
				"benchdiff: gated metric %s is present only in the new artifact; pass -allow-added if the field is additive\n", name)
		}
		return 1
	}
	delta := "n/a"
	regressed := false
	if oldV != 0 && newV != 0 {
		rel := (newV - oldV) / oldV
		delta = fmt.Sprintf("%+8.1f%%", rel*100)
		if maxRegress > 0 {
			switch dir {
			case lowerIsBetter:
				regressed = rel > maxRegress
			case higherIsBetter:
				regressed = rel < -maxRegress
			}
		}
	}
	mark := ""
	if regressed {
		mark = "  << REGRESSION"
	}
	fmt.Printf("%-18s %14.3f %14.3f %9s%s\n", name, oldV, newV, delta, mark)
	if regressed {
		return 1
	}
	return 0
}

func readReport(path string) (*benchfmt.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchfmt.Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != benchfmt.Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, benchfmt.Schema)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
