#!/bin/sh
# bench.sh runs the standing serving benchmark and writes the BENCH_*.json
# perf-trajectory artifact for the current tree.
#
#   scripts/bench.sh                 # BENCH_9.json, tiny scale (CI default)
#   scripts/bench.sh BENCH_9.json small 5000 16
#
# Arguments: [out] [scale] [requests] [concurrency]. The report schema is
# internal/benchfmt; `ppvload -json` emits the same schema against a live
# deployment, so ad-hoc and CI numbers are directly comparable. Compare two
# artifacts (and gate on warm-read/qps regressions) with:
#
#   go run ./scripts BENCH_8.json BENCH_9.json
#
# POSIX sh on purpose: CI images and dev boxes disagree on where (and
# whether) bash lives, and nothing here needs arrays or pipefail — there are
# no pipelines, so set -eu already fails the script on any command failure.
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_9.json}"
SCALE="${2:-tiny}"
REQUESTS="${3:-2000}"
CONCURRENCY="${4:-8}"

go run ./cmd/ppvbench -serve -scale "$SCALE" -requests "$REQUESTS" \
  -concurrency "$CONCURRENCY" -out "$OUT"
