package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fastppv/internal/core"
	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/ppvindex"
)

// testEngine precomputes a small deterministic engine.
func testEngine(t testing.TB, g *graph.Graph, numHubs int) *core.Engine {
	t.Helper()
	engine, err := core.NewEngine(g, nil, core.Options{NumHubs: numHubs})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	return engine
}

func socialGraph(t testing.TB, nodes int) *graph.Graph {
	t.Helper()
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: nodes, OutDegreeMean: 6, Attachment: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// twoComponents builds a graph of two disconnected directed cycles (each with
// a chord), so updates in one component cannot affect answers in the other.
func twoComponents(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(true)
	b.EnsureNodes(20)
	for u := 0; u < 10; u++ {
		b.MustAddEdge(graph.NodeID(u), graph.NodeID((u+1)%10))
		b.MustAddEdge(graph.NodeID(u), graph.NodeID((u+3)%10))
	}
	for u := 10; u < 20; u++ {
		b.MustAddEdge(graph.NodeID(u), graph.NodeID(10+(u-10+1)%10))
		b.MustAddEdge(graph.NodeID(u), graph.NodeID(10+(u-10+4)%10))
	}
	return b.Finalize()
}

func get(t *testing.T, ts *httptest.Server, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestServerCachedResponseIdenticalToCold is the core serving guarantee: a
// cached response and a cold computation at the same eta are byte-identical.
func TestServerCachedResponseIdenticalToCold(t *testing.T) {
	g := socialGraph(t, 500)
	engine := testEngine(t, g, 50)

	srv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const path = "/v1/ppv?node=17&eta=2&top=10"
	status, hdr, first := get(t, ts, path)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, first)
	}
	if got := hdr.Get("X-Fastppv-Cache"); got != "miss" {
		t.Fatalf("first request cache state = %q, want miss", got)
	}
	status, hdr, second := get(t, ts, path)
	if status != http.StatusOK {
		t.Fatal("second request failed")
	}
	if got := hdr.Get("X-Fastppv-Cache"); got != "hit" {
		t.Fatalf("second request cache state = %q, want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached response differs from original:\n%s\n%s", first, second)
	}

	// A completely cold server over the same engine must produce the same
	// bytes: the engine's deterministic hub expansion order makes the answer
	// a pure function of (node, eta, graph state).
	coldSrv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	coldTS := httptest.NewServer(coldSrv.Handler())
	defer coldTS.Close()
	status, _, cold := get(t, coldTS, path)
	if status != http.StatusOK {
		t.Fatal("cold request failed")
	}
	if !bytes.Equal(first, cold) {
		t.Fatalf("cold recomputation differs from cached response:\n%s\n%s", first, cold)
	}
}

// TestServerConcurrentIdenticalRequests hammers one key from many goroutines
// (run under -race) and checks every response is byte-identical while the
// engine computed the answer far fewer times than it was asked.
func TestServerConcurrentIdenticalRequests(t *testing.T) {
	g := socialGraph(t, 500)
	engine := testEngine(t, g, 50)
	srv, err := New(engine, Config{MaxConcurrent: 64, QueueWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 32
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/v1/ppv?node=99&eta=3&top=20")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	computations := srv.adm.stats().Admitted + srv.adm.stats().Degraded
	if computations >= clients {
		t.Fatalf("engine computed %d times for %d identical requests; caching/coalescing is not working", computations, clients)
	}
}

// TestServerUpdateInvalidation checks that a graph update drops exactly the
// cached answers it can have made stale: queries in the updated component are
// invalidated, queries in the untouched component stay cached.
func TestServerUpdateInvalidation(t *testing.T) {
	g := twoComponents(t)
	engine := testEngine(t, g, 6)
	srv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the cache with one query per component.
	get(t, ts, "/v1/ppv?node=2&eta=2")
	get(t, ts, "/v1/ppv?node=12&eta=2")
	if _, hdr, _ := get(t, ts, "/v1/ppv?node=2&eta=2"); hdr.Get("X-Fastppv-Cache") != "hit" {
		t.Fatal("warmup for node 2 did not cache")
	}

	// Add an edge inside the first component.
	status, out := post(t, ts, "/v1/update", `{"added_edges":[[2,7]]}`)
	if status != http.StatusOK {
		t.Fatalf("update failed: %d %s", status, out)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(out, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Invalidated == 0 {
		t.Fatalf("update invalidated nothing: %+v", ur)
	}

	// The component-1 answer must be recomputed ...
	_, hdr, _ := get(t, ts, "/v1/ppv?node=2&eta=2")
	if got := hdr.Get("X-Fastppv-Cache"); got != "miss" {
		t.Errorf("node 2 after update: cache state %q, want miss", got)
	}
	// ... while the untouched component stays cached.
	_, hdr, _ = get(t, ts, "/v1/ppv?node=12&eta=2")
	if got := hdr.Get("X-Fastppv-Cache"); got != "hit" {
		t.Errorf("node 12 after update: cache state %q, want hit (targeted invalidation over-invalidated)", got)
	}

	// And the recomputed answer must reflect the new edge: node 7 is now one
	// hop from node 2.
	var qr QueryResponse
	_, _, body := get(t, ts, "/v1/ppv?node=2&eta=4&top=20")
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range qr.Results {
		if r.Node == 7 {
			found = true
		}
	}
	if !found {
		t.Error("node 7 missing from node 2's results after adding edge 2->7")
	}
}

// TestServerDegradation saturates the admission gate and checks the server
// still answers — with fewer iterations and a strictly positive, honestly
// reported L1 error bound — instead of queueing.
func TestServerDegradation(t *testing.T) {
	g := socialGraph(t, 500)
	engine := testEngine(t, g, 50)
	srv, err := New(engine, Config{
		DefaultEta:    3,
		MaxConcurrent: 1,
		QueueWait:     -1, // degrade immediately when saturated
		DegradedEta:   0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only computation slot, as a long-running query would.
	if srv.adm.acquire() != svcFull {
		t.Fatal("could not take the slot on an idle server")
	}

	var qr QueryResponse
	status, hdr, body := get(t, ts, "/v1/ppv?node=33&eta=3")
	if status != http.StatusOK {
		t.Fatalf("saturated server returned %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Degraded {
		t.Fatal("saturated server served a non-degraded answer")
	}
	if qr.Iterations >= 3 {
		t.Fatalf("degraded answer ran %d iterations, want < 3", qr.Iterations)
	}
	if qr.L1ErrorBound <= 0 {
		t.Fatalf("degraded answer reports error bound %v, want > 0", qr.L1ErrorBound)
	}
	if hdr.Get("X-Fastppv-Cache") != "miss" {
		t.Fatalf("degraded answer state %q", hdr.Get("X-Fastppv-Cache"))
	}

	// When even the degradation pool is full, the request is shed with 503
	// instead of queueing.
	for i := 0; i < cap(srv.adm.degradedSlots); i++ {
		srv.adm.degradedSlots <- struct{}{}
	}
	status, _, body = get(t, ts, "/v1/ppv?node=34&eta=3")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("fully saturated server returned %d (%s), want 503", status, body)
	}
	if st := srv.adm.stats(); st.Shed == 0 {
		t.Errorf("admission stats did not count the shed request: %+v", st)
	}
	for i := 0; i < cap(srv.adm.degradedSlots); i++ {
		<-srv.adm.degradedSlots
	}

	// Degraded answers must not poison the cache: the same query after the
	// slot frees is computed fully.
	srv.adm.release(svcFull)
	status, _, body = get(t, ts, "/v1/ppv?node=33&eta=3")
	if status != http.StatusOK {
		t.Fatal("request after release failed")
	}
	qr = QueryResponse{}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Degraded {
		t.Fatal("idle server served a degraded answer")
	}
	if qr.Iterations == 0 {
		t.Fatal("full answer ran zero iterations")
	}
	if st := srv.adm.stats(); st.Degraded == 0 {
		t.Errorf("admission stats did not count the degraded request: %+v", st)
	}
}

// TestServerBatch checks the batch endpoint agrees with single queries.
func TestServerBatch(t *testing.T) {
	g := socialGraph(t, 300)
	engine := testEngine(t, g, 30)
	srv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := post(t, ts, "/v1/ppv/batch", `{"queries":[{"node":5},{"node":8,"eta":1,"top":3}]}`)
	if status != http.StatusOK {
		t.Fatalf("batch failed: %d %s", status, out)
	}
	var br BatchResponse
	if err := json.Unmarshal(out, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(br.Results))
	}
	if br.Results[0].Node != 5 || br.Results[1].Node != 8 {
		t.Fatalf("batch results out of order: %+v", br.Results)
	}
	if len(br.Results[1].Results) > 3 {
		t.Fatalf("batch query top=3 returned %d entries", len(br.Results[1].Results))
	}

	// The batch answer for node 5 must match the single-query body.
	var single QueryResponse
	_, _, body := get(t, ts, "/v1/ppv?node=5")
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(single)
	b, _ := json.Marshal(br.Results[0])
	if !bytes.Equal(a, b) {
		t.Fatalf("batch and single answers differ:\n%s\n%s", b, a)
	}
}

// TestServerStatsAndHealth sanity-checks the observability endpoints.
func TestServerStatsAndHealth(t *testing.T) {
	g := socialGraph(t, 300)
	engine := testEngine(t, g, 30)
	srv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, _, body := get(t, ts, "/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", status, body)
	}

	get(t, ts, "/v1/ppv?node=1")
	get(t, ts, "/v1/ppv?node=1")

	var st StatsResponse
	status, _, body = get(t, ts, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Graph.Nodes != 300 {
		t.Errorf("stats graph nodes = %d, want 300", st.Graph.Nodes)
	}
	if st.Offline.Hubs != 30 {
		t.Errorf("stats offline hubs = %d, want 30", st.Offline.Hubs)
	}
	if st.Cache == nil || st.Cache.Hits < 1 {
		t.Errorf("stats cache = %+v, want at least one hit", st.Cache)
	}
	ppv, ok := st.Endpoints["ppv"]
	if !ok || ppv.Count < 2 {
		t.Errorf("stats ppv histogram = %+v, want count >= 2", ppv)
	}
	if ppv.P50MS > ppv.P99MS {
		t.Errorf("histogram quantiles inverted: %+v", ppv)
	}
}

// blockCachedIndex is an IndexStore that pretends to front a hub-block cache,
// standing in for the disk-backed store of fastppv.OpenDiskIndex.
type blockCachedIndex struct {
	*ppvindex.MemIndex
}

func (blockCachedIndex) BlockCacheStats() (ppvindex.BlockCacheStats, bool) {
	return ppvindex.BlockCacheStats{Hits: 7, Misses: 3, Entries: 2}, true
}

// TestServerStatsExposeBlockCache checks that an engine whose index fronts a
// hub-block cache gets its counters reported under "block_cache".
func TestServerStatsExposeBlockCache(t *testing.T) {
	g := socialGraph(t, 200)
	engine, err := core.NewEngine(g, blockCachedIndex{ppvindex.NewMemIndex()}, core.Options{NumHubs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var st StatsResponse
	status, _, body := get(t, ts, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.BlockCache == nil || st.BlockCache.Hits != 7 || st.BlockCache.Misses != 3 {
		t.Fatalf("stats block_cache = %+v, want hits=7 misses=3", st.BlockCache)
	}

	// A plain in-memory engine reports no block cache at all.
	plain := testEngine(t, g, 20)
	srv2, err := New(plain, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var st2 StatsResponse
	_, _, body2 := get(t, ts2, "/v1/stats")
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.BlockCache != nil {
		t.Fatalf("in-memory engine reported block_cache = %+v", st2.BlockCache)
	}
}

// TestServerBadRequests checks parameter validation.
func TestServerBadRequests(t *testing.T) {
	g := socialGraph(t, 100)
	engine := testEngine(t, g, 10)
	srv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/v1/ppv",               // missing node
		"/v1/ppv?node=abc",      // non-numeric
		"/v1/ppv?node=100",      // out of range
		"/v1/ppv?node=-1",       // negative
		"/v1/ppv?node=1&eta=-2", // bad eta
		"/v1/ppv?node=1&top=0",  // bad top
		fmt.Sprintf("/v1/ppv?node=1&target-error=%s", "x"), // bad target
		"/v1/ppv?node=1&target-error=NaN",                  // NaN poisons map keys
		"/v1/ppv?node=1&target-error=+Inf",                 // non-finite
		"/v1/ppv?node=1&target-error=-1",                   // negative
	} {
		if status, _, body := get(t, ts, path); status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", path, status, body)
		}
	}
	if status, out := post(t, ts, "/v1/update", `{}`); status != http.StatusBadRequest {
		t.Errorf("empty update: status %d (%s), want 400", status, out)
	}
	if status, out := post(t, ts, "/v1/update", `{"added_edges":[[1]]}`); status != http.StatusBadRequest {
		t.Errorf("one-element edge: status %d (%s), want 400", status, out)
	}
	if status, out := post(t, ts, "/v1/update", `{"added_edges":[[1,2,3]]}`); status != http.StatusBadRequest {
		t.Errorf("three-element edge: status %d (%s), want 400", status, out)
	}
	if status, out := post(t, ts, "/v1/ppv/batch", `{"queries":[]}`); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d (%s), want 400", status, out)
	}
}

// durableIndex is an IndexStore that pretends to persist updates behind an
// update log, standing in for fastppv's disk-backed store: Compact empties
// the pretend log and reports what it folded.
type durableIndex struct {
	*ppvindex.MemIndex
	mu          sync.Mutex
	logRecords  int64
	logBytes    int64
	compactions int64
	compactBusy bool
	failCompact bool
}

func (d *durableIndex) DurabilityStats() (ppvindex.DurabilityStats, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return ppvindex.DurabilityStats{
		LogEnabled:  true,
		LogRecords:  d.logRecords,
		LogBytes:    d.logBytes,
		Compactions: d.compactions,
	}, true
}

func (d *durableIndex) Compact() (ppvindex.CompactionResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.compactBusy {
		return ppvindex.CompactionResult{}, ppvindex.ErrCompactionInProgress
	}
	if d.failCompact {
		return ppvindex.CompactionResult{}, fmt.Errorf("disk on fire")
	}
	res := ppvindex.CompactionResult{
		TotalHubs:        d.Len(),
		LogRecordsFolded: d.logRecords,
		LogBytesFreed:    d.logBytes,
	}
	d.logRecords, d.logBytes = 0, 8
	d.compactions++
	return res, nil
}

// TestServerCompactEndpoint drives POST /v1/compact against a durable store:
// the response reports what was folded and /v1/stats reflects the emptied log.
func TestServerCompactEndpoint(t *testing.T) {
	g := socialGraph(t, 200)
	store := &durableIndex{MemIndex: ppvindex.NewMemIndex(), logRecords: 5, logBytes: 4096}
	engine, err := core.NewEngine(g, store, core.Options{NumHubs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var st StatsResponse
	_, _, body := get(t, ts, "/v1/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil || st.Durability.LogRecords != 5 {
		t.Fatalf("stats durability = %+v, want 5 log records", st.Durability)
	}

	status, cbody := post(t, ts, "/v1/compact", "")
	if status != http.StatusOK {
		t.Fatalf("compact: %d %s", status, cbody)
	}
	var res ppvindex.CompactionResult
	if err := json.Unmarshal(cbody, &res); err != nil {
		t.Fatal(err)
	}
	if res.LogRecordsFolded != 5 || res.LogBytesFreed != 4096 {
		t.Fatalf("compact response = %+v, want 5 records / 4096 bytes folded", res)
	}

	_, _, body = get(t, ts, "/v1/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil || st.Durability.LogRecords != 0 || st.Durability.Compactions != 1 {
		t.Fatalf("stats after compact = %+v, want empty log and 1 compaction", st.Durability)
	}

	// A concurrent compaction maps to 409, a failed one to 500.
	store.mu.Lock()
	store.compactBusy = true
	store.mu.Unlock()
	if status, body := post(t, ts, "/v1/compact", ""); status != http.StatusConflict {
		t.Fatalf("busy compact = %d %s, want 409", status, body)
	}
	store.mu.Lock()
	store.compactBusy, store.failCompact = false, true
	store.mu.Unlock()
	if status, body := post(t, ts, "/v1/compact", ""); status != http.StatusInternalServerError {
		t.Fatalf("failing compact = %d %s, want 500", status, body)
	}
}

// TestServerCompactRequiresDiskIndex: an in-memory engine has nothing to
// compact and must answer 412, and its stats carry no durability section.
func TestServerCompactRequiresDiskIndex(t *testing.T) {
	g := socialGraph(t, 100)
	engine := testEngine(t, g, 10)
	srv, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, body := post(t, ts, "/v1/compact", ""); status != http.StatusPreconditionFailed {
		t.Fatalf("compact on an in-memory index = %d %s, want 412", status, body)
	}
	var st StatsResponse
	_, _, body := get(t, ts, "/v1/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Durability != nil {
		t.Fatalf("in-memory engine reported durability = %+v", st.Durability)
	}
}
