// Package sparse provides the sparse score vectors used throughout the
// FastPPV reproduction. A Personalized PageRank Vector (PPV) over a large
// graph typically has mass concentrated on a small neighbourhood of the query
// node, so PPVs, PPV increments and prime PPVs are all represented as sparse
// maps from node id to score.
package sparse

import (
	"math"
	"sort"

	"fastppv/internal/graph"
)

// Vector is a sparse vector of non-negative scores indexed by node id. A nil
// Vector behaves like an empty vector for read operations; use New or Clone
// before writing.
type Vector map[graph.NodeID]float64

// New returns an empty vector with room for sizeHint entries.
func New(sizeHint int) Vector {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return make(Vector, sizeHint)
}

// FromDense converts a dense score slice into a sparse vector, dropping exact
// zeros. The capacity hint assumes the worst case (no zeros) so a fully dense
// input does not rehash the map repeatedly while filling.
func FromDense(dense []float64) Vector {
	v := New(len(dense))
	for i, s := range dense {
		if s != 0 {
			v[graph.NodeID(i)] = s
		}
	}
	return v
}

// Dense converts v into a dense slice of length n. Entries whose node id is
// >= n are truncated: they do not fit in the requested slice and are silently
// dropped, so Dense(n) only round-trips vectors defined over nodes [0, n).
// Callers that need to detect out-of-range ids should use DenseChecked.
func (v Vector) Dense(n int) []float64 {
	out, _ := v.DenseChecked(n)
	return out
}

// DenseChecked converts v into a dense slice of length n and additionally
// returns the number of entries dropped because their node id was >= n.
func (v Vector) DenseChecked(n int) ([]float64, int) {
	out := make([]float64, n)
	dropped := 0
	//lint:ordered per-node writes to distinct dense slots; the dropped count is order-free
	for id, s := range v {
		if int(id) < n {
			out[id] = s
		} else {
			dropped++
		}
	}
	return out, dropped
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := New(len(v))
	//lint:ordered per-node copy into a fresh map; no fold across nodes
	for id, s := range v {
		out[id] = s
	}
	return out
}

// Get returns the score of id (zero when absent).
func (v Vector) Get(id graph.NodeID) float64 { return v[id] }

// Set assigns a score, deleting the entry when the score is zero.
func (v Vector) Set(id graph.NodeID, score float64) {
	if score == 0 {
		delete(v, id)
		return
	}
	v[id] = score
}

// Add accumulates score onto the entry for id.
func (v Vector) Add(id graph.NodeID, score float64) {
	if score == 0 {
		return
	}
	v[id] += score
}

// AddVector accumulates other into v entry-wise.
func (v Vector) AddVector(other Vector) {
	//lint:ordered each node occurs once in other, so every v[id] sees exactly one add regardless of order
	for id, s := range other {
		v[id] += s
	}
}

// AddScaled accumulates scale*other into v entry-wise. It is the core
// operation of the tour-assembly model (Theorem 4): extending a PPV increment
// by a prefix weight times a hub's prime PPV.
func (v Vector) AddScaled(other Vector, scale float64) {
	if scale == 0 {
		return
	}
	//lint:ordered each node occurs once in other, so every v[id] sees exactly one scaled add regardless of order
	for id, s := range other {
		v[id] += scale * s
	}
}

// Scale multiplies every entry by factor.
func (v Vector) Scale(factor float64) {
	//lint:ordered per-node multiply; nodes are independent
	for id := range v {
		v[id] *= factor
	}
}

// Sum returns the total mass of the vector (the L1 norm, since scores are
// non-negative). The accuracy-aware stopping rule of Sect. 3 uses
// 1 - Sum(estimate) as the exact L1 error of the estimate.
func (v Vector) Sum() float64 {
	var total float64
	//lint:ordered diagnostic-only FP fold; answer paths (error bounds in responses) use SumOrdered
	for _, s := range v {
		total += s
	}
	return total
}

// SumOrdered returns the same total as Sum but accumulates entries in
// ascending node order, so the floating-point result is identical across
// calls on equal vectors. The accuracy-aware error bound reported to serving
// clients is computed with it, making query responses byte-reproducible.
func (v Vector) SumOrdered() float64 {
	ids := make([]graph.NodeID, 0, len(v))
	//lint:ordered collect-then-sort: ids are sorted before the ordered fold below
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var total float64
	for _, id := range ids {
		total += v[id]
	}
	return total
}

// L1Distance returns the L1 distance between v and other.
func (v Vector) L1Distance(other Vector) float64 {
	var total float64
	//lint:ordered diagnostic metric (accuracy evaluation); never part of a served answer
	for id, s := range v {
		total += math.Abs(s - other[id])
	}
	//lint:ordered diagnostic metric (accuracy evaluation); never part of a served answer
	for id, s := range other {
		if _, ok := v[id]; !ok {
			total += math.Abs(s)
		}
	}
	return total
}

// Clip removes entries with score strictly below threshold and returns the
// number of removed entries. The paper clips stored PPVs at 1e-4 to bound
// index size (Sect. 6, Parameters).
func (v Vector) Clip(threshold float64) int {
	removed := 0
	//lint:ordered per-node threshold test with independent deletes; the removed count is order-free
	for id, s := range v {
		if s < threshold {
			delete(v, id)
			removed++
		}
	}
	return removed
}

// NonZeros returns the number of stored entries.
func (v Vector) NonZeros() int { return len(v) }

// Equal reports whether v and other are entry-wise equal within tol.
func (v Vector) Equal(other Vector, tol float64) bool {
	return v.L1Distance(other) <= tol
}

// Entry is a (node, score) pair used for ranked results.
type Entry struct {
	Node  graph.NodeID
	Score float64
}

// Entries returns all entries sorted by descending score, breaking ties by
// ascending node id so that rankings are deterministic.
func (v Vector) Entries() []Entry {
	out := make([]Entry, 0, len(v))
	//lint:ordered collect-then-sort: entries are sorted by (score desc, node id asc) below
	for id, s := range v {
		out = append(out, Entry{Node: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out
}
