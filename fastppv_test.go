package fastppv

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// buildTestGraph creates a small directed graph through the public API.
func buildTestGraph(t testing.TB, nodes, deg int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(true)
	b.EnsureNodes(nodes)
	for u := 0; u < nodes; u++ {
		for d := 0; d < deg; d++ {
			v := NodeID(rng.Intn(nodes))
			if v != NodeID(u) {
				b.MustAddEdge(NodeID(u), v)
			}
		}
	}
	return b.Finalize()
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g := buildTestGraph(t, 400, 4, 1)
	engine, err := New(g, Options{NumHubs: 40})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	off := engine.OfflineStats()
	if off.Hubs != 40 || off.IndexBytes <= 0 {
		t.Errorf("OfflineStats = %+v", off)
	}

	q := NodeID(7)
	res, err := engine.Query(q, DefaultStop())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Iterations > 2 {
		t.Errorf("DefaultStop ran %d iterations, want at most 2", res.Iterations)
	}
	top := res.TopK(10)
	if len(top) == 0 || top[0].Node != q {
		t.Errorf("the query node should rank first, got %v", top)
	}

	exact, err := ExactPPV(g, q, DefaultAlpha)
	if err != nil {
		t.Fatalf("ExactPPV: %v", err)
	}
	report := Evaluate(exact, res.Estimate, 10)
	if report.Precision < 0.5 {
		t.Errorf("precision %.3f unexpectedly low for eta=2 on a small graph", report.Precision)
	}
	// The accuracy-aware bound is an upper bound on the true L1 error.
	if trueErr := exact.L1Distance(res.Estimate); trueErr > res.L1ErrorBound+1e-9 {
		t.Errorf("true L1 error %.4f exceeds the reported bound %.4f", trueErr, res.L1ErrorBound)
	}
}

func TestPublicAPIIncrementalQuery(t *testing.T) {
	g := buildTestGraph(t, 300, 3, 2)
	engine, err := New(g, Options{NumHubs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	qs, err := engine.NewQuery(3)
	if err != nil {
		t.Fatal(err)
	}
	prev := qs.L1ErrorBound()
	for i := 0; i < 4 && !qs.Exhausted(); i++ {
		st := qs.Step()
		if st.L1ErrorBound > prev+1e-12 {
			t.Errorf("step %d increased the error bound", i+1)
		}
		prev = st.L1ErrorBound
	}
}

func TestPublicAPITimeLimitStop(t *testing.T) {
	g := buildTestGraph(t, 500, 5, 3)
	engine, err := New(g, Options{NumHubs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Query(1, StopCondition{MaxIterations: -1, TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Errorf("a one-nanosecond budget should stop almost immediately, ran %d iterations", res.Iterations)
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := buildTestGraph(t, 50, 3, 4)
	dir := t.TempDir()

	edgePath := filepath.Join(dir, "g.txt")
	if err := SaveEdgeListFile(edgePath, g); err != nil {
		t.Fatalf("SaveEdgeListFile: %v", err)
	}
	loaded, err := LoadEdgeListFile(edgePath)
	if err != nil {
		t.Fatalf("LoadEdgeListFile: %v", err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Errorf("edge-list round trip changed the graph: %v vs %v", loaded.Stats(), g.Stats())
	}

	binPath := filepath.Join(dir, "g.bin")
	if err := SaveBinaryFile(binPath, g); err != nil {
		t.Fatalf("SaveBinaryFile: %v", err)
	}
	loadedBin, err := LoadBinaryFile(binPath)
	if err != nil {
		t.Fatalf("LoadBinaryFile: %v", err)
	}
	if loadedBin.NumEdges() != g.NumEdges() {
		t.Error("binary round trip changed the graph")
	}

	if _, err := FromEdges(3, true, []Edge{{From: 0, To: 1}, {From: 1, To: 2}}); err != nil {
		t.Errorf("FromEdges: %v", err)
	}
	pr, err := GlobalPageRank(g, DefaultAlpha)
	if err != nil || len(pr) != g.NumNodes() {
		t.Errorf("GlobalPageRank: %v (len %d)", err, len(pr))
	}
}

func TestPublicAPIDiskIndex(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 5)
	path := filepath.Join(t.TempDir(), "index.ppv")

	diskEngine, closeIndex, err := NewWithDiskIndex(g, Options{NumHubs: 30}, path)
	if err != nil {
		t.Fatalf("NewWithDiskIndex: %v", err)
	}
	defer closeIndex()
	if err := diskEngine.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}

	memEngine, err := New(g, Options{NumHubs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := memEngine.Precompute(); err != nil {
		t.Fatal(err)
	}

	for q := NodeID(0); q < 10; q++ {
		a, err := diskEngine.Query(q, DefaultStop())
		if err != nil {
			t.Fatalf("disk query: %v", err)
		}
		b, err := memEngine.Query(q, DefaultStop())
		if err != nil {
			t.Fatalf("mem query: %v", err)
		}
		if d := a.Estimate.L1Distance(b.Estimate); d > 1e-9 {
			t.Errorf("q=%d: disk-index estimate differs from the in-memory one by %v", q, d)
		}
	}
	if err := closeIndex(); err != nil {
		t.Errorf("closing the disk index: %v", err)
	}
}

// TestPublicAPIDiskIndexConcurrentFirstGet is the -race regression test for
// the writer->reader transition: the first Gets after Precompute finalize the
// index file and open it for reading, and concurrent queries must not race on
// that state.
func TestPublicAPIDiskIndexConcurrentFirstGet(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 8)
	path := filepath.Join(t.TempDir(), "index.ppv")
	engine, closeIndex, err := NewWithDiskIndex(g, Options{NumHubs: 30}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeIndex()
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := NodeID(w); int(q) < g.NumNodes(); q += workers * 10 {
				if _, err := engine.Query(q, DefaultStop()); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent query: %v", err)
	}
}

// TestPublicAPIOpenDiskIndex covers the serving path: precompute into a file,
// reopen it with the hub-block cache, and check answers, cache behaviour and
// incremental updates.
func TestPublicAPIOpenDiskIndex(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 9)
	path := filepath.Join(t.TempDir(), "index.ppv")

	build, closeBuild, err := NewWithDiskIndex(g, Options{NumHubs: 30}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := build.Precompute(); err != nil {
		t.Fatal(err)
	}
	if err := closeBuild(); err != nil {
		t.Fatal(err)
	}

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatalf("OpenDiskIndex: %v", err)
	}
	defer closeIndex()
	if !engine.Precomputed() {
		t.Fatal("an opened index should be immediately query-ready")
	}
	if engine.Hubs().Size() != 30 {
		t.Fatalf("recovered %d hubs, want 30", engine.Hubs().Size())
	}

	memEngine, err := New(g, Options{NumHubs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := memEngine.Precompute(); err != nil {
		t.Fatal(err)
	}
	for q := NodeID(0); q < 10; q++ {
		a, err := engine.Query(q, DefaultStop())
		if err != nil {
			t.Fatalf("disk query %d: %v", q, err)
		}
		b, err := memEngine.Query(q, DefaultStop())
		if err != nil {
			t.Fatal(err)
		}
		if d := a.Estimate.L1Distance(b.Estimate); d > 1e-9 {
			t.Errorf("q=%d: served estimate differs from the in-memory one by %v", q, d)
		}
	}

	// Repeating the same queries must be answered from the block cache.
	stats, ok := engine.Index().(interface {
		BlockCacheStats() (BlockCacheStats, bool)
	})
	if !ok {
		t.Fatal("disk-backed index should expose block cache stats")
	}
	st, enabled := stats.BlockCacheStats()
	if !enabled {
		t.Fatal("block cache should be enabled")
	}
	loadsAfterFirstPass := st.Loads
	for q := NodeID(0); q < 10; q++ {
		if _, err := engine.Query(q, DefaultStop()); err != nil {
			t.Fatal(err)
		}
	}
	st, _ = stats.BlockCacheStats()
	if st.Loads != loadsAfterFirstPass {
		t.Errorf("warm pass issued %d extra disk loads", st.Loads-loadsAfterFirstPass)
	}
	if st.Hits == 0 {
		t.Error("warm pass should register cache hits")
	}

	// Incremental updates work against the opened index: recomputed hubs land
	// in the overlay and their blocks are invalidated.
	before, err := engine.Query(0, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	target := NodeID(250)
	ustats, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: 0, To: target}}})
	if err != nil {
		t.Fatalf("ApplyUpdate on an opened index: %v", err)
	}
	if ustats.AffectedHubs+ustats.UnaffectedHubs != engine.Hubs().Size() {
		t.Errorf("update stats do not cover all hubs: %+v", ustats)
	}
	after, err := engine.Query(0, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if after.Estimate.Get(target) <= before.Estimate.Get(target) {
		t.Errorf("adding the edge 0->%d should raise its score: %.6f -> %.6f",
			target, before.Estimate.Get(target), after.Estimate.Get(target))
	}
}

// TestPublicAPIOpenDiskIndexRejectsTruncated is the acceptance check that a
// truncated index file fails loudly with ErrBadIndexFormat instead of serving
// corrupt scores.
func TestPublicAPIOpenDiskIndexRejectsTruncated(t *testing.T) {
	g := buildTestGraph(t, 200, 3, 10)
	path := filepath.Join(t.TempDir(), "index.ppv")
	build, closeBuild, err := NewWithDiskIndex(g, Options{NumHubs: 20}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := build.Precompute(); err != nil {
		t.Fatal(err)
	}
	if err := closeBuild(); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()*3/5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDiskIndex(g, Options{NumHubs: 20}, path, 0); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("OpenDiskIndex on a truncated file = %v, want ErrBadIndexFormat", err)
	}
}

func TestPublicAPIDynamicUpdate(t *testing.T) {
	g := buildTestGraph(t, 200, 3, 6)
	engine, err := New(g, Options{NumHubs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	before, err := engine.Query(0, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	target := NodeID(150)
	stats, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: 0, To: target}}})
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if stats.AffectedHubs+stats.UnaffectedHubs != engine.Hubs().Size() {
		t.Errorf("update stats do not cover all hubs: %+v", stats)
	}
	after, err := engine.Query(0, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if after.Estimate.Get(target) <= before.Estimate.Get(target) {
		t.Errorf("adding the edge 0->%d should raise its score: %.6f -> %.6f",
			target, before.Estimate.Get(target), after.Estimate.Get(target))
	}
}
