// slo.go is service-level-objective accounting: the operator declares a
// latency objective and/or an error-bound objective (fastppvd -slo-p99-ms,
// -slo-bound) and the server classifies every completed request as good or
// bad against them. Alongside lifetime totals it keeps a ring of 10-second
// buckets so multi-window burn rates — how fast the error budget is being
// consumed relative to its sustainable rate — are exported as gauges over 1m,
// 5m and 1h windows. Burn rate 1.0 means the budget is being spent exactly at
// the allowed rate; an on-call alert on (burn_1h > 14 && burn_5m > 14) is the
// standard fast-burn page.
package server

import (
	"sync/atomic"
	"time"
)

const (
	// sloBucketSeconds is the accounting granularity.
	sloBucketSeconds = 10
	// sloBuckets sizes the ring to cover the longest window (1h).
	sloBuckets = 360
	// sloErrorBudget is the allowed bad-event fraction: the latency objective
	// is a p99, so 1% of events may violate it before the budget burns.
	sloErrorBudget = 0.01
)

// sloWindows are the burn-rate windows exported, in buckets.
var sloWindows = []struct {
	name    string
	buckets int64
}{
	{"1m", 6},
	{"5m", 30},
	{"1h", 360},
}

type sloBucket struct {
	stamp atomic.Int64 // unix time / sloBucketSeconds
	good  atomic.Int64
	bad   atomic.Int64
}

// sloTracker classifies events and accumulates windowed counts. All paths are
// lock-free: one stamp compare (plus a CAS on a fresh bucket boundary) and
// two atomic adds per event.
type sloTracker struct {
	latency time.Duration // 0 = no latency objective
	bound   float64       // 0 = no bound objective

	good    atomic.Int64
	bad     atomic.Int64
	buckets [sloBuckets]sloBucket
}

func newSLOTracker(latency time.Duration, bound float64) *sloTracker {
	if latency <= 0 && bound <= 0 {
		return nil
	}
	return &sloTracker{latency: latency, bound: bound}
}

// observe classifies one completed request. failed covers error responses
// (shed, unavailable, internal); successful answers are judged against the
// configured objectives.
func (t *sloTracker) observe(lat time.Duration, bound float64, failed bool) {
	isBad := failed ||
		(t.latency > 0 && lat > t.latency) ||
		(t.bound > 0 && bound > t.bound)
	stamp := time.Now().Unix() / sloBucketSeconds
	b := &t.buckets[stamp%sloBuckets]
	if s := b.stamp.Load(); s != stamp {
		// First event in a fresh 10s slot: whoever wins the CAS clears the
		// recycled counters. A racing event counted against the stale stamp
		// can be lost to the reset; at one bucket per 10s that smear is noise.
		if b.stamp.CompareAndSwap(s, stamp) {
			b.good.Store(0)
			b.bad.Store(0)
		}
	}
	if isBad {
		t.bad.Add(1)
		b.bad.Add(1)
	} else {
		t.good.Add(1)
		b.good.Add(1)
	}
}

// windowRates returns (burn rate, bad fraction, events) for a window of n
// buckets ending now.
func (t *sloTracker) windowRates(now time.Time, n int64) (burn, badFrac float64, events int64) {
	nowStamp := now.Unix() / sloBucketSeconds
	var good, bad int64
	for i := range t.buckets {
		b := &t.buckets[i]
		if s := b.stamp.Load(); s > nowStamp-n && s <= nowStamp {
			good += b.good.Load()
			bad += b.bad.Load()
		}
	}
	events = good + bad
	if events == 0 {
		return 0, 0, 0
	}
	badFrac = float64(bad) / float64(events)
	return badFrac / sloErrorBudget, badFrac, events
}

// SLOStats is the "slo" block of GET /v1/stats.
type SLOStats struct {
	// LatencyObjectiveMS and BoundObjective echo the configured objectives
	// (zero = not set).
	LatencyObjectiveMS float64 `json:"latency_objective_ms,omitempty"`
	BoundObjective     float64 `json:"bound_objective,omitempty"`
	// Good and Bad are lifetime event totals.
	Good int64 `json:"good"`
	Bad  int64 `json:"bad"`
	// BurnRate* is the windowed bad-fraction divided by the 1% error budget:
	// 1.0 consumes the budget exactly at the sustainable rate.
	BurnRate1M float64 `json:"burn_rate_1m"`
	BurnRate5M float64 `json:"burn_rate_5m"`
	BurnRate1H float64 `json:"burn_rate_1h"`
}

func (t *sloTracker) stats() SLOStats {
	now := time.Now()
	st := SLOStats{
		LatencyObjectiveMS: float64(t.latency) / 1e6,
		BoundObjective:     t.bound,
		Good:               t.good.Load(),
		Bad:                t.bad.Load(),
	}
	st.BurnRate1M, _, _ = t.windowRates(now, sloWindows[0].buckets)
	st.BurnRate5M, _, _ = t.windowRates(now, sloWindows[1].buckets)
	st.BurnRate1H, _, _ = t.windowRates(now, sloWindows[2].buckets)
	return st
}

// observeSLO classifies one completed request when SLO objectives are set.
func (s *Server) observeSLO(lat time.Duration, bound float64, failed bool) {
	if s.slo != nil {
		s.slo.observe(lat, bound, failed)
	}
}
