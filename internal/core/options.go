// Package core implements the FastPPV engine: the offline precomputation of
// hub prime PPVs (Algorithm 1) and the online incremental, accuracy-aware
// query processing (Algorithm 2, Theorems 3-4) described in "Incremental and
// Accuracy-Aware Personalized PageRank through Scheduled Approximation"
// (PVLDB 6(6), 2013).
package core

import (
	"errors"
	"fmt"
	"time"

	"fastppv/internal/hub"
	"fastppv/internal/pagerank"
	"fastppv/internal/prime"
)

// Default parameter values, following Sect. 6 "Parameters" of the paper.
const (
	// DefaultDelta is the border-hub expansion threshold delta of Algorithm 2
	// line 9: a hub's prime PPV is only fetched when the prefix reachability
	// of the hub exceeds delta.
	DefaultDelta = 0.005
	// DefaultClip is the offline clipping threshold: stored prime PPV entries
	// below this score are discarded to bound index size.
	DefaultClip = 1e-4
	// DefaultIterations is the default number of online iterations eta.
	DefaultIterations = 2
)

// Options configure an Engine. The zero value, passed through withDefaults,
// reproduces the paper's default configuration except for the hub count,
// which must be chosen per graph (NumHubs == 0 lets hub.SuggestHubCount pick).
type Options struct {
	// Alpha is the teleporting probability; zero means pagerank.DefaultAlpha.
	Alpha float64
	// Epsilon is the faraway-node threshold for prime subgraph growth; zero
	// means prime.DefaultEpsilon.
	Epsilon float64
	// Delta is the border-hub expansion threshold; zero means DefaultDelta.
	// Set to a negative value to disable the prune entirely (used by the
	// delta ablation).
	Delta float64
	// Clip is the offline storage clipping threshold; zero means DefaultClip.
	// Set to a negative value to disable clipping (used by the clip ablation).
	Clip float64
	// NumHubs is |H|, the number of hub nodes to select and index. Zero lets
	// hub.SuggestHubCount choose from the graph size.
	NumHubs int
	// HubPolicy selects the hub ranking policy; default hub.ExpectedUtility.
	HubPolicy hub.Policy
	// HubSeed seeds the random hub policy.
	HubSeed int64
	// PageRank optionally supplies precomputed global PageRank scores for hub
	// selection, so that experiments sweeping |H| or the policy do not
	// recompute them.
	PageRank []float64
	// Workers is the number of goroutines used for offline precomputation;
	// zero means a small multiple of GOMAXPROCS chosen by the engine.
	Workers int
	// MaxPushes caps the per-prime-PPV expansion work; zero uses the prime
	// package default.
	MaxPushes int
	// Partition restricts the engine to one horizontal shard of the hub
	// index: hub selection still runs over the whole graph (prime PPVs block
	// at every hub, owned or not), but only the hubs this shard owns are
	// precomputed, stored and expanded by the partial-query path. The zero
	// value is unsharded.
	Partition Partition
	// InitialEpoch is the index epoch the engine starts at: the number of
	// graph-update batches already folded into the supplied graph. Openers
	// that replay a graph-mutation log set it to the replayed batch count, so
	// a restarted replica reports the same epoch as one that applied the
	// batches live.
	InitialEpoch uint64
}

func (o Options) withDefaults() (Options, error) {
	if o.Alpha == 0 {
		o.Alpha = pagerank.DefaultAlpha
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("core: alpha %v outside (0,1)", o.Alpha)
	}
	if o.Epsilon == 0 {
		o.Epsilon = prime.DefaultEpsilon
	}
	if o.Delta == 0 {
		o.Delta = DefaultDelta
	}
	if o.Delta < 0 {
		o.Delta = 0
	}
	if o.Clip == 0 {
		o.Clip = DefaultClip
	}
	if o.Clip < 0 {
		o.Clip = 0
	}
	if o.NumHubs < 0 {
		return o, errors.New("core: negative NumHubs")
	}
	if o.Workers < 0 {
		return o, errors.New("core: negative Workers")
	}
	if err := o.Partition.validate(); err != nil {
		return o, err
	}
	return o, nil
}

// primeOptions derives the prime-PPV options from the engine options.
func (o Options) primeOptions() prime.Options {
	return prime.Options{Alpha: o.Alpha, Epsilon: o.Epsilon, MaxPushes: o.MaxPushes}
}

// StopCondition is the online stopping condition S of Algorithm 2. Query
// processing always performs iteration 0 (the prime PPV of the query node)
// and then keeps adding PPV increments while every configured bound still
// allows it. The zero value performs iteration 0 only (eta = 0); use
// DefaultStop for the paper's default of eta = 2.
type StopCondition struct {
	// MaxIterations is eta, the maximum number of increments beyond iteration
	// 0. Negative means unbounded (stop only on the other conditions or when
	// no extendable hubs remain).
	MaxIterations int
	// TargetL1Error, when positive, stops as soon as the accuracy-aware L1
	// error bound phi(k) = 1 - sum(estimate) drops to or below this value.
	TargetL1Error float64
	// TimeLimit, when positive, stops before starting an iteration once the
	// elapsed query time exceeds it.
	TimeLimit time.Duration
}

// DefaultStop returns the paper's default stopping condition: eta =
// DefaultIterations iterations.
func DefaultStop() StopCondition {
	return StopCondition{MaxIterations: DefaultIterations}
}

// Exhaustive returns a stop condition that runs until the estimate stops
// improving beyond tol (or no hubs remain to expand). It is used by tests
// that verify convergence to the exact PPV.
func Exhaustive(tol float64) StopCondition {
	return StopCondition{MaxIterations: -1, TargetL1Error: tol}
}

func (s StopCondition) maxIterations() int {
	if s.MaxIterations < 0 {
		return int(^uint(0) >> 1) // effectively unbounded
	}
	return s.MaxIterations
}

// EffectiveMaxIterations resolves the MaxIterations convention (negative =
// unbounded) into a concrete iteration cap. Distributed query drivers (the
// cluster router) use it so routed and local queries stop after the same
// number of iterations for the same StopCondition.
func (s StopCondition) EffectiveMaxIterations() int { return s.maxIterations() }
