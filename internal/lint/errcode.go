package lint

import (
	"go/ast"
	"go/types"
)

// ErrCode enforces the structured error envelope in the serving layer: every
// failure leaving internal/server carries a machine-readable internal/api
// error code (bad_request, overloaded, retry, ...) that the cluster router
// and the load tooling dispatch on. A naked http.Error writes a bare
// text/plain body that the router would misclassify as an opaque internal
// fault, so the analyzer bans http.Error in internal/server outright —
// handlers must go through the envelope writer.
var ErrCode = &Analyzer{
	Name: "errcode",
	Doc: "HTTP handlers in internal/server must emit the structured " +
		"internal/api error envelope, never naked http.Error",
	Run: runErrCode,
}

func runErrCode(pass *Pass) (interface{}, error) {
	if !pathHasSuffix(pass.Path, "internal/server") {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Error" {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
				return true
			}
			pass.Reportf(call.Pos(),
				"naked http.Error in internal/server: failures must use the structured internal/api error envelope (writeError) so clients can dispatch on the error code")
			return true
		})
	}
	return nil, nil
}
