// transport.go is the router's shard transport layer: how one partial
// sub-request physically reaches a shard. Two implementations sit behind the
// Transport interface —
//
//   - jsonTransport: one POST /v1/partial per sub-request over the shared
//     http.Client. The debug surface and universal fallback.
//   - streamTransport: a persistent binary stream per shard (HTTP/1.1 upgrade
//     on GET /v1/stream, then api.ReadFrame/WriteFrame both ways), request-id
//     multiplexed so every in-flight sub-request of every concurrent query
//     shares one connection. Reconnects with backoff after a break, and
//     degrades permanently to JSON when the shard answers the upgrade with a
//     "no such endpoint" class status (an older shard build).
//
// The scheduling layer above is transport-agnostic: retries, health flips and
// epoch bookkeeping stay in Router.partial.
package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastppv/internal/api"
)

// Transport kinds accepted by RouterConfig.Transport.
const (
	// TransportBinary streams CRC-framed binary partials over one persistent
	// connection per shard, falling back to JSON when a shard cannot upgrade.
	TransportBinary = "binary"
	// TransportJSON posts JSON bodies per sub-request, the pre-stream wire
	// format. Useful for debugging and as a differential baseline.
	TransportJSON = "json"
)

// Transport performs partial sub-requests against one shard. Implementations
// must be safe for concurrent use; cancelling the context abandons the
// request (and, on a stream, withdraws pre-sent speculation shard-side).
type Transport interface {
	Partial(ctx context.Context, preq *api.PartialRequest, traceID string) (*api.PartialResponse, error)
	// Stats returns a point-in-time snapshot of wire-level counters.
	Stats() TransportStats
	Close()
}

// TransportStats is the wire-level view of one shard transport.
type TransportStats struct {
	// Kind is the transport currently in effect: "binary" while the shard
	// speaks the stream protocol, "json" for the fallback/plain transport.
	Kind string `json:"kind"`
	// StreamConnected reports a currently established stream.
	StreamConnected bool `json:"stream_connected,omitempty"`
	// Reconnects counts re-established streams after a break.
	Reconnects int64 `json:"reconnects,omitempty"`
	// FramesSent/FramesReceived and BytesSent/BytesReceived count traffic on
	// the wire. JSON requests count their HTTP bodies as one frame each way.
	FramesSent     int64 `json:"frames_sent"`
	FramesReceived int64 `json:"frames_received"`
	BytesSent      int64 `json:"bytes_sent"`
	BytesReceived  int64 `json:"bytes_received"`
	// FallbackRequests counts sub-requests a binary transport served over
	// JSON because no stream was available.
	FallbackRequests int64 `json:"fallback_requests,omitempty"`
	// DroppedReplies counts stream replies that arrived after their request
	// was abandoned (typically discarded speculation).
	DroppedReplies int64 `json:"dropped_replies,omitempty"`
}

// jsonTransport posts one JSON /v1/partial request per call.
type jsonTransport struct {
	target  string
	client  *http.Client
	timeout time.Duration

	requests  atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
}

func newJSONTransport(target string, client *http.Client, timeout time.Duration) *jsonTransport {
	return &jsonTransport{target: target, client: client, timeout: timeout}
}

func (t *jsonTransport) Partial(ctx context.Context, preq *api.PartialRequest, traceID string) (*api.PartialResponse, error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, t.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.target+"/v1/partial", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(api.TraceHeader, traceID)
	}
	t.requests.Add(1)
	t.bytesSent.Add(int64(len(body)))
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading partial response from %s: %w", t.target, err)
	}
	t.bytesRecv.Add(int64(len(respBody)))
	if resp.StatusCode != http.StatusOK {
		var eresp api.ErrorResponse
		if err := json.Unmarshal(respBody, &eresp); err == nil && eresp.Error.Code != "" {
			return nil, &eresp.Error
		}
		return nil, fmt.Errorf("cluster: %s/v1/partial returned status %d", t.target, resp.StatusCode)
	}
	var presp api.PartialResponse
	if err := json.Unmarshal(respBody, &presp); err != nil {
		return nil, fmt.Errorf("cluster: decoding partial response from %s: %w", t.target, err)
	}
	return &presp, nil
}

func (t *jsonTransport) Stats() TransportStats {
	n := t.requests.Load()
	return TransportStats{
		Kind:           TransportJSON,
		FramesSent:     n,
		FramesReceived: n,
		BytesSent:      t.bytesSent.Load(),
		BytesReceived:  t.bytesRecv.Load(),
	}
}

func (t *jsonTransport) Close() {}

// streamBackoff bounds the reconnect schedule: first retry after min,
// doubling to max.
const (
	streamBackoffMin = 100 * time.Millisecond
	streamBackoffMax = 5 * time.Second
)

// streamTransport multiplexes partial sub-requests over one persistent
// binary stream, with reconnect-on-break and JSON fallback.
type streamTransport struct {
	target   string
	shard    int
	timeout  time.Duration
	logger   *slog.Logger
	fallback *jsonTransport

	mu          sync.Mutex
	conn        *streamConn
	nextAttempt time.Time
	backoff     time.Duration
	jsonOnly    bool // shard answered the upgrade with "no such endpoint": stop trying
	everOpened  bool
	closed      bool

	reconnects   atomic.Int64
	framesSent   atomic.Int64
	framesRecv   atomic.Int64
	bytesSent    atomic.Int64
	bytesRecv    atomic.Int64
	fallbackReqs atomic.Int64
	dropped      atomic.Int64
}

func newStreamTransport(target string, shard int, client *http.Client, timeout time.Duration, logger *slog.Logger) *streamTransport {
	return &streamTransport{
		target:   target,
		shard:    shard,
		timeout:  timeout,
		logger:   logger,
		fallback: newJSONTransport(target, client, timeout),
		backoff:  streamBackoffMin,
	}
}

func (t *streamTransport) Partial(ctx context.Context, preq *api.PartialRequest, traceID string) (*api.PartialResponse, error) {
	c := t.acquireConn()
	if c == nil {
		t.fallbackReqs.Add(1)
		return t.fallback.Partial(ctx, preq, traceID)
	}
	resp, err := c.roundTrip(ctx, t, preq, traceID)
	if err == nil {
		return resp, nil
	}
	var aerr *api.Error
	if errors.As(err, &aerr) || ctx.Err() != nil {
		// The shard answered (an error frame), or the caller gave up; either
		// way the stream itself is fine.
		return nil, err
	}
	// Transport-level failure: the stream broke under this request. Drop the
	// connection (the next call reconnects with backoff) and give this
	// request one immediate chance over JSON — if the shard died entirely the
	// fallback fails fast on dial, if only the stream broke it succeeds.
	t.dropConn(c, err)
	t.fallbackReqs.Add(1)
	return t.fallback.Partial(ctx, preq, traceID)
}

// acquireConn returns the established stream, dialing a new one when allowed.
// nil means "use JSON now": the shard is JSON-only, the transport is closed,
// or a recent dial failed and the backoff window is still open.
func (t *streamTransport) acquireConn() *streamConn {
	t.mu.Lock()
	if t.conn != nil || t.jsonOnly || t.closed {
		c := t.conn
		t.mu.Unlock()
		return c
	}
	if time.Now().Before(t.nextAttempt) {
		t.mu.Unlock()
		return nil
	}
	// Push the next attempt out before releasing the lock, so concurrent
	// callers fall back to JSON instead of piling up dials.
	t.nextAttempt = time.Now().Add(t.backoff)
	t.mu.Unlock()

	c, err := dialStream(t.target, t.timeout)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		var rej *upgradeRejectedError
		if errors.As(err, &rej) && rej.permanent() {
			t.jsonOnly = true
			t.logger.Info("shard does not speak the stream protocol; staying on JSON",
				"shard", t.shard, "target", t.target, "status", rej.status)
		} else {
			if t.backoff *= 2; t.backoff > streamBackoffMax {
				t.backoff = streamBackoffMax
			}
			t.logger.Debug("stream dial failed",
				"shard", t.shard, "target", t.target, "error", err)
		}
		return nil
	}
	if t.closed {
		c.fail(errors.New("cluster: transport closed"))
		return nil
	}
	if t.everOpened {
		t.reconnects.Add(1)
	}
	t.everOpened = true
	t.backoff = streamBackoffMin
	t.conn = c
	go c.readLoop(t)
	t.logger.Info("shard stream established", "shard", t.shard, "target", t.target)
	return c
}

// dropConn tears down a broken stream (failing its in-flight requests) and
// opens the backoff window for the next dial.
func (t *streamTransport) dropConn(c *streamConn, cause error) {
	c.fail(cause)
	t.mu.Lock()
	if t.conn == c {
		t.conn = nil
		t.nextAttempt = time.Now().Add(t.backoff)
	}
	t.mu.Unlock()
}

func (t *streamTransport) Stats() TransportStats {
	t.mu.Lock()
	connected, jsonOnly := t.conn != nil, t.jsonOnly
	t.mu.Unlock()
	fb := t.fallback.Stats()
	st := TransportStats{
		Kind:             TransportBinary,
		StreamConnected:  connected,
		Reconnects:       t.reconnects.Load(),
		FramesSent:       t.framesSent.Load() + fb.FramesSent,
		FramesReceived:   t.framesRecv.Load() + fb.FramesReceived,
		BytesSent:        t.bytesSent.Load() + fb.BytesSent,
		BytesReceived:    t.bytesRecv.Load() + fb.BytesReceived,
		FallbackRequests: t.fallbackReqs.Load(),
		DroppedReplies:   t.dropped.Load(),
	}
	if jsonOnly {
		st.Kind = TransportJSON
	}
	return st
}

func (t *streamTransport) Close() {
	t.mu.Lock()
	t.closed = true
	c := t.conn
	t.conn = nil
	t.mu.Unlock()
	if c != nil {
		c.fail(errors.New("cluster: transport closed"))
	}
}

// upgradeRejectedError reports a shard that answered the upgrade request with
// a plain HTTP status instead of 101.
type upgradeRejectedError struct{ status int }

func (e *upgradeRejectedError) Error() string {
	return fmt.Sprintf("cluster: stream upgrade rejected with status %d", e.status)
}

// permanent reports a "this endpoint does not exist here" class status: the
// shard build predates the protocol (404/405/501) or rejects it outright
// (4xx). Transient server-side statuses keep the retry schedule.
func (e *upgradeRejectedError) permanent() bool {
	return e.status >= 400 && e.status < 500 || e.status == http.StatusNotImplemented
}

// dialStream opens a TCP connection to the shard and upgrades it to the
// binary frame protocol.
func dialStream(target string, timeout time.Duration) (*streamConn, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad stream target %q: %w", target, err)
	}
	addr := u.Host
	if u.Port() == "" {
		addr = net.JoinHostPort(u.Hostname(), "80")
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	conn.SetDeadline(deadline)
	if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		api.StreamPath, u.Host, api.StreamProtocol); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: reading upgrade response: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		io.CopyN(io.Discard, resp.Body, 4096)
		resp.Body.Close()
		conn.Close()
		return nil, &upgradeRejectedError{status: resp.StatusCode}
	}
	if !strings.EqualFold(resp.Header.Get("Upgrade"), api.StreamProtocol) {
		conn.Close()
		return nil, fmt.Errorf("cluster: upgrade answered with protocol %q, want %q",
			resp.Header.Get("Upgrade"), api.StreamProtocol)
	}
	conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	return &streamConn{
		conn:    conn,
		br:      br,
		pending: make(map[uint64]chan streamReply),
		done:    make(chan struct{}),
	}, nil
}

// streamReply is one multiplexed answer: a response or a decoded error frame.
type streamReply struct {
	resp *api.PartialResponse
	err  error
}

// streamConn is one established stream. Writers serialize on wmu; the single
// readLoop goroutine routes reply frames to pending channels by request id.
type streamConn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan streamReply
	nextID  uint64
	err     error

	done     chan struct{}
	failOnce sync.Once
}

// fail breaks the connection: all in-flight and future requests on it error
// out immediately.
func (c *streamConn) fail(cause error) {
	c.failOnce.Do(func() {
		c.mu.Lock()
		c.err = cause
		c.mu.Unlock()
		close(c.done)
		c.conn.Close()
	})
}

// brokenErr returns the error the connection failed with.
func (c *streamConn) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		return errors.New("cluster: stream closed")
	}
	return c.err
}

// writeFrame sends one frame under the write lock with a bounded deadline,
// counting it into the transport's wire stats.
func (c *streamConn) writeFrame(t *streamTransport, ftype byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(t.timeout))
	n, err := api.WriteFrame(c.conn, ftype, payload)
	if err != nil {
		return err
	}
	t.framesSent.Add(1)
	t.bytesSent.Add(int64(n))
	return nil
}

// roundTrip sends one partial request and waits for its multiplexed reply.
func (c *streamConn) roundTrip(ctx context.Context, t *streamTransport, preq *api.PartialRequest, traceID string) (*api.PartialResponse, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan streamReply, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	payload, err := api.EncodePartialRequest(id, traceID, preq)
	if err != nil {
		c.unregister(id)
		return nil, err
	}
	if err := c.writeFrame(t, api.FramePartialRequest, payload); err != nil {
		c.unregister(id)
		c.fail(err)
		return nil, err
	}
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	select {
	case rep := <-ch:
		return rep.resp, rep.err
	case <-ctx.Done():
		// Abandoned (typically discarded speculation): withdraw it shard-side
		// so a not-yet-started expansion is dropped instead of computed.
		if c.unregister(id) {
			c.writeFrame(t, api.FrameCancel, api.EncodeCancel(id, preq.FrontierHash))
		}
		return nil, ctx.Err()
	case <-timer.C:
		c.unregister(id)
		return nil, fmt.Errorf("cluster: stream request to %s timed out after %v", t.target, t.timeout)
	case <-c.done:
		c.unregister(id)
		return nil, c.brokenErr()
	}
}

// unregister removes a pending request, reporting whether it was still
// pending (false: the reply already arrived or the conn failed it).
func (c *streamConn) unregister(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[id]; !ok {
		return false
	}
	delete(c.pending, id)
	return true
}

// deliver routes one reply to its waiter; replies for abandoned requests are
// counted and dropped.
func (c *streamConn) deliver(t *streamTransport, id uint64, rep streamReply) {
	c.mu.Lock()
	ch := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ch == nil {
		t.dropped.Add(1)
		return
	}
	ch <- rep
}

// readLoop is the connection's only reader: it decodes frames and routes them
// until the stream breaks. A framing or payload decode error is a broken
// stream (the protocol has no resync point), never a panic.
func (c *streamConn) readLoop(t *streamTransport) {
	for {
		ftype, payload, n, err := api.ReadFrame(c.br)
		if err != nil {
			c.fail(fmt.Errorf("cluster: stream from %s broke: %w", t.target, err))
			t.mu.Lock()
			if t.conn == c {
				t.conn = nil
				t.nextAttempt = time.Now().Add(t.backoff)
			}
			t.mu.Unlock()
			// Fail the stragglers (roundTrip also listens on done; this keeps
			// the map from pinning channels).
			c.mu.Lock()
			//lint:ordered teardown error broadcast; every pending channel gets the same error and delivery order is unobservable
			for id, ch := range c.pending {
				delete(c.pending, id)
				select {
				case ch <- streamReply{err: c.err}:
				default:
				}
			}
			c.mu.Unlock()
			return
		}
		t.framesRecv.Add(1)
		t.bytesRecv.Add(int64(n))
		switch ftype {
		case api.FramePartialResponse:
			id, presp, derr := api.DecodePartialResponse(payload)
			if derr != nil {
				c.fail(derr)
				continue
			}
			c.deliver(t, id, streamReply{resp: presp})
		case api.FrameError:
			id, aerr, derr := api.DecodeError(payload)
			if derr != nil {
				c.fail(derr)
				continue
			}
			c.deliver(t, id, streamReply{err: aerr})
		default:
			// Unknown frame type: tolerated for forward compatibility.
		}
	}
}
