package pagerank

import (
	"fmt"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// Dangling-node convention
//
// The paper defines a PPV through the inverse P-distance (Eq. 1-2): the score
// of p is the total reachability of all tours from the query q to p, where a
// tour's reachability decays by (1-alpha)/|Out(v)| per step. A tour cannot be
// extended past a node with no out-edges, so in this formulation the walk is
// absorbed at dangling nodes. We adopt the same convention everywhere (exact
// PPV, prime PPVs, FastPPV assembly, and both baselines) so that every method
// approximates exactly the same target vector. On graphs with dangling nodes
// the exact PPV then sums to slightly less than 1 and the accuracy-aware
// bound phi(k) = 1 - sum(estimate) (Eq. 6) becomes a conservative upper bound
// on the true L1 error; on dangling-free graphs it is exact, as in the paper.

// ExactPPV computes the exact Personalized PageRank Vector with respect to a
// single query node by power iteration over the full graph:
//
//	r = alpha * e_q + (1-alpha) * P^T r
//
// It is the ground-truth oracle used by the accuracy experiments; it is far
// too slow for online use on large graphs, which is the problem FastPPV
// solves.
func ExactPPV(g *graph.Graph, q graph.NodeID, opts Options) (sparse.Vector, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if !g.Valid(q) {
		return nil, fmt.Errorf("pagerank: %w: query %d", graph.ErrNodeOutOfRange, q)
	}
	n := g.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[q] = 1
	for iter := 0; iter < opts.MaxIterations; iter++ {
		for i := range next {
			next[i] = 0
		}
		next[q] = opts.Alpha
		for u := 0; u < n; u++ {
			score := cur[u]
			if score == 0 {
				continue
			}
			deg := g.OutDegree(graph.NodeID(u))
			if deg == 0 {
				continue // absorbed at dangling node
			}
			share := (1 - opts.Alpha) * score / float64(deg)
			for _, v := range g.OutNeighbors(graph.NodeID(u)) {
				next[v] += share
			}
		}
		delta := 0.0
		for u := 0; u < n; u++ {
			d := next[u] - cur[u]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		cur, next = next, cur
		if delta < opts.Tolerance {
			break
		}
	}
	return sparse.FromDense(cur), nil
}

// ExactPPVMulti computes the exact PPV for a multi-node query by the Linearity
// Theorem: the PPV of a uniform teleport set is the average of the single-node
// PPVs.
func ExactPPVMulti(g *graph.Graph, qs []graph.NodeID, opts Options) (sparse.Vector, error) {
	if len(qs) == 0 {
		return sparse.New(0), nil
	}
	total := sparse.New(0)
	w := 1.0 / float64(len(qs))
	for _, q := range qs {
		v, err := ExactPPV(g, q, opts)
		if err != nil {
			return nil, err
		}
		total.AddScaled(v, w)
	}
	return total, nil
}
