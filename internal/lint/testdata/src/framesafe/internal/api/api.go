// Package api is a framesafe fixture: its import path ends in internal/api,
// so every function reachable from an exported Decode*/Read*/... entry is
// held to the length-check-before-read, never-panic contract.
package api

import (
	"encoding/binary"
	"errors"
	"sort"
)

var errTruncated = errors.New("truncated")

// DecodeUnchecked reads fixed-width data with no length evidence: flagged.
func DecodeUnchecked(buf []byte) uint32 {
	return binary.LittleEndian.Uint32(buf) // want "without a preceding length check"
}

// DecodeChecked guards the read with len: clean.
func DecodeChecked(buf []byte) (uint32, error) {
	if len(buf) < 4 {
		return 0, errTruncated
	}
	return binary.LittleEndian.Uint32(buf), nil
}

// DecodePanics panics on corrupt input instead of returning an error: the
// panic is flagged even though the read itself is guarded.
func DecodePanics(buf []byte) uint32 {
	if len(buf) < 4 {
		panic("short frame") // want "panic reachable"
	}
	return binary.LittleEndian.Uint32(buf)
}

// head indexes without length evidence; it is only flagged because
// DecodeViaHelper makes it reachable from an exported decode entry.
func head(buf []byte) byte {
	return buf[0] // want "slice index"
}

// DecodeViaHelper pulls head into the reachable set.
func DecodeViaHelper(buf []byte) byte {
	return head(buf)
}

// notReachable is identical to head but no entry point calls it: clean.
func notReachable(buf []byte) byte {
	return buf[1]
}

// DecodeArray reads from a fixed-size array, which is compile-time sized:
// clean.
func DecodeArray() uint32 {
	var hdr [4]byte
	return binary.LittleEndian.Uint32(hdr[:])
}

// DecodeSelfBounded indexes modulo the slice's own length — the evidence
// lives inside the index expression itself, with no separate prior check:
// clean.
func DecodeSelfBounded(buf []byte, i int) byte {
	return buf[i%len(buf)]
}

// DecodeSorted indexes inside a sort comparator, whose indices are in range
// by contract: clean.
func DecodeSorted(xs []int) bool {
	return sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// DecodeDerived slices a checked buffer into a new variable; the derived
// slice inherits the evidence: clean.
func DecodeDerived(buf []byte) (uint32, error) {
	if len(buf) < 8 {
		return 0, errTruncated
	}
	body := buf[4:8]
	return binary.LittleEndian.Uint32(body), nil
}

var _ = notReachable
