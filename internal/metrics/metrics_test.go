package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

func TestPerfectApproximationScoresOne(t *testing.T) {
	exact := sparse.Vector{1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1}
	r := Evaluate(exact, exact.Clone(), 3)
	if r.KendallTau != 1 || r.Precision != 1 || r.RAG != 1 || math.Abs(r.L1Similarity-1) > 1e-12 {
		t.Errorf("identical vectors should score perfectly: %+v", r)
	}
}

func TestPrecisionAtK(t *testing.T) {
	exact := sparse.Vector{1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1}
	approx := sparse.Vector{1: 0.5, 4: 0.4, 5: 0.3} // hits 1 and 4, misses 2 and 3... top3(exact)={1,2,3}
	got := PrecisionAtK(exact, approx, 3)
	// approx top-3 = {1,4,5}; exact top-3 = {1,2,3}; overlap = {1}.
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("PrecisionAtK = %v, want 1/3", got)
	}
	if got := PrecisionAtK(sparse.Vector{}, approx, 3); got != 1 {
		t.Errorf("precision against an empty exact vector should be 1, got %v", got)
	}
}

func TestRAGRewardsGoodSubstitutes(t *testing.T) {
	exact := sparse.Vector{1: 0.30, 2: 0.29, 3: 0.28, 4: 0.01}
	// The approximation swaps node 3 for node 2 (almost as good) — RAG stays
	// high even though precision drops.
	approx := sparse.Vector{1: 0.4, 3: 0.3, 4: 0.2}
	rag := RAG(exact, approx, 2)
	want := (0.30 + 0.28) / (0.30 + 0.29)
	if math.Abs(rag-want) > 1e-12 {
		t.Errorf("RAG = %v, want %v", rag, want)
	}
	if prec := PrecisionAtK(exact, approx, 2); prec != 0.5 {
		t.Errorf("precision = %v, want 0.5", prec)
	}
	if got := RAG(sparse.Vector{}, approx, 2); got != 1 {
		t.Errorf("RAG against empty exact vector should be 1, got %v", got)
	}
}

func TestL1Metrics(t *testing.T) {
	exact := sparse.Vector{1: 0.6, 2: 0.4}
	approx := sparse.Vector{1: 0.5, 3: 0.1}
	wantErr := 0.1 + 0.4 + 0.1
	if got := L1Error(exact, approx); math.Abs(got-wantErr) > 1e-12 {
		t.Errorf("L1Error = %v, want %v", got, wantErr)
	}
	if got := L1Similarity(exact, approx); math.Abs(got-(1-wantErr)) > 1e-12 {
		t.Errorf("L1Similarity = %v, want %v", got, 1-wantErr)
	}
	// Clamping: wildly wrong vectors cannot go below zero.
	big := sparse.Vector{9: 5}
	if got := L1Similarity(exact, big); got != 0 {
		t.Errorf("L1Similarity should clamp at 0, got %v", got)
	}
}

func TestKendallTauOrderings(t *testing.T) {
	exact := sparse.Vector{1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1}
	reversed := sparse.Vector{1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4}
	if got := KendallTau(exact, exact.Clone(), 4); got != 1 {
		t.Errorf("tau of identical rankings = %v, want 1", got)
	}
	if got := KendallTau(exact, reversed, 4); math.Abs(got+1) > 1e-12 {
		t.Errorf("tau of reversed rankings = %v, want -1", got)
	}
	// A flat approximation (all ties) gives tau 0 — no information.
	flat := sparse.Vector{1: 0.1, 2: 0.1, 3: 0.1, 4: 0.1}
	if got := KendallTau(exact, flat, 4); got != 0 {
		t.Errorf("tau against an all-ties ranking = %v, want 0", got)
	}
	// Fewer than two nodes: trivially 1.
	if got := KendallTau(sparse.Vector{1: 1}, sparse.Vector{1: 1}, 5); got != 1 {
		t.Errorf("tau with a single node = %v, want 1", got)
	}
}

func TestEvaluateDefaultsTopK(t *testing.T) {
	exact := sparse.Vector{}
	for i := 0; i < 30; i++ {
		exact[graph.NodeID(i)] = float64(30-i) / 100
	}
	r1 := Evaluate(exact, exact.Clone(), 0) // defaulted to 10
	r2 := Evaluate(exact, exact.Clone(), DefaultTopK)
	if r1 != r2 {
		t.Errorf("Evaluate with k=0 should default to DefaultTopK: %+v vs %+v", r1, r2)
	}
}

func TestAverage(t *testing.T) {
	reports := []Report{
		{KendallTau: 1, Precision: 0.5, RAG: 0.8, L1Similarity: 0.9},
		{KendallTau: 0, Precision: 1.0, RAG: 1.0, L1Similarity: 0.7},
	}
	avg := Average(reports)
	if avg.KendallTau != 0.5 || avg.Precision != 0.75 || math.Abs(avg.RAG-0.9) > 1e-12 || math.Abs(avg.L1Similarity-0.8) > 1e-12 {
		t.Errorf("Average = %+v", avg)
	}
	if got := Average(nil); got != (Report{}) {
		t.Errorf("Average(nil) = %+v, want zero report", got)
	}
}

// TestQuickMetricBounds property-tests that all metrics stay within their
// documented ranges for arbitrary non-negative score vectors.
func TestQuickMetricBounds(t *testing.T) {
	build := func(raw []float64) sparse.Vector {
		v := sparse.New(len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v.Set(graph.NodeID(i%40), math.Abs(math.Mod(x, 1)))
		}
		return v
	}
	f := func(exactRaw, approxRaw []float64) bool {
		exact, approx := build(exactRaw), build(approxRaw)
		r := Evaluate(exact, approx, 10)
		if r.KendallTau < -1-1e-9 || r.KendallTau > 1+1e-9 {
			return false
		}
		if r.Precision < 0 || r.Precision > 1 {
			return false
		}
		if r.RAG < 0 || r.RAG > 1+1e-9 {
			return false
		}
		return r.L1Similarity >= 0 && r.L1Similarity <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
