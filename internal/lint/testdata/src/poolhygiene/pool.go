// Package poolhygiene is a fixture for the sync.Pool reset-hygiene analyzer.
// The analyzer has no package filter, so any import path works.
package poolhygiene

import "sync"

// Buf carries per-use state and a Reset method.
type Buf struct{ data []byte }

// Reset truncates the buffer in place.
func (b *Buf) Reset() { b.data = b.data[:0] }

// Plain has no Reset method at all.
type Plain struct{ n int }

var (
	bufPool   sync.Pool
	plainPool sync.Pool
)

// PutBad returns a resettable value without resetting it: flagged.
func PutBad(b *Buf) {
	bufPool.Put(b) // want "Reset method that is never called"
}

// PutGood resets before Put: clean.
func PutGood(b *Buf) {
	b.Reset()
	bufPool.Put(b)
}

// PutPlain pools a value with no Reset method: clean.
func PutPlain(p *Plain) {
	plainPool.Put(p)
}
