// Command graphgen generates the synthetic datasets used throughout the
// repository (the DBLP-like bibliographic network and the LiveJournal-like
// social network) and writes them to disk as edge-list or binary graph files.
//
// Usage:
//
//	graphgen -kind dblp -papers 50000 -authors 35000 -venues 800 -out dblp.txt
//	graphgen -kind social -nodes 60000 -deg 8 -format binary -out lj.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")

	var (
		kind    = flag.String("kind", "dblp", "dataset kind: dblp (bibliographic) or social")
		out     = flag.String("out", "", "output file (required)")
		format  = flag.String("format", "edgelist", "output format: edgelist or binary")
		seed    = flag.Int64("seed", 1, "generator seed")
		papers  = flag.Int("papers", 50000, "dblp: number of papers")
		authors = flag.Int("authors", 35000, "dblp: number of authors")
		venues  = flag.Int("venues", 800, "dblp: number of venues")
		year    = flag.Int("snapshot", 0, "dblp: only keep papers up to this year (0 = all)")
		nodes   = flag.Int("nodes", 60000, "social: number of users")
		deg     = flag.Float64("deg", 8, "social: mean out-degree")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var (
		g   *graph.Graph
		err error
	)
	switch *kind {
	case "dblp":
		cfg := gen.DefaultBibliographicConfig()
		cfg.Papers, cfg.Authors, cfg.Venues, cfg.Seed = *papers, *authors, *venues, *seed
		bib, berr := gen.NewBibliographic(cfg)
		if berr != nil {
			log.Fatal(berr)
		}
		g = bib.Graph
		if *year != 0 {
			g = bib.Snapshot(*year)
		}
	case "social":
		cfg := gen.DefaultSocialConfig()
		cfg.Nodes, cfg.OutDegreeMean, cfg.Seed = *nodes, *deg, *seed
		g, err = gen.SocialGraph(cfg)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -kind %q (want dblp or social)", *kind)
	}

	switch *format {
	case "edgelist":
		err = graph.SaveEdgeListFile(*out, g)
	case "binary":
		err = graph.SaveBinaryFile(*out, g)
	default:
		log.Fatalf("unknown -format %q (want edgelist or binary)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, g.Stats())
}
