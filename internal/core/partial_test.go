package core

import (
	"math"
	"testing"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

func TestParsePartition(t *testing.T) {
	cases := []struct {
		in   string
		want Partition
		ok   bool
	}{
		{"0/2", Partition{Shard: 0, Shards: 2}, true},
		{"3/4", Partition{Shard: 3, Shards: 4}, true},
		{"0/1", Partition{Shard: 0, Shards: 1}, true},
		{"2/2", Partition{}, false},
		{"-1/2", Partition{}, false},
		{"1", Partition{}, false},
		{"a/b", Partition{}, false},
		{"1/0", Partition{}, false},
	}
	for _, c := range cases {
		got, err := ParsePartition(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePartition(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePartition(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestPartitionCoversAndBalances(t *testing.T) {
	const shards = 4
	counts := make([]int, shards)
	for h := graph.NodeID(0); h < 40000; h++ {
		owner := Partition{Shards: shards}.Owner(h)
		if owner < 0 || owner >= shards {
			t.Fatalf("Owner(%d) = %d outside [0,%d)", h, owner, shards)
		}
		counts[owner]++
		// Every shard spec must agree on the owner, and exactly one owns h.
		owned := 0
		for s := 0; s < shards; s++ {
			if (Partition{Shard: s, Shards: shards}).Owns(h) {
				owned++
			}
		}
		if owned != 1 {
			t.Fatalf("hub %d owned by %d shards", h, owned)
		}
	}
	for s, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("shard %d owns %d of 40000 hubs; partition badly skewed", s, c)
		}
	}
	if (Partition{}).Owner(7) != 0 || !(Partition{}).Owns(7) {
		t.Error("unsharded partition must own everything via shard 0")
	}
}

// routeQuery drives the scheduled approximation loop the way a cluster router
// does: PartialRoot on the owner, then per-iteration scatter of the frontier
// to owning shards, deterministic merge, and the exact 1-mass bound.
func routeQuery(t *testing.T, engines []*Engine, q graph.NodeID, eta int) *Result {
	t.Helper()
	p := Partition{Shards: len(engines)}
	root, err := engines[p.Owner(q)].PartialRoot(q)
	if err != nil {
		t.Fatalf("PartialRoot(%d): %v", q, err)
	}
	estimate := root.Increment
	frontier := root.Frontier
	mass := estimate.SumOrdered()
	res := &Result{Query: q, Estimate: estimate, L1ErrorBound: 1 - mass}
	for iter := 1; iter <= eta && len(frontier) > 0; iter++ {
		groups := make([]map[graph.NodeID]float64, len(engines))
		for h, w := range frontier {
			owner := p.Owner(h)
			if groups[owner] == nil {
				groups[owner] = make(map[graph.NodeID]float64)
			}
			groups[owner][h] = w
		}
		merged := sparse.New(64)
		next := make(map[graph.NodeID]float64)
		for s, e := range engines {
			if groups[s] == nil {
				continue
			}
			part, err := e.PartialExpand(groups[s])
			if err != nil {
				t.Fatalf("PartialExpand shard %d: %v", s, err)
			}
			if len(part.Unowned) > 0 {
				t.Fatalf("shard %d rejected hubs %v it should own", s, part.Unowned)
			}
			merged.AddVector(part.Increment)
			for h, w := range part.Frontier {
				next[h] += w
			}
		}
		estimate.AddVector(merged)
		mass += merged.SumOrdered()
		frontier = next
		res.Iterations = iter
		res.L1ErrorBound = 1 - mass
	}
	return res
}

// TestPartialCompositionMatchesSingleNode is the exact-aggregation property:
// hub-partitioned partial queries, merged by the router loop, reproduce the
// single-node engine's estimate and error bound at every eta.
func TestPartialCompositionMatchesSingleNode(t *testing.T) {
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 900, OutDegreeMean: 6, Attachment: 0.7, Seed: 11})
	if err != nil {
		t.Fatalf("SocialGraph: %v", err)
	}
	base := Options{NumHubs: 120}
	single, err := NewEngine(g, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Precompute(); err != nil {
		t.Fatalf("single Precompute: %v", err)
	}

	const shards = 3
	engines := make([]*Engine, shards)
	ownedTotal := 0
	for s := 0; s < shards; s++ {
		opts := base
		opts.Partition = Partition{Shard: s, Shards: shards}
		e, err := NewEngine(g, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Precompute(); err != nil {
			t.Fatalf("shard %d Precompute: %v", s, err)
		}
		if e.Hubs().Size() != single.Hubs().Size() {
			t.Fatalf("shard %d selected %d hubs, single node %d: hub selection must be shard-independent",
				s, e.Hubs().Size(), single.Hubs().Size())
		}
		ownedTotal += e.Index().Len()
		engines[s] = e
	}
	if ownedTotal != single.Index().Len() {
		t.Fatalf("shards index %d hubs in total, single node %d: partition must cover the hub set exactly once",
			ownedTotal, single.Index().Len())
	}

	for _, q := range []graph.NodeID{0, 5, 17, 123, 500, 899} {
		for _, eta := range []int{0, 1, 2, 4} {
			want, err := single.Query(q, StopCondition{MaxIterations: eta})
			if err != nil {
				t.Fatalf("single Query(%d, eta=%d): %v", q, eta, err)
			}
			got := routeQuery(t, engines, q, eta)
			if math.Abs(got.L1ErrorBound-want.L1ErrorBound) > 1e-12 {
				t.Errorf("q=%d eta=%d: routed bound %.15f, single-node %.15f", q, eta, got.L1ErrorBound, want.L1ErrorBound)
			}
			if d := got.Estimate.L1Distance(want.Estimate); d > 1e-12 {
				t.Errorf("q=%d eta=%d: routed estimate differs from single node by L1 %.3e", q, eta, d)
			}
			wantTop := want.TopK(10)
			gotTop := got.Estimate.TopK(10)
			if len(wantTop) != len(gotTop) {
				t.Fatalf("q=%d eta=%d: top-k lengths differ: %d vs %d", q, eta, len(gotTop), len(wantTop))
			}
			for i := range wantTop {
				if wantTop[i].Node != gotTop[i].Node {
					t.Errorf("q=%d eta=%d: top-k rank %d is node %d, single node has %d",
						q, eta, i, gotTop[i].Node, wantTop[i].Node)
				}
			}
		}
	}
}

// TestPartialSingleShardByteIdentical: with one shard the partial path must be
// byte-identical to Step — same expansion order, same accumulation order.
func TestPartialSingleShardByteIdentical(t *testing.T) {
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 400, OutDegreeMean: 5, Attachment: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, nil, Options{NumHubs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	const q, eta = 7, 3
	want, err := e.Query(q, StopCondition{MaxIterations: eta})
	if err != nil {
		t.Fatal(err)
	}
	got := routeQuery(t, []*Engine{e}, q, eta)
	if got.L1ErrorBound != want.L1ErrorBound {
		t.Errorf("bound %v != %v: single-shard partial path must be bit-exact", got.L1ErrorBound, want.L1ErrorBound)
	}
	for n, s := range want.Estimate {
		if got.Estimate[n] != s {
			t.Fatalf("estimate[%d] = %v, want %v (bit-exact)", n, got.Estimate[n], s)
		}
	}
	if len(got.Estimate) != len(want.Estimate) {
		t.Fatalf("estimate has %d entries, want %d", len(got.Estimate), len(want.Estimate))
	}
}

// TestPartialExpandRejectsUnownedHubs: mass routed to the wrong shard is
// refused and reported, never silently dropped or expanded.
func TestPartialExpandRejectsUnownedHubs(t *testing.T) {
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 300, OutDegreeMean: 5, Attachment: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumHubs: 40, Partition: Partition{Shard: 0, Shards: 2}}
	e, err := NewEngine(g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	var owned, foreign graph.NodeID = -1, -1
	for _, h := range e.Hubs().Hubs() {
		if opts.Partition.Owns(h) && owned < 0 {
			owned = h
		}
		if !opts.Partition.Owns(h) && foreign < 0 {
			foreign = h
		}
	}
	if owned < 0 || foreign < 0 {
		t.Skip("partition left a shard empty on this graph")
	}
	part, err := e.PartialExpand(map[graph.NodeID]float64{owned: 0.5, foreign: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if part.HubsExpanded != 1 {
		t.Errorf("expanded %d hubs, want 1", part.HubsExpanded)
	}
	if len(part.Unowned) != 1 || part.Unowned[0] != foreign {
		t.Errorf("Unowned = %v, want [%d]", part.Unowned, foreign)
	}
}

// TestShardedApplyUpdateStaysInPartition: an incremental update on a shard
// must recompute owned hubs only.
func TestShardedApplyUpdateStaysInPartition(t *testing.T) {
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 300, OutDegreeMean: 5, Attachment: 0.7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumHubs: 40, Partition: Partition{Shard: 1, Shards: 2}}
	e, err := NewEngine(g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	before := e.Index().Len()
	stats, err := e.ApplyUpdate(GraphUpdate{AddedEdges: []graph.Edge{{From: 0, To: 42}, {From: 7, To: 9}}})
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	for _, h := range stats.Recomputed {
		if !opts.Partition.Owns(h) {
			t.Errorf("update recomputed hub %d owned by the other shard", h)
		}
	}
	if got := e.Index().Len(); got != before {
		t.Errorf("index grew from %d to %d hubs: update leaked unowned hubs into the shard", before, got)
	}
	if stats.AffectedHubs+stats.UnaffectedHubs != before {
		t.Errorf("affected %d + unaffected %d != owned %d", stats.AffectedHubs, stats.UnaffectedHubs, before)
	}
}

// TestShardedServingEngineValidation: opening a shard index as the wrong
// shard, or with a foreign hub, must fail loudly.
func TestShardedServingEngineValidation(t *testing.T) {
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 300, OutDegreeMean: 5, Attachment: 0.7, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumHubs: 40, Partition: Partition{Shard: 0, Shards: 2}}
	e, err := NewEngine(g, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	idx := e.index

	if _, err := NewServingEngine(g, idx, opts); err != nil {
		t.Fatalf("reopening the right shard failed: %v", err)
	}
	wrong := opts
	wrong.Partition.Shard = 1
	if _, err := NewServingEngine(g, idx, wrong); err == nil {
		t.Error("opening shard 0's index as shard 1 should fail")
	}
}
