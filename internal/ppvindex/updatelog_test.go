package ppvindex

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// collectReplay returns a replay callback appending into dst.
func collectReplay(dst *[]struct {
	hub graph.NodeID
	ppv sparse.Vector
}) func(graph.NodeID, sparse.Vector) error {
	return func(h graph.NodeID, ppv sparse.Vector) error {
		*dst = append(*dst, struct {
			hub graph.NodeID
			ppv sparse.Vector
		}{h, ppv})
		return nil
	}
}

func TestUpdateLogAppendCommitReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.log")
	l, err := OpenUpdateLog(path, 1000, 30, nil)
	if err != nil {
		t.Fatalf("OpenUpdateLog: %v", err)
	}
	v1 := sparse.Vector{1: 0.5, 9: 0.25}
	v2 := sparse.Vector{2: 0.125}
	if err := l.Append(7, v1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(3, v2); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 2 {
		t.Errorf("Records = %d, want 2", l.Records())
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var replayed []struct {
		hub graph.NodeID
		ppv sparse.Vector
	}
	l2, err := OpenUpdateLog(path, 1000, 30, collectReplay(&replayed))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records, want 2", len(replayed))
	}
	if replayed[0].hub != 7 || replayed[1].hub != 3 {
		t.Errorf("replay order = %d,%d, want 7,3", replayed[0].hub, replayed[1].hub)
	}
	if got := replayed[0].ppv[9]; got != 0.25 {
		t.Errorf("replayed score of node 9 = %v, want 0.25", got)
	}
	if l2.Records() != 2 || l2.SizeBytes() <= logHeaderBytes {
		t.Errorf("reopened log: %d records, %d bytes", l2.Records(), l2.SizeBytes())
	}
}

// TestUpdateLogTruncatesTornTail simulates a crash mid-append: a partial
// frame at the end of the log must be dropped on open, keeping every complete
// frame before it.
func TestUpdateLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.log")
	l, err := OpenUpdateLog(path, 1000, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, sparse.Vector{4: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	goodSize := l.SizeBytes()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn append: a frame header promising more payload than the file holds.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 8+5) // header + 5 of the promised 20 payload bytes
	binary.LittleEndian.PutUint32(torn[0:], 20)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var replayed []struct {
		hub graph.NodeID
		ppv sparse.Vector
	}
	l2, err := OpenUpdateLog(path, 1000, 30, collectReplay(&replayed))
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 1 || replayed[0].hub != 1 {
		t.Fatalf("replayed %v, want just hub 1", replayed)
	}
	if l2.SizeBytes() != goodSize {
		t.Errorf("log size after truncation = %d, want %d", l2.SizeBytes(), goodSize)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != goodSize {
		t.Errorf("file size = %d (%v), want %d", st.Size(), err, goodSize)
	}
}

// TestUpdateLogStopsAtCorruptFrame flips a payload bit mid-log: the CRC
// mismatch must stop replay at the corrupt frame, keeping earlier frames.
func TestUpdateLogStopsAtCorruptFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.log")
	l, err := OpenUpdateLog(path, 1000, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, sparse.Vector{4: 0.5}); err != nil {
		t.Fatal(err)
	}
	firstEnd := l.SizeBytes()
	if err := l.Append(2, sparse.Vector{5: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the second frame's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[firstEnd+logFrameOverhead+3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed []struct {
		hub graph.NodeID
		ppv sparse.Vector
	}
	l2, err := OpenUpdateLog(path, 1000, 30, collectReplay(&replayed))
	if err != nil {
		t.Fatalf("reopen with corrupt frame: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 1 || replayed[0].hub != 1 {
		t.Fatalf("replayed %d records (first hub %v), want just the pre-corruption frame",
			len(replayed), replayed)
	}
	if l2.SizeBytes() != firstEnd {
		t.Errorf("log truncated to %d, want %d", l2.SizeBytes(), firstEnd)
	}
}

// TestUpdateLogCloseDiscardsUncommitted: frames appended by a batch whose
// commit never ran (the update failed) must not survive Close — replaying
// them would restore half a batch for a graph change that never happened.
func TestUpdateLogCloseDiscardsUncommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.log")
	l, err := OpenUpdateLog(path, 1000, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, sparse.Vector{4: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	committedSize := l.SizeBytes()
	if err := l.Append(2, sparse.Vector{5: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != committedSize {
		t.Errorf("file size after close = %d (%v), want the committed %d", st.Size(), err, committedSize)
	}
	var replayed []struct {
		hub graph.NodeID
		ppv sparse.Vector
	}
	l2, err := OpenUpdateLog(path, 1000, 30, collectReplay(&replayed))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(replayed) != 1 || replayed[0].hub != 1 {
		t.Fatalf("replayed %v, want only the committed frame", replayed)
	}
}

func TestUpdateLogRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.log")
	if err := os.WriteFile(path, []byte("definitely not an update log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenUpdateLog(path, 1000, 30, nil); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("OpenUpdateLog on a foreign file = %v, want ErrBadIndexFormat", err)
	}
}

func TestUpdateLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.log")
	l, err := OpenUpdateLog(path, 1000, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, sparse.Vector{4: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(1000, 30); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.SizeBytes() != logHeaderBytes || l.Records() != 0 {
		t.Errorf("after Reset: %d bytes, %d records", l.SizeBytes(), l.Records())
	}
	// Appends keep working after a reset, and only they replay.
	if err := l.Append(2, sparse.Vector{6: 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var replayed []struct {
		hub graph.NodeID
		ppv sparse.Vector
	}
	l2, err := OpenUpdateLog(path, 1000, 30, collectReplay(&replayed))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(replayed) != 1 || replayed[0].hub != 2 {
		t.Fatalf("replayed %v, want just the post-reset record", replayed)
	}
}

// TestUpdateLogTornHeader covers a crash before the header itself was fully
// written: the open must recover by rewriting a fresh header.
func TestUpdateLogTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.log")
	if err := os.WriteFile(path, []byte{0x46, 0x50}, 0o644); err != nil { // 2 of 24 header bytes
		t.Fatal(err)
	}
	l, err := OpenUpdateLog(path, 1000, 30, func(graph.NodeID, sparse.Vector) error {
		t.Fatal("nothing should replay from a torn header")
		return nil
	})
	if err != nil {
		t.Fatalf("OpenUpdateLog on a torn header: %v", err)
	}
	defer l.Close()
	if l.SizeBytes() != logHeaderBytes || l.Records() != 0 {
		t.Errorf("recovered log: %d bytes, %d records", l.SizeBytes(), l.Records())
	}
}

// TestUpdateLogDiscardsMismatchedBinding: a log bound to a different base
// file (leftover of a crashed rebuild, or of a compaction that renamed the
// new base but died before resetting the log) must be discarded on open, not
// replayed onto a base it does not describe.
func TestUpdateLogDiscardsMismatchedBinding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.log")
	l, err := OpenUpdateLog(path, 1000, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, sparse.Vector{4: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Same size, different hub count — and a different size — both mismatch.
	for _, bind := range []struct {
		bytes int64
		hubs  int
	}{{1000, 31}, {2000, 30}} {
		l2, err := OpenUpdateLog(path, bind.bytes, bind.hubs, func(graph.NodeID, sparse.Vector) error {
			t.Fatalf("record replayed despite binding mismatch %+v", bind)
			return nil
		})
		if err != nil {
			t.Fatalf("OpenUpdateLog with mismatched binding: %v", err)
		}
		if l2.SizeBytes() != logHeaderBytes || l2.Records() != 0 {
			t.Errorf("mismatched log not discarded: %d bytes, %d records", l2.SizeBytes(), l2.Records())
		}
		// The reset re-binds to the new base; closing keeps it empty for the
		// next iteration (which mismatches again on purpose).
		if err := l2.Append(9, sparse.Vector{1: 0.25}); err != nil {
			t.Fatal(err)
		}
		if err := l2.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Matching binding replays the record appended after the last re-bind.
	var replayed []struct {
		hub graph.NodeID
		ppv sparse.Vector
	}
	l3, err := OpenUpdateLog(path, 2000, 30, collectReplay(&replayed))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(replayed) != 1 || replayed[0].hub != 9 {
		t.Fatalf("replayed %v, want the re-bound record of hub 9", replayed)
	}
}
