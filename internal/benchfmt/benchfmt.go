// Package benchfmt defines the BENCH_*.json schema shared by the standing
// benchmark harness (ppvbench -serve) and the ad-hoc load generator
// (ppvload -json). Every PR leaves a BENCH_<n>.json at the repo root in this
// format, so the performance trajectory of the serving stack — throughput,
// tail latency, warm-read cost, reported error bounds — is a diffable series
// rather than a claim in a PR description.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Schema is the format identifier stamped into every report.
const Schema = "fastppv-bench/v1"

// Report is one benchmark run. Fields that a given harness cannot measure are
// zero and omitted: ppvload has no disk-store access, so it leaves the
// read-cost fields empty; a pure engine run has no cluster section.
type Report struct {
	Schema string `json:"schema"`
	// Source names the producing harness: "ppvbench-serve" or "ppvload".
	Source string `json:"source"`
	// Mode is "engine" or "router", matching the trace block's mode.
	Mode      string    `json:"mode"`
	Timestamp time.Time `json:"timestamp"`

	Graph    GraphInfo    `json:"graph"`
	Workload WorkloadInfo `json:"workload"`

	// QPS is successful requests per wall-clock second across all workers.
	QPS       float64     `json:"qps"`
	LatencyMS Percentiles `json:"latency_ms"`
	// BytesPerQuery is the mean HTTP response body size of successful
	// queries.
	BytesPerQuery float64 `json:"bytes_per_query"`
	// ErrorBound summarizes the exact L1 error bound reported per response.
	ErrorBound Percentiles `json:"error_bound"`

	CacheHitRate float64 `json:"cache_hit_rate"`
	Failures     int     `json:"failures"`

	// WarmReadNS / ColdReadNS are mean per-hub-block read costs against the
	// on-disk index with the block cache warm and disabled respectively
	// (ppvbench -serve only). The read goes through the same path the query
	// hot loop uses: a zero-copy record view when the store supports it, a
	// decoded vector otherwise.
	WarmReadNS float64 `json:"warm_read_ns,omitempty"`
	ColdReadNS float64 `json:"cold_read_ns,omitempty"`

	// AllocsPerQuery is the mean number of heap allocations per successful
	// request, measured process-wide across the in-process client+server
	// stack (ppvbench -serve only). Additive field of fastppv-bench/v1:
	// older reports simply omit it.
	AllocsPerQuery float64 `json:"allocs_per_query,omitempty"`
	// PoolHitRate is the cumulative query-buffer pool reuse rate at the end
	// of the run (hits/gets; ~1 at steady state). Additive.
	PoolHitRate float64 `json:"pool_hit_rate,omitempty"`
	// MmapActive reports whether the disk read-cost passes served the index
	// from a memory mapping (zero-copy views) rather than pread. Additive.
	MmapActive bool `json:"mmap_active,omitempty"`

	// ClusterP50MS is the warm p50 latency of the same workload replayed
	// through a 2-shard router over the binary streaming transport, and
	// ClusterVsSingleRatio divides it by the single-node warm p50 (the ISSUE-8
	// target is <= 2.0). Additive fields of the cluster pass (ppvbench -serve
	// only); older reports omit them.
	ClusterP50MS         float64 `json:"cluster_p50_ms,omitempty"`
	ClusterVsSingleRatio float64 `json:"cluster_vs_single_ratio,omitempty"`
	// ClusterTransport names the shard transport the cluster pass used
	// ("binary" or "json").
	ClusterTransport string `json:"cluster_transport,omitempty"`
	// SpeculationHitRate is consumed pre-sent iterations / pre-sent iterations
	// across the cluster pass (1.0 when no query stops early).
	SpeculationHitRate float64 `json:"speculation_hit_rate,omitempty"`
	// WireBytesPerQuery is the mean bytes on the shard wire (both directions)
	// per routed query in the cluster pass.
	WireBytesPerQuery float64 `json:"wire_bytes_per_query,omitempty"`

	// WarmSource names what chose the hubs of the startup warming pass:
	// "querylog" (replayed persistent query log) or "heuristic" (hottest hubs
	// by out-degree). Additive field of the warming pass (ppvbench -serve
	// only); older reports omit it.
	WarmSource string `json:"warm_source,omitempty"`
	// WarmHitRate is the block-cache hit rate of the measured workload served
	// right after warming (result cache disabled, so every request exercises
	// the block cache). Additive.
	WarmHitRate float64 `json:"warm_hit_rate,omitempty"`

	// SlowQueries counts requests over the client-side slow threshold
	// (ppvload -slow-ms) and WorstTraceID is the server-retained trace id of
	// the slowest of them (from the X-Fastppv-Trace response header), ready
	// for GET /v1/debug/trace/{id}. Additive; ppvload only.
	SlowQueries  int    `json:"slow_queries,omitempty"`
	WorstTraceID string `json:"worst_trace_id,omitempty"`
}

// GraphInfo describes the dataset the run was served from.
type GraphInfo struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges,omitempty"`
	Hubs  int `json:"hubs,omitempty"`
}

// WorkloadInfo describes the client side of the run.
type WorkloadInfo struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	ZipfS       float64 `json:"zipf_s,omitempty"`
	Eta         int     `json:"eta"`
	Top         int     `json:"top"`
}

// Percentiles is the five-point summary used for both latencies and error
// bounds.
type Percentiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
	N   int     `json:"n"`
}

// Summarize computes the percentile summary of xs. It sorts a copy; an empty
// input yields the zero summary.
func Summarize(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	at := func(q float64) float64 { return s[int(q*float64(len(s)-1))] }
	return Percentiles{
		P50: at(0.50), P90: at(0.90), P99: at(0.99),
		Max: s[len(s)-1], N: len(s),
	}
}

// SummarizeDurations is Summarize over latencies, reported in milliseconds.
func SummarizeDurations(ds []time.Duration) Percentiles {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / 1e6
	}
	return Summarize(xs)
}

// WriteFile writes the report as indented JSON; "-" writes to stdout.
func WriteFile(path string, r *Report) error {
	r.Schema = Schema
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("writing bench report: %w", err)
	}
	return nil
}
