package ppvindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"fastppv/internal/graph"
)

// Graph-mutation log layout (little endian):
//
//	header (32 bytes):
//	  magic    uint32 'F','P','G','1'
//	  version  uint32 (currently 1)
//	  nodes    uint64 node count of the base graph the mutations apply to
//	  edges    uint64 edge count of that base graph
//	  flags    uint32 bit 0: base graph is directed
//	  reserved uint32
//	frames (zero or more, appended in commit order):
//	  payloadLen uint32  bytes of payload
//	  crc        uint32  CRC-32 (IEEE) of the payload
//	  payload:
//	    numNodes     uint32  GraphMutation.NumNodes (0 = unchanged)
//	    addedCount   uint32
//	    removedCount uint32
//	    addedCount   x { from uint32, to uint32 }
//	    removedCount x { from uint32, to uint32 }
//
// The log is the durability side of incremental *graph* maintenance, the
// counterpart of the update log's durable PPVs: the update log persists the
// recomputed hub records of each batch, this log persists the batch itself.
// Without it a restart reloads the original graph file, so every answer that
// touches the graph on the fly (non-hub roots, freshly recomputed hubs'
// neighbours) silently reverts while the index still serves the updated PPVs.
// One frame is appended per committed GraphUpdate, in ApplyUpdate order, and
// replaying the frames on open reproduces the exact graph — and, because each
// frame is one epoch bump, the exact index epoch — the process served before
// it stopped.
//
// The header binds the log to the base graph it was started against (node and
// edge counts plus directedness, the cheap identity available without hashing
// the whole edge set): a log found next to a different graph is reset instead
// of replayed, so swapping the -graph file does not replay foreign mutations
// onto it. Unlike the update log, this log is never folded away by index
// compaction — the graph file on disk stays the original, so the mutations
// remain the only durable record of the current graph.
//
// A torn tail (a crash mid-append) is truncated away on open, the same WAL
// semantics as the update log: frames before the tear are kept, nothing after
// an invalid frame is trusted.
const (
	graphLogMagic       = uint32('F') | uint32('P')<<8 | uint32('G')<<16 | uint32('1')<<24
	graphLogVersion     = 1
	graphLogHeaderBytes = 32
	graphEdgeBytes      = 8
	graphFrameMinBytes  = 12 // numNodes + addedCount + removedCount
)

// GraphMutation is one logged batch of graph changes, mirroring
// core.GraphUpdate without importing it (core depends on this package).
type GraphMutation struct {
	AddedEdges   []graph.Edge
	RemovedEdges []graph.Edge
	NumNodes     int
}

// GraphLogBinding identifies the base graph a mutation log belongs to.
type GraphLogBinding struct {
	Nodes    int
	Edges    int
	Directed bool
}

// GraphLog is an append-only, CRC-framed log of graph-update batches kept
// alongside a disk index. Append buffers frames; Commit flushes and fsyncs
// them. Like UpdateLog it is not safe for concurrent use; the disk store's
// mutex serializes access.
type GraphLog struct {
	f       *os.File
	w       *bufio.Writer
	size    int64
	records int64
	// committedSize trails size until Commit runs; the gap is the in-flight
	// batch (dropped again by a crash, exactly like the update log).
	committedSize    int64
	committedRecords int64
	bind             GraphLogBinding
}

// OpenGraphLog opens (or creates) the graph-mutation log at path and replays
// every valid frame through replay, in append order. bind identifies the base
// graph being served; a log bound to a different graph is reset to empty
// instead of replayed. A torn tail is truncated; a foreign or corrupt header
// fails with ErrBadIndexFormat. The returned log is positioned for appending.
func OpenGraphLog(path string, bind GraphLogBinding, replay func(GraphMutation) error) (*GraphLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &GraphLog{f: f, bind: bind}
	if st.Size() < graphLogHeaderBytes {
		if err := l.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		header := make([]byte, graphLogHeaderBytes)
		if _, err := f.ReadAt(header, 0); err != nil {
			f.Close()
			return nil, err
		}
		if binary.LittleEndian.Uint32(header[0:]) != graphLogMagic {
			f.Close()
			return nil, fmt.Errorf("%w: graph log %s has a foreign magic", ErrBadIndexFormat, path)
		}
		if v := binary.LittleEndian.Uint32(header[4:]); v != graphLogVersion {
			f.Close()
			return nil, fmt.Errorf("%w: graph log %s has unsupported version %d", ErrBadIndexFormat, path, v)
		}
		bound := GraphLogBinding{
			Nodes:    int(binary.LittleEndian.Uint64(header[8:])),
			Edges:    int(binary.LittleEndian.Uint64(header[16:])),
			Directed: binary.LittleEndian.Uint32(header[24:])&1 != 0,
		}
		if bound != bind {
			// The mutations apply to a different base graph than the one being
			// served; replaying them here would corrupt it. Start fresh.
			if err := l.writeHeader(); err != nil {
				f.Close()
				return nil, err
			}
		} else {
			end, records, err := l.replayFrames(st.Size(), replay)
			if err != nil {
				f.Close()
				return nil, err
			}
			if end < st.Size() {
				if err := f.Truncate(end); err != nil {
					f.Close()
					return nil, err
				}
			}
			if _, err := f.Seek(end, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			l.size, l.records = end, records
			l.committedSize, l.committedRecords = end, records
		}
	}
	l.w = bufio.NewWriterSize(f, 1<<16)
	return l, nil
}

// writeHeader truncates the file and writes a fresh header carrying the
// current graph binding, leaving the write offset right after it.
func (l *GraphLog) writeHeader() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	header := make([]byte, graphLogHeaderBytes)
	binary.LittleEndian.PutUint32(header[0:], graphLogMagic)
	binary.LittleEndian.PutUint32(header[4:], graphLogVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(l.bind.Nodes))
	binary.LittleEndian.PutUint64(header[16:], uint64(l.bind.Edges))
	var flags uint32
	if l.bind.Directed {
		flags |= 1
	}
	binary.LittleEndian.PutUint32(header[24:], flags)
	if _, err := l.f.WriteAt(header, 0); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if _, err := l.f.Seek(graphLogHeaderBytes, io.SeekStart); err != nil {
		return err
	}
	l.size, l.records = graphLogHeaderBytes, 0
	l.committedSize, l.committedRecords = graphLogHeaderBytes, 0
	return nil
}

// encodeMutation serializes one batch as a frame payload.
func encodeMutation(m GraphMutation) []byte {
	buf := make([]byte, graphFrameMinBytes+(len(m.AddedEdges)+len(m.RemovedEdges))*graphEdgeBytes)
	binary.LittleEndian.PutUint32(buf[0:], uint32(m.NumNodes))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(m.AddedEdges)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(m.RemovedEdges)))
	at := graphFrameMinBytes
	for _, lst := range [2][]graph.Edge{m.AddedEdges, m.RemovedEdges} {
		for _, ed := range lst {
			binary.LittleEndian.PutUint32(buf[at:], uint32(ed.From))
			binary.LittleEndian.PutUint32(buf[at+4:], uint32(ed.To))
			at += graphEdgeBytes
		}
	}
	return buf
}

// decodeMutation parses a frame payload produced by encodeMutation. The
// declared edge counts must exactly cover the buffer.
func decodeMutation(buf []byte) (GraphMutation, error) {
	var m GraphMutation
	if len(buf) < graphFrameMinBytes {
		return m, fmt.Errorf("%w: graph mutation payload of %d bytes is shorter than its header", ErrBadIndexFormat, len(buf))
	}
	m.NumNodes = int(binary.LittleEndian.Uint32(buf[0:]))
	added := int(binary.LittleEndian.Uint32(buf[4:]))
	removed := int(binary.LittleEndian.Uint32(buf[8:]))
	if added < 0 || removed < 0 || graphFrameMinBytes+(added+removed)*graphEdgeBytes != len(buf) {
		return m, fmt.Errorf("%w: graph mutation claims %d+%d edges in a %d-byte payload", ErrBadIndexFormat, added, removed, len(buf))
	}
	decode := func(n int, at int) ([]graph.Edge, int) {
		if n == 0 {
			return nil, at
		}
		out := make([]graph.Edge, n)
		for i := range out {
			out[i] = graph.Edge{
				From: graph.NodeID(binary.LittleEndian.Uint32(buf[at:])),
				To:   graph.NodeID(binary.LittleEndian.Uint32(buf[at+4:])),
			}
			at += graphEdgeBytes
		}
		return out, at
	}
	at := graphFrameMinBytes
	m.AddedEdges, at = decode(added, at)
	m.RemovedEdges, _ = decode(removed, at)
	return m, nil
}

// replayFrames scans frames from the header to fileSize, calling replay for
// each valid one, and returns the end offset of the last valid frame plus the
// number of frames replayed. Scanning stops at the first truncated or
// CRC-mismatching frame.
func (l *GraphLog) replayFrames(fileSize int64, replay func(GraphMutation) error) (int64, int64, error) {
	off := int64(graphLogHeaderBytes)
	var records int64
	frameHeader := make([]byte, logFrameOverhead)
	for off+logFrameOverhead <= fileSize {
		if _, err := l.f.ReadAt(frameHeader, off); err != nil {
			return 0, 0, err
		}
		payloadLen := int64(binary.LittleEndian.Uint32(frameHeader[0:]))
		wantCRC := binary.LittleEndian.Uint32(frameHeader[4:])
		if payloadLen < graphFrameMinBytes || (payloadLen-graphFrameMinBytes)%graphEdgeBytes != 0 ||
			off+logFrameOverhead+payloadLen > fileSize {
			break
		}
		payload := make([]byte, payloadLen)
		if _, err := l.f.ReadAt(payload, off+logFrameOverhead); err != nil {
			return 0, 0, err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		m, err := decodeMutation(payload)
		if err != nil {
			break
		}
		if replay != nil {
			if err := replay(m); err != nil {
				return 0, 0, err
			}
		}
		off += logFrameOverhead + payloadLen
		records++
	}
	return off, records, nil
}

// Append buffers one mutation frame. It does not hit the disk until Commit.
func (l *GraphLog) Append(m GraphMutation) error {
	payload := encodeMutation(m)
	var frameHeader [logFrameOverhead]byte
	binary.LittleEndian.PutUint32(frameHeader[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frameHeader[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(frameHeader[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.size += logFrameOverhead + int64(len(payload))
	l.records++
	return nil
}

// Commit flushes every appended frame and fsyncs the file: one durable batch
// per graph update.
func (l *GraphLog) Commit() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.committedSize, l.committedRecords = l.size, l.records
	return nil
}

// SizeBytes returns the log size in bytes, including the header and any
// still-buffered frames.
func (l *GraphLog) SizeBytes() int64 { return l.size }

// Records returns the number of frames in the log, including buffered ones.
// After a clean open this equals the index epoch of the replayed state.
func (l *GraphLog) Records() int64 { return l.records }

// Close discards any frames appended since the last Commit, fsyncs and closes
// the log file. The discard matters: frames still buffered at Close belong to
// an update batch whose commit never completed (its failure is why the store
// is shutting down), and flushing them would hand the restarted replica a
// graph — and an epoch — whose PPV half was never made durable. That is the
// one mismatch direction the commit order exists to prevent (a replica
// claiming a newer epoch than its index), so the tail is rolled back to the
// last committed frame instead.
func (l *GraphLog) Close() error {
	l.w.Reset(l.f)
	var firstErr error
	if l.size != l.committedSize {
		// Part of the uncommitted batch may have auto-flushed out of the
		// buffer; truncate the file back to the committed prefix.
		if err := l.f.Truncate(l.committedSize); err != nil {
			firstErr = err
		}
		l.size, l.records = l.committedSize, l.committedRecords
	}
	if err := l.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := l.f.Close(); firstErr == nil {
		firstErr = err
	}
	return firstErr
}
