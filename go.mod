module fastppv

go 1.24
