package pagerank

import (
	"math"
	"testing"

	"fastppv/internal/graph"
)

func TestExactPPVSimpleChain(t *testing.T) {
	// q -> b -> c with c dangling. The tour reachabilities are closed form:
	// r(q) = alpha, r(b) = alpha(1-alpha), r(c) = alpha(1-alpha)^2.
	b := graph.NewBuilder(true)
	q := b.AddNode()
	m := b.AddNode()
	c := b.AddNode()
	b.MustAddEdge(q, m)
	b.MustAddEdge(m, c)
	g := b.Finalize()

	ppv, err := ExactPPV(g, q, Options{})
	if err != nil {
		t.Fatalf("ExactPPV: %v", err)
	}
	alpha := DefaultAlpha
	cases := []struct {
		node graph.NodeID
		want float64
	}{
		{q, alpha},
		{m, alpha * (1 - alpha)},
		{c, alpha * (1 - alpha) * (1 - alpha)},
	}
	for _, tc := range cases {
		if got := ppv.Get(tc.node); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("score of %d = %.6f, want %.6f", tc.node, got, tc.want)
		}
	}
}

func TestExactPPVCycleSumsToOne(t *testing.T) {
	// On a graph with no dangling nodes the PPV is a probability
	// distribution.
	b := graph.NewBuilder(true)
	b.EnsureNodes(5)
	for i := 0; i < 5; i++ {
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%5))
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+2)%5))
	}
	g := b.Finalize()
	ppv, err := ExactPPV(g, 0, Options{})
	if err != nil {
		t.Fatalf("ExactPPV: %v", err)
	}
	if math.Abs(ppv.Sum()-1) > 1e-8 {
		t.Errorf("PPV sums to %v, want 1", ppv.Sum())
	}
	// The query node keeps at least the teleport mass.
	if ppv.Get(0) < DefaultAlpha-1e-9 {
		t.Errorf("query self score %v below alpha", ppv.Get(0))
	}
}

func TestExactPPVIsQuerySpecific(t *testing.T) {
	b := graph.NewBuilder(true)
	b.EnsureNodes(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 0)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(5, 3)
	g := b.Finalize()
	p0, err := ExactPPV(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := ExactPPV(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Disconnected components: each PPV lives entirely on its own component.
	if p0.Get(3) != 0 || p0.Get(4) != 0 || p3.Get(0) != 0 {
		t.Errorf("PPV leaked across components: p0(3)=%v p3(0)=%v", p0.Get(3), p3.Get(0))
	}
	if p0.Get(1) <= 0 || p3.Get(4) <= 0 {
		t.Errorf("PPV missing in-component mass")
	}
}

func TestExactPPVMultiLinearity(t *testing.T) {
	b := graph.NewBuilder(true)
	b.EnsureNodes(6)
	for i := 0; i < 6; i++ {
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%6))
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+3)%6))
	}
	g := b.Finalize()
	single0, err := ExactPPV(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	single2, err := ExactPPV(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := ExactPPVMulti(g, []graph.NodeID{0, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The Linearity Theorem: the multi-node PPV is the average of the
	// single-node PPVs.
	combined := single0.Clone()
	combined.Scale(0.5)
	combined.AddScaled(single2, 0.5)
	if d := combined.L1Distance(multi); d > 1e-9 {
		t.Errorf("multi-node PPV differs from the linear combination by %v", d)
	}

	empty, err := ExactPPVMulti(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if empty.NonZeros() != 0 {
		t.Errorf("PPV of an empty query should be empty")
	}
}

func TestExactPPVErrors(t *testing.T) {
	b := graph.NewBuilder(true)
	b.EnsureNodes(2)
	b.MustAddEdge(0, 1)
	g := b.Finalize()
	if _, err := ExactPPV(g, 5, Options{}); err == nil {
		t.Error("out-of-range query should fail")
	}
	if _, err := ExactPPV(g, 0, Options{Alpha: 2}); err == nil {
		t.Error("invalid alpha should fail")
	}
}
