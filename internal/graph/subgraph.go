package graph

import (
	"math/rand"
	"sort"
)

// InducedSubgraph returns the subgraph induced by keep (a set of original node
// identifiers) together with a mapping from new node ids back to the original
// ids. Nodes keep their labels. Edges with either endpoint outside keep are
// dropped.
func InducedSubgraph(g *Graph, keep []NodeID) (*Graph, []NodeID) {
	sorted := append([]NodeID(nil), keep...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Deduplicate.
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	remap := make(map[NodeID]NodeID, len(uniq))
	for newID, oldID := range uniq {
		remap[oldID] = NodeID(newID)
	}

	b := NewBuilder(g.Directed())
	for _, oldID := range uniq {
		if g.HasLabels() {
			b.AddLabeledNode(g.Label(oldID))
		} else {
			b.AddNode()
		}
	}
	for _, oldU := range uniq {
		newU := remap[oldU]
		for _, oldV := range g.OutNeighbors(oldU) {
			newV, ok := remap[oldV]
			if !ok {
				continue
			}
			if !g.Directed() && newU > newV {
				continue // add each undirected edge once
			}
			b.MustAddEdge(newU, newV)
		}
	}
	return b.Finalize(), uniq
}

// SampleEdges returns a new graph over the same node set containing a uniform
// random sample of numEdges logical edges (without replacement), reproducibly
// seeded. It is used to build the LiveJournal-style growth series S1..S5
// (Fig. 13b of the paper).
func SampleEdges(g *Graph, numEdges int, seed int64) *Graph {
	logical := collectLogicalEdges(g)
	if numEdges > len(logical) {
		numEdges = len(logical)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(logical), func(i, j int) { logical[i], logical[j] = logical[j], logical[i] })
	b := NewBuilder(g.Directed())
	b.EnsureNodes(g.NumNodes())
	if g.HasLabels() {
		for u := 0; u < g.NumNodes(); u++ {
			// Builder labels must align with node ids; rebuild them in order.
			if u == 0 {
				b.labels = make([]string, g.NumNodes())
			}
			b.labels[u] = g.Label(NodeID(u))
		}
	}
	for _, e := range logical[:numEdges] {
		b.MustAddEdge(e.From, e.To)
	}
	return b.Finalize()
}

// collectLogicalEdges lists each logical edge exactly once.
func collectLogicalEdges(g *Graph) []Edge {
	edges := make([]Edge, 0, g.NumLogicalEdges())
	g.Edges(func(e Edge) bool {
		if !g.Directed() && e.From > e.To {
			return true
		}
		edges = append(edges, e)
		return true
	})
	return edges
}

// LargestComponentNodes returns the nodes of the largest weakly connected
// component. Experiment drivers use it to avoid querying isolated nodes in
// sparse samples.
func LargestComponentNodes(g *Graph) []NodeID {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	g.BuildReverse()
	var best []NodeID
	var queue []NodeID
	next := int32(0)
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		id := next
		next++
		queue = queue[:0]
		queue = append(queue, NodeID(start))
		comp[start] = id
		var members []NodeID
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			members = append(members, u)
			for _, v := range g.OutNeighbors(u) {
				if comp[v] == -1 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
			for _, v := range g.InNeighbors(u) {
				if comp[v] == -1 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
		}
		if len(members) > len(best) {
			best = members
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best
}
