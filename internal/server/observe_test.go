package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fastppv/internal/api"
	"fastppv/internal/querylog"
)

// TestTraceRingEvictionOrder overfills a small ring and checks that exactly
// the newest traces survive, snapshot order is newest-first, and evicted ids
// are no longer findable.
func TestTraceRingEvictionOrder(t *testing.T) {
	r := newTraceRing(4)
	for i := 1; i <= 6; i++ {
		r.add(&RetainedTrace{TraceID: fmt.Sprintf("t%d", i), Node: i})
	}
	if got := r.captured(); got != 6 {
		t.Fatalf("captured = %d, want 6", got)
	}
	snap := r.snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d traces, want 4", len(snap))
	}
	for i, want := range []string{"t6", "t5", "t4", "t3"} {
		if snap[i].TraceID != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, snap[i].TraceID, want)
		}
	}
	for _, evicted := range []string{"t1", "t2"} {
		if r.find(evicted) != nil {
			t.Errorf("evicted trace %s still findable", evicted)
		}
	}
	if r.find("t5") == nil {
		t.Errorf("resident trace t5 not findable")
	}
	if got := r.snapshot(2); len(got) != 2 || got[0].TraceID != "t6" {
		t.Errorf("snapshot(2) = %d traces starting %s, want 2 starting t6", len(got), got[0].TraceID)
	}
}

// TestTraceRingConcurrent hammers the ring from concurrent writers and
// readers; under -race this is the lock-freedom proof. Every surviving trace
// must be one of the newest capacity-many sequence numbers.
func TestTraceRingConcurrent(t *testing.T) {
	const writers, perWriter, capacity = 8, 500, 32
	r := newTraceRing(capacity)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ { // concurrent readers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.snapshot(0)
					r.find("w0-0")
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				r.add(&RetainedTrace{TraceID: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := r.captured(); got != writers*perWriter {
		t.Fatalf("captured = %d, want %d", got, writers*perWriter)
	}
	snap := r.snapshot(0)
	if len(snap) != capacity {
		t.Fatalf("snapshot holds %d traces, want %d", len(snap), capacity)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].seq > snap[i-1].seq {
			t.Fatalf("snapshot not newest-first at %d: seq %d after %d", i, snap[i].seq, snap[i-1].seq)
		}
	}
	if oldest := snap[len(snap)-1].seq; oldest <= writers*perWriter-capacity {
		t.Errorf("oldest resident seq = %d, want > %d", oldest, writers*perWriter-capacity)
	}
}

// TestSlowQueryCapturedWithoutTraceParam is the acceptance path of the debug
// surface: with a tiny slow threshold, a plain /v1/ppv request — no ?trace=1 —
// must surface on /v1/debug/slow with its full per-iteration trace, carry the
// retained id in the X-Fastppv-Trace response header, and resolve via
// /v1/debug/trace/{id}.
func TestSlowQueryCapturedWithoutTraceParam(t *testing.T) {
	g := socialGraph(t, 300)
	engine := testEngine(t, g, 30)
	srv, err := New(engine, Config{
		SlowThreshold:    time.Nanosecond, // everything is slow
		TraceSampleEvery: -1,              // isolate the slow path from sampling
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, hdr, _ := get(t, ts, "/v1/ppv?node=7&eta=3")
	if status != http.StatusOK {
		t.Fatalf("ppv: %d", status)
	}
	id := hdr.Get(api.TraceHeader)
	if id == "" {
		t.Fatalf("no %s header on a slow untraced query", api.TraceHeader)
	}

	var slow debugSlowResponse
	status, _, body := get(t, ts, "/v1/debug/slow")
	if status != http.StatusOK {
		t.Fatalf("debug/slow: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	if slow.Captured < 1 || slow.Retained < 1 || len(slow.Traces) < 1 {
		t.Fatalf("debug/slow empty: %+v", slow)
	}
	tr := slow.Traces[0]
	if tr.TraceID != id {
		t.Errorf("newest retained trace %s, want header id %s", tr.TraceID, id)
	}
	if !tr.Slow || tr.Node != 7 || tr.Eta != 3 || tr.Mode != "engine" {
		t.Errorf("retained trace = %+v, want slow engine query on node 7 eta 3", tr)
	}
	if len(tr.Iterations) == 0 {
		t.Errorf("retained trace has no per-iteration spans")
	}

	status, _, body = get(t, ts, "/v1/debug/trace/"+id)
	if status != http.StatusOK {
		t.Fatalf("debug/trace/%s: %d %s", id, status, body)
	}
	var byID RetainedTrace
	if err := json.Unmarshal(body, &byID); err != nil {
		t.Fatal(err)
	}
	if byID.TraceID != id || len(byID.Iterations) != len(tr.Iterations) {
		t.Errorf("trace by id = %+v, want the retained trace %s", byID, id)
	}

	if status, _, _ = get(t, ts, "/v1/debug/trace/nope"); status != http.StatusNotFound {
		t.Errorf("missing trace id: %d, want 404", status)
	}
	if status, _, _ = get(t, ts, "/v1/debug/slow?n=bogus"); status != http.StatusBadRequest {
		t.Errorf("bad n: %d, want 400", status)
	}
}

// TestSampledCaptureCadence checks the every-Nth sampling path retains fast,
// healthy queries too, marked Sampled rather than Slow.
func TestSampledCaptureCadence(t *testing.T) {
	g := socialGraph(t, 300)
	engine := testEngine(t, g, 30)
	srv, err := New(engine, Config{
		SlowThreshold:    -1, // slow capture off
		TraceSampleEvery: 1,  // sample every computation
		CacheBytes:       -1, // every request computes
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		get(t, ts, fmt.Sprintf("/v1/ppv?node=%d", i))
	}
	var slow debugSlowResponse
	_, _, body := get(t, ts, "/v1/debug/slow")
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	if slow.Captured != 3 {
		t.Fatalf("captured = %d, want 3", slow.Captured)
	}
	for _, tr := range slow.Traces {
		if !tr.Sampled || tr.Slow {
			t.Errorf("trace %s: sampled=%v slow=%v, want a pure sample", tr.TraceID, tr.Sampled, tr.Slow)
		}
	}
}

// TestSLOAccounting drives queries against an impossible latency objective and
// a generous one, checking the good/bad totals and burn rates that /v1/stats
// reports.
func TestSLOAccounting(t *testing.T) {
	g := socialGraph(t, 300)
	engine := testEngine(t, g, 30)

	srv, err := New(engine, Config{SLOLatency: time.Nanosecond, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		get(t, ts, fmt.Sprintf("/v1/ppv?node=%d", i))
	}
	// A client mistake is not an SLO event.
	if status, _, _ := get(t, ts, "/v1/ppv?node=notanode"); status != http.StatusBadRequest {
		t.Fatalf("bad node accepted")
	}
	var st StatsResponse
	_, _, body := get(t, ts, "/v1/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.SLO == nil {
		t.Fatal("stats carry no slo block")
	}
	if st.SLO.Good != 0 || st.SLO.Bad != 5 {
		t.Errorf("slo good=%d bad=%d, want 0/5 against a 1ns objective", st.SLO.Good, st.SLO.Bad)
	}
	// All-bad traffic burns the 1% budget at 100x its sustainable rate.
	if st.SLO.BurnRate1M != 1/sloErrorBudget {
		t.Errorf("burn_rate_1m = %v, want %v", st.SLO.BurnRate1M, 1/sloErrorBudget)
	}

	srv2, err := New(engine, Config{SLOLatency: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	for i := 0; i < 5; i++ {
		get(t, ts2, fmt.Sprintf("/v1/ppv?node=%d", i))
	}
	var st2 StatsResponse
	_, _, body2 := get(t, ts2, "/v1/stats")
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.SLO == nil || st2.SLO.Good != 5 || st2.SLO.Bad != 0 {
		t.Errorf("slo = %+v, want 5 good / 0 bad against a 1h objective", st2.SLO)
	}

	// No objectives: no tracker, no stats block.
	srv3, err := New(engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	get(t, ts3, "/v1/ppv?node=1")
	var st3 StatsResponse
	_, _, body3 := get(t, ts3, "/v1/stats")
	if err := json.Unmarshal(body3, &st3); err != nil {
		t.Fatal(err)
	}
	if st3.SLO != nil {
		t.Errorf("slo block present with no objectives configured: %+v", st3.SLO)
	}
}

// TestQueryLogOnServingPath checks the end-to-end loop: served queries land in
// the log with the right outcome flags, /v1/stats reports the log, and a
// restart replays the records so log-driven warming kicks in with
// source=querylog.
func TestQueryLogOnServingPath(t *testing.T) {
	g := socialGraph(t, 300)
	engine := testEngine(t, g, 30)
	path := filepath.Join(t.TempDir(), "queries.qlog")

	qlog, err := querylog.Open(path, querylog.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(engine, Config{QueryLog: qlog})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	for i := 0; i < 4; i++ {
		get(t, ts, "/v1/ppv?node=5&eta=2&top=7") // repeats: 1 miss + 3 cache hits
	}
	get(t, ts, "/v1/ppv?node=9&eta=2")
	// Failures must not be logged.
	get(t, ts, "/v1/ppv?node=notanode")

	var st StatsResponse
	_, _, body := get(t, ts, "/v1/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.QueryLog == nil || st.QueryLog.Appended != 5 {
		t.Fatalf("stats query_log = %+v, want 5 appended", st.QueryLog)
	}
	ts.Close()
	if err := qlog.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay the log and let it drive warming.
	var replayed []querylog.Record
	qlog2, err := querylog.Open(path, querylog.Options{}, func(r querylog.Record) error {
		replayed = append(replayed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer qlog2.Close()
	if len(replayed) != 5 {
		t.Fatalf("replayed %d records, want 5", len(replayed))
	}
	if r := replayed[0]; r.Source != 5 || r.Eta != 2 || r.Top != 7 || r.Flags&querylog.FlagCacheHit != 0 {
		t.Errorf("first record = %+v, want the cold node-5 query", r)
	}
	hits := 0
	for _, r := range replayed {
		if r.Flags&querylog.FlagCacheHit != 0 {
			hits++
		}
	}
	if hits != 3 {
		t.Errorf("cache-hit records = %d, want 3", hits)
	}

	srv2, err := New(engine, Config{QueryLog: qlog2, WarmHubs: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var st2 StatsResponse
	_, _, body2 := get(t, ts2, "/v1/stats")
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Warming == nil || st2.Warming.Source != "querylog" {
		t.Fatalf("warming = %+v, want source=querylog after replay", st2.Warming)
	}
	if st2.Warming.Sources == 0 || st2.Warming.Requested == 0 {
		t.Errorf("warming = %+v, want replayed sources and requested hub deps", st2.Warming)
	}
}
