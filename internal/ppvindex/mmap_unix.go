//go:build unix

package ppvindex

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared. The caller owns the
// returned slice and must release it with munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size > int64(math.MaxInt) {
		return nil, fmt.Errorf("ppvindex: cannot mmap %d-byte index", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
