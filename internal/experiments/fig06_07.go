package experiments

import (
	"fmt"

	"fastppv/internal/workload"
)

// Configuration is one of the four accuracy-moderated configurations of
// Fig. 5: a dataset plus per-method parameters chosen so that all three
// methods land at a comparable accuracy, which makes their time and space
// costs directly comparable (Fig. 6 verifies the accuracy, Fig. 7 compares
// the costs).
type Configuration struct {
	ID      string
	Dataset DatasetName
	// HubFraction is |H| as a fraction of the dataset's node count. The paper
	// fixes absolute |H| per configuration (20K/30K on DBLP, 150K/200K on
	// LiveJournal); a fraction transfers the same intent to the scaled-down
	// synthetic graphs.
	HubFraction float64
	// Push is HubRankP's residual threshold for this configuration.
	Push float64
	// SamplesFraction is MonteCarlo's N relative to the node count.
	SamplesFraction float64
	// Iterations is FastPPV's eta for this configuration.
	Iterations int
}

// Configurations returns the four accuracy-moderated configurations I-IV of
// Fig. 5, rescaled to the synthetic datasets.
func Configurations() []Configuration {
	return []Configuration{
		// Paper: DBLP, |H|=20K (1% of nodes), push=0.11, N=120K (6%), eta=2.
		{ID: "I", Dataset: DBLP, HubFraction: 0.010, Push: 0.005, SamplesFraction: 0.20, Iterations: 2},
		// Paper: DBLP, |H|=30K (1.5%), push=0.13, N=40K (2%), eta=1.
		{ID: "II", Dataset: DBLP, HubFraction: 0.015, Push: 0.010, SamplesFraction: 0.10, Iterations: 1},
		// Paper: LiveJournal, |H|=150K (12.5%), push=0.20, N=200K (17%), eta=3.
		{ID: "III", Dataset: LiveJournal, HubFraction: 0.125, Push: 0.005, SamplesFraction: 0.30, Iterations: 3},
		// Paper: LiveJournal, |H|=200K (17%), push=0.29, N=10K (1%), eta=1.
		{ID: "IV", Dataset: LiveJournal, HubFraction: 0.170, Push: 0.020, SamplesFraction: 0.08, Iterations: 1},
	}
}

// ConfigResult is the outcome of running all three methods under one
// configuration.
type ConfigResult struct {
	Config     Configuration
	FastPPV    MethodResult
	HubRankP   MethodResult
	MonteCarlo MethodResult
}

// AccuracyModerated runs the four accuracy-moderated configurations (E1-E3 in
// DESIGN.md, covering Fig. 5, 6 and 7 of the paper).
func AccuracyModerated(scale Scale) ([]ConfigResult, error) {
	var out []ConfigResult
	for _, cfg := range Configurations() {
		d, err := Load(cfg.Dataset, scale)
		if err != nil {
			return nil, err
		}
		n := d.Graph.NumNodes()
		hubs := max(16, int(float64(n)*cfg.HubFraction))
		samples := max(500, int(float64(n)*cfg.SamplesFraction))

		fast, err := runFastPPV(d, FastPPVConfig{NumHubs: hubs, Iterations: cfg.Iterations})
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", cfg.ID, err)
		}
		hr, err := runHubRankP(d, HubRankPConfig{NumHubs: hubs, Push: cfg.Push})
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", cfg.ID, err)
		}
		mc, err := runMonteCarlo(d, MonteCarloConfig{NumHubs: hubs, SamplesPerQuery: samples})
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", cfg.ID, err)
		}
		out = append(out, ConfigResult{Config: cfg, FastPPV: fast, HubRankP: hr, MonteCarlo: mc})
	}
	return out, nil
}

// Fig6Table renders the accuracy table of Fig. 6 (Kendall, Precision, RAG and
// L1 similarity per configuration and method).
func Fig6Table(results []ConfigResult) *workload.Table {
	t := workload.NewTable(
		"Fig. 6 — accuracy under accuracy-moderated configurations",
		"Config", "Method", "Kendall", "Precision", "RAG", "L1 similarity")
	for _, r := range results {
		for _, m := range []MethodResult{r.FastPPV, r.HubRankP, r.MonteCarlo} {
			t.AddRow(r.Config.ID, m.Method, m.Accuracy.KendallTau, m.Accuracy.Precision,
				m.Accuracy.RAG, m.Accuracy.L1Similarity)
		}
	}
	return t
}

// Fig7Table renders the cost comparison of Fig. 7: online time per query,
// offline space, offline time.
func Fig7Table(results []ConfigResult) *workload.Table {
	t := workload.NewTable(
		"Fig. 7 — online and offline costs under accuracy-moderated configurations",
		"Config", "Method", "Online ms/query", "Offline space MB", "Offline time s")
	for _, r := range results {
		for _, m := range []MethodResult{r.FastPPV, r.HubRankP, r.MonteCarlo} {
			t.AddRow(r.Config.ID, m.Method,
				float64(m.AvgQueryTime.Microseconds())/1000.0,
				float64(m.OfflineBytes)/(1<<20),
				m.OfflineTime.Seconds())
		}
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
