package ppvindex

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fastppv/internal/graph"
)

var testBinding = GraphLogBinding{Nodes: 100, Edges: 400, Directed: true}

// collectMutations returns a replay callback appending into dst.
func collectMutations(dst *[]GraphMutation) func(GraphMutation) error {
	return func(m GraphMutation) error {
		*dst = append(*dst, m)
		return nil
	}
}

func TestGraphLogAppendCommitReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.graphlog")
	l, err := OpenGraphLog(path, testBinding, nil)
	if err != nil {
		t.Fatalf("OpenGraphLog: %v", err)
	}
	m1 := GraphMutation{
		AddedEdges:   []graph.Edge{{From: 1, To: 2}, {From: 3, To: 4}},
		RemovedEdges: []graph.Edge{{From: 5, To: 6}},
	}
	m2 := GraphMutation{AddedEdges: []graph.Edge{{From: 7, To: 8}}, NumNodes: 120}
	if err := l.Append(m1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(m2); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 2 {
		t.Errorf("Records = %d, want 2", l.Records())
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var replayed []GraphMutation
	l2, err := OpenGraphLog(path, testBinding, collectMutations(&replayed))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(replayed))
	}
	got := replayed[0]
	if len(got.AddedEdges) != 2 || len(got.RemovedEdges) != 1 ||
		got.AddedEdges[1] != (graph.Edge{From: 3, To: 4}) || got.RemovedEdges[0] != (graph.Edge{From: 5, To: 6}) {
		t.Errorf("first batch replayed as %+v, want %+v", got, m1)
	}
	if replayed[1].NumNodes != 120 || len(replayed[1].AddedEdges) != 1 || replayed[1].RemovedEdges != nil {
		t.Errorf("second batch replayed as %+v, want %+v", replayed[1], m2)
	}
	if l2.Records() != 2 || l2.SizeBytes() <= graphLogHeaderBytes {
		t.Errorf("reopened log: %d records, %d bytes", l2.Records(), l2.SizeBytes())
	}
}

// TestGraphLogTruncatesTornTail simulates a crash mid-append: a partial frame
// at the end of the log must be dropped on open, keeping every complete frame
// before it.
func TestGraphLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.graphlog")
	l, err := OpenGraphLog(path, testBinding, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(GraphMutation{AddedEdges: []graph.Edge{{From: 1, To: 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	goodSize := l.SizeBytes()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn append: a frame header promising more payload than the file holds.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, logFrameOverhead+7) // header + 7 of the promised 20 bytes
	binary.LittleEndian.PutUint32(torn[0:], 20)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var replayed []GraphMutation
	l2, err := OpenGraphLog(path, testBinding, collectMutations(&replayed))
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 1 || len(replayed[0].AddedEdges) != 1 {
		t.Fatalf("replayed %v, want just the committed batch", replayed)
	}
	if l2.SizeBytes() != goodSize {
		t.Errorf("log size after truncation = %d, want %d", l2.SizeBytes(), goodSize)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != goodSize {
		t.Errorf("file size = %d (%v), want %d", st.Size(), err, goodSize)
	}
}

// TestGraphLogStopsAtCorruptFrame flips a payload bit mid-log: the CRC
// mismatch must stop replay at the corrupt frame, keeping earlier frames.
func TestGraphLogStopsAtCorruptFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.graphlog")
	l, err := OpenGraphLog(path, testBinding, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(GraphMutation{AddedEdges: []graph.Edge{{From: 1, To: 2}}}); err != nil {
		t.Fatal(err)
	}
	firstEnd := l.SizeBytes()
	if err := l.Append(GraphMutation{RemovedEdges: []graph.Edge{{From: 3, To: 4}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[firstEnd+logFrameOverhead+3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed []GraphMutation
	l2, err := OpenGraphLog(path, testBinding, collectMutations(&replayed))
	if err != nil {
		t.Fatalf("reopen with corrupt frame: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 1 || len(replayed[0].AddedEdges) != 1 {
		t.Fatalf("replayed %v, want just the pre-corruption batch", replayed)
	}
	if l2.SizeBytes() != firstEnd {
		t.Errorf("log truncated to %d, want %d", l2.SizeBytes(), firstEnd)
	}
}

// TestGraphLogCloseDiscardsUncommitted: frames appended by a batch whose
// commit never ran (the update failed) must not survive Close — flushing them
// would hand a restarted replica a graph and epoch whose PPV half was never
// durable.
func TestGraphLogCloseDiscardsUncommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.graphlog")
	l, err := OpenGraphLog(path, testBinding, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(GraphMutation{AddedEdges: []graph.Edge{{From: 1, To: 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	committedSize := l.SizeBytes()
	if err := l.Append(GraphMutation{AddedEdges: []graph.Edge{{From: 3, To: 4}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != committedSize {
		t.Errorf("file size after close = %d (%v), want the committed %d", st.Size(), err, committedSize)
	}
	var replayed []GraphMutation
	l2, err := OpenGraphLog(path, testBinding, collectMutations(&replayed))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(replayed) != 1 || replayed[0].AddedEdges[0] != (graph.Edge{From: 1, To: 2}) {
		t.Fatalf("replayed %v, want only the committed batch", replayed)
	}
}

func TestGraphLogRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.graphlog")
	if err := os.WriteFile(path, []byte("definitely not a graph-mutation log file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenGraphLog(path, testBinding, nil); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("OpenGraphLog on a foreign file = %v, want ErrBadIndexFormat", err)
	}
}

// TestGraphLogTornHeader covers a crash before the header itself was fully
// written: the open must recover by rewriting a fresh header.
func TestGraphLogTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.graphlog")
	if err := os.WriteFile(path, []byte{0x46, 0x50, 0x47}, 0o644); err != nil { // 3 of 32 header bytes
		t.Fatal(err)
	}
	l, err := OpenGraphLog(path, testBinding, func(GraphMutation) error {
		t.Fatal("nothing should replay from a torn header")
		return nil
	})
	if err != nil {
		t.Fatalf("OpenGraphLog on a torn header: %v", err)
	}
	defer l.Close()
	if l.SizeBytes() != graphLogHeaderBytes || l.Records() != 0 {
		t.Errorf("recovered log: %d bytes, %d records", l.SizeBytes(), l.Records())
	}
}

// TestGraphLogDiscardsMismatchedBinding: a log whose header binds it to a
// different base graph (the -graph file was swapped or regenerated) must be
// discarded on open, not replayed onto a graph it does not describe.
func TestGraphLogDiscardsMismatchedBinding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.graphlog")
	l, err := OpenGraphLog(path, testBinding, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(GraphMutation{AddedEdges: []graph.Edge{{From: 1, To: 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	for _, bind := range []GraphLogBinding{
		{Nodes: 101, Edges: 400, Directed: true},
		{Nodes: 100, Edges: 401, Directed: true},
		{Nodes: 100, Edges: 400, Directed: false},
	} {
		l2, err := OpenGraphLog(path, bind, func(GraphMutation) error {
			t.Fatalf("batch replayed despite binding mismatch %+v", bind)
			return nil
		})
		if err != nil {
			t.Fatalf("OpenGraphLog with mismatched binding: %v", err)
		}
		if l2.SizeBytes() != graphLogHeaderBytes || l2.Records() != 0 {
			t.Errorf("mismatched log not discarded: %d bytes, %d records", l2.SizeBytes(), l2.Records())
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		// Re-seed a committed batch under the mismatching binding so the next
		// iteration mismatches against non-empty content again.
		l3, err := OpenGraphLog(path, bind, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := l3.Append(GraphMutation{AddedEdges: []graph.Edge{{From: 9, To: 1}}}); err != nil {
			t.Fatal(err)
		}
		if err := l3.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := l3.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A matching binding replays the batch committed under it.
	var replayed []GraphMutation
	l4, err := OpenGraphLog(path, GraphLogBinding{Nodes: 100, Edges: 400, Directed: false},
		collectMutations(&replayed))
	if err != nil {
		t.Fatal(err)
	}
	defer l4.Close()
	if len(replayed) != 1 || replayed[0].AddedEdges[0] != (graph.Edge{From: 9, To: 1}) {
		t.Fatalf("replayed %v, want the re-bound batch", replayed)
	}
}
