// Package telemetry is a metriclit fixture: a minimal stand-in whose import
// path ends in internal/telemetry, mirroring the real registry's entry-point
// names so the analyzer resolves callees against it.
package telemetry

// Counter64 is an opaque metric handle.
type Counter64 struct{}

// Label is one runtime key/value pair; values are exempt from metriclit.
type Label struct{ Key, Value string }

// Registry mirrors the constructor surface of the real telemetry registry.
type Registry struct{}

// Counter registers a counter family.
func (r *Registry) Counter(name, help string) *Counter64 { return &Counter64{} }

// CounterVec registers a labelled counter family; labelNames are the
// compile-time label keys.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *Counter64 {
	return &Counter64{}
}

// L builds one label; the key must be constant, the value is runtime data.
func L(key, value string) Label { return Label{Key: key, Value: value} }
