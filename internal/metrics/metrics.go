// Package metrics implements the four accuracy metrics used in the paper's
// evaluation (Sect. 6): Kendall's tau and Precision@K over the top-K ranking,
// and RAG (relative average goodness) and L1 error/similarity over the scores.
// All metrics compare an approximate PPV against the exact PPV and, following
// the paper, focus on the top 10 nodes by default.
package metrics

import (
	"math"
	"sort"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// DefaultTopK is the ranking depth used in the paper's experiments.
const DefaultTopK = 10

// Report bundles the four metrics for one query, presented so that larger is
// always better (the paper reports L1 similarity = 1 - L1 error for the same
// reason).
type Report struct {
	KendallTau   float64
	Precision    float64
	RAG          float64
	L1Similarity float64
}

// Average returns the field-wise mean of the reports; experiment drivers use
// it to aggregate over a query workload.
func Average(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	var sum Report
	for _, r := range reports {
		sum.KendallTau += r.KendallTau
		sum.Precision += r.Precision
		sum.RAG += r.RAG
		sum.L1Similarity += r.L1Similarity
	}
	n := float64(len(reports))
	return Report{
		KendallTau:   sum.KendallTau / n,
		Precision:    sum.Precision / n,
		RAG:          sum.RAG / n,
		L1Similarity: sum.L1Similarity / n,
	}
}

// Evaluate computes all four metrics of the approximation against the exact
// PPV at ranking depth k (DefaultTopK when k <= 0).
func Evaluate(exact, approx sparse.Vector, k int) Report {
	if k <= 0 {
		k = DefaultTopK
	}
	return Report{
		KendallTau:   KendallTau(exact, approx, k),
		Precision:    PrecisionAtK(exact, approx, k),
		RAG:          RAG(exact, approx, k),
		L1Similarity: L1Similarity(exact, approx),
	}
}

// PrecisionAtK returns |topK(exact) ∩ topK(approx)| / k', where k' is the
// number of exact top-K nodes (k unless the exact vector is smaller).
func PrecisionAtK(exact, approx sparse.Vector, k int) float64 {
	exactTop := exact.TopKNodes(k)
	if len(exactTop) == 0 {
		return 1
	}
	approxTop := approx.TopKNodes(k)
	inApprox := make(map[graph.NodeID]struct{}, len(approxTop))
	for _, v := range approxTop {
		inApprox[v] = struct{}{}
	}
	hits := 0
	for _, v := range exactTop {
		if _, ok := inApprox[v]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(exactTop))
}

// RAG returns the relative aggregated goodness at depth k: the exact mass
// captured by the approximate top-K divided by the exact mass of the exact
// top-K. It is 1 when the approximation surfaces nodes that are (in exact
// terms) as good as the true top-K, even if their order differs.
func RAG(exact, approx sparse.Vector, k int) float64 {
	exactTop := exact.TopK(k)
	if len(exactTop) == 0 {
		return 1
	}
	var ideal float64
	for _, e := range exactTop {
		ideal += e.Score
	}
	if ideal == 0 {
		return 1
	}
	var got float64
	for _, e := range approx.TopK(k) {
		got += exact.Get(e.Node)
	}
	if got > ideal {
		got = ideal
	}
	return got / ideal
}

// L1Error returns the L1 distance between exact and approx.
func L1Error(exact, approx sparse.Vector) float64 { return exact.L1Distance(approx) }

// L1Similarity returns 1 - L1Error, clamped to [0, 1], the presentation used
// in the paper's figures so that all metrics improve upwards.
func L1Similarity(exact, approx sparse.Vector) float64 {
	s := 1 - L1Error(exact, approx)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// KendallTau computes Kendall's tau-b rank correlation between the exact and
// approximate rankings restricted to the union of their top-K node sets.
// Pairs tied in one ranking but not the other reduce the correlation; the
// result lies in [-1, 1] and is 1 for identical rankings.
func KendallTau(exact, approx sparse.Vector, k int) float64 {
	nodes := topKUnion(exact, approx, k)
	if len(nodes) < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	var tiesExactOnly, tiesApproxOnly float64
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			de := exact.Get(nodes[i]) - exact.Get(nodes[j])
			da := approx.Get(nodes[i]) - approx.Get(nodes[j])
			switch {
			case de == 0 && da == 0:
				// tie in both rankings: ignored by tau-b
			case de == 0:
				tiesExactOnly++
			case da == 0:
				tiesApproxOnly++
			case (de > 0) == (da > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(concordant + discordant)
	// Pairs not tied in the exact ranking / not tied in the approximation.
	untiedExact := n0 + tiesApproxOnly
	untiedApprox := n0 + tiesExactOnly
	if untiedExact == 0 && untiedApprox == 0 {
		return 1 // both rankings are completely flat: identical (non-)orderings
	}
	if untiedExact == 0 || untiedApprox == 0 {
		return 0 // one ranking carries no ordering information at all
	}
	tau := float64(concordant-discordant) / (math.Sqrt(untiedExact) * math.Sqrt(untiedApprox))
	return math.Max(-1, math.Min(1, tau))
}

// topKUnion returns the union of the two top-K node sets in deterministic
// order.
func topKUnion(exact, approx sparse.Vector, k int) []graph.NodeID {
	set := make(map[graph.NodeID]struct{})
	for _, v := range exact.TopKNodes(k) {
		set[v] = struct{}{}
	}
	for _, v := range approx.TopKNodes(k) {
		set[v] = struct{}{}
	}
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
