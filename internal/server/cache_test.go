package server

import (
	"testing"

	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// fakeAnswer builds a cachedAnswer with a fixed accounting size and the given
// hub dependencies.
func fakeAnswer(bytes int64, deps ...graph.NodeID) *cachedAnswer {
	est := sparse.Vector{1: 0.5}
	return &cachedAnswer{
		result: &core.Result{Estimate: est},
		deps:   deps,
		bytes:  bytes,
	}
}

func key(node int) CacheKey { return CacheKey{Node: graph.NodeID(node), Eta: 2} }

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(250, 1) // single shard, room for two 100-byte answers

	c.Put(key(1), fakeAnswer(100))
	c.Put(key(2), fakeAnswer(100))
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	// Entry 2 is now least recently used; inserting 3 must evict it.
	c.Put(key(3), fakeAnswer(100))

	if _, ok := c.Get(key(2)); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Error("recently used entry 1 was evicted")
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Error("fresh entry 3 was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

func TestCacheByteAccounting(t *testing.T) {
	c := NewCache(1000, 1)
	c.Put(key(1), fakeAnswer(300))
	c.Put(key(2), fakeAnswer(400))
	if st := c.Stats(); st.Bytes != 700 {
		t.Fatalf("bytes = %d, want 700", st.Bytes)
	}
	// Replacing an entry adjusts, not double-counts.
	c.Put(key(1), fakeAnswer(500))
	if st := c.Stats(); st.Bytes != 900 {
		t.Fatalf("bytes after replace = %d, want 900", st.Bytes)
	}
	// Eviction returns the budget.
	c.Put(key(3), fakeAnswer(600))
	st := c.Stats()
	if st.Bytes > 1000 {
		t.Fatalf("bytes %d exceed budget 1000", st.Bytes)
	}
	total := int64(0)
	for _, k := range []CacheKey{key(1), key(2), key(3)} {
		if a, ok := c.Get(k); ok {
			total += a.bytes
		}
	}
	if total != st.Bytes {
		t.Fatalf("live bytes %d != accounted bytes %d", total, st.Bytes)
	}
}

func TestCacheOversizedAnswerNotCached(t *testing.T) {
	c := NewCache(100, 1)
	c.Put(key(1), fakeAnswer(1000))
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("answer larger than the shard budget was cached")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want empty", st)
	}
}

func TestCacheSizeEstimate(t *testing.T) {
	a := fakeAnswer(0)
	c := NewCache(1<<20, 1)
	c.Put(key(1), a)
	if a.bytes <= 0 {
		t.Fatalf("sizeBytes not filled in: %d", a.bytes)
	}
	if st := c.Stats(); st.Bytes != a.bytes {
		t.Fatalf("accounted %d != estimated %d", st.Bytes, a.bytes)
	}
}

func TestCachePutCountsReplacements(t *testing.T) {
	c := NewCache(1<<20, 1)
	c.Put(key(1), fakeAnswer(100))
	c.Put(key(1), fakeAnswer(120))
	c.Put(key(2), fakeAnswer(100))
	st := c.Stats()
	if st.Puts != 3 {
		t.Fatalf("puts = %d, want 3 (replacements count)", st.Puts)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	// An oversized answer is rejected before reaching the shard and must not
	// count as a put.
	c.Put(key(3), fakeAnswer(2<<20))
	if st := c.Stats(); st.Puts != 3 {
		t.Fatalf("puts after rejected oversize = %d, want 3", st.Puts)
	}
}

func TestCacheShardForSpreadsTargetError(t *testing.T) {
	c := NewCache(1<<20, 16)
	shards := make(map[*cacheShard]struct{})
	for i := 0; i < 64; i++ {
		k := CacheKey{Node: 1, Eta: 2, TargetError: 0.001 * float64(i+1)}
		shards[c.shardFor(k)] = struct{}{}
	}
	// With TargetError excluded from the hash all 64 keys land on one shard;
	// hashing it in makes a single-shard outcome astronomically unlikely.
	if len(shards) < 2 {
		t.Fatalf("64 keys differing only in target error mapped to %d shard(s)", len(shards))
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(1<<20, 4)
	c.Put(key(1), fakeAnswer(100, 7))
	c.Put(key(2), fakeAnswer(100, 8))
	c.Put(key(3), fakeAnswer(100, 7, 9))

	dropped := c.Invalidate(func(_ CacheKey, ans *cachedAnswer) bool {
		for _, d := range ans.deps {
			if d == 7 {
				return true
			}
		}
		return false
	})
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if _, ok := c.Get(key(2)); !ok {
		t.Error("unaffected entry 2 was dropped")
	}
	if _, ok := c.Get(key(1)); ok {
		t.Error("stale entry 1 survived")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", st.Invalidations)
	}
}
