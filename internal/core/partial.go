package core

import (
	"fmt"
	"sort"

	"fastppv/internal/graph"
	"fastppv/internal/prime"
	"fastppv/internal/sparse"
)

// PartialIncrement is the outcome of one shard-local evaluation step of a
// distributed PPV query. A cluster router drives the scheduled approximation
// loop itself: iteration 0 is one PartialRoot on the query node's owner, and
// every further iteration scatters the frontier to the owning shards, gathers
// their PartialExpand increments, and merges them deterministically. Because
// the estimate only ever accumulates non-negative tour mass, the exact
// accuracy-aware bound 1 - sum(estimate) survives the split unchanged: mass a
// shard fails to contribute (down, slow, or pruned) widens the reported bound
// instead of corrupting the answer.
type PartialIncrement struct {
	// Increment is the partial PPV mass contributed by this step: the query
	// node's prime PPV for a root, or the sum of this shard's hub extensions
	// for an expansion. Hubs are accumulated in ascending id order, so equal
	// inputs produce byte-identical increments.
	Increment sparse.Vector
	// Frontier holds the hub entries of Increment: the prefix weights with
	// which the next iteration extends each border hub (Theorem 4). The hub
	// set here is the full one — a shard reports frontier mass landing on
	// hubs it does not own, because the router must route that mass to them.
	Frontier map[graph.NodeID]float64
	// HubsExpanded and HubsSkipped count the hubs whose prime PPV was
	// assembled and the hubs pruned by the delta threshold, respectively.
	HubsExpanded int
	HubsSkipped  int
	// Unowned lists frontier hubs this shard refused because its partition
	// does not own them (a router bug or a stale shard map); their mass was
	// not expanded.
	Unowned []graph.NodeID
	// FromIndex reports, for a root, whether the query node's prime PPV came
	// from the stored index (true exactly when the query node is a hub this
	// shard owns).
	FromIndex bool
}

// PartialRoot performs iteration 0 of a distributed query: the prime PPV of
// q, loaded from this shard's index when q is a hub it owns and computed on
// the fly otherwise. The returned frontier is the full initial border-hub
// frontier (with the empty-tour self-correction already applied), ready to be
// partitioned across shards by the router.
func (e *Engine) PartialRoot(q graph.NodeID) (*PartialIncrement, error) {
	qs, err := e.NewQuery(q)
	if err != nil {
		return nil, err
	}
	// Materialize at the boundary: the increment and frontier escape into the
	// router (and the wire), so they must be copies, not the pooled state
	// that Close recycles.
	qs.syncEstimate()
	frontier := make(map[graph.NodeID]float64, len(qs.bufs.frontier))
	for _, fe := range qs.bufs.frontier {
		frontier[fe.hub] = fe.prefix
	}
	out := &PartialIncrement{
		Increment: qs.result.Estimate,
		Frontier:  frontier,
		FromIndex: !qs.result.QueryPPVComputed,
	}
	qs.Close()
	return out, nil
}

// PartialExpand applies one scheduled-approximation iteration restricted to
// the hubs this engine's partition owns: for every frontier hub above the
// delta threshold it assembles prefix/alpha times the hub's extension vector,
// exactly as QueryState.Step does, but stateless — the caller owns the
// estimate, the frontier merge and the stopping rule.
//
// Unlike Step, an index read error is returned instead of silently recomputing
// the hub: in a cluster the read path failing usually means this shard is
// restarting or compacting away its descriptor, and the router's retry (or its
// degradation to a wider bound) is the correct recovery, not a local
// recomputation racing a dying store. A hub that is merely absent (partially
// built index) is still recomputed on the fly.
func (e *Engine) PartialExpand(frontier map[graph.NodeID]float64) (*PartialIncrement, error) {
	if !e.precomputed {
		return nil, fmt.Errorf("core: PartialExpand before Precompute")
	}
	out := &PartialIncrement{
		Frontier: make(map[graph.NodeID]float64),
	}
	b := getQueryBufs()
	defer putQueryBufs(b)
	hubs := make([]graph.NodeID, 0, len(frontier))
	//lint:ordered collect-then-sort: hubs are sorted by id before expansion
	for h := range frontier {
		hubs = append(hubs, h)
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })
	inc := &b.inc
	for _, h := range hubs {
		if !e.hubs.Contains(h) || !e.opts.Partition.Owns(h) {
			out.Unowned = append(out.Unowned, h)
			continue
		}
		prefix := frontier[h]
		if prefix <= e.opts.Delta {
			out.HubsSkipped++
			continue
		}
		scale := prefix / e.opts.Alpha
		if e.viewIndex != nil {
			view, ok, err := e.viewIndex.GetView(h)
			if err != nil {
				return nil, fmt.Errorf("core: loading prime PPV of hub %d: %w", h, err)
			}
			if ok {
				inc.StageEncodedExtension(view.EntryBytes(), scale, h, e.opts.Alpha)
				view.Release()
				out.HubsExpanded++
				continue
			}
		}
		hubPPV, ok, err := e.index.Get(h)
		if err != nil {
			return nil, fmt.Errorf("core: loading prime PPV of hub %d: %w", h, err)
		}
		if !ok {
			if hubPPV, _, err = prime.ComputePPV(e.g, h, e.hubs, e.opts.primeOptions()); err != nil {
				out.HubsSkipped++
				continue
			}
		}
		inc.StageVectorExtension(hubPPV, scale, h, e.opts.Alpha)
		out.HubsExpanded++
	}
	inc.Combine()
	out.Increment = inc.ToVector()
	for _, en := range inc.Entries() {
		if en.Score > 0 && e.hubs.Contains(en.Node) {
			out.Frontier[en.Node] = en.Score
		}
	}
	return out, nil
}
