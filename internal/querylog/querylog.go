// Package querylog persists one compact binary record per completed query so
// the observed workload survives restarts. The log is the input that makes
// other subsystems adaptive instead of guessed: on startup the server replays
// it to warm the hub cache with the blocks the real workload actually needs
// (frequency-decayed top sources → their hub dependencies), and cmd/ppvlog
// aggregates or replays it offline.
//
// The on-disk format follows the same torn-tail-truncating, header-bound
// idiom as the PPV write-ahead update log and the graph-mutation log: a small
// magic+version header followed by CRC-framed records. A crash can only tear
// the tail, which Open truncates away; a foreign or incompatible file is
// rejected rather than silently overwritten. Appends go through a buffered
// writer with batched fsync (a background flusher), so the per-query cost on
// the serving hot path is one short critical section and a small memcpy.
// Rotation by size keeps the log bounded: the active file is renamed to
// <path>.1 (replacing the previous generation) and a fresh header started, so
// replay sees at most two generations, oldest first.
package querylog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"fastppv/internal/graph"
)

// Record is one completed query. The fixed-width fields are chosen so a
// record encodes in ~32 bytes plus the optional trace id and per-shard leg
// summaries; at that size a 64 MiB generation holds on the order of a million
// queries.
type Record struct {
	// Source is the query node.
	Source graph.NodeID
	// Top is the requested k (top-k result size).
	Top uint16
	// Eta is the effective accuracy level the answer was computed at.
	Eta uint8
	// Mode is ModeEngine or ModeRouter.
	Mode uint8
	// Flags is a bitmask of the Flag* constants (degraded, cache outcome,
	// slow, traced).
	Flags uint8
	// Iterations is the number of frontier-expansion iterations the answer
	// ran (clamped to 255; cache hits repeat the computing query's value).
	Iterations uint8
	// Epoch is the index epoch the answer was computed against.
	Epoch uint64
	// LatencyUS is the observed request latency in microseconds (clamped).
	LatencyUS uint32
	// Bound is the exact L1 error bound of the answer.
	Bound float64
	// TraceID is set when the server retained a trace for this query (slow,
	// degraded, sampled, or explicitly traced); empty otherwise.
	TraceID string
	// Legs summarizes router-mode shard legs (aggregated per shard across
	// iterations). Empty in engine mode and on cache hits.
	Legs []LegSummary
}

// LegSummary aggregates one shard's contribution to a router-mode query.
type LegSummary struct {
	// Shard is the shard index in the partition.
	Shard uint16
	// Legs is the number of partial sub-requests sent to this shard.
	Legs uint16
	// DurationUS is the summed leg latency in microseconds (clamped).
	DurationUS uint32
}

// Mode values for Record.Mode.
const (
	// ModeEngine marks a query answered by a local engine.
	ModeEngine uint8 = 0
	// ModeRouter marks a query scatter-gathered across shards.
	ModeRouter uint8 = 1
)

// Flag bits for Record.Flags.
const (
	// FlagDegraded marks an answer served at reduced accuracy (admission
	// degrade, shard loss, or epoch divergence).
	FlagDegraded uint8 = 1 << iota
	// FlagCacheHit marks an answer served from the result cache.
	FlagCacheHit
	// FlagCoalesced marks an answer that piggybacked on an in-flight
	// identical computation.
	FlagCoalesced
	// FlagSlow marks a computation that exceeded the server's slow
	// threshold (its trace was retained unconditionally).
	FlagSlow
	// FlagTraced marks an explicitly traced request (?trace=1).
	FlagTraced
)

// ErrBadFormat reports a file that is not a query log (foreign magic) or a
// query log written by an incompatible version. The file is left untouched.
var ErrBadFormat = errors.New("querylog: not a query log (bad magic or version)")

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("querylog: closed")

const (
	logMagic   = uint32('F') | uint32('P')<<8 | uint32('Q')<<16 | uint32('1')<<24
	logVersion = 1
	// headerBytes is magic + version + reserved.
	headerBytes = 16
	// frameOverhead is payloadLen + crc.
	frameOverhead = 8
	// recordFixedBytes is the fixed-width prefix of an encoded record.
	recordFixedBytes = 32
	// maxRecordBytes bounds one frame payload; anything larger during replay
	// is treated as a torn/corrupt tail.
	maxRecordBytes = 64 << 10

	defaultMaxBytes      = 64 << 20
	defaultFlushInterval = 100 * time.Millisecond
	defaultHalfLife      = 8192
)

// Options tunes a Log. The zero value is a sensible serving default.
type Options struct {
	// MaxBytes rotates the active file when it would exceed this size;
	// zero means 64 MiB, negative disables rotation.
	MaxBytes int64
	// FlushInterval is the batched fsync period; zero means 100ms, negative
	// flushes and syncs on every append (tests, tools).
	FlushInterval time.Duration
	// HalfLife is the decay horizon of the source-frequency aggregator, in
	// records: a query HalfLife records old counts half as much as a fresh
	// one. Zero means 8192.
	HalfLife int
}

func (o Options) withDefaults() Options {
	if o.MaxBytes == 0 {
		o.MaxBytes = defaultMaxBytes
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = defaultFlushInterval
	}
	if o.HalfLife <= 0 {
		o.HalfLife = defaultHalfLife
	}
	return o
}

// Stats is a point-in-time snapshot of a Log.
type Stats struct {
	// Replayed is the number of records recovered on Open (both
	// generations).
	Replayed int64 `json:"replayed"`
	// Appended is the number of records appended since Open.
	Appended int64 `json:"appended"`
	// ActiveBytes is the size of the active generation, including buffered
	// but not yet flushed frames.
	ActiveBytes int64 `json:"active_bytes"`
	// Rotations counts generation rollovers since Open.
	Rotations int64 `json:"rotations"`
	// TruncatedBytes is how much torn tail Open discarded.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// Log is an append-only query log. It is safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	path      string
	opts      Options
	size      int64
	replayed  int64
	appended  int64
	rotations int64
	truncated int64
	dirty     bool
	closed    bool
	err       error // sticky write/rotate error

	agg *SourceAggregator

	stop chan struct{}
	done chan struct{}

	encBuf []byte
}

// Open opens (creating if absent) the query log at path, replays the previous
// generation (<path>.1, if present) and then the active file — truncating a
// torn tail — and feeds every recovered record to replay (which may be nil)
// and to the internal source aggregator. A file whose header is not a
// compatible query log is rejected with ErrBadFormat.
func Open(path string, opts Options, replay func(Record) error) (*Log, error) {
	opts = opts.withDefaults()
	l := &Log{
		path: path,
		opts: opts,
		agg:  NewSourceAggregator(opts.HalfLife),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	feed := func(r Record) error {
		l.agg.Add(r.Source)
		l.replayed++
		if replay != nil {
			return replay(r)
		}
		return nil
	}
	// Previous generation: read-only, tolerate a torn tail (it was the
	// active file once; stop at the tear).
	if prev, err := os.Open(path + ".1"); err == nil {
		_, _, rerr := scanLog(prev, feed)
		prev.Close()
		if rerr != nil {
			return nil, rerr
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := l.recover(f, feed); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	if opts.FlushInterval > 0 {
		go l.flushLoop()
	} else {
		close(l.done)
	}
	return l, nil
}

// recover validates the header (writing a fresh one into an empty or
// sub-header file), replays intact frames, and truncates the torn tail so
// appends resume at the last valid record.
func (l *Log) recover(f *os.File, feed func(Record) error) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < headerBytes {
		// Empty or torn before the header finished: start fresh.
		if err := f.Truncate(0); err != nil {
			return err
		}
		if err := writeHeader(f); err != nil {
			return err
		}
		l.size = headerBytes
		return f.Sync()
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	valid, _, err := scanLog(f, feed)
	if err != nil {
		return err
	}
	if valid < st.Size() {
		l.truncated = st.Size() - valid
		if err := f.Truncate(valid); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return err
	}
	l.size = valid
	return nil
}

func writeHeader(w io.Writer) error {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], logVersion)
	_, err := w.Write(hdr[:])
	return err
}

// scanLog reads a header + frames from r, feeding decoded records to fn, and
// returns the byte offset after the last intact frame. A short, CRC-bad or
// undecodable frame ends the scan (torn tail) without error; a foreign or
// version-mismatched header is ErrBadFormat.
func scanLog(r io.Reader, fn func(Record) error) (valid int64, records int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, 0, nil // sub-header tail; caller rewrites
		}
		return 0, 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != logMagic {
		return 0, 0, fmt.Errorf("%w: magic %x", ErrBadFormat, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != logVersion {
		return 0, 0, fmt.Errorf("%w: version %d", ErrBadFormat, v)
	}
	valid = headerBytes
	var fh [frameOverhead]byte
	payload := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return valid, records, nil
		}
		n := binary.LittleEndian.Uint32(fh[0:4])
		if n == 0 || n > maxRecordBytes {
			return valid, records, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, records, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(fh[4:8]) {
			return valid, records, nil
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return valid, records, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return valid, records, err
			}
		}
		valid += int64(frameOverhead) + int64(n)
		records++
	}
}

// encodeRecord appends the wire form of r to buf and returns it.
func encodeRecord(buf []byte, r Record) []byte {
	tid := r.TraceID
	if len(tid) > 255 {
		tid = tid[:255]
	}
	legs := r.Legs
	if len(legs) > 255 {
		legs = legs[:255]
	}
	var fixed [recordFixedBytes]byte
	binary.LittleEndian.PutUint32(fixed[0:4], uint32(r.Source))
	binary.LittleEndian.PutUint16(fixed[4:6], r.Top)
	fixed[6] = r.Eta
	fixed[7] = r.Mode
	fixed[8] = r.Flags
	fixed[9] = r.Iterations
	fixed[10] = uint8(len(tid))
	fixed[11] = uint8(len(legs))
	binary.LittleEndian.PutUint64(fixed[12:20], r.Epoch)
	binary.LittleEndian.PutUint32(fixed[20:24], r.LatencyUS)
	binary.LittleEndian.PutUint64(fixed[24:32], math.Float64bits(r.Bound))
	buf = append(buf, fixed[:]...)
	buf = append(buf, tid...)
	for _, leg := range legs {
		var lb [8]byte
		binary.LittleEndian.PutUint16(lb[0:2], leg.Shard)
		binary.LittleEndian.PutUint16(lb[2:4], leg.Legs)
		binary.LittleEndian.PutUint32(lb[4:8], leg.DurationUS)
		buf = append(buf, lb[:]...)
	}
	return buf
}

func decodeRecord(p []byte) (Record, bool) {
	if len(p) < recordFixedBytes {
		return Record{}, false
	}
	var r Record
	r.Source = graph.NodeID(int32(binary.LittleEndian.Uint32(p[0:4])))
	r.Top = binary.LittleEndian.Uint16(p[4:6])
	r.Eta = p[6]
	r.Mode = p[7]
	r.Flags = p[8]
	r.Iterations = p[9]
	tidLen := int(p[10])
	legCount := int(p[11])
	r.Epoch = binary.LittleEndian.Uint64(p[12:20])
	r.LatencyUS = binary.LittleEndian.Uint32(p[20:24])
	r.Bound = math.Float64frombits(binary.LittleEndian.Uint64(p[24:32]))
	rest := p[recordFixedBytes:]
	if len(rest) != tidLen+legCount*8 {
		return Record{}, false
	}
	if tidLen > 0 {
		r.TraceID = string(rest[:tidLen])
		rest = rest[tidLen:]
	}
	if legCount > 0 {
		r.Legs = make([]LegSummary, legCount)
		for i := range r.Legs {
			lb := rest[i*8:]
			r.Legs[i] = LegSummary{
				Shard:      binary.LittleEndian.Uint16(lb[0:2]),
				Legs:       binary.LittleEndian.Uint16(lb[2:4]),
				DurationUS: binary.LittleEndian.Uint32(lb[4:8]),
			}
		}
	}
	return r, true
}

// Append writes one record. The frame lands in the write buffer immediately;
// durability follows at the next batched flush (or synchronously when
// FlushInterval < 0). Append never blocks on disk in the batched mode unless
// the buffer fills.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	l.encBuf = l.encBuf[:0]
	l.encBuf = encodeRecord(l.encBuf, r)
	frameLen := int64(frameOverhead + len(l.encBuf))
	if l.opts.MaxBytes > 0 && l.size+frameLen > l.opts.MaxBytes && l.size > headerBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return err
		}
	}
	var fh [frameOverhead]byte
	binary.LittleEndian.PutUint32(fh[0:4], uint32(len(l.encBuf)))
	binary.LittleEndian.PutUint32(fh[4:8], crc32.ChecksumIEEE(l.encBuf))
	if _, err := l.w.Write(fh[:]); err != nil {
		l.err = err
		return err
	}
	if _, err := l.w.Write(l.encBuf); err != nil {
		l.err = err
		return err
	}
	l.size += frameLen
	l.appended++
	l.dirty = true
	l.agg.Add(r.Source)
	if l.opts.FlushInterval < 0 {
		return l.syncLocked()
	}
	return nil
}

// rotateLocked flushes the active generation, renames it to <path>.1
// (replacing the previous generation) and starts a fresh header.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeHeader(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.size = headerBytes
	l.rotations++
	return nil
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// Sync flushes buffered frames and fsyncs the active file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.dirty {
				if err := l.syncLocked(); err != nil {
					l.err = err
				}
			}
			l.mu.Unlock()
		}
	}
}

// Close flushes, fsyncs and closes the log. Further appends fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.err == nil {
		err = l.syncLocked()
	}
	cerr := l.f.Close()
	if err == nil {
		err = cerr
	}
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	return err
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Replayed:       l.replayed,
		Appended:       l.appended,
		ActiveBytes:    l.size,
		Rotations:      l.rotations,
		TruncatedBytes: l.truncated,
	}
}

// Records returns the total records observed (replayed + appended).
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replayed + l.appended
}

// TopSources returns up to k distinct query sources ordered by
// frequency-decayed weight (recent queries count more), ties broken by node
// id. It reflects both replayed and appended records.
func (l *Log) TopSources(k int) []graph.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.agg.TopSources(k)
}

// Replay scans the log at path offline — previous generation first, then the
// active file — feeding each intact record to fn. It tolerates a torn tail
// (scan stops at the tear) and never modifies the files; a foreign or
// incompatible header is ErrBadFormat. Missing files contribute zero records.
func Replay(path string, fn func(Record) error) (int64, error) {
	var total int64
	for _, p := range []string{path + ".1", path} {
		f, err := os.Open(p)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return total, err
		}
		st, serr := f.Stat()
		if serr == nil && st.Size() < headerBytes {
			f.Close()
			continue
		}
		_, n, err := scanLog(f, fn)
		f.Close()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SourceAggregator accumulates exponentially decayed per-source query
// frequencies: each new record carries more weight than the one before it by
// a factor of 2^(1/halfLife), so a source's standing halves every halfLife
// records it goes unqueried. Weights are folded incrementally — nothing but
// the per-source totals is retained.
type SourceAggregator struct {
	w        map[graph.NodeID]float64
	n        int64
	halfLife float64
	// next is the weight the next Add contributes; it grows geometrically
	// and is renormalized (all totals scaled down) before it can overflow.
	next float64
}

// NewSourceAggregator returns an aggregator with the given half-life in
// records (<=0 means the default 8192).
func NewSourceAggregator(halfLife int) *SourceAggregator {
	if halfLife <= 0 {
		halfLife = defaultHalfLife
	}
	return &SourceAggregator{
		w:        make(map[graph.NodeID]float64),
		halfLife: float64(halfLife),
		next:     1,
	}
}

// Add records one query for src.
func (a *SourceAggregator) Add(src graph.NodeID) {
	a.w[src] += a.next
	a.n++
	a.next *= math.Exp2(1 / a.halfLife)
	if a.next > 1e300 {
		inv := 1 / a.next
		for k := range a.w {
			a.w[k] *= inv
		}
		a.next = 1
	}
}

// Records returns the number of records folded in.
func (a *SourceAggregator) Records() int64 { return a.n }

// TopSources returns up to k sources by decayed weight (descending), ties
// broken by ascending node id for determinism.
func (a *SourceAggregator) TopSources(k int) []graph.NodeID {
	if k <= 0 || len(a.w) == 0 {
		return nil
	}
	type sw struct {
		id graph.NodeID
		w  float64
	}
	all := make([]sw, 0, len(a.w))
	for id, w := range a.w {
		all = append(all, sw{id, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]graph.NodeID, k)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}
