// Package telemetry is the dependency-free metrics and structured-logging
// layer of the FastPPV serving stack: a registry of counters, gauges and
// fixed-bucket histograms exposed in the Prometheus text exposition format,
// plus the shared log/slog setup every command uses.
//
// The paper's core contract — scheduled approximation with an exact error
// bound at any stopping point — makes the interesting behaviour of this
// system per-iteration and per-shard: how much error mass each hub expansion
// retires, which scatter-gather leg was slow, when the bound crossed eta.
// This package is how that behaviour becomes observable without adding any
// external dependency: internal/server mounts a registry on GET /metrics,
// internal/cluster records per-shard leg latency and epoch divergence into
// it, and the engine-side query statistics (iterations, hubs expanded,
// residual at stop) land in histograms.
//
// Hot-path cost is a handful of atomic adds per observation: counters and
// gauges are single atomics, histograms are an atomic add per bucket + sum +
// count, and Vec children are resolved once at wiring time, not per request.
// Snapshotting (a /metrics scrape) reads the atomics individually — under
// concurrent writers the view is approximate by at most the writes in
// flight, which is the standard Prometheus contract.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one name="value" pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind is the TYPE line of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// float64 values stored in atomics travel as bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. The zero value is ready to use.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v; negative deltas are ignored so the counter stays monotonic.
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.add(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.value() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.set(v) }

// Add adjusts the value by v.
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.value() }

// family is one registered metric name with its help, kind and children.
type family struct {
	name string
	help string
	kind metricKind

	labelNames []string
	// mu guards children; the hot path resolves a child once and caches the
	// handle, so this lock is off the request path.
	mu       sync.RWMutex
	children map[string]*child
	order    []string // insertion order of child keys, for stable output
}

// child is one labelled instance of a family.
type child struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families and scrape-time collectors and renders them
// in the Prometheus text format. Create one per process with NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	names      []string // registration order; sorted at write time
	collectors []func(e *Emitter)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or fetches) the family for name, panicking on a
// kind/label-schema conflict — metric registration happens once at wiring
// time, so a conflict is a programming error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labelNames []string) *family {
	mustValidName(name)
	for _, l := range labelNames {
		mustValidName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || strings.Join(f.labelNames, ",") != strings.Join(labelNames, ",") {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind or label set", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labelNames: labelNames,
		children: make(map[string]*child)}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	return f.child(nil).c
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil)
	return f.child(nil).g
}

// Histogram registers (or fetches) an unlabelled fixed-bucket histogram.
// buckets must be sorted ascending; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil)
	ch := f.childHist(nil, buckets)
	return ch.h
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labelNames)}
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labelNames)}
}

// HistogramVec registers a histogram family with the given label names; every
// child shares the same bucket layout.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labelNames),
		buckets: append([]float64(nil), buckets...)}
}

// Collect registers a scrape-time collector: fn runs on every WritePrometheus
// call and emits point-in-time samples (typically read off existing stats
// structs) without any hot-path instrumentation.
func (r *Registry) Collect(fn func(e *Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// child fetches or creates the instance of f for the given label values.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch = &child{labels: zipLabels(f.labelNames, values)}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	}
	f.children[key] = ch
	f.order = append(f.order, key)
	return ch
}

// childHist is child for histogram families, which need a bucket layout on
// first creation.
func (f *family) childHist(values []string, buckets []float64) *child {
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch = &child{labels: zipLabels(f.labelNames, values), h: NewHistogram(buckets)}
	f.children[key] = ch
	f.order = append(f.order, key)
	return ch
}

func zipLabels(names, values []string) []Label {
	if len(names) == 0 {
		return nil
	}
	out := make([]Label, len(names))
	for i := range names {
		out[i] = Label{Name: names[i], Value: values[i]}
	}
	return out
}

// CounterVec is a counter family indexed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in declaration
// order), creating it on first use. Resolve handles once at wiring time:
// the lookup takes a read lock.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// GaugeVec is a gauge family indexed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// HistogramVec is a histogram family indexed by label values; all children
// share one bucket layout.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labelNames), len(values)))
	}
	return v.f.childHist(values, v.buckets).h
}

// Emitter accumulates scrape-time samples from a collector. Sample order
// within one name follows emission order.
type Emitter struct{ samples []sample }

type sample struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	value  float64
}

// Counter emits one counter sample.
func (e *Emitter) Counter(name, help string, value float64, labels ...Label) {
	e.samples = append(e.samples, sample{name: name, help: help, kind: kindCounter, labels: labels, value: value})
}

// Gauge emits one gauge sample.
func (e *Emitter) Gauge(name, help string, value float64, labels ...Label) {
	e.samples = append(e.samples, sample{name: name, help: help, kind: kindGauge, labels: labels, value: value})
}

// WritePrometheus renders every registered family plus every collector's
// samples in the Prometheus text exposition format (version 0.0.4), families
// sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	families := make([]*family, 0, len(names))
	for _, n := range names {
		families = append(families, r.families[n])
	}
	collectors := append([]func(e *Emitter){}, r.collectors...)
	r.mu.RUnlock()

	// Scrape-time samples, grouped by name so a family emitted by a
	// collector still gets exactly one HELP/TYPE header.
	var em Emitter
	for _, fn := range collectors {
		fn(&em)
	}
	collected := make(map[string][]sample)
	var collectedNames []string
	for _, s := range em.samples {
		mustValidName(s.name)
		if _, ok := collected[s.name]; !ok {
			collectedNames = append(collectedNames, s.name)
		}
		collected[s.name] = append(collected[s.name], s)
	}
	for _, n := range collectedNames {
		names = append(names, n)
	}
	sort.Strings(names)

	b := &strings.Builder{}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		if ss, ok := collected[name]; ok {
			writeHeader(b, name, ss[0].help, ss[0].kind)
			for _, s := range ss {
				writeSample(b, name, "", s.labels, s.value)
			}
			continue
		}
		var f *family
		for _, ff := range families {
			if ff.name == name {
				f = ff
				break
			}
		}
		if f == nil {
			continue
		}
		writeFamily(b, f)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, f *family) {
	f.mu.RLock()
	order := append([]string(nil), f.order...)
	children := make([]*child, 0, len(order))
	for _, k := range order {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()
	writeHeader(b, f.name, f.help, f.kind)
	for _, ch := range children {
		switch {
		case ch.c != nil:
			writeSample(b, f.name, "", ch.labels, ch.c.Value())
		case ch.g != nil:
			writeSample(b, f.name, "", ch.labels, ch.g.Value())
		case ch.h != nil:
			writeHistogram(b, f.name, ch.labels, ch.h.Snapshot())
		}
	}
}

func writeHistogram(b *strings.Builder, name string, labels []Label, s HistogramSnapshot) {
	cum := uint64(0)
	for i, upper := range s.Buckets {
		cum += s.Counts[i]
		le := formatFloat(upper)
		writeSample(b, name, "_bucket", append(append([]Label(nil), labels...), Label{"le", le}), float64(cum))
	}
	cum += s.Counts[len(s.Buckets)]
	writeSample(b, name, "_bucket", append(append([]Label(nil), labels...), Label{"le", "+Inf"}), float64(cum))
	writeSample(b, name, "_sum", labels, s.Sum)
	writeSample(b, name, "_count", labels, float64(cum))
}

func writeHeader(b *strings.Builder, name, help string, kind metricKind) {
	if help != "" {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(string(kind))
	b.WriteByte('\n')
}

func writeSample(b *strings.Builder, name, suffix string, labels []Label, value float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(value))
	b.WriteByte('\n')
}

// formatFloat renders a sample value; Prometheus accepts Go's shortest-form
// floats plus the special +Inf/-Inf/NaN spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double-quote and newline, the three
// characters the text format requires escaping inside label values.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline (double quotes are legal in HELP).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// mustValidName panics unless name matches the Prometheus metric/label name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func mustValidName(name string) {
	if name == "" {
		panic("telemetry: empty metric or label name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric or label name %q", name))
		}
	}
}

// Handler returns an http.Handler serving the registry in the text
// exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
