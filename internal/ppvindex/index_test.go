package ppvindex

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

func sampleVectors() map[graph.NodeID]sparse.Vector {
	return map[graph.NodeID]sparse.Vector{
		3:  {1: 0.5, 2: 0.25, 3: 0.15},
		7:  {7: 0.15, 9: 0.01},
		11: {0: 1e-3},
	}
}

func TestMemIndexRoundTrip(t *testing.T) {
	idx := NewMemIndex()
	for h, v := range sampleVectors() {
		if err := idx.Put(h, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if idx.Len() != 3 {
		t.Fatalf("Len = %d, want 3", idx.Len())
	}
	v, ok, err := idx.Get(3)
	if err != nil || !ok {
		t.Fatalf("Get(3) = %v, %v, %v", v, ok, err)
	}
	if v.Get(2) != 0.25 {
		t.Errorf("Get(3)[2] = %v, want 0.25", v.Get(2))
	}
	if _, ok, _ := idx.Get(99); ok {
		t.Error("Get(99) should miss")
	}
	if !idx.Has(7) || idx.Has(8) {
		t.Error("Has results wrong")
	}
	hubs := idx.Hubs()
	if len(hubs) != 3 || hubs[0] != 3 || hubs[2] != 11 {
		t.Errorf("Hubs = %v, want [3 7 11]", hubs)
	}
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	stats := StatsOf(idx)
	if stats.Hubs != 3 || stats.TotalEntries != 6 {
		t.Errorf("StatsOf = %+v, want 3 hubs and 6 entries", stats)
	}
	if stats.String() == "" {
		t.Error("Stats.String should not be empty")
	}
}

func TestMemIndexPutReplaces(t *testing.T) {
	idx := NewMemIndex()
	_ = idx.Put(1, sparse.Vector{2: 0.5})
	_ = idx.Put(1, sparse.Vector{3: 0.25})
	v, _, _ := idx.Get(1)
	if v.Get(2) != 0 || v.Get(3) != 0.25 {
		t.Errorf("Put should replace the previous vector, got %v", v)
	}
	if idx.Len() != 1 {
		t.Errorf("Len = %d, want 1", idx.Len())
	}
}

func TestDiskIndexRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatalf("CreateDisk: %v", err)
	}
	want := sampleVectors()
	for h, v := range want {
		if err := w.Put(h, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close should be a no-op, got %v", err)
	}
	if err := w.Put(1, sparse.Vector{1: 1}); err == nil {
		t.Error("Put after Close should fail")
	}

	idx, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer idx.Close()
	if idx.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(want))
	}
	for h, wantVec := range want {
		got, ok, err := idx.Get(h)
		if err != nil || !ok {
			t.Fatalf("Get(%d) = %v, %v, %v", h, got, ok, err)
		}
		if d := got.L1Distance(wantVec); d > 1e-12 {
			t.Errorf("Get(%d) differs from stored vector by %v", h, d)
		}
	}
	if _, ok, _ := idx.Get(12345); ok {
		t.Error("Get on a missing hub should miss")
	}
	if !idx.Has(7) || idx.Has(5) {
		t.Error("Has results wrong")
	}
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	if idx.Reads() != int64(len(want)) {
		t.Errorf("Reads = %d, want %d", idx.Reads(), len(want))
	}
	hubs := idx.Hubs()
	if len(hubs) != 3 || hubs[0] != 3 {
		t.Errorf("Hubs = %v", hubs)
	}
}

func TestOpenDiskRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "missing.ppv")
	if _, err := OpenDisk(missing); err == nil {
		t.Error("OpenDisk on a missing file should fail")
	}
	garbage := filepath.Join(dir, "garbage.ppv")
	if err := writeFile(garbage, []byte("this is not an index file at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(garbage); err == nil {
		t.Error("OpenDisk on garbage should fail")
	}
	tiny := filepath.Join(dir, "tiny.ppv")
	if err := writeFile(tiny, []byte("xx")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(tiny); err == nil {
		t.Error("OpenDisk on a too-small file should fail")
	}
}

// buildValidIndex writes a small valid index and returns its path and bytes.
func buildValidIndex(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	path := filepath.Join(dir, "valid.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	for h, v := range sampleVectors() {
		if err := w.Put(h, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestOpenDiskRejectsBitFlippedMagic(t *testing.T) {
	dir := t.TempDir()
	_, data := buildValidIndex(t, dir)
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-16] ^= 0x01 // first magic byte of the footer
	path := filepath.Join(dir, "flipped.ppv")
	if err := writeFile(path, flipped); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("OpenDisk with flipped magic = %v, want ErrBadIndexFormat", err)
	}
}

func TestOpenDiskRejectsShortDirectory(t *testing.T) {
	dir := t.TempDir()
	_, data := buildValidIndex(t, dir)
	// Inflate the footer's hub count so the directory would extend past the
	// footer; OpenDisk must reject it rather than read footer bytes as
	// directory entries.
	corrupt := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(corrupt[len(corrupt)-12:], 1<<20)
	path := filepath.Join(dir, "shortdir.ppv")
	if err := writeFile(path, corrupt); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("OpenDisk with short directory = %v, want ErrBadIndexFormat", err)
	}
}

// TestOpenDiskRejectsOverflowingFooter crafts a footer whose dirStart +
// hubCount*12 wraps past MaxInt64; the bounds check must reject it rather
// than let the wrap slip through into a ~50 GB directory allocation.
func TestOpenDiskRejectsOverflowingFooter(t *testing.T) {
	dir := t.TempDir()
	_, data := buildValidIndex(t, dir)
	corrupt := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(corrupt[len(corrupt)-12:], 0xFFFFFFFF)
	binary.LittleEndian.PutUint64(corrupt[len(corrupt)-8:], 0x7FFFFFFF00000000)
	path := filepath.Join(dir, "overflow.ppv")
	if err := writeFile(path, corrupt); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("OpenDisk with overflowing footer = %v, want ErrBadIndexFormat", err)
	}
}

func TestOpenDiskRejectsDirectoryOffsetOutsideRecords(t *testing.T) {
	// Hand-craft an index whose single directory entry points past the
	// record region.
	var buf []byte
	record := make([]byte, 8) // hub 1, count 0
	binary.LittleEndian.PutUint32(record[0:], 1)
	buf = append(buf, record...)
	dirEntry := make([]byte, 12)
	binary.LittleEndian.PutUint32(dirEntry[0:], 1)
	binary.LittleEndian.PutUint64(dirEntry[4:], 999) // past dirStart=8
	buf = append(buf, dirEntry...)
	footer := make([]byte, 16)
	binary.LittleEndian.PutUint32(footer[0:], diskMagic)
	binary.LittleEndian.PutUint32(footer[4:], 1)
	binary.LittleEndian.PutUint64(footer[8:], 8)
	buf = append(buf, footer...)

	path := filepath.Join(t.TempDir(), "badoffset.ppv")
	if err := writeFile(path, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("OpenDisk with out-of-range offset = %v, want ErrBadIndexFormat", err)
	}
}

// TestDiskIndexGetRejectsTruncatedLastRecord crafts an index whose last
// record claims more entries than the record region holds — the layout a
// partially flushed writer or a torn copy produces. Get must fail with
// ErrBadIndexFormat, not decode zero-filled bytes into a silently wrong PPV
// (the pre-fix behaviour swallowed the short read's io.EOF).
func TestDiskIndexGetRejectsTruncatedLastRecord(t *testing.T) {
	var buf []byte
	record := make([]byte, 8+2*entryBytes) // claims 3 entries, holds 2
	binary.LittleEndian.PutUint32(record[0:], 5)
	binary.LittleEndian.PutUint32(record[4:], 3)
	binary.LittleEndian.PutUint32(record[8:], 10)
	binary.LittleEndian.PutUint64(record[12:], math.Float64bits(0.5))
	binary.LittleEndian.PutUint32(record[8+entryBytes:], 11)
	binary.LittleEndian.PutUint64(record[12+entryBytes:], math.Float64bits(0.25))
	buf = append(buf, record...)
	dirStart := uint64(len(buf))
	dirEntry := make([]byte, 12)
	binary.LittleEndian.PutUint32(dirEntry[0:], 5)
	buf = append(buf, dirEntry...)
	footer := make([]byte, 16)
	binary.LittleEndian.PutUint32(footer[0:], diskMagic)
	binary.LittleEndian.PutUint32(footer[4:], 1)
	binary.LittleEndian.PutUint64(footer[8:], dirStart)
	buf = append(buf, footer...)

	path := filepath.Join(t.TempDir(), "truncated.ppv")
	if err := writeFile(path, buf); err != nil {
		t.Fatal(err)
	}
	idx, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v (the directory itself is well-formed)", err)
	}
	defer idx.Close()
	if _, _, err := idx.Get(5); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("Get on a truncated record = %v, want ErrBadIndexFormat", err)
	}
}

// TestDiskIndexGetRejectsHugeCount guards the allocation path: a bit flip in
// a record's count field must not drive a multi-gigabyte allocation.
func TestDiskIndexGetRejectsHugeCount(t *testing.T) {
	dir := t.TempDir()
	path, data := buildValidIndex(t, dir)
	idx, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(-1)
	for h, o := range idx.directory {
		if h == 3 {
			off = int64(o)
		}
	}
	idx.Close()
	if off < 0 {
		t.Fatal("hub 3 not in directory")
	}

	corrupt := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(corrupt[off+4:], 0x7fffffff)
	badPath := filepath.Join(dir, "hugecount.ppv")
	if err := writeFile(badPath, corrupt); err != nil {
		t.Fatal(err)
	}
	bad, err := OpenDisk(badPath)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, _, err := bad.Get(3); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("Get with corrupt count = %v, want ErrBadIndexFormat", err)
	}
	// The other hubs' records are intact and still readable.
	if _, ok, err := bad.Get(7); !ok || err != nil {
		t.Fatalf("Get(7) on intact record = %v, %v", ok, err)
	}
}

func TestDiskIndexEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk on an empty index: %v", err)
	}
	defer idx.Close()
	if idx.Len() != 0 {
		t.Errorf("Len = %d, want 0", idx.Len())
	}
	if _, ok, _ := idx.Get(1); ok {
		t.Error("Get on an empty index should miss")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestDiskWriterRejectsDuplicateHub: a duplicate Put would produce a file
// whose directory OpenDisk rejects as corrupt; the writer must catch it at
// write time instead.
func TestDiskWriterRejectsDuplicateHub(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(4, sparse.Vector{1: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(4, sparse.Vector{2: 0.25}); err == nil {
		t.Fatal("duplicate Put of hub 4 should fail")
	}
	if err := w.Put(5, sparse.Vector{3: 0.125}); err != nil {
		t.Fatalf("Put of a fresh hub after a rejected duplicate: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk after a rejected duplicate: %v", err)
	}
	defer idx.Close()
	if idx.Len() != 2 {
		t.Errorf("Len = %d, want 2", idx.Len())
	}
}

// TestDiskWriterAtomicPublish: the index file must not exist at the final
// path until Close succeeds (records stream into <path>.tmp), so a crash
// mid-precompute can never leave a partial file that OpenDisk rejects.
func TestDiskWriterAtomicPublish(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(1, sparse.Vector{2: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path exists before Close (err=%v); records must stream to .tmp", err)
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("temporary file missing during write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("final path missing after Close: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temporary file still present after Close (err=%v)", err)
	}
	if _, err := OpenDisk(path); err != nil {
		t.Fatalf("OpenDisk after atomic publish: %v", err)
	}
}

// TestDiskWriterAbort discards the temporary file and never publishes.
func TestDiskWriterAbort(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(1, sparse.Vector{2: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("final path exists after Abort (err=%v)", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temporary file survives Abort (err=%v)", err)
	}
	if err := w.Abort(); err != nil {
		t.Errorf("second Abort should be a no-op, got %v", err)
	}
}
