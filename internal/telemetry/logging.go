package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the shared structured logger the commands use. format is
// "text" (human-readable key=value lines) or "json" (one JSON object per
// line, for log shippers); level is "debug", "info", "warn" or "error".
// component is attached to every record so multi-process deployments (shards
// behind a router) can be told apart in an aggregated stream.
func NewLogger(w io.Writer, format, level, component string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	logger := slog.New(h)
	if component != "" {
		logger = logger.With("component", component)
	}
	return logger, nil
}

// NopLogger returns a logger that discards everything; library code uses it
// as the default so logging is strictly opt-in.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
