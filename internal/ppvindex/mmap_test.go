package ppvindex

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fastppv/internal/graph"
)

// writeSampleIndex builds an index file with the sample vectors and returns
// its path.
func writeSampleIndex(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.ppv")
	w, err := CreateDisk(path)
	if err != nil {
		t.Fatalf("CreateDisk: %v", err)
	}
	for h, v := range sampleVectors() {
		if err := w.Put(h, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// TestMmapMatchesPread opens the same index in both read modes and checks
// that Get and GetView return identical records.
func TestMmapMatchesPread(t *testing.T) {
	path := writeSampleIndex(t)
	pread, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer pread.Close()
	mapped, err := OpenDiskWithOptions(path, DiskOptions{Mmap: true})
	if err != nil {
		t.Fatalf("OpenDiskWithOptions: %v", err)
	}
	defer mapped.Close()
	if pread.MmapActive() {
		t.Fatal("pread index reports MmapActive")
	}
	if !mapped.MmapActive() {
		t.Skip("mmap unsupported on this platform; fallback covered by pread tests")
	}

	for h, want := range sampleVectors() {
		for name, idx := range map[string]*DiskIndex{"pread": pread, "mmap": mapped} {
			got, ok, err := idx.Get(h)
			if err != nil || !ok {
				t.Fatalf("%s Get(%d): ok=%v err=%v", name, h, ok, err)
			}
			if got.L1Distance(want) != 0 {
				t.Fatalf("%s Get(%d) = %v, want %v", name, h, got, want)
			}
			view, ok, err := idx.GetView(h)
			if err != nil || !ok {
				t.Fatalf("%s GetView(%d): ok=%v err=%v", name, h, ok, err)
			}
			if view.Hub() != h || view.Len() != want.NonZeros() {
				t.Fatalf("%s view of %d: hub=%d len=%d, want len %d", name, h, view.Hub(), view.Len(), want.NonZeros())
			}
			if view.Vector().L1Distance(want) != 0 {
				t.Fatalf("%s view of %d decodes to %v, want %v", name, h, view.Vector(), want)
			}
			// Entries are sorted ascending.
			for i := 1; i < view.Len(); i++ {
				prev, _ := view.Entry(i - 1)
				cur, _ := view.Entry(i)
				if prev >= cur {
					t.Fatalf("%s view of %d not sorted: %d then %d", name, h, prev, cur)
				}
			}
			view.Release()
		}
	}
	if _, ok, err := mapped.GetView(9999); ok || err != nil {
		t.Fatalf("GetView(missing) = ok=%v err=%v, want miss", ok, err)
	}
}

// TestMmapTruncatedFile asserts that a file cut short opens (or reads) as
// ErrBadIndexFormat in mmap mode instead of faulting.
func TestMmapTruncatedFile(t *testing.T) {
	path := writeSampleIndex(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-records: the footer (and with it the directory) is
	// gone, so the open itself must fail cleanly.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskWithOptions(path, DiskOptions{Mmap: true}); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("open of truncated file = %v, want ErrBadIndexFormat", err)
	}
}

// TestMmapCorruptCount corrupts a record's entry count so it overruns the
// record region; both Get and GetView must answer ErrBadIndexFormat, not
// slice past the mapping.
func TestMmapCorruptCount(t *testing.T) {
	path := writeSampleIndex(t)
	idx, err := OpenDiskWithOptions(path, DiskOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find hub 3's record offset, then rewrite its count in place.
	off := idx.directory[graph.NodeID(3)]
	idx.Close()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 1<<30)
	if _, err := f.WriteAt(huge[:], int64(off)+4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, mmap := range []bool{true, false} {
		idx, err := OpenDiskWithOptions(path, DiskOptions{Mmap: mmap})
		if err != nil {
			t.Fatalf("reopen (mmap=%v): %v", mmap, err)
		}
		if _, _, err := idx.Get(3); !errors.Is(err, ErrBadIndexFormat) {
			t.Fatalf("Get with corrupt count (mmap=%v) = %v, want ErrBadIndexFormat", mmap, err)
		}
		if _, _, err := idx.GetView(3); !errors.Is(err, ErrBadIndexFormat) {
			t.Fatalf("GetView with corrupt count (mmap=%v) = %v, want ErrBadIndexFormat", mmap, err)
		}
		// The sibling record is untouched and still readable.
		if v, ok, err := idx.Get(7); err != nil || !ok || v.Get(9) != 0.01 {
			t.Fatalf("Get(7) after corruption (mmap=%v) = %v ok=%v err=%v", mmap, v, ok, err)
		}
		idx.Close()
	}
}

// TestMmapViewPinsClose verifies the drain contract: Close blocks until every
// outstanding mmap view is released, and reads arriving after Close observe
// ErrIndexClosed instead of a dead mapping.
func TestMmapViewPinsClose(t *testing.T) {
	path := writeSampleIndex(t)
	idx, err := OpenDiskWithOptions(path, DiskOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.MmapActive() {
		idx.Close()
		t.Skip("mmap unsupported on this platform")
	}
	view, ok, err := idx.GetView(3)
	if err != nil || !ok {
		t.Fatalf("GetView: ok=%v err=%v", ok, err)
	}
	closed := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		closed <- idx.Close()
	}()
	// Close must not complete while the view is outstanding.
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with a view outstanding", err)
	default:
	}
	// The view stays readable until released.
	if got := view.Vector(); got.Get(1) != 0.5 {
		t.Fatalf("pinned view decoded %v", got)
	}
	view.Release()
	wg.Wait()
	if err := <-closed; err != nil {
		t.Fatalf("Close after release: %v", err)
	}
	if _, _, err := idx.GetView(3); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("GetView after Close = %v, want ErrIndexClosed", err)
	}
	if _, _, err := idx.Get(3); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("Get after Close = %v, want ErrIndexClosed", err)
	}
}

// TestBlockCacheViewMode exercises the raw-payload cache over a DiskIndex:
// view hits must not touch the inner index, Get must still decode correctly,
// and cached views must survive the inner index closing (compaction retires
// generations underneath the serving state).
func TestBlockCacheViewMode(t *testing.T) {
	path := writeSampleIndex(t)
	idx, err := OpenDiskWithOptions(path, DiskOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewBlockCache(idx, 1<<20, 2)

	view, ok, err := cache.GetView(3)
	if err != nil || !ok {
		t.Fatalf("GetView through cache: ok=%v err=%v", ok, err)
	}
	want := sampleVectors()[3]
	if view.Vector().L1Distance(want) != 0 {
		t.Fatalf("cached view decodes wrong: %v", view.Vector())
	}
	reads := idx.Reads()
	for i := 0; i < 5; i++ {
		v2, ok, err := cache.GetView(3)
		if err != nil || !ok {
			t.Fatalf("warm GetView: ok=%v err=%v", ok, err)
		}
		v2.Release()
	}
	if idx.Reads() != reads {
		t.Fatalf("warm view hits performed %d inner reads", idx.Reads()-reads)
	}
	// Get through the view-mode cache decodes the retained payload.
	v, ok, err := cache.Get(3)
	if err != nil || !ok || v.L1Distance(want) != 0 {
		t.Fatalf("Get via view cache = %v ok=%v err=%v", v, ok, err)
	}
	if idx.Reads() != reads {
		t.Fatalf("warm Get hit performed inner reads")
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want hits>0 entries=1", st)
	}

	// Retained payloads are owned copies: close (unmap) the inner index and
	// the previously returned view must still decode safely.
	if err := idx.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if view.Vector().L1Distance(want) != 0 {
		t.Fatalf("cached view invalid after inner close")
	}
	view.Release()
}
