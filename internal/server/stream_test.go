package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"

	"fastppv/internal/api"
	"fastppv/internal/cluster"
	"fastppv/internal/core"
	"fastppv/internal/graph"
)

// dialStreamRaw performs the client half of the stream upgrade by hand, so
// tests can speak raw frames to a production shard.
func dialStreamRaw(t *testing.T, tsURL string) (net.Conn, *bufio.Reader) {
	t.Helper()
	u, err := url.Parse(tsURL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", u.Host, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		api.StreamPath, u.Host, api.StreamProtocol)
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		t.Fatalf("upgrade = %d, want 101", resp.StatusCode)
	}
	return conn, br
}

// TestStreamRawProtocol drives a production shard over raw frames and checks
// the binary answers are bit-identical to the JSON /v1/partial surface.
func TestStreamRawProtocol(t *testing.T) {
	g := socialGraph(t, 300)
	srv, err := New(testEngine(t, g, 40), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.CloseStreams()

	conn, br := dialStreamRaw(t, ts.URL)
	defer conn.Close()

	// Root request over the stream.
	node := graph.NodeID(3)
	preq := &api.PartialRequest{Query: &node}
	payload, err := api.EncodePartialRequest(7, "raw-trace", preq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := api.WriteFrame(conn, api.FramePartialRequest, payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ftype, body, _, err := api.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if ftype != api.FramePartialResponse {
		t.Fatalf("frame type = %#x, want partial response", ftype)
	}
	id, streamResp, err := api.DecodePartialResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Fatalf("response id = %d, want 7", id)
	}

	// The same request over JSON must produce bit-identical vectors.
	status, jsonBody := post(t, ts, "/v1/partial", `{"query":3}`)
	if status != http.StatusOK {
		t.Fatalf("JSON partial = %d: %s", status, jsonBody)
	}
	var jsonResp api.PartialResponse
	if err := json.Unmarshal(jsonBody, &jsonResp); err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]api.Vector{
		"increment": {streamResp.Increment, jsonResp.Increment},
		"frontier":  {streamResp.Frontier, jsonResp.Frontier},
	} {
		a, b := pair[0], pair[1]
		if len(a.Nodes) != len(b.Nodes) {
			t.Fatalf("%s: %d nodes via stream, %d via JSON", name, len(a.Nodes), len(b.Nodes))
		}
		for i := range a.Nodes {
			if a.Nodes[i] != b.Nodes[i] || a.Scores[i] != b.Scores[i] {
				t.Fatalf("%s[%d]: stream (%d,%v) != JSON (%d,%v)",
					name, i, a.Nodes[i], a.Scores[i], b.Nodes[i], b.Scores[i])
			}
		}
	}

	// A cancel for an unknown id is a no-op; the stream keeps serving.
	if _, err := api.WriteFrame(conn, api.FrameCancel, api.EncodeCancel(999, 123)); err != nil {
		t.Fatal(err)
	}
	// An unknown frame type is tolerated for forward compatibility.
	if _, err := api.WriteFrame(conn, 0x7f, []byte("future")); err != nil {
		t.Fatal(err)
	}
	payload, err = api.EncodePartialRequest(8, "", &api.PartialRequest{
		Iteration: 1, Frontier: &streamResp.Frontier,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := api.WriteFrame(conn, api.FramePartialRequest, payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ftype, body, _, err = api.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if ftype != api.FramePartialResponse {
		t.Fatalf("expansion frame type = %#x", ftype)
	}
	if id, _, err = api.DecodePartialResponse(body); err != nil || id != 8 {
		t.Fatalf("expansion reply id=%d err=%v", id, err)
	}

	// Stats report the stream and its traffic.
	st := shardStatsOf(t, ts)
	if st.Streams == nil || st.Streams.Open != 1 || st.Streams.Partials < 2 {
		t.Fatalf("stream stats = %+v, want 1 open with >=2 partials", st.Streams)
	}
	if st.Streams.BytesIn == 0 || st.Streams.BytesOut == 0 {
		t.Fatalf("stream stats count no bytes: %+v", st.Streams)
	}
}

// TestStreamServerTornFrame sends garbage after the upgrade and checks the
// shard tears the stream down with a counted decode error — no panic, no
// hang, and the server keeps serving.
func TestStreamServerTornFrame(t *testing.T) {
	g := socialGraph(t, 200)
	srv, err := New(testEngine(t, g, 30), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.CloseStreams()

	conn, br := dialStreamRaw(t, ts.URL)
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not a frame, not even close")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("server kept the stream open after a torn frame")
	}
	st := shardStatsOf(t, ts)
	if st.Streams == nil || st.Streams.DecodeErrors == 0 {
		t.Fatalf("decode error not counted: %+v", st.Streams)
	}
	if st.Streams.Open != 0 {
		t.Fatalf("torn stream still counted open: %+v", st.Streams)
	}
	// The HTTP surface is unaffected.
	if status, _, _ := get(t, ts, "/v1/ppv?node=1&eta=1"); status != http.StatusOK {
		t.Fatalf("query after torn stream = %d", status)
	}
}

// TestStreamTransportAgainstServer runs the binary transport end to end:
// router -> persistent stream -> shard, asserting the stream is actually
// used (no JSON fallback), speculation fires and hits, and the trace ID
// travels inside the request frames to the shard's structured logs.
func TestStreamTransportAgainstServer(t *testing.T) {
	g := socialGraph(t, 400)
	var logMu sync.Mutex
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(lockedWriter{mu: &logMu, w: &logBuf},
		&slog.HandlerOptions{Level: slog.LevelDebug}))

	shardURLs := make([]string, 2)
	for i := 0; i < 2; i++ {
		e, err := core.NewEngine(g, nil, core.Options{NumHubs: 60, Partition: core.Partition{Shard: i, Shards: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Precompute(); err != nil {
			t.Fatal(err)
		}
		srv, err := New(e, Config{Logger: logger})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { srv.CloseStreams(); ts.Close() })
		shardURLs[i] = ts.URL
	}
	routerTS, rt := routerServer(t, shardURLs)

	const clientID = "stream-trace-7"
	req, err := http.NewRequest(http.MethodGet, routerTS.URL+"/v1/ppv?node=5&eta=3&trace=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.TraceHeader, clientID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced routed query = %d", resp.StatusCode)
	}
	if qr.Trace == nil || qr.Trace.TraceID != clientID {
		t.Fatalf("trace block = %+v, want client ID %q", qr.Trace, clientID)
	}
	// A couple more multi-iteration queries to exercise both shards.
	for _, node := range []int{12, 77, 203} {
		if st, _, body := get(t, routerTS, fmt.Sprintf("/v1/ppv?node=%d&eta=3", node)); st != http.StatusOK {
			t.Fatalf("routed query for %d = %d: %s", node, st, body)
		}
	}

	st := rt.Stats()
	if st.Transport != cluster.TransportBinary {
		t.Fatalf("router transport = %q, want binary", st.Transport)
	}
	for _, ss := range st.Shards {
		tr := ss.Transport
		if tr.Kind != cluster.TransportBinary || !tr.StreamConnected {
			t.Errorf("shard %d transport %+v, want a connected binary stream", ss.Shard, tr)
		}
		if tr.FramesSent == 0 || tr.FramesReceived == 0 {
			t.Errorf("shard %d exchanged no frames: %+v", ss.Shard, tr)
		}
		if tr.FallbackRequests != 0 {
			t.Errorf("shard %d used %d JSON fallbacks with a healthy stream", ss.Shard, tr.FallbackRequests)
		}
	}
	if st.WireBytesSent == 0 || st.WireBytesReceived == 0 {
		t.Errorf("router counted no wire bytes: sent=%d received=%d", st.WireBytesSent, st.WireBytesReceived)
	}
	if st.SpeculationsSent == 0 || st.SpeculationHits == 0 {
		t.Errorf("speculation never fired: sent=%d hits=%d", st.SpeculationsSent, st.SpeculationHits)
	}

	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, "trace_id="+clientID) {
		t.Error("client trace ID never reached a shard over the binary stream")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestClusterBinaryMatchesJSONTransport answers the same queries through a
// binary-transport router and a forced-JSON router and requires byte-identical
// bodies, both within 1e-12 of the single-node server.
func TestClusterBinaryMatchesJSONTransport(t *testing.T) {
	g := socialGraph(t, 500)
	single, err := New(testEngine(t, g, 70), Config{})
	if err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	shards := shardedServers(t, g, 70, 2)
	urls := []string{shards[0].URL, shards[1].URL}
	fronts := map[string]*httptest.Server{}
	routers := map[string]*cluster.Router{}
	for _, transport := range []string{cluster.TransportBinary, cluster.TransportJSON} {
		rt, err := cluster.NewRouter(cluster.RouterConfig{
			Targets: urls, HealthInterval: -1, Transport: transport,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		srv, err := NewRouter(rt, Config{CacheBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		fronts[transport] = ts
		routers[transport] = rt
	}

	for _, node := range []int{2, 58, 301, 499} {
		path := fmt.Sprintf("/v1/ppv?node=%d&eta=3&top=10", node)
		stB, _, bodyB := get(t, fronts[cluster.TransportBinary], path)
		stJ, _, bodyJ := get(t, fronts[cluster.TransportJSON], path)
		stS, _, bodyS := get(t, singleTS, path)
		if stB != http.StatusOK || stJ != http.StatusOK || stS != http.StatusOK {
			t.Fatalf("node %d: binary=%d json=%d single=%d", node, stB, stJ, stS)
		}
		if string(bodyB) != string(bodyJ) {
			t.Errorf("node %d: binary and JSON transports disagree:\n%s\n%s", node, bodyB, bodyJ)
		}
		var rb, rs QueryResponse
		if err := json.Unmarshal(bodyB, &rb); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bodyS, &rs); err != nil {
			t.Fatal(err)
		}
		if math.Abs(rb.L1ErrorBound-rs.L1ErrorBound) > 1e-12 {
			t.Errorf("node %d: cluster bound %.15f, single %.15f", node, rb.L1ErrorBound, rs.L1ErrorBound)
		}
		if len(rb.Results) != len(rs.Results) {
			t.Fatalf("node %d: %d results via cluster, %d single", node, len(rb.Results), len(rs.Results))
		}
		for i := range rb.Results {
			if rb.Results[i].Node != rs.Results[i].Node || math.Abs(rb.Results[i].Score-rs.Results[i].Score) > 1e-12 {
				t.Errorf("node %d rank %d: cluster (%d,%v), single (%d,%v)", node, i,
					rb.Results[i].Node, rb.Results[i].Score, rs.Results[i].Node, rs.Results[i].Score)
			}
		}
	}
	// The binary router really streamed; the JSON router really did not.
	if bst := routers[cluster.TransportBinary].Stats(); bst.WireBytesSent == 0 {
		t.Error("binary router sent no stream bytes")
	}
	for _, ss := range routers[cluster.TransportJSON].Stats().Shards {
		if ss.Transport.Kind != cluster.TransportJSON {
			t.Errorf("forced-JSON router shard %d reports transport %q", ss.Shard, ss.Transport.Kind)
		}
	}
}

// TestClusterMixedTransportFallback runs a cluster where one shard does not
// speak the stream protocol: the router must hold a binary stream to one and
// fall back to JSON for the other, with answers still matching the single
// node to 1e-12.
func TestClusterMixedTransportFallback(t *testing.T) {
	g := socialGraph(t, 400)
	single, err := New(testEngine(t, g, 60), Config{})
	if err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	shards := shardedServers(t, g, 60, 2)
	// Shard 1 pretends to be an older build: /v1/stream does not exist.
	noStream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == api.StreamPath {
			http.NotFound(w, r)
			return
		}
		shards[1].srv.Handler().ServeHTTP(w, r)
	}))
	defer noStream.Close()

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Targets: []string{shards[0].URL, noStream.URL}, HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv, err := NewRouter(rt, Config{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	routerTS := httptest.NewServer(srv.Handler())
	defer routerTS.Close()

	for _, node := range []int{4, 111, 342} {
		path := fmt.Sprintf("/v1/ppv?node=%d&eta=3&top=10", node)
		stC, _, bodyC := get(t, routerTS, path)
		stS, _, bodyS := get(t, singleTS, path)
		if stC != http.StatusOK || stS != http.StatusOK {
			t.Fatalf("node %d: cluster=%d single=%d", node, stC, stS)
		}
		var rc, rs QueryResponse
		if err := json.Unmarshal(bodyC, &rc); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bodyS, &rs); err != nil {
			t.Fatal(err)
		}
		if rc.Degraded || rc.ShardsDown != 0 {
			t.Fatalf("node %d: mixed cluster answered degraded: %s", node, bodyC)
		}
		if math.Abs(rc.L1ErrorBound-rs.L1ErrorBound) > 1e-12 {
			t.Errorf("node %d: mixed bound %.15f, single %.15f", node, rc.L1ErrorBound, rs.L1ErrorBound)
		}
		for i := range rs.Results {
			if rc.Results[i].Node != rs.Results[i].Node || math.Abs(rc.Results[i].Score-rs.Results[i].Score) > 1e-12 {
				t.Errorf("node %d rank %d: mixed (%d,%v), single (%d,%v)", node, i,
					rc.Results[i].Node, rc.Results[i].Score, rs.Results[i].Node, rs.Results[i].Score)
			}
		}
	}

	st := rt.Stats()
	if tr := st.Shards[0].Transport; !tr.StreamConnected || tr.FramesSent == 0 {
		t.Errorf("shard 0 should stream: %+v", tr)
	}
	if tr := st.Shards[1].Transport; tr.StreamConnected || tr.FallbackRequests == 0 {
		t.Errorf("shard 1 should be on permanent JSON fallback: %+v", tr)
	}
}

// TestStreamBreakRecovers breaks only the streams (the shard process stays
// up) and checks the router transparently recovers: the next query still
// answers non-degraded, and the stream is re-established after backoff.
func TestStreamBreakRecovers(t *testing.T) {
	g := socialGraph(t, 400)
	shards := shardedServers(t, g, 60, 2)
	routerTS, rt := routerServer(t, []string{shards[0].URL, shards[1].URL})

	if st, _, body := get(t, routerTS, "/v1/ppv?node=5&eta=3"); st != http.StatusOK {
		t.Fatalf("warm query = %d: %s", st, body)
	}
	connectedShards := func() int {
		n := 0
		for _, ss := range rt.Stats().Shards {
			if ss.Transport.StreamConnected {
				n++
			}
		}
		return n
	}
	if connectedShards() == 0 {
		t.Fatal("no streams established by the warm query")
	}

	// Sever every stream mid-run; the shards keep serving HTTP.
	for _, sh := range shards {
		sh.srv.CloseStreams()
	}

	// The very next query must answer correctly (reconnect or JSON retry),
	// never hang, and not report shards down.
	st, _, body := get(t, routerTS, "/v1/ppv?node=17&eta=3")
	if st != http.StatusOK {
		t.Fatalf("query after stream break = %d: %s", st, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Degraded || qr.ShardsDown != 0 {
		t.Fatalf("stream break degraded the answer: %s", body)
	}

	// Streams come back after the reconnect backoff.
	deadline := time.Now().Add(5 * time.Second)
	for connectedShards() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("streams never re-established after break")
		}
		time.Sleep(50 * time.Millisecond)
		get(t, routerTS, fmt.Sprintf("/v1/ppv?node=%d&eta=2", 20+int(time.Now().UnixNano()%100)))
	}
	var reconnects int64
	for _, ss := range rt.Stats().Shards {
		reconnects += ss.Transport.Reconnects
	}
	if reconnects == 0 {
		t.Error("reconnect counter did not move")
	}
}
