// Package pagerank implements global PageRank and exact Personalized PageRank
// Vectors (PPVs) by power iteration. Global PageRank feeds the expected-utility
// hub selection policy (Sect. 4 of the paper); exact PPVs are the ground truth
// against which all approximations are scored (Sect. 6, accuracy metrics) and
// also the worker used to compute prime PPVs on prime subgraphs (Sect. 5.1).
package pagerank

import (
	"errors"
	"fmt"

	"fastppv/internal/graph"
)

// DefaultAlpha is the teleporting probability used throughout the paper.
const DefaultAlpha = 0.15

// Options configure a power-iteration run.
type Options struct {
	// Alpha is the teleporting probability in (0,1). Zero means DefaultAlpha.
	Alpha float64
	// Tolerance is the L1 convergence threshold between successive iterates.
	// Zero means 1e-10.
	Tolerance float64
	// MaxIterations bounds the number of power iterations. Zero means 200.
	MaxIterations int
}

func (o Options) withDefaults() (Options, error) {
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("pagerank: alpha %v outside (0,1)", o.Alpha)
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
	if o.Tolerance < 0 {
		return o, errors.New("pagerank: negative tolerance")
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.MaxIterations < 0 {
		return o, errors.New("pagerank: negative max iterations")
	}
	return o, nil
}

// Global computes the global PageRank scores of every node by power iteration
// with uniform teleportation. Dangling nodes redistribute their mass
// uniformly. The returned slice sums to 1 (up to floating point error).
func Global(g *graph.Graph, opts Options) ([]float64, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	uniform := 1.0 / float64(n)
	for i := range cur {
		cur[i] = uniform
	}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		danglingMass := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			score := cur[u]
			if score == 0 {
				continue
			}
			deg := g.OutDegree(graph.NodeID(u))
			if deg == 0 {
				danglingMass += score
				continue
			}
			share := (1 - opts.Alpha) * score / float64(deg)
			for _, v := range g.OutNeighbors(graph.NodeID(u)) {
				next[v] += share
			}
		}
		base := opts.Alpha/float64(n) + (1-opts.Alpha)*danglingMass/float64(n)
		delta := 0.0
		for u := 0; u < n; u++ {
			next[u] += base
			d := next[u] - cur[u]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		cur, next = next, cur
		if delta < opts.Tolerance {
			break
		}
	}
	return cur, nil
}
