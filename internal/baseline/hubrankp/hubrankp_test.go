package hubrankp

import (
	"testing"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/metrics"
	"fastppv/internal/pagerank"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.RandomDirected(200, 4, 3)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	return g
}

func TestQueryApproximatesExactPPV(t *testing.T) {
	g := testGraph(t)
	r, err := New(g, Options{NumHubs: 20, Push: 1e-6, Clip: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := r.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	for q := graph.NodeID(0); q < 5; q++ {
		res, err := r.Query(q)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		exact, err := pagerank.ExactPPV(g, q, pagerank.Options{})
		if err != nil {
			t.Fatalf("ExactPPV: %v", err)
		}
		rep := metrics.Evaluate(exact, res.Estimate, 10)
		if rep.Precision < 0.8 {
			t.Errorf("q=%d: precision %.3f below 0.8 at a tight push threshold", q, rep.Precision)
		}
		if rep.L1Similarity < 0.95 {
			t.Errorf("q=%d: L1 similarity %.3f below 0.95 at a tight push threshold", q, rep.L1Similarity)
		}
		if res.Estimate.Sum() > 1+1e-9 {
			t.Errorf("q=%d: estimate mass %.6f exceeds 1", q, res.Estimate.Sum())
		}
	}
}

func TestTighterPushImprovesAccuracy(t *testing.T) {
	g := testGraph(t)
	loose, err := New(g, Options{NumHubs: 10, Push: 1e-2, Clip: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := loose.Precompute(); err != nil {
		t.Fatal(err)
	}
	tight, err := New(g, Options{NumHubs: 10, Push: 1e-6, Clip: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tight.Precompute(); err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.ExactPPV(g, 1, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := loose.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tight.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if exact.L1Distance(tr.Estimate) > exact.L1Distance(lr.Estimate)+1e-9 {
		t.Errorf("tighter push threshold should not be less accurate: %.4f vs %.4f",
			exact.L1Distance(tr.Estimate), exact.L1Distance(lr.Estimate))
	}
	if tr.Pushes <= lr.Pushes {
		t.Errorf("tighter push threshold should perform more pushes: %d vs %d", tr.Pushes, lr.Pushes)
	}
}

func TestHubReuseReducesOnlinePushes(t *testing.T) {
	g := testGraph(t)
	without, err := New(g, Options{NumHubs: 0, Push: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if err := without.Precompute(); err != nil {
		t.Fatal(err)
	}
	with, err := New(g, Options{NumHubs: 40, Push: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if err := with.Precompute(); err != nil {
		t.Fatal(err)
	}
	var pushesWithout, pushesWith, hubHits int
	for q := graph.NodeID(0); q < 10; q++ {
		a, err := without.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := with.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		pushesWithout += a.Pushes
		pushesWith += b.Pushes
		hubHits += b.HubHits
	}
	if hubHits == 0 {
		t.Error("expected at least one hub PPV splice with 40 indexed hubs")
	}
	if pushesWith >= pushesWithout {
		t.Errorf("hub reuse should reduce online pushes: %d vs %d", pushesWith, pushesWithout)
	}
}

func TestOfflineStatsPopulated(t *testing.T) {
	g := testGraph(t)
	r, err := New(g, Options{NumHubs: 15, Push: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Precompute(); err != nil {
		t.Fatal(err)
	}
	off := r.OfflineStats()
	if off.Hubs != 15 || off.IndexEntries == 0 || off.IndexBytes == 0 {
		t.Errorf("OfflineStats = %+v", off)
	}
	if len(r.Hubs()) != 15 {
		t.Errorf("Hubs() returned %d hubs, want 15", len(r.Hubs()))
	}
}

func TestValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil graph should be rejected")
	}
	if _, err := New(g, Options{Alpha: 2}); err == nil {
		t.Error("invalid alpha should be rejected")
	}
	if _, err := New(g, Options{Push: -1}); err == nil {
		t.Error("negative push threshold should be rejected")
	}
	if _, err := New(g, Options{NumHubs: -1}); err == nil {
		t.Error("negative hub count should be rejected")
	}
	r, err := New(g, Options{NumHubs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Query(graph.NodeID(g.NumNodes())); err == nil {
		t.Error("out-of-range query should fail")
	}
}
