package sparse

import (
	"math"
	"testing"

	"fastppv/internal/graph"
)

// FuzzEncodedRoundTrip drives the flat (node, score) entry encoding shared
// with the disk-index record format. The input bytes are chopped into
// entries (duplicate ids collapse through the map, as they do on a real
// decode), canonicalized through an Accumulator, encoded, and decoded again:
// the canonical form must round-trip bit-for-bit.
func FuzzEncodedRoundTrip(f *testing.F) {
	seed := make([]byte, 2*EncodedEntrySize)
	PutEncodedEntry(seed, 3, 0.5)
	PutEncodedEntry(seed[EncodedEntrySize:], 9, -1e300)
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / EncodedEntrySize
		v := New(n)
		for i := 0; i < n; i++ {
			id, s := EncodedEntryAt(data[:n*EncodedEntrySize], i)
			v[id] = s
		}
		var a Accumulator
		a.SetVector(v)
		if a.Len() != len(v) {
			t.Fatalf("SetVector kept %d of %d entries", a.Len(), len(v))
		}
		enc := make([]byte, a.Len()*EncodedEntrySize)
		for i, e := range a.Entries() {
			PutEncodedEntry(enc[i*EncodedEntrySize:], e.Node, e.Score)
		}
		var b Accumulator
		b.SetEncoded(enc)
		if b.Len() != a.Len() {
			t.Fatalf("SetEncoded kept %d of %d entries", b.Len(), a.Len())
		}
		be := b.Entries()
		var prev graph.NodeID
		for i, e := range a.Entries() {
			if be[i].Node != e.Node || math.Float64bits(be[i].Score) != math.Float64bits(e.Score) {
				t.Fatalf("entry %d: (%d, %x) round-tripped to (%d, %x)",
					i, e.Node, math.Float64bits(e.Score), be[i].Node, math.Float64bits(be[i].Score))
			}
			if i > 0 && e.Node <= prev {
				t.Fatalf("canonical entries not strictly ascending at %d: %d after %d", i, e.Node, prev)
			}
			prev = e.Node
		}
	})
}
