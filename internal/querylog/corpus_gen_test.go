package querylog

import (
	"os"
	"path/filepath"
	"testing"

	"fastppv/internal/corpus"
)

// TestRegenQueryLogCorpus writes the committed seed corpus of
// FuzzQueryLogReplay with the real log writer. Gated behind
// PPV_REGEN_CORPUS=1.
func TestRegenQueryLogCorpus(t *testing.T) {
	corpus.SkipUnlessRegen(t)
	path := filepath.Join(t.TempDir(), "query.log")
	l, err := Open(path, Options{FlushInterval: -1}, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	records := []Record{
		{Source: 5, Top: 10, Eta: 2, Mode: ModeEngine, Iterations: 3, Epoch: 1, LatencyUS: 1200, Bound: 0.01},
		{Source: 9, Top: 20, Eta: 1, Mode: ModeRouter, Flags: FlagDegraded | FlagSlow, Iterations: 5,
			Epoch: 2, LatencyUS: 95000, Bound: 0.2, TraceID: "trace-xyz",
			Legs: []LegSummary{{Shard: 0, Legs: 5, DurationUS: 40000}, {Shard: 1, Legs: 4, DurationUS: 52000}}},
		{Source: 5, Top: 10, Eta: 2, Mode: ModeEngine, Flags: FlagCacheHit, Iterations: 3, Epoch: 2, LatencyUS: 40, Bound: 0.01},
	}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	badcrc := append([]byte(nil), valid...)
	badcrc[len(badcrc)-1] ^= 0xFF
	corpus.Write(t, "FuzzQueryLogReplay",
		valid,
		valid[:len(valid)-7], // torn tail mid-frame
		badcrc,
		valid[:headerBytes], // bare header, zero records
		[]byte("NOPE"),      // foreign magic
	)
}
