package querylog

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fastppv/internal/graph"
)

func testRecord(src graph.NodeID, i int) Record {
	return Record{
		Source:     src,
		Top:        10,
		Eta:        3,
		Mode:       ModeEngine,
		Flags:      FlagCacheHit,
		Iterations: uint8(i % 7),
		Epoch:      uint64(i),
		LatencyUS:  uint32(100 + i),
		Bound:      0.01 * float64(i%5),
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.qlog")
	l, err := Open(path, Options{FlushInterval: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		testRecord(4, 1),
		{Source: 9, Top: 5, Eta: 2, Mode: ModeRouter, Flags: FlagDegraded | FlagSlow,
			Iterations: 3, Epoch: 42, LatencyUS: 51234, Bound: 0.125,
			TraceID: "0a1b2c3d4e5f-17",
			Legs: []LegSummary{
				{Shard: 0, Legs: 3, DurationUS: 900},
				{Shard: 1, Legs: 3, DurationUS: 1400},
			}},
		testRecord(4, 3),
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	l2, err := Open(path, Options{}, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Source != g.Source || w.Top != g.Top || w.Eta != g.Eta ||
			w.Mode != g.Mode || w.Flags != g.Flags || w.Iterations != g.Iterations ||
			w.Epoch != g.Epoch || w.LatencyUS != g.LatencyUS || w.Bound != g.Bound ||
			w.TraceID != g.TraceID || len(w.Legs) != len(g.Legs) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, g, w)
		}
		for j := range w.Legs {
			if w.Legs[j] != g.Legs[j] {
				t.Fatalf("record %d leg %d mismatch: got %+v want %+v", i, j, g.Legs[j], w.Legs[j])
			}
		}
	}
	if st := l2.Stats(); st.Replayed != 3 {
		t.Fatalf("Replayed = %d, want 3", st.Replayed)
	}
}

// TestTornTailTruncation corrupts the log mid-frame and verifies Open
// recovers every record before the tear, truncates the garbage, and appends
// resume cleanly — the same contract as the PPV WAL, asserted through the
// public API only.
func TestTornTailTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.qlog")
	l, err := Open(path, Options{FlushInterval: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(testRecord(graph.NodeID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last 5 bytes (mid-frame), then append garbage
	// in a second variant below.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	var n int
	l, err = Open(path, Options{FlushInterval: -1}, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", n)
	}
	if l.Stats().TruncatedBytes == 0 {
		t.Fatal("expected TruncatedBytes > 0")
	}
	// Appends resume after the truncated tail.
	if err := l.Append(testRecord(99, 99)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n = 0
	l, err = Open(path, Options{}, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if n != 10 {
		t.Fatalf("replayed %d records after recovery append, want 10", n)
	}
}

func TestCRCCorruptionStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.qlog")
	l, err := Open(path, Options{FlushInterval: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(testRecord(graph.NodeID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the last frame.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	l, err = Open(path, Options{}, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if n != 4 {
		t.Fatalf("replayed %d records past CRC corruption, want 4", n)
	}
}

// TestForeignHeaderRejected verifies that a file that is not a query log is
// rejected with ErrBadFormat and left unmodified, rather than truncated.
func TestForeignHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notalog")
	foreign := []byte("PNG\x89 definitely not a query log, long enough to pass the header read")
	if err := os.WriteFile(path, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Open on foreign file: err = %v, want ErrBadFormat", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(foreign) {
		t.Fatal("foreign file was modified by rejected Open")
	}
	// Version mismatch is rejected the same way.
	vpath := filepath.Join(t.TempDir(), "v99.qlog")
	hdr := make([]byte, headerBytes)
	binary.LittleEndian.PutUint32(hdr[0:4], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], 99)
	if err := os.WriteFile(vpath, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(vpath, Options{}, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Open on future-version file: err = %v, want ErrBadFormat", err)
	}
	if _, err := Replay(path, nil); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Replay on foreign file: err = %v, want ErrBadFormat", err)
	}
}

func TestRotationAndTwoGenerationReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.qlog")
	// Records are ~40 bytes framed; cap the generation small enough to force
	// several rotations across 100 appends.
	l, err := Open(path, Options{FlushInterval: -1, MaxBytes: 1 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Append(testRecord(graph.NodeID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatal("expected at least one rotation")
	}
	if st.ActiveBytes > 1<<10 {
		t.Fatalf("active generation %d bytes exceeds MaxBytes", st.ActiveBytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("previous generation missing: %v", err)
	}

	// Replay sees the last two generations, oldest first, contiguously.
	var ids []int
	l, err = Open(path, Options{}, func(r Record) error {
		ids = append(ids, int(r.Source))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(ids) == 0 || len(ids) >= 100 {
		t.Fatalf("replayed %d records, want a bounded suffix of the 100 appended", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("replay out of order at %d: %v", i, ids[i-3:i+1])
		}
	}
	if ids[len(ids)-1] != 99 {
		t.Fatalf("replay ends at %d, want 99", ids[len(ids)-1])
	}
}

func TestBatchedFlushDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.qlog")
	l, err := Open(path, Options{FlushInterval: 5 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(7, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > headerBytes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batched flush never landed on disk")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSourceAggregatorDecay(t *testing.T) {
	a := NewSourceAggregator(4)
	// Source 1 queried heavily early, source 2 lightly but recently: with a
	// 4-record half-life the recent source must dominate.
	for i := 0; i < 20; i++ {
		a.Add(1)
	}
	for i := 0; i < 8; i++ {
		a.Add(2)
	}
	top := a.TopSources(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 1 {
		t.Fatalf("TopSources = %v, want [2 1]", top)
	}
	if a.Records() != 28 {
		t.Fatalf("Records = %d, want 28", a.Records())
	}
	// k beyond distinct sources clamps; k<=0 is empty.
	if got := a.TopSources(10); len(got) != 2 {
		t.Fatalf("TopSources(10) returned %d sources, want 2", len(got))
	}
	if got := a.TopSources(0); got != nil {
		t.Fatalf("TopSources(0) = %v, want nil", got)
	}
}

func TestAggregatorRenormalization(t *testing.T) {
	a := NewSourceAggregator(1) // doubles every record: overflows fast without renormalization
	for i := 0; i < 5000; i++ {
		a.Add(graph.NodeID(i % 3))
	}
	top := a.TopSources(3)
	if len(top) != 3 {
		t.Fatalf("TopSources = %v, want 3 sources", top)
	}
	// The most recent add (i=4999 → source 1) must rank first.
	if top[0] != 1 {
		t.Fatalf("TopSources[0] = %d, want 1 (most recent)", top[0])
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.qlog")
	l, err := Open(path, Options{FlushInterval: time.Millisecond, MaxBytes: 8 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				if err := l.Append(testRecord(graph.NodeID(w), i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Appended; got != workers*per {
		t.Fatalf("Appended = %d, want %d", got, workers*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Whatever survives rotation must replay cleanly.
	if _, err := Replay(path, nil); err != nil {
		t.Fatal(err)
	}
}
