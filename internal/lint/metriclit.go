package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// metricFuncs are the internal/telemetry entry points that stamp names onto
// the Prometheus scrape surface: the Registry constructors, the scrape-time
// Emitter helpers, and the L label constructor.
var metricFuncs = map[string]bool{
	"Counter":      true,
	"Gauge":        true,
	"Histogram":    true,
	"CounterVec":   true,
	"GaugeVec":     true,
	"HistogramVec": true,
	"L":            true,
}

// MetricLit requires that metric family names and label keys passed to
// internal/telemetry are compile-time string constants. With every name a
// constant, the scrape surface is statically enumerable: grep the source and
// you have the complete metric inventory, no run required, and no dynamic
// name can ever explode family cardinality. Label *values* stay free — those
// are runtime data (shard ids, status codes) and are bounded elsewhere.
var MetricLit = &Analyzer{
	Name: "metriclit",
	Doc: "metric family names and label keys passed to internal/telemetry " +
		"must be compile-time string constants",
	Run: runMetricLit,
}

func runMetricLit(pass *Pass) (interface{}, error) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			if !metricFuncs[id.Name] {
				return true
			}
			obj, ok := info.Uses[id].(*types.Func)
			if !ok || obj.Pkg() == nil || !pathHasSuffix(obj.Pkg().Path(), "internal/telemetry") {
				return true
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Params().Len() == 0 || len(call.Args) == 0 {
				return true
			}
			// The first argument is the metric family name (or label key
			// for L).
			if !isStringConst(info, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to telemetry.%s must be a compile-time string constant so the scrape surface is statically enumerable",
					id.Name)
			}
			// A trailing ...string parameter holds label keys (the Vec
			// constructors); each key must be constant too. ...Label
			// parameters carry runtime values and are exempt.
			if sig.Variadic() {
				last := sig.Params().At(sig.Params().Len() - 1)
				if slice, ok := last.Type().(*types.Slice); ok {
					if basic, ok := slice.Elem().(*types.Basic); ok && basic.Kind() == types.String && sig.Params().Len()-1 <= len(call.Args) {
						for _, arg := range call.Args[sig.Params().Len()-1:] {
							if !isStringConst(info, arg) {
								pass.Reportf(arg.Pos(),
									"label key passed to telemetry.%s must be a compile-time string constant",
									id.Name)
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isStringConst reports whether e evaluates to a compile-time string
// constant (literal, named const, or constant concatenation).
func isStringConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.String
}
