// Package experiments contains one driver per table and figure of the
// paper's evaluation section (Sect. 6), plus the ablations listed in
// DESIGN.md. Each driver builds (or reuses) the synthetic datasets standing in
// for DBLP and LiveJournal, runs the methods under the experiment's
// parameters, and returns a result that renders as a paper-style table.
//
// The drivers are deliberately deterministic (fixed seeds) so repeated runs
// produce identical tables, and they are shared between the cmd/ppvbench CLI
// and the testing.B benchmarks in the repository root.
package experiments

import (
	"fmt"
	"sync"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/pagerank"
	"fastppv/internal/sparse"
	"fastppv/internal/workload"
)

// Scale selects how large the synthetic datasets are. The paper's graphs have
// millions of edges; the reduced scales keep the full experiment suite
// runnable in CI while preserving the structural properties (degree skew,
// hub reachability) the algorithms are sensitive to.
type Scale int

const (
	// ScaleTiny is used by unit tests of the experiment drivers themselves.
	ScaleTiny Scale = iota
	// ScaleSmall is the default for benchmarks and the CLI.
	ScaleSmall
	// ScaleMedium approaches the paper's setting more closely and is meant
	// for longer offline runs.
	ScaleMedium
)

// ParseScale converts a CLI string into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small", "":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want tiny, small or medium)", s)
	}
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// queries returns the number of query nodes evaluated per experiment at this
// scale (the paper uses 1000).
func (s Scale) queries() int {
	switch s {
	case ScaleTiny:
		return 6
	case ScaleMedium:
		return 60
	default:
		return 24
	}
}

// bibConfig returns the DBLP stand-in generator configuration for the scale.
func (s Scale) bibConfig() gen.BibliographicConfig {
	cfg := gen.DefaultBibliographicConfig()
	switch s {
	case ScaleTiny:
		cfg.Papers, cfg.Authors, cfg.Venues = 1200, 900, 40
	case ScaleSmall:
		cfg.Papers, cfg.Authors, cfg.Venues = 8000, 6000, 200
	case ScaleMedium:
		cfg.Papers, cfg.Authors, cfg.Venues = 30000, 22000, 600
	}
	return cfg
}

// socialConfig returns the LiveJournal stand-in generator configuration.
func (s Scale) socialConfig() gen.SocialConfig {
	cfg := gen.DefaultSocialConfig()
	switch s {
	case ScaleTiny:
		cfg.Nodes, cfg.OutDegreeMean = 2500, 6
	case ScaleSmall:
		cfg.Nodes, cfg.OutDegreeMean = 12000, 7
	case ScaleMedium:
		cfg.Nodes, cfg.OutDegreeMean = 40000, 8
	}
	return cfg
}

// hubFraction returns the default |H| as a fraction of the node count for
// each dataset, mirroring the ratio of the paper's defaults (20K hubs for the
// 2M-node DBLP, 120K hubs for the 1.2M-node LiveJournal sample).
const (
	dblpHubFraction = 0.01
	ljHubFraction   = 0.10
)

// DatasetName identifies one of the two evaluation graphs.
type DatasetName string

const (
	// DBLP is the undirected bibliographic network stand-in.
	DBLP DatasetName = "dblp"
	// LiveJournal is the directed social network stand-in.
	LiveJournal DatasetName = "livejournal"
)

// Dataset bundles a graph with everything the drivers repeatedly need:
// a query workload, global PageRank (shared by hub selection across methods)
// and a cache of exact PPVs used as ground truth.
type Dataset struct {
	Name    DatasetName
	Graph   *graph.Graph
	Queries []graph.NodeID
	// PageRank holds the global PageRank of every node.
	PageRank []float64
	// Bib is only set for the DBLP dataset and provides snapshots.
	Bib *gen.Bibliographic

	mu    sync.Mutex
	exact map[graph.NodeID]sparse.Vector
}

// DefaultHubs returns the default hub count for this dataset at the given
// graph (a fraction of its node count, minimum 16).
func (d *Dataset) DefaultHubs() int {
	frac := dblpHubFraction
	if d.Name == LiveJournal {
		frac = ljHubFraction
	}
	h := int(float64(d.Graph.NumNodes()) * frac)
	if h < 16 {
		h = 16
	}
	return h
}

// ExactPPV returns the exact PPV of q, computing and caching it on first use.
func (d *Dataset) ExactPPV(q graph.NodeID) (sparse.Vector, error) {
	d.mu.Lock()
	if v, ok := d.exact[q]; ok {
		d.mu.Unlock()
		return v, nil
	}
	d.mu.Unlock()
	v, err := pagerank.ExactPPV(d.Graph, q, pagerank.Options{})
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.exact[q] = v
	d.mu.Unlock()
	return v, nil
}

// datasetCache memoizes datasets per (name, scale) within one process, so
// that running many experiments (e.g. the whole benchmark suite) builds each
// graph and its PageRank only once.
var datasetCache sync.Map

// Load returns the dataset with the given name at the given scale.
func Load(name DatasetName, scale Scale) (*Dataset, error) {
	key := fmt.Sprintf("%s/%s", name, scale)
	if v, ok := datasetCache.Load(key); ok {
		return v.(*Dataset), nil
	}
	d, err := build(name, scale)
	if err != nil {
		return nil, err
	}
	actual, _ := datasetCache.LoadOrStore(key, d)
	return actual.(*Dataset), nil
}

func build(name DatasetName, scale Scale) (*Dataset, error) {
	d := &Dataset{Name: name, exact: make(map[graph.NodeID]sparse.Vector)}
	switch name {
	case DBLP:
		bib, err := gen.NewBibliographic(scale.bibConfig())
		if err != nil {
			return nil, err
		}
		d.Bib = bib
		d.Graph = bib.Graph
	case LiveJournal:
		g, err := gen.SocialGraph(scale.socialConfig())
		if err != nil {
			return nil, err
		}
		d.Graph = g
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	pr, err := pagerank.Global(d.Graph, pagerank.Options{})
	if err != nil {
		return nil, err
	}
	d.PageRank = pr
	d.Queries = workload.QuerySet(d.Graph, workload.QueryOptions{
		Count:           scale.queries(),
		Seed:            99,
		RequireOutEdges: true,
	})
	return d, nil
}
