// telemetry.go holds the router's observability surface: per-iteration spans
// (the routed counterpart of core.IterationStat, with one leg entry per shard
// sub-request) and the metric families the router records into a shared
// telemetry.Registry.
package cluster

import (
	"strconv"

	"fastppv/internal/telemetry"
)

// ShardLegSpan records one shard sub-request of one routed iteration.
type ShardLegSpan struct {
	Shard int `json:"shard"`
	// Hubs is the number of frontier hubs routed to this shard in this
	// iteration (0 for a root leg, which carries the query node instead).
	Hubs       int     `json:"hubs,omitempty"`
	DurationMS float64 `json:"duration_ms"`
	// Epoch is the index epoch the shard answered at, when it answered.
	Epoch uint64 `json:"epoch,omitempty"`
	// Error is set when the leg failed; Skipped when the router never sent it
	// (the shard was already down or epoch-divergent in this query).
	Error   string `json:"error,omitempty"`
	Skipped bool   `json:"skipped,omitempty"`
}

// IterationSpan records one iteration of a routed query: the frontier it
// expanded, the mass it retired, and the per-shard legs it scattered.
type IterationSpan struct {
	Iteration    int     `json:"iteration"`
	FrontierSize int     `json:"frontier_size"`
	MassAdded    float64 `json:"mass_added"`
	L1ErrorBound float64 `json:"l1_error_bound"`
	DurationMS   float64 `json:"duration_ms"`
	// Speculative marks an iteration whose shard requests were pre-sent
	// before the previous fold and stop check ran (a consumed speculation).
	Speculative bool           `json:"speculative,omitempty"`
	Legs        []ShardLegSpan `json:"legs,omitempty"`
}

// routerMetrics are the hot-path metric handles, resolved once at NewRouter.
// Everything derivable from the router's existing atomic counters (per-shard
// request/failure/retry totals, epochs, health) is exported by a scrape-time
// collector instead, at zero per-request cost.
type routerMetrics struct {
	queries    *telemetry.Counter
	degraded   *telemetry.Counter
	lostMass   *telemetry.Counter
	iterations *telemetry.Histogram
	bound      *telemetry.Histogram
	legLatency *telemetry.HistogramVec
	specSent   *telemetry.Counter
	specHits   *telemetry.Counter
}

// newRouterMetrics registers the router's hot-path handles. legBuckets
// optionally overrides the shard-leg latency family's bucket bounds
// (RouterConfig.LegLatencyBuckets); nil takes the shared default.
func newRouterMetrics(reg *telemetry.Registry, legBuckets []float64) routerMetrics {
	if legBuckets == nil {
		legBuckets = telemetry.DefLatencyBuckets
	}
	return routerMetrics{
		queries: reg.Counter("fastppv_router_queries_total",
			"Routed cluster queries answered (including degraded answers)."),
		degraded: reg.Counter("fastppv_router_degraded_queries_total",
			"Routed queries answered degraded: a shard was down, epoch-divergent, or a non-owner served the root."),
		lostMass: reg.Counter("fastppv_router_lost_error_mass_total",
			"Total frontier mass folded into error bounds because its owning shard was unavailable or epoch-divergent."),
		iterations: reg.Histogram("fastppv_router_query_iterations",
			"Expansion iterations per routed query (0 = root only).",
			telemetry.LinearBuckets(0, 1, 9)),
		bound: reg.Histogram("fastppv_router_l1_error_bound",
			"Exact L1 error bound of routed answers at stop.",
			telemetry.DefBoundBuckets),
		legLatency: reg.HistogramVec("fastppv_shard_leg_seconds",
			"Latency of one shard sub-request (partial or update leg).",
			legBuckets, "shard"),
		specSent: reg.Counter("fastppv_router_speculations_sent_total",
			"Iterations pre-sent to shards before their go/no-go decision."),
		specHits: reg.Counter("fastppv_router_speculation_hits_total",
			"Pre-sent iterations the query loop consumed (the rest were cancelled by early stops)."),
	}
}

// observeQuery records the end-of-query metrics for one routed result.
func (m *routerMetrics) observeQuery(res *Result) {
	m.queries.Inc()
	if res.Degraded {
		m.degraded.Inc()
	}
	m.lostMass.Add(res.LostFrontierMass)
	m.iterations.Observe(float64(res.Iterations))
	m.bound.Observe(res.L1ErrorBound)
}

// registerCollector exports the router's point-in-time view — cluster epoch,
// shard health, per-shard request totals — off the existing atomics at scrape
// time.
func (r *Router) registerCollector(reg *telemetry.Registry) {
	reg.Collect(func(e *telemetry.Emitter) {
		st := r.Stats()
		e.Gauge("fastppv_cluster_epoch",
			"Highest index epoch observed on any shard.", float64(st.Epoch))
		e.Gauge("fastppv_cluster_shards_behind",
			"Shards whose last observed epoch is below the cluster epoch.", float64(st.ShardsBehind))
		e.Gauge("fastppv_cluster_shards_healthy",
			"Shards currently passing health checks.", float64(st.ShardsHealthy))
		e.Gauge("fastppv_cluster_shards",
			"Shards the router fans out to.", float64(len(st.Shards)))
		e.Gauge("fastppv_cluster_nodes",
			"Node count of the served graph (0 until discovered).", float64(st.Nodes))
		for _, ss := range st.Shards {
			lbl := telemetry.L("shard", strconv.Itoa(ss.Shard))
			healthy := 0.0
			if ss.Healthy {
				healthy = 1
			}
			e.Gauge("fastppv_shard_healthy", "Whether the shard passes health checks (1/0).", healthy, lbl)
			e.Gauge("fastppv_shard_epoch", "Last index epoch observed on the shard.", float64(ss.Epoch), lbl)
			e.Counter("fastppv_shard_requests_total", "Sub-requests sent to the shard.", float64(ss.Requests), lbl)
			e.Counter("fastppv_shard_failures_total", "Failed sub-requests to the shard.", float64(ss.Failures), lbl)
			e.Counter("fastppv_shard_retries_total", "Sub-requests retried after a transient shard condition.", float64(ss.Retries), lbl)
			ts := ss.Transport
			streamUp := 0.0
			if ts.StreamConnected {
				streamUp = 1
			}
			e.Gauge("fastppv_shard_stream_connected",
				"Whether a binary stream to the shard is established (1/0).", streamUp, lbl)
			e.Counter("fastppv_shard_stream_reconnects_total",
				"Binary streams re-established to the shard after a break.", float64(ts.Reconnects), lbl)
			e.Counter("fastppv_shard_frames_sent_total",
				"Wire frames (or JSON requests) sent to the shard.", float64(ts.FramesSent), lbl)
			e.Counter("fastppv_shard_frames_received_total",
				"Wire frames (or JSON responses) received from the shard.", float64(ts.FramesReceived), lbl)
			e.Counter("fastppv_shard_wire_bytes_sent_total",
				"Partial-protocol bytes sent to the shard.", float64(ts.BytesSent), lbl)
			e.Counter("fastppv_shard_wire_bytes_received_total",
				"Partial-protocol bytes received from the shard.", float64(ts.BytesReceived), lbl)
			e.Counter("fastppv_shard_fallback_requests_total",
				"Sub-requests served over JSON because no stream was available.", float64(ts.FallbackRequests), lbl)
		}
	})
}
