package experiments

import (
	"fmt"
	"time"

	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/metrics"
	"fastppv/internal/pagerank"
	"fastppv/internal/workload"
)

// GrowthPoint is one graph of the growth series: a DBLP snapshot (by year) or
// a LiveJournal edge sample (S1..S5), as in Fig. 13 of the paper.
type GrowthPoint struct {
	Dataset DatasetName
	Label   string
	Graph   *graph.Graph
	Nodes   int
	Edges   int
}

// GrowthSeries builds the growth series of Fig. 13: five DBLP snapshots
// (1994, 1998, 2002, 2006, 2010) and five LiveJournal edge samples of
// increasing size (S1..S5).
func GrowthSeries(scale Scale) ([]GrowthPoint, error) {
	var out []GrowthPoint

	dblp, err := Load(DBLP, scale)
	if err != nil {
		return nil, err
	}
	for _, year := range []int{1994, 1998, 2002, 2006, 2010} {
		g := dblp.Bib.Snapshot(year)
		out = append(out, GrowthPoint{
			Dataset: DBLP,
			Label:   fmt.Sprint(year),
			Graph:   g,
			Nodes:   g.NumNodes(),
			Edges:   g.NumLogicalEdges(),
		})
	}

	lj, err := Load(LiveJournal, scale)
	if err != nil {
		return nil, err
	}
	total := lj.Graph.NumLogicalEdges()
	for i, frac := range []float64{0.16, 0.36, 0.55, 0.80, 1.0} {
		g := lj.Graph
		if frac < 1.0 {
			g = graph.SampleEdges(lj.Graph, int(float64(total)*frac), int64(100+i))
		}
		out = append(out, GrowthPoint{
			Dataset: LiveJournal,
			Label:   fmt.Sprintf("S%d", i+1),
			Graph:   g,
			Nodes:   g.NumNodes(),
			Edges:   g.NumLogicalEdges(),
		})
	}
	return out, nil
}

// Fig13Table renders the growth series sizes.
func Fig13Table(points []GrowthPoint) *workload.Table {
	t := workload.NewTable(
		"Fig. 13 — graphs of varying size for the scalability study",
		"Dataset", "Snapshot/Sample", "Nodes", "Edges")
	for _, p := range points {
		t.AddRow(string(p.Dataset), p.Label, p.Nodes, p.Edges)
	}
	return t
}

// ScalabilityPoint is one row of Fig. 14/15: FastPPV run on one graph of the
// growth series with a hub count proportional to the graph size, reporting
// online accuracy and query time plus offline space and time.
type ScalabilityPoint struct {
	GrowthPoint
	NumHubs      int
	Accuracy     metrics.Report
	AvgQueryTime time.Duration
	OfflineTime  time.Duration
	OfflineBytes int64
}

// Scalability runs FastPPV on every graph of the growth series (E10/E11,
// Fig. 14 and 15 of the paper). The number of hubs grows with the graph so
// that online query time stays near constant, which is the paper's central
// scalability claim; offline costs then grow linearly with graph size.
func Scalability(scale Scale) ([]ScalabilityPoint, error) {
	series, err := GrowthSeries(scale)
	if err != nil {
		return nil, err
	}
	var out []ScalabilityPoint
	for _, p := range series {
		frac := dblpHubFraction
		if p.Dataset == LiveJournal {
			frac = ljHubFraction
		}
		hubs := max(16, int(float64(p.Graph.NumNodes())*frac))

		queries := workload.QuerySet(p.Graph, workload.QueryOptions{
			Count:           scale.queries(),
			Seed:            7,
			RequireOutEdges: true,
		})
		if len(queries) == 0 {
			continue
		}
		engine, err := core.NewEngine(p.Graph, nil, core.Options{NumHubs: hubs})
		if err != nil {
			return nil, err
		}
		if err := engine.Precompute(); err != nil {
			return nil, fmt.Errorf("scalability %s/%s: %w", p.Dataset, p.Label, err)
		}
		var (
			total   time.Duration
			reports []metrics.Report
		)
		for _, q := range queries {
			start := time.Now()
			r, err := engine.Query(q, core.DefaultStop())
			total += time.Since(start)
			if err != nil {
				return nil, err
			}
			exact, err := pagerank.ExactPPV(p.Graph, q, pagerank.Options{})
			if err != nil {
				return nil, err
			}
			reports = append(reports, metrics.Evaluate(exact, r.Estimate, metrics.DefaultTopK))
		}
		off := engine.OfflineStats()
		out = append(out, ScalabilityPoint{
			GrowthPoint:  p,
			NumHubs:      hubs,
			Accuracy:     metrics.Average(reports),
			AvgQueryTime: total / time.Duration(len(queries)),
			OfflineTime:  off.Total,
			OfflineBytes: off.IndexBytes,
		})
	}
	return out, nil
}

// Fig14Table renders the online scalability results.
func Fig14Table(points []ScalabilityPoint) *workload.Table {
	t := workload.NewTable(
		"Fig. 14 — scaling FastPPV in online query processing",
		"Dataset", "Graph", "|H|", "Kendall", "Precision", "RAG", "L1 similarity", "Online ms/query")
	for _, p := range points {
		t.AddRow(string(p.Dataset), p.Label, p.NumHubs,
			p.Accuracy.KendallTau, p.Accuracy.Precision, p.Accuracy.RAG, p.Accuracy.L1Similarity,
			float64(p.AvgQueryTime.Microseconds())/1000.0)
	}
	return t
}

// Fig15Table renders the offline costs needed to keep online time constant.
func Fig15Table(points []ScalabilityPoint) *workload.Table {
	t := workload.NewTable(
		"Fig. 15 — offline precomputation costs across graph sizes",
		"Dataset", "Graph", "Nodes+Edges", "Offline space MB", "Offline time s")
	for _, p := range points {
		t.AddRow(string(p.Dataset), p.Label, p.Nodes+p.Edges,
			float64(p.OfflineBytes)/(1<<20), p.OfflineTime.Seconds())
	}
	return t
}
