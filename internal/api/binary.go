// Binary framing for the streaming shard transport.
//
// The JSON types in api.go remain the fallback and debug surface; this file
// defines the compact binary encoding the router and shards speak over a
// persistent stream. Every message is one frame:
//
//	magic "FPS1" (4) | type (1) | payload length uint32 LE (4) | payload | CRC-32 (4)
//
// The trailing checksum is CRC-32 (IEEE) over type + length + payload, so a
// torn or corrupted frame is detected before any payload field is trusted.
// Payloads use uvarints for counts and ids, delta-encoded ascending node ids
// for vectors, and math.Float64bits (little-endian) for scores — float64
// values round-trip bit-exactly, preserving the 1e-12 differential guarantee
// against the JSON path. Every payload starts with a uvarint request id so
// many in-flight sub-queries can multiplex one stream per shard.
package api

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"

	"fastppv/internal/graph"
)

// StreamPath is the endpoint a client upgrades to open a binary partial-query
// stream: GET /v1/stream with "Upgrade: fastppv-stream/1" answers 101
// Switching Protocols and hands the raw connection to the frame protocol.
const StreamPath = "/v1/stream"

// StreamProtocol is the value of the Upgrade header both sides must present.
const StreamProtocol = "fastppv-stream/1"

// Frame types. Requests and cancels travel router->shard; responses and
// errors travel shard->router.
const (
	// FramePartialRequest carries one PartialRequest (root or expansion).
	FramePartialRequest byte = 0x01
	// FramePartialResponse carries the PartialResponse answering a request id.
	FramePartialResponse byte = 0x02
	// FrameError carries a structured Error answering a request id.
	FrameError byte = 0x03
	// FrameCancel withdraws a speculative request by id + frontier hash: a
	// shard that has not started computing it discards the work and answers
	// CodeStaleSpeculation.
	FrameCancel byte = 0x04
)

// CodeStaleSpeculation reports a speculative expansion the router cancelled
// before the shard computed it (the predicted frontier was superseded). It is
// an expected protocol outcome, not a shard fault.
const CodeStaleSpeculation = "stale_speculation"

// frameMagic opens every frame; a stream that yields anything else is
// corrupt or not speaking the protocol.
var frameMagic = [4]byte{'F', 'P', 'S', '1'}

// MaxFramePayload bounds a single frame. Partial responses scale with graph
// size; 64 MiB is far above any realistic increment while still rejecting a
// nonsense length from a corrupt header before allocation.
const MaxFramePayload = 64 << 20

// frameOverhead is the fixed byte cost around a payload: magic + type +
// length + CRC.
const frameOverhead = 4 + 1 + 4 + 4

// ErrBadFrame wraps every framing-level decode failure (bad magic, oversized
// length, checksum mismatch, truncation mid-frame) so transports can
// distinguish a corrupt stream from a clean EOF.
var ErrBadFrame = errors.New("api: bad stream frame")

// WriteFrame writes one frame and returns the total bytes written.
func WriteFrame(w io.Writer, ftype byte, payload []byte) (int, error) {
	if len(payload) > MaxFramePayload {
		return 0, fmt.Errorf("api: frame payload %d exceeds limit %d", len(payload), MaxFramePayload)
	}
	buf := make([]byte, 0, frameOverhead+len(payload))
	buf = append(buf, frameMagic[:]...)
	buf = append(buf, ftype)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[4 : 9+len(payload)])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	n, err := w.Write(buf)
	return n, err
}

// ReadFrame reads one frame. A clean EOF at a frame boundary returns io.EOF;
// any torn, truncated or corrupt frame returns an error wrapping ErrBadFrame.
// The second return is the payload; the last is the total bytes consumed.
func ReadFrame(r io.Reader) (byte, []byte, int, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return 0, nil, 0, fmt.Errorf("%w: bad magic %q", ErrBadFrame, hdr[:4])
	}
	ftype := hdr[4]
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if n > MaxFramePayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrBadFrame, n, MaxFramePayload)
	}
	body := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	payload := body[:n]
	want := binary.LittleEndian.Uint32(body[n:])
	crc := crc32.ChecksumIEEE(hdr[4:9])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != want {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrBadFrame, crc, want)
	}
	return ftype, payload, frameOverhead + int(n), nil
}

// Hash returns a deterministic identity for a wire vector: FNV-1a 64 over
// the entry count, node ids and score bits in ascending-node order. The
// router tags speculative expansions with the hash of the frontier it
// predicted; equal hashes mean bit-identical frontiers.
func (w Vector) Hash() uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(w.Nodes)))
	h.Write(b[:])
	for i, id := range w.Nodes {
		binary.LittleEndian.PutUint64(b[:], uint64(uint32(id)))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(w.Scores[i]))
		h.Write(b[:])
	}
	return h.Sum64()
}

// appendVector encodes a wire vector: count, first node id absolute then
// ascending deltas (all uvarint), then count*8 bytes of little-endian
// Float64bits.
func appendVector(buf []byte, v Vector) ([]byte, error) {
	if len(v.Nodes) != len(v.Scores) {
		return nil, fmt.Errorf("api: vector has %d nodes but %d scores", len(v.Nodes), len(v.Scores))
	}
	buf = binary.AppendUvarint(buf, uint64(len(v.Nodes)))
	prev := int64(-1)
	for _, id := range v.Nodes {
		if int64(id) <= prev {
			return nil, fmt.Errorf("api: vector nodes not strictly ascending at %d", id)
		}
		buf = binary.AppendUvarint(buf, uint64(int64(id)-prev))
		prev = int64(id)
	}
	for _, s := range v.Scores {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	return buf, nil
}

// payloadReader walks a frame payload with sticky error handling; decode
// helpers can be chained and the first failure checked once at the end.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrBadFrame}, args...)...)
	}
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated u64 at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) str(limit int) string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(limit) || r.off+int(n) > len(r.b) {
		r.fail("string length %d out of range at offset %d", n, r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *payloadReader) nodes() []graph.NodeID {
	count := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Each delta costs at least one byte, so a count beyond the remaining
	// payload is corrupt — reject it before allocating.
	if count > uint64(len(r.b)-r.off) {
		r.fail("node count %d exceeds remaining payload", count)
		return nil
	}
	ids := make([]graph.NodeID, count)
	prev := int64(-1)
	for i := range ids {
		d := r.uvarint()
		if r.err != nil {
			return nil
		}
		id := prev + int64(d)
		if d == 0 || id > math.MaxInt32 {
			r.fail("node id out of range at entry %d", i)
			return nil
		}
		ids[i] = graph.NodeID(id)
		prev = id
	}
	return ids
}

func (r *payloadReader) vector() Vector {
	ids := r.nodes()
	if r.err != nil {
		return Vector{}
	}
	scores := make([]float64, len(ids))
	for i := range scores {
		scores[i] = math.Float64frombits(r.u64())
	}
	if r.err != nil {
		return Vector{}
	}
	return Vector{Nodes: ids, Scores: scores}
}

// Request payload flag bits.
const (
	reqFlagRoot        = 1 << 0
	reqFlagSpeculative = 1 << 1
)

// Response payload flag bits.
const respFlagFromIndex = 1 << 0

// maxTraceLen bounds the trace id carried per request frame.
const maxTraceLen = 256

// EncodePartialRequest encodes a request frame payload:
//
//	id | flags | trace | root? query-node : (iteration | frontier-hash | frontier)
func EncodePartialRequest(id uint64, traceID string, preq *PartialRequest) ([]byte, error) {
	if (preq.Query == nil) == (preq.Frontier == nil) {
		return nil, fmt.Errorf("api: partial request needs exactly one of query and frontier")
	}
	if len(traceID) > maxTraceLen {
		traceID = traceID[:maxTraceLen]
	}
	buf := make([]byte, 0, 64)
	buf = binary.AppendUvarint(buf, id)
	var flags byte
	if preq.Query != nil {
		flags |= reqFlagRoot
	}
	if preq.Speculative {
		flags |= reqFlagSpeculative
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(traceID)))
	buf = append(buf, traceID...)
	if preq.Query != nil {
		buf = binary.AppendUvarint(buf, uint64(uint32(*preq.Query)))
		return buf, nil
	}
	buf = binary.AppendUvarint(buf, uint64(preq.Iteration))
	buf = binary.LittleEndian.AppendUint64(buf, preq.FrontierHash)
	return appendVector(buf, *preq.Frontier)
}

// DecodePartialRequest decodes a request frame payload.
func DecodePartialRequest(payload []byte) (id uint64, traceID string, preq *PartialRequest, err error) {
	r := &payloadReader{b: payload}
	id = r.uvarint()
	var flags byte
	if r.err == nil {
		if r.off >= len(r.b) {
			r.fail("truncated flags")
		} else {
			flags = r.b[r.off]
			r.off++
		}
	}
	traceID = r.str(maxTraceLen)
	preq = &PartialRequest{Speculative: flags&reqFlagSpeculative != 0}
	if flags&reqFlagRoot != 0 {
		q := graph.NodeID(int32(uint32(r.uvarint())))
		preq.Query = &q
	} else {
		preq.Iteration = int(r.uvarint())
		preq.FrontierHash = r.u64()
		v := r.vector()
		preq.Frontier = &v
	}
	if r.err != nil {
		return 0, "", nil, r.err
	}
	return id, traceID, preq, nil
}

// EncodePartialResponse encodes a response frame payload:
//
//	id | flags | shard | shards | epoch | expanded | skipped | compute-ms |
//	increment | frontier | unowned
func EncodePartialResponse(id uint64, presp *PartialResponse) ([]byte, error) {
	buf := make([]byte, 0, 64+9*(len(presp.Increment.Nodes)+len(presp.Frontier.Nodes)))
	buf = binary.AppendUvarint(buf, id)
	var flags byte
	if presp.FromIndex {
		flags |= respFlagFromIndex
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(presp.Shard))
	buf = binary.AppendUvarint(buf, uint64(presp.Shards))
	buf = binary.AppendUvarint(buf, presp.Epoch)
	buf = binary.AppendUvarint(buf, uint64(presp.HubsExpanded))
	buf = binary.AppendUvarint(buf, uint64(presp.HubsSkipped))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(presp.ComputeMS))
	var err error
	if buf, err = appendVector(buf, presp.Increment); err != nil {
		return nil, err
	}
	if buf, err = appendVector(buf, presp.Frontier); err != nil {
		return nil, err
	}
	return appendVector(buf, Vector{Nodes: presp.Unowned, Scores: make([]float64, len(presp.Unowned))})
}

// DecodePartialResponse decodes a response frame payload.
func DecodePartialResponse(payload []byte) (id uint64, presp *PartialResponse, err error) {
	r := &payloadReader{b: payload}
	id = r.uvarint()
	var flags byte
	if r.err == nil {
		if r.off >= len(r.b) {
			r.fail("truncated flags")
		} else {
			flags = r.b[r.off]
			r.off++
		}
	}
	presp = &PartialResponse{
		FromIndex:    flags&respFlagFromIndex != 0,
		Shard:        int(r.uvarint()),
		Shards:       int(r.uvarint()),
		Epoch:        r.uvarint(),
		HubsExpanded: int(r.uvarint()),
		HubsSkipped:  int(r.uvarint()),
		ComputeMS:    math.Float64frombits(r.u64()),
	}
	presp.Increment = r.vector()
	presp.Frontier = r.vector()
	unowned := r.vector()
	if r.err != nil {
		return 0, nil, r.err
	}
	if len(unowned.Nodes) > 0 {
		presp.Unowned = unowned.Nodes
	}
	return id, presp, nil
}

// EncodeError encodes an error frame payload: id | code | message.
func EncodeError(id uint64, e *Error) []byte {
	buf := make([]byte, 0, 16+len(e.Code)+len(e.Message))
	buf = binary.AppendUvarint(buf, id)
	buf = binary.AppendUvarint(buf, uint64(len(e.Code)))
	buf = append(buf, e.Code...)
	msg := e.Message
	if len(msg) > 4096 {
		msg = msg[:4096]
	}
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	buf = append(buf, msg...)
	return buf
}

// DecodeError decodes an error frame payload.
func DecodeError(payload []byte) (id uint64, e *Error, err error) {
	r := &payloadReader{b: payload}
	id = r.uvarint()
	e = &Error{Code: r.str(256), Message: r.str(4096)}
	if r.err != nil {
		return 0, nil, r.err
	}
	return id, e, nil
}

// EncodeCancel encodes a cancel frame payload: id | frontier hash. The hash
// lets the shard verify it is withdrawing the speculation the router meant.
func EncodeCancel(id, frontierHash uint64) []byte {
	buf := make([]byte, 0, 18)
	buf = binary.AppendUvarint(buf, id)
	return binary.LittleEndian.AppendUint64(buf, frontierHash)
}

// DecodeCancel decodes a cancel frame payload.
func DecodeCancel(payload []byte) (id, frontierHash uint64, err error) {
	r := &payloadReader{b: payload}
	id = r.uvarint()
	frontierHash = r.u64()
	if r.err != nil {
		return 0, 0, r.err
	}
	return id, frontierHash, nil
}
