package prime

import (
	"math"
	"testing"
	"testing/quick"

	"fastppv/internal/graph"
	"fastppv/internal/hub"
	"fastppv/internal/pagerank"
)

const alpha = pagerank.DefaultAlpha

// chainWithHub builds q -> h -> c where h is a hub.
func chainWithHub(t testing.TB) (*graph.Graph, *hub.Set) {
	t.Helper()
	b := graph.NewBuilder(true)
	b.EnsureNodes(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	return b.Finalize(), hub.NewSet([]graph.NodeID{1})
}

func TestComputePPVStopsAtHub(t *testing.T) {
	g, hubs := chainWithHub(t)
	ppv, stats, err := ComputePPV(g, 0, hubs, Options{})
	if err != nil {
		t.Fatalf("ComputePPV: %v", err)
	}
	// Hub-free tours from node 0: the empty tour and 0->1 (1 is the border
	// hub). The tour 0->1->2 passes through hub 1 and is excluded.
	if got, want := ppv.Get(0), alpha; math.Abs(got-want) > 1e-12 {
		t.Errorf("self score = %v, want %v", got, want)
	}
	if got, want := ppv.Get(1), alpha*(1-alpha); math.Abs(got-want) > 1e-12 {
		t.Errorf("border hub score = %v, want %v", got, want)
	}
	if got := ppv.Get(2); got != 0 {
		t.Errorf("node behind the hub has score %v, want 0", got)
	}
	if stats.BorderHubs != 1 {
		t.Errorf("BorderHubs = %d, want 1", stats.BorderHubs)
	}
	if stats.NodesTouched != 2 {
		t.Errorf("NodesTouched = %d, want 2", stats.NodesTouched)
	}
}

func TestComputePPVOnHubSourceExpandsItself(t *testing.T) {
	g, hubs := chainWithHub(t)
	// The hub's own prime PPV must expand from the hub (the starting
	// occurrence is not an interior hub).
	ppv, _, err := ComputePPV(g, 1, hubs, Options{})
	if err != nil {
		t.Fatalf("ComputePPV: %v", err)
	}
	if got, want := ppv.Get(2), alpha*(1-alpha); math.Abs(got-want) > 1e-12 {
		t.Errorf("score of 2 from hub source = %v, want %v", got, want)
	}
}

func TestComputePPVDoesNotExpandReturningToHubSource(t *testing.T) {
	// h <-> x: tours from hub h that return to h must stop there; the
	// returning occurrence of h is interior for any continuation.
	b := graph.NewBuilder(true)
	b.EnsureNodes(2)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 0)
	g := b.Finalize()
	hubs := hub.NewSet([]graph.NodeID{0})

	ppv, _, err := ComputePPV(g, 0, hubs, Options{Epsilon: 1e-15})
	if err != nil {
		t.Fatalf("ComputePPV: %v", err)
	}
	// Hub-free tours from 0: empty, 0->1, 0->1->0. Any longer tour passes
	// through the interior occurrence of hub 0.
	wantSelf := alpha * (1 + (1-alpha)*(1-alpha))
	wantX := alpha * (1 - alpha)
	if got := ppv.Get(0); math.Abs(got-wantSelf) > 1e-12 {
		t.Errorf("self score = %.8f, want %.8f", got, wantSelf)
	}
	if got := ppv.Get(1); math.Abs(got-wantX) > 1e-12 {
		t.Errorf("score of 1 = %.8f, want %.8f", got, wantX)
	}
}

func TestComputePPVNoHubsEqualsExactPPV(t *testing.T) {
	// With an empty hub set and a negligible epsilon, the prime PPV of a node
	// is its exact PPV.
	b := graph.NewBuilder(true)
	b.EnsureNodes(6)
	for i := 0; i < 6; i++ {
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%6))
		b.MustAddEdge(graph.NodeID(i), graph.NodeID((i+2)%6))
	}
	g := b.Finalize()
	hubs := hub.NewSet(nil)
	prime, _, err := ComputePPV(g, 0, hubs, Options{Epsilon: 1e-14})
	if err != nil {
		t.Fatalf("ComputePPV: %v", err)
	}
	exact, err := pagerank.ExactPPV(g, 0, pagerank.Options{})
	if err != nil {
		t.Fatalf("ExactPPV: %v", err)
	}
	if d := exact.L1Distance(prime); d > 1e-6 {
		t.Errorf("hub-free prime PPV differs from exact PPV by %v", d)
	}
}

func TestComputePPVMassNeverExceedsOne(t *testing.T) {
	g, hubs := chainWithHub(t)
	ppv, _, err := ComputePPV(g, 0, hubs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ppv.Sum() > 1+1e-12 {
		t.Errorf("prime PPV mass %v exceeds 1", ppv.Sum())
	}
}

func TestComputePPVValidation(t *testing.T) {
	g, hubs := chainWithHub(t)
	if _, _, err := ComputePPV(g, 99, hubs, Options{}); err == nil {
		t.Error("out-of-range source should fail")
	}
	if _, _, err := ComputePPV(g, 0, hubs, Options{Alpha: 3}); err == nil {
		t.Error("invalid alpha should fail")
	}
	if _, _, err := ComputePPV(g, 0, hubs, Options{Epsilon: -1}); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, _, err := ComputePPV(g, 0, hubs, Options{MaxPushes: -1}); err == nil {
		t.Error("negative MaxPushes should fail")
	}
}

func TestComputePPVMaxPushesTruncates(t *testing.T) {
	// A long chain with a tiny push budget gets truncated but still returns
	// a (partial) result.
	b := graph.NewBuilder(true)
	const n = 100
	b.EnsureNodes(n)
	for i := 0; i < n-1; i++ {
		b.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Finalize()
	ppv, stats, err := ComputePPV(g, 0, hub.NewSet(nil), Options{MaxPushes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Error("expected truncation with MaxPushes=5")
	}
	if ppv.Sum() > 1+1e-12 {
		t.Errorf("truncated prime PPV mass %v exceeds 1", ppv.Sum())
	}
}

func TestExtensionVector(t *testing.T) {
	g, hubs := chainWithHub(t)
	ppv, _, err := ComputePPV(g, 1, hubs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ext := ExtensionVector(ppv, 1, alpha)
	// The empty-tour self entry is removed...
	if got := ext.Get(1); got != 0 {
		t.Errorf("extension self entry = %v, want 0", got)
	}
	// ...but the original vector is untouched and other entries are kept.
	if got := ppv.Get(1); math.Abs(got-alpha) > 1e-12 {
		t.Errorf("original prime PPV was modified: %v", got)
	}
	if got := ext.Get(2); math.Abs(got-ppv.Get(2)) > 1e-12 {
		t.Errorf("extension changed a non-self entry: %v vs %v", got, ppv.Get(2))
	}
	// A vector without a self entry is returned unchanged (same map).
	noSelf := ppv.Clone()
	delete(noSelf, 1)
	if out := ExtensionVector(noSelf, 1, alpha); out.Get(2) != noSelf.Get(2) || len(out) != len(noSelf) {
		t.Error("ExtensionVector should be a no-op without a self entry")
	}
}

func TestBorderHubsHelper(t *testing.T) {
	g, hubs := chainWithHub(t)
	ppv, _, err := ComputePPV(g, 0, hubs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	border := BorderHubs(ppv, 0, hubs)
	if len(border) != 1 || border[0] != 1 {
		t.Errorf("BorderHubs = %v, want [1]", border)
	}
}

func TestExtractMatchesComputePPVSupport(t *testing.T) {
	b := graph.NewBuilder(true)
	b.EnsureNodes(7)
	edges := [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {2, 6}}
	for _, e := range edges {
		b.MustAddEdge(e[0], e[1])
	}
	g := b.Finalize()
	hubs := hub.NewSet([]graph.NodeID{3})

	ppv, _, err := ComputePPV(g, 0, hubs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Extract(g, 0, hubs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Source != 0 {
		t.Errorf("Source = %d, want 0", sub.Source)
	}
	// Every node with positive prime-PPV mass appears in the subgraph.
	inSub := make(map[graph.NodeID]bool)
	for _, n := range sub.Nodes {
		inSub[n] = true
	}
	for node := range ppv {
		if !inSub[node] {
			t.Errorf("node %d has prime PPV mass but is missing from the extracted subgraph", node)
		}
	}
	// Nodes behind the hub (4, 5) are excluded.
	if inSub[4] || inSub[5] {
		t.Errorf("nodes behind the border hub leaked into the prime subgraph: %v", sub.Nodes)
	}
	if len(sub.Border) != 1 || sub.Border[0] != 3 {
		t.Errorf("Border = %v, want [3]", sub.Border)
	}
	if _, err := Extract(g, 99, hubs, Options{}); err == nil {
		t.Error("out-of-range source should fail")
	}
}

// TestQuickPrimePPVBoundedAndHubBlocked property-tests two invariants on
// random graphs: prime PPV mass never exceeds 1, and nodes reachable only
// through hubs receive no mass.
func TestQuickPrimePPVBoundedAndHubBlocked(t *testing.T) {
	f := func(rawEdges []uint16, hubPick uint8) bool {
		const n = 24
		b := graph.NewBuilder(true)
		b.EnsureNodes(n)
		for i := 0; i+1 < len(rawEdges); i += 2 {
			u := graph.NodeID(int(rawEdges[i]) % n)
			v := graph.NodeID(int(rawEdges[i+1]) % n)
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Finalize()
		hubs := hub.NewSet([]graph.NodeID{graph.NodeID(int(hubPick) % n), graph.NodeID((int(hubPick) + 7) % n)})
		ppv, _, err := ComputePPV(g, 0, hubs, Options{})
		if err != nil {
			return false
		}
		return ppv.Sum() <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
