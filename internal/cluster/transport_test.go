package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"fastppv/internal/api"
	"fastppv/internal/graph"
	"fastppv/internal/telemetry"
)

// garbageUpgradeServer accepts the stream upgrade and then writes bytes that
// are not frames — a malicious or badly broken shard.
func garbageUpgradeServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				req, err := http.ReadRequest(br)
				if err != nil {
					return
				}
				if req.URL.Path == api.StreamPath {
					c.Write([]byte("HTTP/1.1 101 Switching Protocols\r\nUpgrade: " +
						api.StreamProtocol + "\r\nConnection: Upgrade\r\n\r\n"))
					c.Write([]byte("%%%% torn garbage, definitely not a frame %%%%"))
					<-done // hold the conn open so the client sees garbage, not EOF
					return
				}
				// Any other request (the JSON fallback): structured error.
				body := `{"error":{"code":"internal","message":"fallback shard broken too"}}`
				c.Write([]byte("HTTP/1.1 500 Internal Server Error\r\nContent-Type: application/json\r\nContent-Length: " +
					strconv.Itoa(len(body)) + "\r\n\r\n" + body))
			}(conn)
		}
	}()
	return "http://" + ln.Addr().String(), func() { close(done); ln.Close() }
}

// TestStreamTransportTornFrame feeds the client garbage instead of frames:
// Partial must return a structured error promptly — never a panic, never a
// hang — and the transport must stay usable for further calls.
func TestStreamTransportTornFrame(t *testing.T) {
	addr, stop := garbageUpgradeServer(t)
	defer stop()

	tr := newStreamTransport(addr, 0, &http.Client{Timeout: 2 * time.Second},
		800*time.Millisecond, telemetry.NopLogger())
	defer tr.Close()

	node := graph.NodeID(1)
	for i := 0; i < 2; i++ {
		start := time.Now()
		_, err := tr.Partial(context.Background(), &api.PartialRequest{Query: &node}, "")
		if err == nil {
			t.Fatalf("call %d: garbage stream produced a response", i)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("call %d took %v, transport hung on torn frames", i, d)
		}
	}
	st := tr.Stats()
	if st.StreamConnected {
		t.Errorf("transport still claims a live stream after garbage: %+v", st)
	}
}

// TestStreamTransportPermanentJSONFallback checks a shard without /v1/stream
// (an older build) flips the transport to permanent JSON fallback that keeps
// answering correctly.
func TestStreamTransportPermanentJSONFallback(t *testing.T) {
	var streamHits, partialHits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case api.StreamPath:
			streamHits++
			http.NotFound(w, r)
		case "/v1/partial":
			partialHits++
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(api.PartialResponse{Shard: 0, Shards: 1, ComputeMS: 0.1})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	tr := newStreamTransport(ts.URL, 0, ts.Client(), time.Second, telemetry.NopLogger())
	defer tr.Close()

	node := graph.NodeID(0)
	for i := 0; i < 3; i++ {
		if _, err := tr.Partial(context.Background(), &api.PartialRequest{Query: &node}, ""); err != nil {
			t.Fatalf("call %d over fallback failed: %v", i, err)
		}
	}
	if streamHits != 1 {
		t.Errorf("upgrade attempted %d times, want exactly 1 (rejection is permanent)", streamHits)
	}
	if partialHits != 3 {
		t.Errorf("JSON partial served %d requests, want 3", partialHits)
	}
	st := tr.Stats()
	if st.StreamConnected || st.FallbackRequests != 3 {
		t.Errorf("fallback stats = %+v, want 3 fallback requests and no stream", st)
	}
}
