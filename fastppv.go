// Package fastppv is the public API of the FastPPV reproduction: incremental
// and accuracy-aware Personalized PageRank through scheduled approximation
// (Zhu, Fang, Chang, Ying — PVLDB 6(6), 2013).
//
// The package exposes the building blocks a downstream application needs:
//
//   - building or loading a graph (Builder, LoadEdgeList, LoadBinary),
//   - creating an Engine and precomputing its hub index (New, Engine.Precompute),
//   - answering online queries with a configurable accuracy/time trade-off
//     (Engine.Query, Engine.NewQuery with per-iteration stepping),
//   - ground truth and accuracy metrics for evaluation (ExactPPV, Evaluate),
//   - maintaining the index as the graph changes (Engine.ApplyUpdate).
//
// The heavy lifting lives in the internal packages; the exported identifiers
// here are thin aliases and wrappers so that application code only ever
// imports "fastppv".
//
// A minimal end-to-end use:
//
//	b := fastppv.NewBuilder(true)
//	// ... add nodes and edges ...
//	g := b.Finalize()
//	engine, err := fastppv.New(g, fastppv.Options{NumHubs: 1000})
//	if err != nil { ... }
//	if err := engine.Precompute(); err != nil { ... }
//	res, err := engine.Query(q, fastppv.StopCondition{MaxIterations: 2})
//	for _, e := range res.TopK(10) {
//		fmt.Println(e.Node, e.Score)
//	}
package fastppv

import (
	"io"
	"sync"
	"sync/atomic"

	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/metrics"
	"fastppv/internal/pagerank"
	"fastppv/internal/ppvindex"
	"fastppv/internal/sparse"
)

// Graph types.
type (
	// NodeID identifies a node: a dense index in [0, Graph.NumNodes()).
	NodeID = graph.NodeID
	// Edge is a directed edge (or one orientation of an undirected edge).
	Edge = graph.Edge
	// Graph is an immutable graph in CSR layout; build one with a Builder or
	// the Load functions.
	Graph = graph.Graph
	// Builder accumulates nodes and edges and produces a Graph.
	Builder = graph.Builder
)

// Engine types.
type (
	// Options configure an Engine (teleport probability, hub count and
	// policy, pruning thresholds). The zero value reproduces the paper's
	// defaults with an automatically chosen hub count.
	Options = core.Options
	// Engine is a FastPPV instance: offline Precompute, then online Query.
	Engine = core.Engine
	// StopCondition controls when online query processing stops (number of
	// iterations eta, target L1 error, or time limit).
	StopCondition = core.StopCondition
	// Result is the outcome of a query: the estimated PPV, the accuracy-aware
	// L1 error bound, and per-iteration statistics.
	Result = core.Result
	// QueryState is an in-progress incremental query; Step applies one more
	// PPV increment.
	QueryState = core.QueryState
	// IterationStat describes one online iteration.
	IterationStat = core.IterationStat
	// OfflineStats summarizes offline precomputation cost.
	OfflineStats = core.OfflineStats
	// GraphUpdate is a batch of edge insertions/deletions for ApplyUpdate.
	GraphUpdate = core.GraphUpdate
	// UpdateStats reports the cost of an incremental index update.
	UpdateStats = core.UpdateStats
)

// Vector types.
type (
	// Vector is a sparse score vector indexed by node.
	Vector = sparse.Vector
	// Entry is a (node, score) pair of a ranked result.
	Entry = sparse.Entry
)

// AccuracyReport bundles the four accuracy metrics of the paper's evaluation.
type AccuracyReport = metrics.Report

// InvalidNode is returned by lookups that find no node.
const InvalidNode = graph.InvalidNode

// ErrBadIndexFormat reports a corrupt, truncated or foreign index file; both
// OpenDiskIndex and later reads through the engine can return it (wrapped).
var ErrBadIndexFormat = ppvindex.ErrBadIndexFormat

// DefaultAlpha is the teleporting probability used throughout the paper.
const DefaultAlpha = pagerank.DefaultAlpha

// NewBuilder returns a Builder for a directed (true) or undirected (false)
// graph.
func NewBuilder(directed bool) *Builder { return graph.NewBuilder(directed) }

// FromEdges builds a graph directly from an edge list over numNodes nodes.
func FromEdges(numNodes int, directed bool, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numNodes, directed, edges)
}

// LoadEdgeList parses a text edge-list (optionally with a "nodes <n>
// directed|undirected" header).
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// LoadEdgeListFile reads a text edge-list file from disk.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// SaveEdgeListFile writes a graph as a text edge-list file.
func SaveEdgeListFile(path string, g *Graph) error { return graph.SaveEdgeListFile(path, g) }

// LoadBinaryFile reads a graph in the compact binary format.
func LoadBinaryFile(path string) (*Graph, error) { return graph.LoadBinaryFile(path) }

// SaveBinaryFile writes a graph in the compact binary format.
func SaveBinaryFile(path string, g *Graph) error { return graph.SaveBinaryFile(path, g) }

// New creates a FastPPV engine over g with an in-memory PPV index. Call
// Precompute before Query.
func New(g *Graph, opts Options) (*Engine, error) { return core.NewEngine(g, nil, opts) }

// NewWithDiskIndex creates a FastPPV engine whose hub prime PPVs are written
// to (and later read from) the index file at path, for deployments where the
// index should not live in memory. The returned close function releases the
// file handles and must be called when the engine is no longer needed.
func NewWithDiskIndex(g *Graph, opts Options, path string) (*Engine, func() error, error) {
	store, err := newDiskStore(path, -1)
	if err != nil {
		return nil, nil, err
	}
	engine, err := core.NewEngine(g, store, opts)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return engine, store.Close, nil
}

// BlockCacheStats summarizes the hub-block cache fronting a disk index.
type BlockCacheStats = ppvindex.BlockCacheStats

// OpenDiskIndex opens an index file precomputed earlier (by NewWithDiskIndex
// or `fastppv precompute`) and returns an engine that serves queries from it
// without redoing the offline phase: the hub set is recovered from the index
// directory and the engine is immediately query-ready.
//
// blockCacheBytes budgets an in-memory cache of decoded hub blocks between
// the engine and the disk: 0 means a 64 MiB default, negative disables
// caching (every fetched hub costs one random disk access, the raw Sect. 6.3
// cost model). opts must match the options used at precompute time.
//
// The returned close function releases the file handle.
func OpenDiskIndex(g *Graph, opts Options, path string, blockCacheBytes int64) (*Engine, func() error, error) {
	store, err := openDiskStore(path, blockCacheBytes)
	if err != nil {
		return nil, nil, err
	}
	engine, err := core.NewServingEngine(g, store, opts)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return engine, store.Close, nil
}

// DefaultStop returns the paper's default stopping condition (eta = 2).
func DefaultStop() StopCondition { return core.DefaultStop() }

// ExactPPV computes the exact Personalized PageRank Vector of q on g by power
// iteration. It is the ground truth oracle; use Engine.Query for fast
// approximate answers.
func ExactPPV(g *Graph, q NodeID, alpha float64) (Vector, error) {
	return pagerank.ExactPPV(g, q, pagerank.Options{Alpha: alpha})
}

// GlobalPageRank computes the global (non-personalized) PageRank of every
// node; it is the popularity signal used by hub selection.
func GlobalPageRank(g *Graph, alpha float64) ([]float64, error) {
	return pagerank.Global(g, pagerank.Options{Alpha: alpha})
}

// Evaluate scores an approximate PPV against the exact one at ranking depth
// k, returning the paper's four accuracy metrics.
func Evaluate(exact, approx Vector, k int) AccuracyReport {
	return metrics.Evaluate(exact, approx, k)
}

// diskStore adapts the disk index writer/reader pair to the engine's
// IndexStore interface. During precompute, Put streams to the writer; the
// first Get finalizes the writer and opens the index for reading (guarded by
// mu — concurrent first Gets from parallel queries must not race the
// transition). Reads optionally go through a ppvindex.BlockCache, and Puts
// after finalization (incremental updates recomputing a hub) land in an
// in-memory overlay that shadows the on-disk record, with the hub's cached
// block invalidated.
type diskStore struct {
	path       string
	cacheBytes int64 // <0 disables the block cache, 0 means default

	// state is published exactly once, when the writer->reader transition
	// completes, and is immutable afterwards; the read hot path loads it
	// without taking mu, so warm cache hits never serialize on a store-wide
	// lock.
	state atomic.Pointer[diskReadState]

	mu     sync.Mutex
	writer *ppvindex.DiskWriter
	reader *ppvindex.DiskIndex
	cache  *ppvindex.BlockCache
}

// diskReadState is the immutable read-side view of a finalized store.
type diskReadState struct {
	// src is where reads come from: the block cache when enabled, the raw
	// reader otherwise.
	src ppvindex.Index
	// overlay holds hubs rewritten after finalization; it only ever contains
	// hubs that are also in the on-disk directory, so membership queries can
	// keep delegating to src.
	overlay *ppvindex.MemIndex
}

// newDiskStore creates a store in write mode: Puts stream to a fresh index
// file at path until the first Get finalizes it.
func newDiskStore(path string, cacheBytes int64) (*diskStore, error) {
	w, err := ppvindex.CreateDisk(path)
	if err != nil {
		return nil, err
	}
	return &diskStore{path: path, cacheBytes: cacheBytes, writer: w}, nil
}

// openDiskStore opens an existing index file in read mode.
func openDiskStore(path string, cacheBytes int64) (*diskStore, error) {
	s := &diskStore{path: path, cacheBytes: cacheBytes}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureReaderLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *diskStore) Put(h NodeID, ppv Vector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writer != nil {
		return s.writer.Put(h, ppv)
	}
	// Finalized: the rewrite (an incremental update recomputing this hub)
	// shadows the on-disk record and evicts the stale cached block. The
	// overlay Put below never errors.
	if err := s.ensureReaderLocked(); err != nil {
		return err
	}
	if err := s.state.Load().overlay.Put(h, ppv); err != nil {
		return err
	}
	if s.cache != nil {
		s.cache.Invalidate([]NodeID{h})
	}
	return nil
}

func (s *diskStore) Get(h NodeID) (Vector, bool, error) {
	st, err := s.reading()
	if err != nil {
		return nil, false, err
	}
	if v, ok, _ := st.overlay.Get(h); ok {
		return v, true, nil
	}
	return st.src.Get(h)
}

func (s *diskStore) Has(h NodeID) bool {
	st, err := s.reading()
	if err != nil {
		return false
	}
	return st.src.Has(h)
}

func (s *diskStore) Hubs() []NodeID {
	st, err := s.reading()
	if err != nil {
		return nil
	}
	return st.src.Hubs()
}

func (s *diskStore) Len() int {
	st, err := s.reading()
	if err != nil {
		return 0
	}
	return st.src.Len()
}

func (s *diskStore) SizeBytes() int64 {
	st, err := s.reading()
	if err != nil {
		return 0
	}
	return st.src.SizeBytes()
}

// BlockCacheStats reports the hub-block cache counters; ok is false when the
// store runs without a cache. The serving layer's /v1/stats exposes these.
func (s *diskStore) BlockCacheStats() (BlockCacheStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return BlockCacheStats{}, false
	}
	return s.cache.Stats(), true
}

// reading returns the read-side state, opening the reader first if the store
// is still in write mode. The fast path is a single atomic load.
func (s *diskStore) reading() (*diskReadState, error) {
	if st := s.state.Load(); st != nil {
		return st, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureReaderLocked(); err != nil {
		return nil, err
	}
	return s.state.Load(), nil
}

// ensureReaderLocked finalizes the writer (if still open), opens the index
// for reading and publishes the read state. Callers must hold s.mu.
func (s *diskStore) ensureReaderLocked() error {
	if s.reader != nil {
		return nil
	}
	if s.writer != nil {
		if err := s.writer.Close(); err != nil {
			return err
		}
		s.writer = nil
	}
	r, err := ppvindex.OpenDisk(s.path)
	if err != nil {
		return err
	}
	s.reader = r
	st := &diskReadState{src: ppvindex.Index(r), overlay: ppvindex.NewMemIndex()}
	if s.cacheBytes >= 0 {
		s.cache = ppvindex.NewBlockCache(r, s.cacheBytes, 0)
		st.src = s.cache
	}
	s.state.Store(st)
	return nil
}

// Close releases the underlying file handles.
func (s *diskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writer != nil {
		if err := s.writer.Close(); err != nil {
			return err
		}
		s.writer = nil
	}
	if s.reader != nil {
		err := s.reader.Close()
		s.reader = nil
		return err
	}
	return nil
}
