package fastppv

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// buildTestGraph creates a small directed graph through the public API.
func buildTestGraph(t testing.TB, nodes, deg int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(true)
	b.EnsureNodes(nodes)
	for u := 0; u < nodes; u++ {
		for d := 0; d < deg; d++ {
			v := NodeID(rng.Intn(nodes))
			if v != NodeID(u) {
				b.MustAddEdge(NodeID(u), v)
			}
		}
	}
	return b.Finalize()
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g := buildTestGraph(t, 400, 4, 1)
	engine, err := New(g, Options{NumHubs: 40})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	off := engine.OfflineStats()
	if off.Hubs != 40 || off.IndexBytes <= 0 {
		t.Errorf("OfflineStats = %+v", off)
	}

	q := NodeID(7)
	res, err := engine.Query(q, DefaultStop())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Iterations > 2 {
		t.Errorf("DefaultStop ran %d iterations, want at most 2", res.Iterations)
	}
	top := res.TopK(10)
	if len(top) == 0 || top[0].Node != q {
		t.Errorf("the query node should rank first, got %v", top)
	}

	exact, err := ExactPPV(g, q, DefaultAlpha)
	if err != nil {
		t.Fatalf("ExactPPV: %v", err)
	}
	report := Evaluate(exact, res.Estimate, 10)
	if report.Precision < 0.5 {
		t.Errorf("precision %.3f unexpectedly low for eta=2 on a small graph", report.Precision)
	}
	// The accuracy-aware bound is an upper bound on the true L1 error.
	if trueErr := exact.L1Distance(res.Estimate); trueErr > res.L1ErrorBound+1e-9 {
		t.Errorf("true L1 error %.4f exceeds the reported bound %.4f", trueErr, res.L1ErrorBound)
	}
}

func TestPublicAPIIncrementalQuery(t *testing.T) {
	g := buildTestGraph(t, 300, 3, 2)
	engine, err := New(g, Options{NumHubs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	qs, err := engine.NewQuery(3)
	if err != nil {
		t.Fatal(err)
	}
	prev := qs.L1ErrorBound()
	for i := 0; i < 4 && !qs.Exhausted(); i++ {
		st := qs.Step()
		if st.L1ErrorBound > prev+1e-12 {
			t.Errorf("step %d increased the error bound", i+1)
		}
		prev = st.L1ErrorBound
	}
}

func TestPublicAPITimeLimitStop(t *testing.T) {
	g := buildTestGraph(t, 500, 5, 3)
	engine, err := New(g, Options{NumHubs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Query(1, StopCondition{MaxIterations: -1, TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Errorf("a one-nanosecond budget should stop almost immediately, ran %d iterations", res.Iterations)
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := buildTestGraph(t, 50, 3, 4)
	dir := t.TempDir()

	edgePath := filepath.Join(dir, "g.txt")
	if err := SaveEdgeListFile(edgePath, g); err != nil {
		t.Fatalf("SaveEdgeListFile: %v", err)
	}
	loaded, err := LoadEdgeListFile(edgePath)
	if err != nil {
		t.Fatalf("LoadEdgeListFile: %v", err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Errorf("edge-list round trip changed the graph: %v vs %v", loaded.Stats(), g.Stats())
	}

	binPath := filepath.Join(dir, "g.bin")
	if err := SaveBinaryFile(binPath, g); err != nil {
		t.Fatalf("SaveBinaryFile: %v", err)
	}
	loadedBin, err := LoadBinaryFile(binPath)
	if err != nil {
		t.Fatalf("LoadBinaryFile: %v", err)
	}
	if loadedBin.NumEdges() != g.NumEdges() {
		t.Error("binary round trip changed the graph")
	}

	if _, err := FromEdges(3, true, []Edge{{From: 0, To: 1}, {From: 1, To: 2}}); err != nil {
		t.Errorf("FromEdges: %v", err)
	}
	pr, err := GlobalPageRank(g, DefaultAlpha)
	if err != nil || len(pr) != g.NumNodes() {
		t.Errorf("GlobalPageRank: %v (len %d)", err, len(pr))
	}
}

func TestPublicAPIDiskIndex(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 5)
	path := filepath.Join(t.TempDir(), "index.ppv")

	diskEngine, closeIndex, err := NewWithDiskIndex(g, Options{NumHubs: 30}, path)
	if err != nil {
		t.Fatalf("NewWithDiskIndex: %v", err)
	}
	defer closeIndex()
	if err := diskEngine.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}

	memEngine, err := New(g, Options{NumHubs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := memEngine.Precompute(); err != nil {
		t.Fatal(err)
	}

	for q := NodeID(0); q < 10; q++ {
		a, err := diskEngine.Query(q, DefaultStop())
		if err != nil {
			t.Fatalf("disk query: %v", err)
		}
		b, err := memEngine.Query(q, DefaultStop())
		if err != nil {
			t.Fatalf("mem query: %v", err)
		}
		if d := a.Estimate.L1Distance(b.Estimate); d > 1e-9 {
			t.Errorf("q=%d: disk-index estimate differs from the in-memory one by %v", q, d)
		}
	}
	if err := closeIndex(); err != nil {
		t.Errorf("closing the disk index: %v", err)
	}
}

// TestPublicAPIDiskIndexConcurrentFirstGet is the -race regression test for
// the writer->reader transition: the first Gets after Precompute finalize the
// index file and open it for reading, and concurrent queries must not race on
// that state.
func TestPublicAPIDiskIndexConcurrentFirstGet(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 8)
	path := filepath.Join(t.TempDir(), "index.ppv")
	engine, closeIndex, err := NewWithDiskIndex(g, Options{NumHubs: 30}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeIndex()
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := NodeID(w); int(q) < g.NumNodes(); q += workers * 10 {
				if _, err := engine.Query(q, DefaultStop()); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent query: %v", err)
	}
}

// TestPublicAPIOpenDiskIndex covers the serving path: precompute into a file,
// reopen it with the hub-block cache, and check answers, cache behaviour and
// incremental updates.
func TestPublicAPIOpenDiskIndex(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 9)
	path := filepath.Join(t.TempDir(), "index.ppv")

	build, closeBuild, err := NewWithDiskIndex(g, Options{NumHubs: 30}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := build.Precompute(); err != nil {
		t.Fatal(err)
	}
	if err := closeBuild(); err != nil {
		t.Fatal(err)
	}

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatalf("OpenDiskIndex: %v", err)
	}
	defer closeIndex()
	if !engine.Precomputed() {
		t.Fatal("an opened index should be immediately query-ready")
	}
	if engine.Hubs().Size() != 30 {
		t.Fatalf("recovered %d hubs, want 30", engine.Hubs().Size())
	}

	memEngine, err := New(g, Options{NumHubs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := memEngine.Precompute(); err != nil {
		t.Fatal(err)
	}
	for q := NodeID(0); q < 10; q++ {
		a, err := engine.Query(q, DefaultStop())
		if err != nil {
			t.Fatalf("disk query %d: %v", q, err)
		}
		b, err := memEngine.Query(q, DefaultStop())
		if err != nil {
			t.Fatal(err)
		}
		if d := a.Estimate.L1Distance(b.Estimate); d > 1e-9 {
			t.Errorf("q=%d: served estimate differs from the in-memory one by %v", q, d)
		}
	}

	// Repeating the same queries must be answered from the block cache.
	stats, ok := engine.Index().(interface {
		BlockCacheStats() (BlockCacheStats, bool)
	})
	if !ok {
		t.Fatal("disk-backed index should expose block cache stats")
	}
	st, enabled := stats.BlockCacheStats()
	if !enabled {
		t.Fatal("block cache should be enabled")
	}
	loadsAfterFirstPass := st.Loads
	for q := NodeID(0); q < 10; q++ {
		if _, err := engine.Query(q, DefaultStop()); err != nil {
			t.Fatal(err)
		}
	}
	st, _ = stats.BlockCacheStats()
	if st.Loads != loadsAfterFirstPass {
		t.Errorf("warm pass issued %d extra disk loads", st.Loads-loadsAfterFirstPass)
	}
	if st.Hits == 0 {
		t.Error("warm pass should register cache hits")
	}

	// Incremental updates work against the opened index: recomputed hubs land
	// in the overlay and their blocks are invalidated.
	before, err := engine.Query(0, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	target := NodeID(250)
	ustats, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: 0, To: target}}})
	if err != nil {
		t.Fatalf("ApplyUpdate on an opened index: %v", err)
	}
	if ustats.AffectedHubs+ustats.UnaffectedHubs != engine.Hubs().Size() {
		t.Errorf("update stats do not cover all hubs: %+v", ustats)
	}
	after, err := engine.Query(0, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if after.Estimate.Get(target) <= before.Estimate.Get(target) {
		t.Errorf("adding the edge 0->%d should raise its score: %.6f -> %.6f",
			target, before.Estimate.Get(target), after.Estimate.Get(target))
	}
}

// TestPublicAPIOpenDiskIndexRejectsTruncated is the acceptance check that a
// truncated index file fails loudly with ErrBadIndexFormat instead of serving
// corrupt scores.
func TestPublicAPIOpenDiskIndexRejectsTruncated(t *testing.T) {
	g := buildTestGraph(t, 200, 3, 10)
	path := filepath.Join(t.TempDir(), "index.ppv")
	build, closeBuild, err := NewWithDiskIndex(g, Options{NumHubs: 20}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := build.Precompute(); err != nil {
		t.Fatal(err)
	}
	if err := closeBuild(); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()*3/5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDiskIndex(g, Options{NumHubs: 20}, path, 0); !errors.Is(err, ErrBadIndexFormat) {
		t.Fatalf("OpenDiskIndex on a truncated file = %v, want ErrBadIndexFormat", err)
	}
}

func TestPublicAPIDynamicUpdate(t *testing.T) {
	g := buildTestGraph(t, 200, 3, 6)
	engine, err := New(g, Options{NumHubs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		t.Fatal(err)
	}
	before, err := engine.Query(0, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	target := NodeID(150)
	stats, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: 0, To: target}}})
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if stats.AffectedHubs+stats.UnaffectedHubs != engine.Hubs().Size() {
		t.Errorf("update stats do not cover all hubs: %+v", stats)
	}
	after, err := engine.Query(0, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if after.Estimate.Get(target) <= before.Estimate.Get(target) {
		t.Errorf("adding the edge 0->%d should raise its score: %.6f -> %.6f",
			target, before.Estimate.Get(target), after.Estimate.Get(target))
	}
}

// graphWithEdge rebuilds g with one extra directed edge, reproducing the
// graph state a restarted daemon would reload after the update was applied.
func graphWithEdge(t testing.TB, g *Graph, e Edge) *Graph {
	t.Helper()
	b := NewBuilder(true)
	b.EnsureNodes(g.NumNodes())
	g.Edges(func(ed Edge) bool {
		b.MustAddEdge(ed.From, ed.To)
		return true
	})
	b.MustAddEdge(e.From, e.To)
	return b.Finalize()
}

// durabilityOf fetches the durable-update counters of a disk-served engine.
func durabilityOf(t testing.TB, e *Engine) DurabilityStats {
	t.Helper()
	dss, ok := e.Index().(interface {
		DurabilityStats() (DurabilityStats, bool)
	})
	if !ok {
		t.Fatal("disk-backed index should expose durability stats")
	}
	st, enabled := dss.DurabilityStats()
	if !enabled {
		t.Fatal("durability stats should be enabled on an opened index")
	}
	return st
}

// compactIndex runs one compaction of a disk-served engine's store.
func compactIndex(t testing.TB, e *Engine) CompactionResult {
	t.Helper()
	c, ok := e.Index().(interface {
		Compact() (CompactionResult, error)
	})
	if !ok {
		t.Fatal("disk-backed index should expose Compact")
	}
	res, err := c.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	return res
}

// buildDiskIndex precomputes a hub index for g into path and finalizes it.
func buildDiskIndex(t testing.TB, g *Graph, numHubs int, path string) {
	t.Helper()
	build, closeBuild, err := NewWithDiskIndex(g, Options{NumHubs: numHubs}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := build.Precompute(); err != nil {
		t.Fatal(err)
	}
	if err := closeBuild(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIDiskUpdateDurability is the restart-durability acceptance
// test: updates applied to a disk-served index must survive closing and
// reopening the index, because each update batch is committed to the update
// log and replayed on open.
func TestPublicAPIDiskUpdateDurability(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 11)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 30, path)

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatalf("OpenDiskIndex: %v", err)
	}
	// Grow an edge out of a hub: the hub's own prime PPV always has a
	// non-zero self entry, so at least that hub is recomputed and the overlay
	// (and log) are guaranteed non-empty.
	from := engine.Hubs().Hubs()[0]
	target := NodeID(250)
	if target == from {
		target = NodeID(251)
	}
	upd := GraphUpdate{AddedEdges: []Edge{{From: from, To: target}}}
	ustats, err := engine.ApplyUpdate(upd)
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if ustats.AffectedHubs == 0 {
		t.Fatal("update out of a hub should recompute at least that hub")
	}
	after, err := engine.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	ds := durabilityOf(t, engine)
	if !ds.LogEnabled {
		t.Fatal("OpenDiskIndex should enable the update log by default")
	}
	if ds.OverlayHubs != ustats.AffectedHubs || ds.LogRecords != int64(ustats.AffectedHubs) {
		t.Errorf("durability stats %+v do not match the %d recomputed hubs", ds, ustats.AffectedHubs)
	}
	if err := closeIndex(); err != nil {
		t.Fatal(err)
	}

	if st, err := os.Stat(path + ".log"); err != nil || st.Size() == 0 {
		t.Fatalf("update log missing or empty after close: %v", err)
	}

	// "Restart": reopen the index against the post-update graph.
	g2 := graphWithEdge(t, g, Edge{From: from, To: target})
	engine2, closeIndex2, err := OpenDiskIndex(g2, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatalf("OpenDiskIndex after restart: %v", err)
	}
	defer closeIndex2()
	ds2 := durabilityOf(t, engine2)
	if ds2.OverlayHubs != ustats.AffectedHubs || ds2.LogRecords != int64(ustats.AffectedHubs) {
		t.Errorf("replay restored %+v, want %d overlay hubs", ds2, ustats.AffectedHubs)
	}
	res2, err := engine2.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if d := res2.Estimate.L1Distance(after.Estimate); d > 1e-12 {
		t.Errorf("post-restart estimate differs from pre-restart one by %v", d)
	}
	if res2.Estimate.Get(target) <= 0 {
		t.Errorf("the recomputed score of %d should survive the restart", target)
	}
}

// TestPublicAPICompaction folds the update log into the base file and checks
// the log shrinks to empty, answers are unchanged, and a restart needs no
// replay.
func TestPublicAPICompaction(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 12)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 30, path)

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	from := engine.Hubs().Hubs()[0]
	target := NodeID(250)
	ustats, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: from, To: target}}})
	if err != nil {
		t.Fatal(err)
	}
	after, err := engine.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}

	res := compactIndex(t, engine)
	if res.RewrittenHubs != ustats.AffectedHubs || res.LogRecordsFolded != int64(ustats.AffectedHubs) {
		t.Errorf("compaction result %+v does not match the %d recomputed hubs", res, ustats.AffectedHubs)
	}
	if res.TotalHubs != 30 {
		t.Errorf("compaction rewrote %d hubs, want 30", res.TotalHubs)
	}
	ds := durabilityOf(t, engine)
	if ds.OverlayHubs != 0 || ds.LogRecords != 0 || ds.Compactions != 1 {
		t.Errorf("after compaction: %+v, want empty overlay and log", ds)
	}
	post, err := engine.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if d := post.Estimate.L1Distance(after.Estimate); d > 1e-12 {
		t.Errorf("compaction changed the answer by %v", d)
	}
	// A second compaction with nothing pending is a no-op.
	res2 := compactIndex(t, engine)
	if res2.RewrittenHubs != 0 || res2.LogRecordsFolded != 0 {
		t.Errorf("idle compaction rewrote %+v", res2)
	}
	if err := closeIndex(); err != nil {
		t.Fatal(err)
	}

	// Restart: the base file alone carries the updates now.
	g2 := graphWithEdge(t, g, Edge{From: from, To: target})
	engine2, closeIndex2, err := OpenDiskIndex(g2, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer closeIndex2()
	ds2 := durabilityOf(t, engine2)
	if ds2.OverlayHubs != 0 || ds2.LogRecords != 0 {
		t.Errorf("restart after compaction should need no replay, got %+v", ds2)
	}
	res3, err := engine2.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if d := res3.Estimate.L1Distance(after.Estimate); d > 1e-12 {
		t.Errorf("post-compaction restart changed the answer by %v", d)
	}
}

// TestPublicAPICompactionCrashRecovery simulates the two crash points of the
// compaction commit protocol: before the atomic rename (a stale .tmp file is
// left behind) and after the rename but before the log reset (the old log
// replays idempotently onto the already-rewritten base).
func TestPublicAPICompactionCrashRecovery(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 13)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 30, path)

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	from := engine.Hubs().Hubs()[0]
	target := NodeID(250)
	ustats, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: from, To: target}}})
	if err != nil {
		t.Fatal(err)
	}
	after, err := engine.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if err := closeIndex(); err != nil {
		t.Fatal(err)
	}
	preCompactionLog, err := os.ReadFile(path + ".log")
	if err != nil {
		t.Fatal(err)
	}
	g2 := graphWithEdge(t, g, Edge{From: from, To: target})

	// Crash point 1: the rewrite died before the rename — a partial .tmp
	// exists, base and log are untouched. Recovery must ignore the leftovers
	// and serve base + replayed log.
	if err := os.WriteFile(path+".tmp", []byte("partial compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}
	engine2, closeIndex2, err := OpenDiskIndex(g2, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatalf("OpenDiskIndex with a stale .tmp: %v", err)
	}
	res2, err := engine2.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if d := res2.Estimate.L1Distance(after.Estimate); d > 1e-12 {
		t.Errorf("recovery from a pre-rename crash changed the answer by %v", d)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("stale .tmp should be removed on open (err=%v)", err)
	}
	// Now actually compact, so the base file owns the updates ...
	compactIndex(t, engine2)
	if err := closeIndex2(); err != nil {
		t.Fatal(err)
	}

	// Crash point 2: ... and pretend the crash hit between the rename and
	// the log reset by restoring the pre-compaction log. The log's header is
	// bound to the pre-compaction base file, so the open either discards it
	// (binding mismatch — the records already live in the rewritten base) or,
	// if the rewritten base happens to bind identically, replays the same
	// values idempotently. Both ways the answers must be unchanged.
	if err := os.WriteFile(path+".log", preCompactionLog, 0o644); err != nil {
		t.Fatal(err)
	}
	engine3, closeIndex3, err := OpenDiskIndex(g2, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatalf("OpenDiskIndex after a post-rename crash: %v", err)
	}
	defer closeIndex3()
	ds := durabilityOf(t, engine3)
	if ds.LogRecords != 0 && ds.LogRecords != int64(ustats.AffectedHubs) {
		t.Errorf("restored log must be discarded or fully replayed, got %+v (update recomputed %d hubs)",
			ds, ustats.AffectedHubs)
	}
	if int64(ds.OverlayHubs) != ds.LogRecords {
		t.Errorf("overlay (%d hubs) out of sync with replayed records (%d)", ds.OverlayHubs, ds.LogRecords)
	}
	res3, err := engine3.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if d := res3.Estimate.L1Distance(after.Estimate); d > 1e-12 {
		t.Errorf("post-rename crash recovery changed the answer by %v", d)
	}
}

// TestPublicAPICompactionDuringQueries compacts while concurrent queries
// hammer the engine: answers must stay correct throughout (the old read state
// drains before its descriptor closes) and the log must end up empty. Run
// with -race this doubles as the swap/drain data-race regression test.
func TestPublicAPICompactionDuringQueries(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 14)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 30, path)

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer closeIndex()
	from := engine.Hubs().Hubs()[0]
	if _, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: from, To: 250}}}); err != nil {
		t.Fatal(err)
	}
	const probes = 16
	expected := make([]Vector, probes)
	for q := 0; q < probes; q++ {
		res, err := engine.Query(NodeID(q), DefaultStop())
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = res.Estimate
	}

	stop := make(chan struct{})
	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := w; ; q = (q + 1) % probes {
				select {
				case <-stop:
					return
				default:
				}
				res, err := engine.Query(NodeID(q), DefaultStop())
				if err != nil {
					errc <- err
					return
				}
				if d := res.Estimate.L1Distance(expected[q]); d > 1e-12 {
					errc <- fmt.Errorf("query %d drifted by %v during compaction", q, d)
					return
				}
			}
		}(w)
	}

	res := compactIndex(t, engine)
	if res.LogRecordsFolded == 0 {
		t.Error("compaction under load should have folded the update log")
	}
	ds := durabilityOf(t, engine)
	if ds.LogRecords != 0 || ds.LogBytes > 24 /* bare header */ || ds.OverlayHubs != 0 {
		t.Errorf("log not shrunk to empty under concurrent queries: %+v", ds)
	}

	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestPublicAPIClosedDiskIndex: after the close function runs, queries must
// fail with ErrClosed instead of reading a closed descriptor or serving stale
// overlay hits.
func TestPublicAPIClosedDiskIndex(t *testing.T) {
	g := buildTestGraph(t, 200, 3, 15)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 20, path)

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 20}, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Query(0, DefaultStop()); err != nil {
		t.Fatalf("query before close: %v", err)
	}
	if err := closeIndex(); err != nil {
		t.Fatal(err)
	}
	if err := closeIndex(); err != nil {
		t.Errorf("second close should be a no-op, got %v", err)
	}
	if _, err := engine.Query(0, DefaultStop()); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close = %v, want ErrClosed", err)
	}
	if _, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: 0, To: 1}}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("update after close = %v, want ErrClosed", err)
	}
}

// TestPublicAPIPrecomputeFailureLeavesNoIndexFile: the close function of a
// never-precomputed disk engine must discard the temporary file instead of
// publishing a partial index.
func TestPublicAPIPrecomputeFailureLeavesNoIndexFile(t *testing.T) {
	g := buildTestGraph(t, 100, 3, 16)
	path := filepath.Join(t.TempDir(), "index.ppv")
	_, closeIndex, err := NewWithDiskIndex(g, Options{NumHubs: 10}, path)
	if err != nil {
		t.Fatal(err)
	}
	// Precompute never ran (standing in for a failed one).
	if err := closeIndex(); err != nil {
		t.Fatalf("close without precompute: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("index file published without a successful Precompute (err=%v)", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temporary file left behind (err=%v)", err)
	}
}

// nonHubNode returns a node of g that is not one of e's hubs.
func nonHubNode(t testing.TB, e *Engine, from NodeID) NodeID {
	t.Helper()
	for n := from; int(n) < e.Graph().NumNodes(); n++ {
		if !e.Hubs().Contains(n) {
			return n
		}
	}
	t.Fatal("no non-hub node found")
	return 0
}

// TestPublicAPIGraphMutationDurability is the graph half of restart
// durability: a daemon restart reloads the original -graph file, so without
// the graph-mutation log every answer computed on the fly (non-hub queries in
// particular) silently reverts even though the updated hub PPVs replay from
// the update log. Reopening against the ORIGINAL graph must serve the
// post-update answers, at the post-update epoch.
func TestPublicAPIGraphMutationDurability(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 23)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 30, path)

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.Epoch(); got != 0 {
		t.Fatalf("fresh index at epoch %d, want 0", got)
	}
	// An edge between two non-hub nodes: the graph changes in a way only the
	// mutation log can preserve.
	from := nonHubNode(t, engine, 200)
	to := nonHubNode(t, engine, from+1)
	if _, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: from, To: to}}}); err != nil {
		t.Fatal(err)
	}
	if got := engine.Epoch(); got != 1 {
		t.Fatalf("epoch after one update = %d, want 1", got)
	}
	// Iteration 0 of a non-hub query is its prime PPV computed on the fly —
	// a pure function of the served graph, so it detects a reverted graph.
	rootOnly := StopCondition{MaxIterations: 0}
	after, err := engine.Query(from, rootOnly)
	if err != nil {
		t.Fatal(err)
	}
	ds := durabilityOf(t, engine)
	if !ds.GraphLogEnabled || ds.GraphLogRecords != 1 {
		t.Fatalf("durability stats %+v, want one graph-log record", ds)
	}
	if err := closeIndex(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path + ".graphlog"); err != nil || st.Size() == 0 {
		t.Fatalf("graph-mutation log missing or empty after close: %v", err)
	}

	// "Restart": reopen against the ORIGINAL graph, as a restarted daemon
	// does. The replayed mutation must reproduce the post-update answer.
	engine2, closeIndex2, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatalf("OpenDiskIndex after restart: %v", err)
	}
	if got := engine2.Epoch(); got != 1 {
		t.Errorf("epoch after replay = %d, want 1", got)
	}
	res2, err := engine2.Query(from, rootOnly)
	if err != nil {
		t.Fatal(err)
	}
	if d := res2.Estimate.L1Distance(after.Estimate); d > 1e-12 {
		t.Errorf("post-restart PPV differs from pre-restart one by %v: the graph reverted", d)
	}
	if err := closeIndex2(); err != nil {
		t.Fatal(err)
	}

	// Control: with the graph log disabled the same reopen reverts to the
	// original graph — proving the assertion above is load-bearing.
	engine3, closeIndex3, err := OpenDiskIndexWithOptions(g, Options{NumHubs: 30}, path,
		DiskIndexOptions{BlockCacheBytes: 8 << 20, DisableGraphLog: true})
	if err != nil {
		t.Fatal(err)
	}
	defer closeIndex3()
	if got := engine3.Epoch(); got != 0 {
		t.Errorf("epoch without graph log = %d, want 0", got)
	}
	res3, err := engine3.Query(from, rootOnly)
	if err != nil {
		t.Fatal(err)
	}
	if d := res3.Estimate.L1Distance(after.Estimate); d == 0 {
		t.Error("reopen without the graph log still served the updated graph; the durability test proves nothing")
	}
}

// TestPublicAPIGraphLogTornTailReplay mirrors the update-log torn-tail suite
// at the public API: a crash mid-append of the second batch must replay
// cleanly up to the first batch — graph and epoch from before the torn batch.
func TestPublicAPIGraphLogTornTailReplay(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 29)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 30, path)

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Both batches rewire the same non-hub node's out-edges, so its
	// iteration-0 PPV distinguishes every prefix of the batch sequence.
	u := nonHubNode(t, engine, 150)
	v1 := nonHubNode(t, engine, u+1)
	v2 := nonHubNode(t, engine, v1+1)
	rootOnly := StopCondition{MaxIterations: 0}
	if _, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: u, To: v1}}}); err != nil {
		t.Fatal(err)
	}
	afterFirst, err := engine.Query(u, rootOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: u, To: v2}}}); err != nil {
		t.Fatal(err)
	}
	afterSecond, err := engine.Query(u, rootOnly)
	if err != nil {
		t.Fatal(err)
	}
	if afterFirst.Estimate.L1Distance(afterSecond.Estimate) == 0 {
		t.Fatal("the two batches are indistinguishable; the torn-tail test proves nothing")
	}
	if err := closeIndex(); err != nil {
		t.Fatal(err)
	}

	// Tear the second batch's frame: chop a few bytes off the log tail.
	logPath := path + ".graphlog"
	st, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, st.Size()-4); err != nil {
		t.Fatal(err)
	}

	engine2, closeIndex2, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 8<<20)
	if err != nil {
		t.Fatalf("OpenDiskIndex with a torn graph log: %v", err)
	}
	defer closeIndex2()
	if got := engine2.Epoch(); got != 1 {
		t.Errorf("epoch after torn-tail replay = %d, want 1 (the complete batch only)", got)
	}
	ds := durabilityOf(t, engine2)
	if ds.GraphLogRecords != 1 {
		t.Errorf("graph log reports %d records after truncation, want 1", ds.GraphLogRecords)
	}
	res, err := engine2.Query(u, rootOnly)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Estimate.L1Distance(afterFirst.Estimate); d > 1e-12 {
		t.Errorf("torn-tail replay differs from the first batch's state by %v", d)
	}
}

// TestPublicAPIRebuildPreservesOrDiscardsLog: an aborted rebuild must leave
// the old index and its durable updates (the log) fully intact, while a
// completed rebuild must not let the old log replay onto the fresh index.
func TestPublicAPIRebuildPreservesOrDiscardsLog(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 17)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 30, path)

	engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 30}, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	from := engine.Hubs().Hubs()[0]
	ustats, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: from, To: 250}}})
	if err != nil {
		t.Fatal(err)
	}
	after, err := engine.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if err := closeIndex(); err != nil {
		t.Fatal(err)
	}
	g2 := graphWithEdge(t, g, Edge{From: from, To: 250})

	// A rebuild that never completes (Precompute failed / crashed) must not
	// have touched the published index or its log.
	_, closeAborted, err := NewWithDiskIndex(g2, Options{NumHubs: 30}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := closeAborted(); err != nil {
		t.Fatal(err)
	}
	engine2, closeIndex2, err := OpenDiskIndex(g2, Options{NumHubs: 30}, path, 0)
	if err != nil {
		t.Fatalf("OpenDiskIndex after an aborted rebuild: %v", err)
	}
	ds := durabilityOf(t, engine2)
	if ds.OverlayHubs != ustats.AffectedHubs {
		t.Errorf("aborted rebuild lost the durable updates: %+v, want %d overlay hubs", ds, ustats.AffectedHubs)
	}
	res2, err := engine2.Query(from, DefaultStop())
	if err != nil {
		t.Fatal(err)
	}
	if d := res2.Estimate.L1Distance(after.Estimate); d > 1e-12 {
		t.Errorf("aborted rebuild changed the answer by %v", d)
	}
	if err := closeIndex2(); err != nil {
		t.Fatal(err)
	}

	// A completed rebuild starts from a clean slate: no stale overlay.
	rebuilt, closeRebuilt, err := NewWithDiskIndex(g2, Options{NumHubs: 30}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Precompute(); err != nil {
		t.Fatal(err)
	}
	if err := closeRebuilt(); err != nil {
		t.Fatal(err)
	}
	engine3, closeIndex3, err := OpenDiskIndex(g2, Options{NumHubs: 30}, path, 0)
	if err != nil {
		t.Fatalf("OpenDiskIndex after a completed rebuild: %v", err)
	}
	defer closeIndex3()
	ds3 := durabilityOf(t, engine3)
	if ds3.OverlayHubs != 0 || ds3.LogRecords != 0 {
		t.Errorf("completed rebuild should discard the old log, got %+v", ds3)
	}
}

// TestPublicAPIShardedDiskIndex builds per-shard disk indexes, reopens each
// as a sharded serving engine, and checks that the partition covers the
// single-node hub set exactly once and warming loads blocks into the cache.
func TestPublicAPIShardedDiskIndex(t *testing.T) {
	g := buildTestGraph(t, 900, 5, 31)
	dir := t.TempDir()

	full, err := New(g, Options{NumHubs: 80})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Precompute(); err != nil {
		t.Fatal(err)
	}

	const shards = 2
	totalOwned := 0
	for s := 0; s < shards; s++ {
		opts := Options{NumHubs: 80, Partition: Partition{Shard: s, Shards: shards}}
		path := filepath.Join(dir, fmt.Sprintf("shard%d.ppv", s))
		build, closeBuild, err := NewWithDiskIndex(g, opts, path)
		if err != nil {
			t.Fatal(err)
		}
		if err := build.Precompute(); err != nil {
			t.Fatal(err)
		}
		if err := closeBuild(); err != nil {
			t.Fatal(err)
		}

		engine, closeIdx, err := OpenDiskIndex(g, opts, path, 1<<20)
		if err != nil {
			t.Fatalf("opening shard %d: %v", s, err)
		}
		if got, want := engine.Hubs().Size(), full.Hubs().Size(); got != want {
			t.Errorf("shard %d recovered %d hubs, want the full set of %d", s, got, want)
		}
		owned := engine.Index().Len()
		totalOwned += owned

		// Warming through the block cache: every owned hub should land.
		type warmer interface{ WarmHubs(hubs []NodeID) int }
		w, ok := engine.Index().(warmer)
		if !ok {
			t.Fatalf("disk store does not support warming")
		}
		if warmed := w.WarmHubs(engine.Index().Hubs()); warmed != owned {
			t.Errorf("shard %d warmed %d of %d owned hubs", s, warmed, owned)
		}

		// A partial expansion over a foreign hub is refused.
		var foreign NodeID = -1
		for _, h := range full.Hubs().Hubs() {
			if !opts.Partition.Owns(h) {
				foreign = h
				break
			}
		}
		if foreign >= 0 {
			part, err := engine.PartialExpand(map[NodeID]float64{foreign: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if len(part.Unowned) != 1 {
				t.Errorf("shard %d expanded foreign hub %d", s, foreign)
			}
		}

		// Opening as the wrong shard must fail.
		wrong := opts
		wrong.Partition.Shard = (s + 1) % shards
		if e2, c2, err := OpenDiskIndex(g, wrong, path, -1); err == nil {
			_ = e2
			c2()
			t.Errorf("opening shard %d index as shard %d should fail", s, wrong.Partition.Shard)
		}
		if err := closeIdx(); err != nil {
			t.Fatal(err)
		}
	}
	if totalOwned != full.Index().Len() {
		t.Errorf("shards own %d hubs in total, full index has %d", totalOwned, full.Index().Len())
	}
}
