// pool.go holds the pooled per-query working set of the online hot loop.
// Every query needs two accumulators (running estimate + per-step increment)
// and two frontier slices (current + next); recycling them via sync.Pool
// means a steady-state serving workload runs the scheduled-approximation loop
// without allocating per query. The pool hands out whole bundles, not
// individual buffers, so a query can never mix generations.
package core

import (
	"sync"
	"sync/atomic"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// frontierEntry is one border hub of the next iteration with its prefix
// reachability weight (Theorem 4). Frontiers are kept as slices sorted by
// ascending hub id — they are built by scanning the (sorted) increment
// entries, so the deterministic expansion order of Step comes for free,
// without the per-iteration map+sort of the old path.
type frontierEntry struct {
	hub    graph.NodeID
	prefix float64
}

// queryBufs is the reusable working set of one in-flight query.
type queryBufs struct {
	acc          sparse.Accumulator // running estimate
	inc          sparse.Accumulator // per-step increment
	frontier     []frontierEntry
	nextFrontier []frontierEntry
}

func (b *queryBufs) reset() {
	b.acc.Reset()
	b.inc.Reset()
	b.frontier = b.frontier[:0]
	b.nextFrontier = b.nextFrontier[:0]
}

var (
	queryBufPool sync.Pool
	poolGets     atomic.Int64
	poolHits     atomic.Int64
)

// getQueryBufs takes a buffer bundle from the pool (counting hit/miss so
// /metrics can expose the steady-state reuse rate). Bundles are reset on the
// way in (putQueryBufs), so pooled ones are ready to use as-is.
func getQueryBufs() *queryBufs {
	poolGets.Add(1)
	if v := queryBufPool.Get(); v != nil {
		poolHits.Add(1)
		return v.(*queryBufs)
	}
	return &queryBufs{}
}

// putQueryBufs resets a bundle and returns it to the pool. Resetting at Put
// time (not after Get) drops the bundle's references to query state before it
// sits in the pool, so the GC can reclaim what the buffers pointed at. The
// caller must not retain any slice or view of it afterwards; boundary results
// (Result.Estimate, PartialIncrement) are always materialized copies, never
// pooled storage.
func putQueryBufs(b *queryBufs) {
	if b != nil {
		b.reset()
		queryBufPool.Put(b)
	}
}

// PoolStats reports the cumulative query-buffer pool behaviour of this
// process: Gets counts bundle acquisitions, Hits the acquisitions served by
// reuse instead of a fresh allocation.
type PoolStats struct {
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
}

// HitRate returns Hits/Gets, or 0 before any query ran. Under a steady
// serving workload it converges to ~1; a sustained drop signals queries
// leaking bundles (missing Close) or churn exceeding the pool's retention.
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// QueryPoolStats returns the process-wide pool counters.
func QueryPoolStats() PoolStats {
	return PoolStats{Gets: poolGets.Load(), Hits: poolHits.Load()}
}
