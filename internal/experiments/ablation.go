package experiments

import (
	"time"

	"fastppv/internal/core"
	"fastppv/internal/metrics"
	"fastppv/internal/workload"
)

// AblationResult compares a FastPPV variant against the paper's default
// configuration on one dataset.
type AblationResult struct {
	Dataset      DatasetName
	Variant      string
	Accuracy     metrics.Report
	AvgQueryTime time.Duration
	OfflineTime  time.Duration
	OfflineBytes int64
}

// ablationVariant describes one knob setting to evaluate.
type ablationVariant struct {
	name string
	opts core.Options
}

// Ablations evaluates the design choices called out in DESIGN.md §4 that are
// not already covered by a paper figure:
//
//   - the delta border-hub prune of Algorithm 2 (on at the paper's default vs
//     disabled),
//   - the 1e-4 storage clip of the offline index (on vs disabled),
//   - random hub selection (the policy the paper dismisses without numbers).
//
// All variants share the dataset, workload, hub count and eta, so any
// difference is attributable to the knob under study.
func Ablations(scale Scale) ([]AblationResult, error) {
	variants := []ablationVariant{
		{name: "default (delta=0.005, clip=1e-4)", opts: core.Options{}},
		{name: "no delta prune", opts: core.Options{Delta: -1}},
		{name: "no storage clip", opts: core.Options{Clip: -1}},
		{name: "no delta, no clip", opts: core.Options{Delta: -1, Clip: -1}},
	}
	var out []AblationResult
	for _, name := range []DatasetName{DBLP, LiveJournal} {
		d, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			res, err := runFastPPV(d, FastPPVConfig{
				NumHubs:    d.DefaultHubs(),
				Iterations: core.DefaultIterations,
				Options:    v.opts,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, AblationResult{
				Dataset:      name,
				Variant:      v.name,
				Accuracy:     res.Accuracy,
				AvgQueryTime: res.AvgQueryTime,
				OfflineTime:  res.OfflineTime,
				OfflineBytes: res.OfflineBytes,
			})
		}
	}
	return out, nil
}

// AblationTable renders the ablation results.
func AblationTable(results []AblationResult) *workload.Table {
	t := workload.NewTable(
		"Ablations — delta prune and storage clip",
		"Dataset", "Variant", "Kendall", "Precision", "L1 similarity", "Online ms/query", "Index MB", "Offline s")
	for _, r := range results {
		t.AddRow(string(r.Dataset), r.Variant,
			r.Accuracy.KendallTau, r.Accuracy.Precision, r.Accuracy.L1Similarity,
			float64(r.AvgQueryTime.Microseconds())/1000.0,
			float64(r.OfflineBytes)/(1<<20),
			r.OfflineTime.Seconds())
	}
	return t
}
