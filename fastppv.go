// Package fastppv is the public API of the FastPPV reproduction: incremental
// and accuracy-aware Personalized PageRank through scheduled approximation
// (Zhu, Fang, Chang, Ying — PVLDB 6(6), 2013).
//
// The package exposes the building blocks a downstream application needs:
//
//   - building or loading a graph (Builder, LoadEdgeList, LoadBinary),
//   - creating an Engine and precomputing its hub index (New, Engine.Precompute),
//   - answering online queries with a configurable accuracy/time trade-off
//     (Engine.Query, Engine.NewQuery with per-iteration stepping),
//   - ground truth and accuracy metrics for evaluation (ExactPPV, Evaluate),
//   - maintaining the index as the graph changes (Engine.ApplyUpdate).
//
// The heavy lifting lives in the internal packages; the exported identifiers
// here are thin aliases and wrappers so that application code only ever
// imports "fastppv".
//
// A minimal end-to-end use:
//
//	b := fastppv.NewBuilder(true)
//	// ... add nodes and edges ...
//	g := b.Finalize()
//	engine, err := fastppv.New(g, fastppv.Options{NumHubs: 1000})
//	if err != nil { ... }
//	if err := engine.Precompute(); err != nil { ... }
//	res, err := engine.Query(q, fastppv.StopCondition{MaxIterations: 2})
//	for _, e := range res.TopK(10) {
//		fmt.Println(e.Node, e.Score)
//	}
package fastppv

import (
	"io"

	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/metrics"
	"fastppv/internal/pagerank"
	"fastppv/internal/ppvindex"
	"fastppv/internal/sparse"
)

// Graph types.
type (
	// NodeID identifies a node: a dense index in [0, Graph.NumNodes()).
	NodeID = graph.NodeID
	// Edge is a directed edge (or one orientation of an undirected edge).
	Edge = graph.Edge
	// Graph is an immutable graph in CSR layout; build one with a Builder or
	// the Load functions.
	Graph = graph.Graph
	// Builder accumulates nodes and edges and produces a Graph.
	Builder = graph.Builder
)

// Engine types.
type (
	// Options configure an Engine (teleport probability, hub count and
	// policy, pruning thresholds). The zero value reproduces the paper's
	// defaults with an automatically chosen hub count.
	Options = core.Options
	// Engine is a FastPPV instance: offline Precompute, then online Query.
	Engine = core.Engine
	// StopCondition controls when online query processing stops (number of
	// iterations eta, target L1 error, or time limit).
	StopCondition = core.StopCondition
	// Result is the outcome of a query: the estimated PPV, the accuracy-aware
	// L1 error bound, and per-iteration statistics.
	Result = core.Result
	// QueryState is an in-progress incremental query; Step applies one more
	// PPV increment.
	QueryState = core.QueryState
	// IterationStat describes one online iteration.
	IterationStat = core.IterationStat
	// OfflineStats summarizes offline precomputation cost.
	OfflineStats = core.OfflineStats
	// GraphUpdate is a batch of edge insertions/deletions for ApplyUpdate.
	GraphUpdate = core.GraphUpdate
	// UpdateStats reports the cost of an incremental index update.
	UpdateStats = core.UpdateStats
)

// Vector types.
type (
	// Vector is a sparse score vector indexed by node.
	Vector = sparse.Vector
	// Entry is a (node, score) pair of a ranked result.
	Entry = sparse.Entry
)

// AccuracyReport bundles the four accuracy metrics of the paper's evaluation.
type AccuracyReport = metrics.Report

// InvalidNode is returned by lookups that find no node.
const InvalidNode = graph.InvalidNode

// DefaultAlpha is the teleporting probability used throughout the paper.
const DefaultAlpha = pagerank.DefaultAlpha

// NewBuilder returns a Builder for a directed (true) or undirected (false)
// graph.
func NewBuilder(directed bool) *Builder { return graph.NewBuilder(directed) }

// FromEdges builds a graph directly from an edge list over numNodes nodes.
func FromEdges(numNodes int, directed bool, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numNodes, directed, edges)
}

// LoadEdgeList parses a text edge-list (optionally with a "nodes <n>
// directed|undirected" header).
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// LoadEdgeListFile reads a text edge-list file from disk.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// SaveEdgeListFile writes a graph as a text edge-list file.
func SaveEdgeListFile(path string, g *Graph) error { return graph.SaveEdgeListFile(path, g) }

// LoadBinaryFile reads a graph in the compact binary format.
func LoadBinaryFile(path string) (*Graph, error) { return graph.LoadBinaryFile(path) }

// SaveBinaryFile writes a graph in the compact binary format.
func SaveBinaryFile(path string, g *Graph) error { return graph.SaveBinaryFile(path, g) }

// New creates a FastPPV engine over g with an in-memory PPV index. Call
// Precompute before Query.
func New(g *Graph, opts Options) (*Engine, error) { return core.NewEngine(g, nil, opts) }

// NewWithDiskIndex creates a FastPPV engine whose hub prime PPVs are written
// to (and later read from) the index file at path, for deployments where the
// index should not live in memory. The returned close function releases the
// file handles and must be called when the engine is no longer needed.
func NewWithDiskIndex(g *Graph, opts Options, path string) (*Engine, func() error, error) {
	store, err := newDiskStore(path)
	if err != nil {
		return nil, nil, err
	}
	engine, err := core.NewEngine(g, store, opts)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return engine, store.Close, nil
}

// DefaultStop returns the paper's default stopping condition (eta = 2).
func DefaultStop() StopCondition { return core.DefaultStop() }

// ExactPPV computes the exact Personalized PageRank Vector of q on g by power
// iteration. It is the ground truth oracle; use Engine.Query for fast
// approximate answers.
func ExactPPV(g *Graph, q NodeID, alpha float64) (Vector, error) {
	return pagerank.ExactPPV(g, q, pagerank.Options{Alpha: alpha})
}

// GlobalPageRank computes the global (non-personalized) PageRank of every
// node; it is the popularity signal used by hub selection.
func GlobalPageRank(g *Graph, alpha float64) ([]float64, error) {
	return pagerank.Global(g, pagerank.Options{Alpha: alpha})
}

// Evaluate scores an approximate PPV against the exact one at ranking depth
// k, returning the paper's four accuracy metrics.
func Evaluate(exact, approx Vector, k int) AccuracyReport {
	return metrics.Evaluate(exact, approx, k)
}

// diskStore adapts the disk index writer/reader pair to the engine's
// IndexStore interface: Put streams to the writer and Get reopens the index
// lazily after the first read.
type diskStore struct {
	path   string
	writer *ppvindex.DiskWriter
	reader *ppvindex.DiskIndex
}

func newDiskStore(path string) (*diskStore, error) {
	w, err := ppvindex.CreateDisk(path)
	if err != nil {
		return nil, err
	}
	return &diskStore{path: path, writer: w}, nil
}

func (s *diskStore) Put(h NodeID, ppv Vector) error {
	if s.writer == nil {
		return errReadOnlyIndex
	}
	return s.writer.Put(h, ppv)
}

func (s *diskStore) Get(h NodeID) (Vector, bool, error) {
	if err := s.ensureReader(); err != nil {
		return nil, false, err
	}
	return s.reader.Get(h)
}

func (s *diskStore) Has(h NodeID) bool {
	if err := s.ensureReader(); err != nil {
		return false
	}
	return s.reader.Has(h)
}

func (s *diskStore) Hubs() []NodeID {
	if err := s.ensureReader(); err != nil {
		return nil
	}
	return s.reader.Hubs()
}

func (s *diskStore) Len() int {
	if err := s.ensureReader(); err != nil {
		return 0
	}
	return s.reader.Len()
}

func (s *diskStore) SizeBytes() int64 {
	if err := s.ensureReader(); err != nil {
		return 0
	}
	return s.reader.SizeBytes()
}

// ensureReader finalizes the writer (if still open) and opens the index for
// reading.
func (s *diskStore) ensureReader() error {
	if s.reader != nil {
		return nil
	}
	if s.writer != nil {
		if err := s.writer.Close(); err != nil {
			return err
		}
		s.writer = nil
	}
	r, err := ppvindex.OpenDisk(s.path)
	if err != nil {
		return err
	}
	s.reader = r
	return nil
}

// Close releases the underlying file handles.
func (s *diskStore) Close() error {
	if s.writer != nil {
		if err := s.writer.Close(); err != nil {
			return err
		}
		s.writer = nil
	}
	if s.reader != nil {
		err := s.reader.Close()
		s.reader = nil
		return err
	}
	return nil
}

var errReadOnlyIndex = errReadOnly{}

type errReadOnly struct{}

func (errReadOnly) Error() string { return "fastppv: disk index already finalized for reading" }
