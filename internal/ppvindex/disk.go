package ppvindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// Disk layout (little endian):
//
//	records (one per hub, written first, streamed in Put order):
//	  hub    uint32
//	  count  uint32
//	  count * { node uint32, score float64 }
//	directory (hubs entries, appended after the last record):
//	  hub    uint32
//	  offset uint64   byte offset of the hub's record from the file start
//	footer (the final 16 bytes of the file):
//	  magic    uint32 'F','P','I','1'
//	  hubs     uint32
//	  dirStart uint64  byte offset of the directory
//
// Records come first so that DiskWriter can stream an index larger than RAM
// in one pass, buffering only the 12-byte-per-hub directory; Close appends
// the directory and the footer. OpenDisk reads the footer, then the
// directory, and keeps the directory in memory; each Get performs a single
// positioned read of the record, which models the "one random access to the
// disk" per fetched hub of Sect. 6.3.1.
const diskMagic = uint32('F') | uint32('P')<<8 | uint32('I')<<16 | uint32('1')<<24

// ErrBadIndexFormat reports a corrupt or foreign index file.
var ErrBadIndexFormat = errors.New("ppvindex: bad index file format")

// ErrIndexClosed reports a record read against a DiskIndex whose Close has
// run. Readers that hold a retired index (one swapped out by a compaction)
// see it and retry against the current one.
var ErrIndexClosed = errors.New("ppvindex: disk index is closed")

// DiskWriter streams prime PPVs into an index file. It buffers only the
// directory in memory, so precomputing indexes much larger than RAM is
// possible. Entries must be written with Put and the writer must be closed to
// finalize the directory.
//
// The writer streams into <path>.tmp and Close atomically renames the
// finished file into place, so a crash mid-precompute can never leave a
// partial (or partially overwritten) file at the final path: readers either
// see the complete old index, the complete new one, or no file at all.
type DiskWriter struct {
	f       *os.File
	w       *bufio.Writer
	path    string // final path, populated by the Close rename
	tmpPath string // where records actually stream
	offset  uint64
	entries []dirEntry
	seen    map[graph.NodeID]struct{}
	closed  bool
}

type dirEntry struct {
	hub    graph.NodeID
	offset uint64
}

// CreateDisk creates an index file for writing. Records stream into
// <path>.tmp; the file appears at path only when Close succeeds.
func CreateDisk(path string) (*DiskWriter, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	return &DiskWriter{
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<20),
		path:    path,
		tmpPath: tmp,
		seen:    make(map[graph.NodeID]struct{}),
	}, nil
}

// encodeRecord serializes one hub record in the shared binary layout (hub,
// count, count x {node, score}), entries in ascending node order for
// determinism. The disk index records and the update-log payloads use the
// same encoding.
func encodeRecord(h graph.NodeID, ppv sparse.Vector) []byte {
	nodes := make([]graph.NodeID, 0, len(ppv))
	for n := range ppv {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	buf := make([]byte, 8+len(nodes)*entryBytes)
	binary.LittleEndian.PutUint32(buf[0:], uint32(h))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(nodes)))
	at := 8
	for _, n := range nodes {
		binary.LittleEndian.PutUint32(buf[at:], uint32(n))
		binary.LittleEndian.PutUint64(buf[at+4:], math.Float64bits(ppv[n]))
		at += entryBytes
	}
	return buf
}

// decodeRecordPayload parses a buffer produced by encodeRecord. The declared
// entry count must exactly cover the buffer, otherwise the payload is corrupt.
func decodeRecordPayload(buf []byte) (graph.NodeID, sparse.Vector, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("%w: record payload of %d bytes is shorter than its header", ErrBadIndexFormat, len(buf))
	}
	h := graph.NodeID(binary.LittleEndian.Uint32(buf[0:]))
	count := int(binary.LittleEndian.Uint32(buf[4:]))
	if count < 0 || 8+count*entryBytes != len(buf) {
		return 0, nil, fmt.Errorf("%w: record of hub %d claims %d entries in a %d-byte payload", ErrBadIndexFormat, h, count, len(buf))
	}
	v := sparse.New(count)
	for i := 0; i < count; i++ {
		node := graph.NodeID(binary.LittleEndian.Uint32(buf[8+i*entryBytes:]))
		score := math.Float64frombits(binary.LittleEndian.Uint64(buf[8+i*entryBytes+4:]))
		v[node] = score
	}
	return h, v, nil
}

// Put appends the prime PPV of hub h to the index file. Entries are written
// in node order for determinism. A hub may be written only once: a duplicate
// would produce a file whose directory OpenDisk rejects as corrupt, so the
// mistake is reported here, at write time, instead.
func (d *DiskWriter) Put(h graph.NodeID, ppv sparse.Vector) error {
	if d.closed {
		return errors.New("ppvindex: Put on closed DiskWriter")
	}
	if _, dup := d.seen[h]; dup {
		return fmt.Errorf("ppvindex: duplicate Put of hub %d (each hub may be written once)", h)
	}
	d.seen[h] = struct{}{}
	d.entries = append(d.entries, dirEntry{hub: h, offset: d.offset})

	buf := encodeRecord(h, ppv)
	if _, err := d.w.Write(buf); err != nil {
		return err
	}
	d.offset += uint64(len(buf))
	return nil
}

// Close finalizes the index: it flushes the records, appends the directory
// and the footer, fsyncs, and atomically renames <path>.tmp into place. On
// error the temporary file is removed, so no partial index is ever published.
// The writer cannot be used afterwards.
func (d *DiskWriter) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	fail := func(err error) error {
		d.f.Close()
		os.Remove(d.tmpPath)
		return err
	}
	if err := d.w.Flush(); err != nil {
		return fail(err)
	}
	// Records were written from the start of the file; now append the
	// directory and finish with a footer pointing at it.
	dirStart := d.offset
	dirBuf := make([]byte, len(d.entries)*12)
	for i, e := range d.entries {
		binary.LittleEndian.PutUint32(dirBuf[i*12:], uint32(e.hub))
		binary.LittleEndian.PutUint64(dirBuf[i*12+4:], e.offset)
	}
	if _, err := d.f.Write(dirBuf); err != nil {
		return fail(err)
	}
	footer := make([]byte, 16)
	binary.LittleEndian.PutUint32(footer[0:], diskMagic)
	binary.LittleEndian.PutUint32(footer[4:], uint32(len(d.entries)))
	binary.LittleEndian.PutUint64(footer[8:], dirStart)
	if _, err := d.f.Write(footer); err != nil {
		return fail(err)
	}
	if err := d.f.Sync(); err != nil {
		return fail(err)
	}
	if err := d.f.Close(); err != nil {
		os.Remove(d.tmpPath)
		return err
	}
	if err := os.Rename(d.tmpPath, d.path); err != nil {
		os.Remove(d.tmpPath)
		return err
	}
	// Fsync the parent directory so the rename itself is durable before the
	// caller takes any dependent step (compaction resets the update log right
	// after this; a power loss must not surface the log reset without the
	// rename, or the folded updates would be lost with the old base).
	return syncDir(filepath.Dir(d.path))
}

// syncDir fsyncs a directory, making previously performed renames in it
// durable. Filesystems that cannot sync a directory handle are ignored.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	if err := df.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// Abort discards the writer without publishing anything: the temporary file
// is removed and the final path is left untouched. Calling Abort after a
// successful Close is a no-op.
func (d *DiskWriter) Abort() error {
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.f.Close()
	if rmErr := os.Remove(d.tmpPath); err == nil {
		err = rmErr
	}
	return err
}

// DiskIndex is a read-only disk-backed PPV index. It is safe for concurrent
// use: the directory is immutable after OpenDisk and reads use positioned I/O
// on a shared file descriptor, or direct slicing of the mapping in mmap mode.
type DiskIndex struct {
	f         *os.File
	directory map[graph.NodeID]uint64
	hubs      []graph.NodeID
	size      int64
	// data is the read-only memory mapping of the whole file when the index
	// was opened with DiskOptions.Mmap and the platform supports it; nil in
	// pread mode. With a mapping, Get decodes straight out of it and GetView
	// returns record views aliasing it with zero copies.
	data []byte
	// recordsEnd is the first byte past the record region (the directory
	// start); every record, header and payload, must fit below it.
	recordsEnd int64
	// reads counts the number of record fetches, modelling random disk
	// accesses during online query processing. Atomic: Get is the hot path
	// of every cache-missing hub expansion and must not serialize on a lock.
	reads atomic.Int64
	// closed flips when Close runs; inflight counts record reads (and
	// outstanding mmap views) in progress, which Close drains before
	// releasing the descriptor and mapping, so no positioned read or view
	// dereference ever races the close. Both are only touched on the
	// record-read path, never on directory-only lookups.
	closed   atomic.Bool
	inflight atomic.Int64
	// release is unpin bound once at open: handing a method value to every
	// mmap view would allocate a fresh closure per GetView on the hot path.
	release func()
}

// DiskOptions configures how an index file is opened for reading.
type DiskOptions struct {
	// Mmap memory-maps the index file and serves records as zero-copy views
	// over the mapping. When the platform or the mapping call does not
	// cooperate, the index silently falls back to positioned reads; check
	// MmapActive to see which mode is live.
	Mmap bool
}

// OpenDisk opens an index file written by DiskWriter in positioned-read mode.
func OpenDisk(path string) (*DiskIndex, error) {
	return OpenDiskWithOptions(path, DiskOptions{})
}

// OpenDiskWithOptions opens an index file written by DiskWriter.
func OpenDiskWithOptions(path string, opts DiskOptions) (*DiskIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < 16 {
		f.Close()
		return nil, ErrBadIndexFormat
	}
	footer := make([]byte, 16)
	if _, err := f.ReadAt(footer, st.Size()-16); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(footer[0:]) != diskMagic {
		f.Close()
		return nil, ErrBadIndexFormat
	}
	hubCount := int(binary.LittleEndian.Uint32(footer[4:]))
	dirStart := int64(binary.LittleEndian.Uint64(footer[8:]))
	// Bounds-check with subtraction, not addition: dirStart comes from the
	// file and dirStart+hubCount*12 could wrap past MaxInt64, slipping a
	// crafted footer past the check and into a huge directory allocation.
	if dirStart < 0 || dirStart > st.Size()-16 || int64(hubCount)*12 > st.Size()-16-dirStart {
		f.Close()
		return nil, ErrBadIndexFormat
	}
	dirBuf := make([]byte, hubCount*12)
	if _, err := f.ReadAt(dirBuf, dirStart); err != nil {
		f.Close()
		return nil, err
	}
	idx := &DiskIndex{
		f:          f,
		directory:  make(map[graph.NodeID]uint64, hubCount),
		hubs:       make([]graph.NodeID, 0, hubCount),
		size:       st.Size(),
		recordsEnd: dirStart,
	}
	for i := 0; i < hubCount; i++ {
		h := graph.NodeID(binary.LittleEndian.Uint32(dirBuf[i*12:]))
		off := binary.LittleEndian.Uint64(dirBuf[i*12+4:])
		// Every record header must lie fully inside the record region; an
		// offset pointing past it (or wrapping negative) means the directory
		// is corrupt, and accepting it would turn Get into reads of the
		// directory/footer bytes reinterpreted as record data.
		if int64(off) < 0 || int64(off)+8 > dirStart {
			f.Close()
			return nil, fmt.Errorf("%w: directory offset %d of hub %d outside record region [0,%d)", ErrBadIndexFormat, off, h, dirStart)
		}
		if _, dup := idx.directory[h]; dup {
			f.Close()
			return nil, fmt.Errorf("%w: duplicate directory entry for hub %d", ErrBadIndexFormat, h)
		}
		idx.directory[h] = off
		idx.hubs = append(idx.hubs, h)
	}
	sort.Slice(idx.hubs, func(i, j int) bool { return idx.hubs[i] < idx.hubs[j] })
	if opts.Mmap {
		// Graceful fallback: a platform without mmap support (or a mapping
		// failure, e.g. vm limits) leaves a fully functional pread index.
		if data, merr := mmapFile(f, st.Size()); merr == nil {
			idx.data = data
			idx.release = idx.unpin
		}
	}
	return idx, nil
}

// MmapActive reports whether the index serves records from a memory mapping
// (false when opened without DiskOptions.Mmap or after mmap fallback).
func (d *DiskIndex) MmapActive() bool { return d.data != nil }

// Close releases the underlying file (and mapping, in mmap mode) after
// draining in-flight record reads and outstanding views: a Get or GetView
// that raised inflight before closed flipped completes against the still-open
// descriptor; one that observes closed afterwards backs off with
// ErrIndexClosed. Compaction relies on this drain to remap safely: the
// retired generation's mapping is only torn down once every view into it has
// been released. Closing twice is a no-op.
func (d *DiskIndex) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	for d.inflight.Load() > 0 {
		time.Sleep(50 * time.Microsecond)
	}
	if d.data != nil {
		data := d.data
		d.data = nil
		if err := munmapFile(data); err != nil {
			d.f.Close()
			return err
		}
	}
	return d.f.Close()
}

// pin registers a record read (or a handed-out mmap view) against Close's
// drain. It fails once the index is closed; a successful pin must be paired
// with exactly one unpin.
func (d *DiskIndex) pin() bool {
	d.inflight.Add(1)
	if d.closed.Load() {
		d.inflight.Add(-1)
		return false
	}
	return true
}

func (d *DiskIndex) unpin() { d.inflight.Add(-1) }

// readBuf holds the per-read scratch buffers of the pread path, pooled so the
// non-mmap fallback does not allocate a header and payload buffer per record.
type readBuf struct {
	header  [8]byte
	payload []byte
}

var readBufPool = sync.Pool{New: func() any { return new(readBuf) }}

// recordBounds validates the directory offset's record header for hub h and
// returns the payload offset and length. checkedHeader is the 8-byte header
// already read from offset off.
func (d *DiskIndex) recordBounds(h graph.NodeID, off uint64, header []byte) (int64, int, error) {
	if len(header) < 8 {
		return 0, 0, fmt.Errorf("%w: truncated record header for hub %d at offset %d", ErrBadIndexFormat, h, off)
	}
	storedHub := graph.NodeID(binary.LittleEndian.Uint32(header[0:]))
	count := int(binary.LittleEndian.Uint32(header[4:]))
	if storedHub != h {
		return 0, 0, fmt.Errorf("%w: record at offset %d is for hub %d, expected %d", ErrBadIndexFormat, off, storedHub, h)
	}
	if count < 0 || int64(off)+8+int64(count)*entryBytes > d.recordsEnd {
		return 0, 0, fmt.Errorf("%w: record of hub %d claims %d entries, overrunning the record region", ErrBadIndexFormat, h, count)
	}
	return int64(off) + 8, count * entryBytes, nil
}

// GetView returns a zero-copy view of the stored record of h. In mmap mode
// the view aliases the mapping and pins this index generation until Release;
// in pread mode the entries are read into a freshly owned buffer (callers
// that want pooling across reads should layer a BlockCache on top, which
// retains these buffers). Bounds and hub-id checks mirror Get, so a corrupt
// or truncated record surfaces as ErrBadIndexFormat rather than an
// out-of-bounds view.
func (d *DiskIndex) GetView(h graph.NodeID) (HubRecordView, bool, error) {
	off, ok := d.directory[h]
	if !ok {
		return HubRecordView{}, false, nil
	}
	if !d.pin() {
		return HubRecordView{}, false, ErrIndexClosed
	}
	if d.data != nil {
		payloadOff, payloadLen, err := d.recordBounds(h, off, d.data[off:off+8])
		if err != nil {
			d.unpin()
			return HubRecordView{}, false, err
		}
		d.reads.Add(1)
		// The pin transfers to the view; Release returns it.
		return NewHubRecordView(h, d.data[payloadOff:payloadOff+int64(payloadLen)], d.release), true, nil
	}
	defer d.unpin()
	rb := readBufPool.Get().(*readBuf)
	defer readBufPool.Put(rb)
	if _, err := d.f.ReadAt(rb.header[:], int64(off)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return HubRecordView{}, false, fmt.Errorf("%w: truncated record header of hub %d at offset %d", ErrBadIndexFormat, h, off)
		}
		return HubRecordView{}, false, err
	}
	payloadOff, payloadLen, err := d.recordBounds(h, off, rb.header[:])
	if err != nil {
		return HubRecordView{}, false, err
	}
	buf := make([]byte, payloadLen)
	if _, err := d.f.ReadAt(buf, payloadOff); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return HubRecordView{}, false, fmt.Errorf("%w: truncated record of hub %d at offset %d", ErrBadIndexFormat, h, off)
		}
		return HubRecordView{}, false, err
	}
	d.reads.Add(1)
	return NewHubRecordView(h, buf, nil), true, nil
}

// Get reads the prime PPV of h from disk. A record that does not fit inside
// the file's record region — a truncated file, or a corrupt count that would
// drive a huge allocation — fails with ErrBadIndexFormat instead of decoding
// zero-filled bytes into a silently wrong vector.
func (d *DiskIndex) Get(h graph.NodeID) (sparse.Vector, bool, error) {
	off, ok := d.directory[h]
	if !ok {
		return nil, false, nil
	}
	if !d.pin() {
		return nil, false, ErrIndexClosed
	}
	defer d.unpin()
	if d.data != nil {
		payloadOff, payloadLen, err := d.recordBounds(h, off, d.data[off:off+8])
		if err != nil {
			return nil, false, err
		}
		d.reads.Add(1)
		return decodeEntries(d.data[payloadOff : payloadOff+int64(payloadLen)]), true, nil
	}
	rb := readBufPool.Get().(*readBuf)
	defer readBufPool.Put(rb)
	if _, err := d.f.ReadAt(rb.header[:], int64(off)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, false, fmt.Errorf("%w: truncated record header of hub %d at offset %d", ErrBadIndexFormat, h, off)
		}
		return nil, false, err
	}
	payloadOff, payloadLen, err := d.recordBounds(h, off, rb.header[:])
	if err != nil {
		return nil, false, err
	}
	if cap(rb.payload) < payloadLen {
		rb.payload = make([]byte, payloadLen)
	}
	buf := rb.payload[:payloadLen]
	if _, err := d.f.ReadAt(buf, payloadOff); err != nil {
		// ReadAt returns a non-nil error on every short read; after the
		// bounds check above, any EOF here means the file shrank under us.
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, false, fmt.Errorf("%w: truncated record of hub %d at offset %d", ErrBadIndexFormat, h, off)
		}
		return nil, false, err
	}
	d.reads.Add(1)
	return decodeEntries(buf), true, nil
}

// decodeEntries materializes a flat encoded entry payload as a map Vector.
// The input is fully copied out, so pooled and mapped buffers never escape.
func decodeEntries(buf []byte) sparse.Vector {
	count := len(buf) / entryBytes
	v := sparse.New(count)
	for i := 0; i < count; i++ {
		node := graph.NodeID(binary.LittleEndian.Uint32(buf[i*entryBytes:]))
		score := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*entryBytes+4:]))
		v[node] = score
	}
	return v
}

// Has reports whether h is indexed.
func (d *DiskIndex) Has(h graph.NodeID) bool {
	_, ok := d.directory[h]
	return ok
}

// Hubs returns the indexed hubs in ascending order.
func (d *DiskIndex) Hubs() []graph.NodeID { return d.hubs }

// Len returns the number of indexed hubs.
func (d *DiskIndex) Len() int { return len(d.hubs) }

// SizeBytes returns the index file size.
func (d *DiskIndex) SizeBytes() int64 { return d.size }

// Reads returns the number of record fetches performed so far.
func (d *DiskIndex) Reads() int64 { return d.reads.Load() }
