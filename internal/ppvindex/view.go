package ppvindex

import (
	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// HubRecordView is a zero-copy read-only view of one hub's stored prime PPV:
// the record's entry payload in the flat 12-byte (node uint32, score float64)
// encoding, sorted by ascending node id. In mmap mode the view aliases the
// mapped file bytes directly; in pread mode (and for cache-retained views) it
// wraps an owned heap buffer. Either way no map is materialized — the query
// inner loop folds the entries straight into a sparse.Accumulator.
//
// Lifetime rules: a view is valid only for the index generation that produced
// it and must not outlive it. Views that alias an mmap'd index pin the
// mapping; callers must call Release exactly once, promptly, when done (a
// leaked view blocks that generation's Close, and with it compaction's swap).
// Release on a zero or unpinned view is a no-op. Views must be treated as
// immutable and must not be retained across calls that may close or compact
// the index.
type HubRecordView struct {
	hub     graph.NodeID
	data    []byte // len is a multiple of sparse.EncodedEntrySize
	release func()
}

// NewHubRecordView wraps an encoded entry payload as a view. The data slice
// is aliased, not copied; release (optional) is invoked by Release.
func NewHubRecordView(hub graph.NodeID, data []byte, release func()) HubRecordView {
	return HubRecordView{hub: hub, data: data, release: release}
}

// Hub returns the hub whose record this view exposes.
func (v HubRecordView) Hub() graph.NodeID { return v.hub }

// Len returns the number of (node, score) entries.
func (v HubRecordView) Len() int { return len(v.data) / sparse.EncodedEntrySize }

// Entry decodes the i-th entry. Entries are sorted by ascending node id.
func (v HubRecordView) Entry(i int) (graph.NodeID, float64) {
	return sparse.EncodedEntryAt(v.data, i)
}

// EntryBytes returns the raw encoded entry payload. The slice aliases the
// view's backing storage and follows the same lifetime rules as the view.
func (v HubRecordView) EntryBytes() []byte { return v.data }

// Vector decodes the view into a freshly allocated map-based Vector. It is
// the boundary conversion for callers that need random access; the hot path
// should use EntryBytes with sparse.Accumulator instead.
func (v HubRecordView) Vector() sparse.Vector {
	out := sparse.New(v.Len())
	for i := 0; i < v.Len(); i++ {
		id, s := v.Entry(i)
		out[id] = s
	}
	return out
}

// Release returns the view's pin on its index generation, if it holds one.
// It must be called exactly once per pinned view; calling it on a zero or
// unpinned view is a no-op.
func (v HubRecordView) Release() {
	if v.release != nil {
		v.release()
	}
}

// ViewGetter is implemented by indexes that can serve hub records as
// zero-copy views. GetView mirrors Index.Get: the boolean is false when h is
// not indexed (callers then fall back to Get, which also covers overlay and
// recompute paths).
type ViewGetter interface {
	GetView(h graph.NodeID) (HubRecordView, bool, error)
}
