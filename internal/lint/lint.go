// Package lint implements ppvlint, the repo's custom static-analysis suite.
//
// The repo's headline guarantees — byte-identical answers across transports
// and shard layouts, torn-tail-safe replay of the CRC-framed logs, pooled
// values that never leak a previous query's state — are invariants no general
// linter knows about. This package encodes them as analyzers over the typed
// AST, mirroring the golang.org/x/tools/go/analysis API shape (Analyzer, Pass,
// Diagnostic) so each check is an isolated, unit-testable pass. Only the
// standard library is used: packages are enumerated and compiled through
// `go list -export`, and their dependencies are imported from the resulting
// gc export data, so the multichecker (cmd/ppvlint) needs no module
// dependencies at all.
//
// Analyzers:
//
//   - maporder: `for range` over a map inside answer-affecting packages
//     (iteration order would break byte-identical determinism). Escape hatch:
//     a `//lint:ordered <justification>` comment on or above the statement.
//   - framesafe: decode paths of the framed formats must length-check before
//     fixed-width reads, and must never panic from an exported decode entry.
//   - poolhygiene: sync.Pool.Put of a resettable value without a Reset call
//     in the same function.
//   - errcode: HTTP handlers in internal/server must emit the structured
//     internal/api error envelope, never naked http.Error.
//   - metriclit: metric family names and label keys passed to
//     internal/telemetry must be compile-time string constants.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the checks translate directly if
// the dependency ever becomes available.
type Analyzer struct {
	// Name is the short command-line identifier of the analyzer.
	Name string
	// Doc is the one-paragraph help text.
	Doc string
	// Run performs the pass over one package, reporting findings via
	// pass.Report. The result value is unused (kept for API parity).
	Run func(pass *Pass) (interface{}, error)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the import path of the package under analysis; analyzers with
	// a package scope (maporder, framesafe, errcode) match against it.
	Path string
	// report receives each diagnostic as it is found.
	report func(Diagnostic)

	// hatches caches the parsed //lint: escape-hatch comments per file.
	hatches map[*ast.File]map[int]hatch
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// Position is the resolved file position of Pos, filled by RunAnalyzers
	// (each package may carry its own FileSet, so raw Pos values are not
	// comparable across packages).
	Position token.Position
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// hatch is one parsed //lint:<name> comment.
type hatch struct {
	justification string
}

// hatchFor returns the //lint:<name> escape-hatch comment attached to the
// line of pos or the line directly above it, if any. The second return
// reports whether a hatch was present at all (even with an empty
// justification — the caller decides whether that is acceptable).
func (p *Pass) hatchFor(name string, file *ast.File, pos token.Pos) (hatch, bool) {
	if p.hatches == nil {
		p.hatches = make(map[*ast.File]map[int]hatch)
	}
	byLine, ok := p.hatches[file]
	if !ok {
		byLine = make(map[int]hatch)
		prefix := "//lint:" + name
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:orderedX
				}
				byLine[p.Fset.Position(c.Pos()).Line] = hatch{
					justification: strings.TrimSpace(rest),
				}
			}
		}
		p.hatches[file] = byLine
	}
	line := p.Fset.Position(pos).Line
	if h, ok := byLine[line]; ok {
		return h, true
	}
	if h, ok := byLine[line-1]; ok {
		return h, true
	}
	return hatch{}, false
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// pathHasSuffix reports whether the package import path ends in one of the
// given path suffixes (on a path-segment boundary).
func pathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Analyzers returns every ppvlint analyzer in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, FrameSafe, PoolHygiene, ErrCode, MetricLit}
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		fset := pkg.Fset
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				report: func(d Diagnostic) {
					d.Position = fset.Position(d.Pos)
					diags = append(diags, d)
				},
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
