//go:build !unix

package ppvindex

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; OpenDiskWithOptions falls back to
// the positioned-read path.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(data []byte) error { return nil }
