package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runAnalyzerTest loads fixture packages from testdata/src through the
// production loader (go list -export + export-data importing — the same path
// cmd/ppvlint uses) and checks one analyzer's diagnostics against the
// `// want "substring"` comments in the fixture sources: every want line must
// produce a diagnostic containing the substring, and every diagnostic must
// land on a want line.
func runAnalyzerTest(t *testing.T, a *Analyzer, pkgDirs ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]string, len(pkgDirs))
	for i, d := range pkgDirs {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join("testdata", "src", d))
	}
	pkgs, err := Load(wd, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					const marker = `want "`
					i := strings.Index(c.Text, marker)
					if i < 0 {
						continue
					}
					rest := c.Text[i+len(marker):]
					j := strings.Index(rest, `"`)
					if j < 0 {
						t.Fatalf("unterminated want comment: %s", c.Text)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants[lineKey{pos.Filename, pos.Line}] = rest[:j]
				}
			}
		}
	}

	matched := make(map[lineKey]bool)
	for _, d := range diags {
		k := lineKey{d.Position.Filename, d.Position.Line}
		want, ok := wants[k]
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(k.file), k.line, d.Message)
			continue
		}
		if !strings.Contains(d.Message, want) {
			t.Errorf("%s:%d: diagnostic %q does not contain %q", filepath.Base(k.file), k.line, d.Message, want)
			continue
		}
		matched[k] = true
	}
	for k, want := range wants {
		if !matched[k] {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", filepath.Base(k.file), k.line, want)
		}
	}
}

func TestMapOrder(t *testing.T) {
	runAnalyzerTest(t, MapOrder, "maporder/internal/sparse", "maporder/other")
}

func TestFrameSafe(t *testing.T) {
	runAnalyzerTest(t, FrameSafe, "framesafe/internal/api")
}

func TestPoolHygiene(t *testing.T) {
	runAnalyzerTest(t, PoolHygiene, "poolhygiene")
}

func TestErrCode(t *testing.T) {
	runAnalyzerTest(t, ErrCode, "errcode/internal/server", "errcode/other")
}

func TestMetricLit(t *testing.T) {
	runAnalyzerTest(t, MetricLit, "metriclit/use")
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"internal/sparse", "internal/sparse", true},
		{"fastppv/internal/sparse", "internal/sparse", true},
		{"fastppv/internal/lint/testdata/src/maporder/internal/sparse", "internal/sparse", true},
		{"fastppv/internal/sparser", "internal/sparse", false},
		{"fastppv/xinternal/sparse", "internal/sparse", false},
	}
	for _, c := range cases {
		if got := pathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("pathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}
