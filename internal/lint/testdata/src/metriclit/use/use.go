// Package use exercises metriclit from a consumer package: the analyzer has
// no package filter of its own and matches on the callee's import path.
package use

import "fastppv/internal/lint/testdata/src/metriclit/internal/telemetry"

const familyName = "ppv_queries_total"

// Register mixes constant and dynamic metric names and label keys.
func Register(r *telemetry.Registry, dyn string) {
	r.Counter(familyName, "named by a package const: clean")
	r.Counter("ppv_hits"+"_total", "constant concatenation: clean")
	r.Counter(dyn, "dynamic family name") // want "must be a compile-time string constant"
	r.CounterVec("ppv_shard_total", "constant label keys: clean", "shard", "status")
	r.CounterVec("ppv_shard_total", "dynamic label key", dyn) // want "label key"
	_ = telemetry.L("shard", dyn)
	_ = telemetry.L(dyn, "dynamic label key") // want "must be a compile-time string constant"
}
