// Package server is the online query-serving subsystem of the FastPPV
// reproduction: a long-lived HTTP front end over a precomputed core.Engine.
//
// The engine answers one query at a time as fast as scheduled approximation
// allows; this package adds the layers a production deployment needs on top:
//
//   - a sharded LRU result cache with a byte budget, keyed by the query node
//     and the accuracy knobs (eta, target error), so skewed workloads are
//     served from memory;
//   - request coalescing, so concurrent identical queries share a single
//     engine computation instead of stampeding;
//   - admission control with graceful degradation: at most MaxConcurrent
//     full-accuracy computations run at once, and an overloaded server
//     answers with a cheaper low-eta estimate whose L1 error bound is still
//     reported exactly, instead of queueing unboundedly;
//   - incremental graph updates with targeted cache invalidation driven by
//     the hub dependencies each cached answer recorded;
//   - per-endpoint latency histograms and a stats endpoint.
//
// Response bodies are a deterministic function of the query parameters and
// the graph state: the engine expands border hubs in a fixed order, so a
// cached or coalesced response is byte-identical to a cold computation at the
// same eta. Volatile serving metadata (cache disposition, compute time)
// travels in X-Fastppv-* headers, never in the body.
//
// A Server fronts one of two backends with the same caching, coalescing and
// admission layers:
//
//   - a local core.Engine (New) — the single-node and shard configurations;
//     a sharded engine additionally serves POST /v1/partial, the sub-query
//     endpoint of the cluster protocol (internal/api);
//   - a cluster.Router (NewRouter) — the scatter-gather front of a
//     hub-partitioned cluster, where each query fans out to the shards and
//     the exact error bound is composed from their partial answers.
//
// Errors are structured (internal/api): every non-2xx body carries
// {"error": {"code", "message"}} so routers and load generators can
// distinguish client mistakes, admission rejection, transient retry
// conditions and unsupported endpoints machine-readably.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fastppv/internal/api"
	"fastppv/internal/cluster"
	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/ppvindex"
	"fastppv/internal/querylog"
	"fastppv/internal/telemetry"
)

// Config tunes the serving layers. The zero value serves with sensible
// defaults for a mid-sized graph.
type Config struct {
	// DefaultEta is the number of online iterations used when a request does
	// not specify eta; zero means core.DefaultIterations.
	DefaultEta int
	// MaxEta caps the eta a client may request; zero means 8.
	MaxEta int
	// DegradedEta is the eta served on the degradation path under overload;
	// it should be small (the default 0 serves iteration 0 only).
	DegradedEta int
	// DefaultTopK and MaxTopK bound the number of ranked results returned;
	// zero means 10 and 1000.
	DefaultTopK int
	MaxTopK     int
	// CacheBytes is the result cache budget; zero means 64 MiB. Negative
	// disables caching.
	CacheBytes int64
	// CacheShards is the number of cache shards; zero means 16.
	CacheShards int
	// MaxConcurrent bounds concurrent full-accuracy computations; zero means
	// GOMAXPROCS.
	MaxConcurrent int
	// QueueWait is how long a request waits for a computation slot before
	// being served degraded; zero means 25ms. Negative means no waiting.
	QueueWait time.Duration
	// WarmHubs, when positive, preloads the prime PPVs of the K hottest hubs
	// (by out-degree, the cheap popularity proxy available in every mode)
	// through the index's block cache at startup, so a freshly started
	// disk-serving shard does not answer its first requests at cold-read
	// latency. It is a no-op for in-memory indexes and cache-less stores.
	WarmHubs int
	// QueryLog optionally receives one record per completed query (and, when
	// it was opened with replay before the server started, drives log-based
	// cache warming instead of the out-degree heuristic). The server appends
	// to it but does not own it: the caller opens and closes the log.
	QueryLog *querylog.Log
	// SlowThreshold is the compute duration past which a query's trace is
	// retained unconditionally in the debug ring (GET /v1/debug/slow); zero
	// means 250ms, negative disables the slow rule (degraded and sampled
	// capture still apply).
	SlowThreshold time.Duration
	// TraceSampleEvery retains every Nth computed query's trace regardless of
	// latency, so the ring always holds a background sample of healthy
	// traffic; zero means 128, negative disables sampling.
	TraceSampleEvery int
	// TraceRetain is the capacity of the retained-trace ring; zero means 256.
	TraceRetain int
	// SLOLatency and SLOBound are the serving objectives: a request is a bad
	// SLO event when it fails, exceeds SLOLatency, or answers with an L1
	// error bound above SLOBound. Zero leaves the respective objective (and,
	// if both are zero, SLO accounting entirely) off.
	SLOLatency time.Duration
	SLOBound   float64
	// LatencyBuckets overrides the bucket bounds of the HTTP request-latency
	// histogram family; nil means telemetry.DefLatencyBuckets. Bounds must be
	// strictly ascending.
	LatencyBuckets []float64
	// Registry optionally receives the server's metrics and is served on
	// GET /metrics; nil creates a private registry (the endpoint still works).
	// In router mode, pass the same registry to the cluster.RouterConfig so
	// shard-leg and epoch metrics land on the same scrape surface.
	Registry *telemetry.Registry
	// Logger optionally receives structured request logs (traced queries,
	// partial sub-requests); nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.DefaultEta == 0 {
		c.DefaultEta = core.DefaultIterations
	}
	if c.MaxEta == 0 {
		c.MaxEta = 8
	}
	if c.DefaultEta > c.MaxEta {
		c.DefaultEta = c.MaxEta
	}
	if c.DegradedEta < 0 {
		c.DegradedEta = 0
	}
	if c.DegradedEta > c.MaxEta {
		c.DegradedEta = c.MaxEta
	}
	if c.DefaultTopK == 0 {
		c.DefaultTopK = 10
	}
	if c.MaxTopK == 0 {
		c.MaxTopK = 1000
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheShards == 0 {
		c.CacheShards = 16
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueWait == 0 {
		c.QueueWait = 25 * time.Millisecond
	}
	if c.QueueWait < 0 {
		c.QueueWait = 0
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0
	}
	if c.TraceSampleEvery == 0 {
		c.TraceSampleEvery = 128
	}
	if c.TraceSampleEvery < 0 {
		c.TraceSampleEvery = 0
	}
	if c.TraceRetain <= 0 {
		c.TraceRetain = 256
	}
	return c
}

// Server wraps a precomputed engine (or a cluster router) with the serving
// layers. Create one with New or NewRouter and mount Handler on an
// http.Server.
type Server struct {
	cfg     Config
	engine  *core.Engine    // nil in router mode
	router  *cluster.Router // nil in engine mode
	cache   *Cache
	flights *flightGroup
	adm     *admission
	streams *streamSet // open binary partial streams (engine mode)

	// mu guards the engine: queries hold the read lock, ApplyUpdate holds the
	// write lock (it swaps the graph and rewrites index entries in place).
	// Cache fills happen under the read lock too, so an update's invalidation
	// sweep can never race with a stale fill. Unused in router mode (the
	// router has no local mutable state).
	mu sync.RWMutex

	hists    map[string]*Histogram
	registry *telemetry.Registry
	metrics  *serverMetrics
	logger   *slog.Logger
	started  time.Time
	updates  atomic.Int64
	warmed   WarmStats

	// qlog receives one record per completed query; nil when no query log is
	// configured. traces is the always-on retained-trace ring; sampleCtr
	// drives its every-Nth sampling. slo is nil unless an objective is set.
	qlog      *querylog.Log
	traces    *traceRing
	sampleCtr atomic.Uint64
	slo       *sloTracker
	// inconsistent is set when an ApplyUpdate fails after the point of no
	// return: the engine may mix old and new state, so health checks flip to
	// failing until an operator intervenes (restart or full Precompute).
	inconsistent atomic.Bool
}

// WarmStats reports the startup block-cache warming pass.
type WarmStats struct {
	// Requested is the number of hubs warming was asked to preload
	// (Config.WarmHubs clamped to the hubs this index actually holds; in
	// querylog mode, the distinct hub dependencies of the replayed top
	// sources).
	Requested int `json:"requested"`
	// Warmed is how many hub blocks actually landed in the block cache; it is
	// zero when the index has no cache to warm (in-memory, or caching
	// disabled).
	Warmed     int     `json:"warmed"`
	DurationMS float64 `json:"duration_ms"`
	// Source says what chose the hubs: "querylog" (frequency-decayed top
	// sources replayed from the persistent query log, mapped to the hub
	// dependencies their queries actually consume) or "heuristic" (hottest
	// hubs by out-degree — the fallback when no log is configured or the log
	// is empty).
	Source string `json:"source,omitempty"`
	// Sources is how many replayed top sources drove the querylog pass.
	Sources int `json:"sources,omitempty"`
}

func newServer(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	s := &Server{
		cfg:     cfg,
		flights: newFlightGroup(),
		adm:     newAdmission(cfg.MaxConcurrent, cfg.QueueWait),
		streams: newStreamSet(),
		hists: map[string]*Histogram{
			"ppv":     {},
			"batch":   {},
			"update":  {},
			"stats":   {},
			"compact": {},
			"partial": {},
		},
		registry: reg,
		metrics:  newServerMetrics(reg, cfg.LatencyBuckets),
		logger:   logger,
		started:  time.Now(),
		qlog:     cfg.QueryLog,
		traces:   newTraceRing(cfg.TraceRetain),
		slo:      newSLOTracker(cfg.SLOLatency, cfg.SLOBound),
	}
	if cfg.CacheBytes > 0 {
		s.cache = NewCache(cfg.CacheBytes, cfg.CacheShards)
	}
	return s
}

// New creates a Server over engine, which must already be precomputed.
func New(engine *core.Engine, cfg Config) (*Server, error) {
	if engine == nil {
		return nil, errors.New("server: nil engine")
	}
	if !engine.Precomputed() {
		return nil, errors.New("server: engine not precomputed")
	}
	s := newServer(cfg.withDefaults())
	s.engine = engine
	s.registerCollectors(s.registry)
	s.warm()
	return s, nil
}

// NewRouter creates a Server that answers queries by scatter-gathering them
// across the shards behind rt, reusing the same result cache, coalescing and
// admission layers as the single-node server. Update, compaction and partial
// endpoints answer with the structured "unsupported" error in this mode.
func NewRouter(rt *cluster.Router, cfg Config) (*Server, error) {
	if rt == nil {
		return nil, errors.New("server: nil router")
	}
	s := newServer(cfg.withDefaults())
	s.router = rt
	s.registerCollectors(s.registry)
	return s, nil
}

// hubWarmer is implemented by index stores that can preload hub blocks into
// a cache (fastppv's disk store).
type hubWarmer interface {
	WarmHubs(hubs []graph.NodeID) int
}

// warm preloads hub prime PPVs through the index's block cache at startup.
// When a replayed query log is available it is the workload oracle: the
// frequency-decayed top sources are run through the engine (at the default
// eta) and the hub dependencies those queries actually consume are what gets
// warmed — the observed workload, not a guess. Without a log (or with an
// empty one) it falls back to the static heuristic: the Config.WarmHubs
// hottest hubs by out-degree, ties broken by id for determinism.
func (s *Server) warm() {
	if s.cfg.WarmHubs <= 0 {
		return
	}
	start := time.Now()
	if s.qlog != nil && s.qlog.Records() > 0 {
		if st, ok := s.warmFromLog(s.qlog.TopSources(s.cfg.WarmHubs)); ok {
			s.warmed = st
			s.warmed.DurationMS = float64(time.Since(start)) / 1e6
			return
		}
	}
	g := s.engine.Graph()
	hubs := append([]graph.NodeID(nil), s.engine.Index().Hubs()...)
	sort.Slice(hubs, func(i, j int) bool {
		di, dj := g.OutDegree(hubs[i]), g.OutDegree(hubs[j])
		if di != dj {
			return di > dj
		}
		return hubs[i] < hubs[j]
	})
	if len(hubs) > s.cfg.WarmHubs {
		hubs = hubs[:s.cfg.WarmHubs]
	}
	s.warmed.Source = "heuristic"
	s.warmed.Requested = len(hubs)
	if w, ok := s.engine.Index().(hubWarmer); ok {
		s.warmed.Warmed = w.WarmHubs(hubs)
	}
	s.warmed.DurationMS = float64(time.Since(start)) / 1e6
}

// warmFromLog runs the top replayed sources as real queries — pulling exactly
// the hub blocks the workload needs through the block cache — and then asks
// the store to pin their union of hub dependencies, which also yields the
// comparable Warmed count. Returns ok=false when no replayed source is still
// a valid node (e.g. the log belongs to another graph), in which case the
// caller falls back to the heuristic.
func (s *Server) warmFromLog(sources []graph.NodeID) (WarmStats, bool) {
	g := s.engine.Graph()
	depSet := make(map[graph.NodeID]struct{})
	ran := 0
	stop := core.StopCondition{MaxIterations: s.cfg.DefaultEta}
	for _, src := range sources {
		if src < 0 || int(src) >= g.NumNodes() {
			continue
		}
		qs, err := s.engine.NewQuery(src)
		if err != nil {
			continue
		}
		qs.Run(stop)
		for _, h := range qs.HubDeps() {
			depSet[h] = struct{}{}
		}
		qs.Close()
		ran++
	}
	if ran == 0 {
		return WarmStats{}, false
	}
	deps := make([]graph.NodeID, 0, len(depSet))
	for h := range depSet {
		deps = append(deps, h)
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	st := WarmStats{Source: "querylog", Sources: ran, Requested: len(deps)}
	if w, ok := s.engine.Index().(hubWarmer); ok {
		st.Warmed = w.WarmHubs(deps)
	}
	return st, true
}

// Handler returns the HTTP handler exposing the API. GET /metrics and
// GET /healthz are deliberately mounted outside instrument: scrapes and
// health probes are periodic background traffic whose latency would only
// dilute the request histograms, and keeping them out guarantees the metrics
// surface can never instrument itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ppv", s.instrument("ppv", s.handlePPV))
	mux.HandleFunc("POST /v1/ppv/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("POST /v1/partial", s.instrument("partial", s.handlePartial))
	mux.HandleFunc("POST /v1/update", s.instrument("update", s.handleUpdate))
	mux.HandleFunc("POST /v1/compact", s.instrument("compact", s.handleCompact))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.Handle("GET /metrics", s.registry.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	// The debug surface (retained traces) is operator traffic like /metrics:
	// mounted outside instrument so inspecting an incident never perturbs the
	// request histograms it is being used to explain.
	mux.HandleFunc("GET /v1/debug/slow", s.handleDebugSlow)
	mux.HandleFunc("GET /v1/debug/trace/{id}", s.handleDebugTrace)
	// The stream endpoint hijacks its connection and lives for the life of a
	// router process; instrumenting it would record one meaningless
	// hours-long latency sample, so it stays outside instrument.
	mux.HandleFunc("GET "+api.StreamPath, s.handleStream)
	return mux
}

// instrumentedEndpoints is the closed allowlist of endpoint label values.
// instrument refuses any name outside it at wiring time, so the "endpoint"
// label can never grow unboundedly (e.g. by someone instrumenting a handler
// with a per-request-derived name).
var instrumentedEndpoints = map[string]bool{
	"ppv": true, "batch": true, "partial": true,
	"update": true, "compact": true, "stats": true,
}

// instrument records per-endpoint latency (into both the legacy /v1/stats
// histogram and the Prometheus registry) and per-status-class request counts.
// All metric children are resolved here, at wiring time — the per-request
// cost is two histogram observations and one counter increment.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	if !instrumentedEndpoints[name] {
		panic(fmt.Sprintf("server: endpoint %q is not in the instrumentation allowlist", name))
	}
	hist := s.hists[name]
	lat := s.metrics.httpLatency.With(name)
	classes := s.metrics.statusClasses(name)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		hist.Observe(d)
		lat.ObserveDuration(d)
		if c := sw.status / 100; c >= 1 && c <= 5 {
			classes[c].Inc()
		}
	}
}

// ScoredNode is one ranked result entry.
type ScoredNode struct {
	Node  int     `json:"node"`
	Label string  `json:"label,omitempty"`
	Score float64 `json:"score"`
}

// QueryResponse is the body of a query answer. It is a deterministic function
// of (node, eta, target error, top, graph state); serving metadata lives in
// response headers instead.
type QueryResponse struct {
	Node         int  `json:"node"`
	RequestedEta int  `json:"requested_eta"`
	Iterations   int  `json:"iterations"`
	Degraded     bool `json:"degraded,omitempty"`
	// ShardsDown, ShardsBehind and LostErrorMass are set by a cluster router
	// when shards were unavailable — or answered at a divergent index epoch —
	// during this query: the answer is still correct, its L1 error bound is
	// just wider by (up to) the lost mass. Degraded answers are never cached,
	// so cacheable bodies stay deterministic.
	ShardsDown    int          `json:"shards_down,omitempty"`
	ShardsBehind  int          `json:"shards_behind,omitempty"`
	LostErrorMass float64      `json:"lost_error_mass,omitempty"`
	L1ErrorBound  float64      `json:"l1_error_bound"`
	Results       []ScoredNode `json:"results"`
	// Trace carries the per-iteration spans of a ?trace=1 request. It is the
	// one deliberately volatile member of the body: traced answers are
	// computed fresh, never cached and never coalesced, so the determinism
	// promise for cacheable bodies is unaffected.
	Trace *TraceBlock `json:"trace,omitempty"`
}

// queryRequest is one parsed and clamped query.
type queryRequest struct {
	node        graph.NodeID
	eta         int
	targetError float64
	top         int
}

type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) error {
	return &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

func unsupported(format string, args ...interface{}) error {
	return &httpError{status: http.StatusNotImplemented, code: api.CodeUnsupported, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) parseQuery(q map[string]string) (queryRequest, error) {
	var req queryRequest
	nodeStr, ok := q["node"]
	if !ok || nodeStr == "" {
		return req, badRequest("missing node parameter")
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return req, badRequest("bad node %q", nodeStr)
	}
	req.node = graph.NodeID(node)

	req.eta = s.cfg.DefaultEta
	if v, ok := q["eta"]; ok && v != "" {
		req.eta, err = strconv.Atoi(v)
		if err != nil || req.eta < 0 {
			return req, badRequest("bad eta %q", v)
		}
		if req.eta > s.cfg.MaxEta {
			req.eta = s.cfg.MaxEta
		}
	}
	if v, ok := q["target-error"]; ok && v != "" {
		req.targetError, err = strconv.ParseFloat(v, 64)
		// Reject NaN explicitly: a NaN inside CacheKey never equals itself,
		// so it would poison every map the key passes through (cache shards,
		// flight group) with unreachable, unremovable entries.
		if err != nil || math.IsNaN(req.targetError) || math.IsInf(req.targetError, 0) || req.targetError < 0 {
			return req, badRequest("bad target-error %q", v)
		}
	}
	req.top = s.cfg.DefaultTopK
	if v, ok := q["top"]; ok && v != "" {
		req.top, err = strconv.Atoi(v)
		if err != nil || req.top < 1 {
			return req, badRequest("bad top %q", v)
		}
		if req.top > s.cfg.MaxTopK {
			req.top = s.cfg.MaxTopK
		}
	}

	n := s.numNodes()
	// n == 0 means a router that has not discovered its graph size yet; the
	// query is then validated by the shards instead of up front.
	if req.node < 0 || (n > 0 && int(req.node) >= n) {
		return req, badRequest("node %d outside [0,%d)", req.node, n)
	}
	return req, nil
}

// numNodes returns the size of the served graph: the engine's graph locally,
// the discovered shard graph size in router mode (0 until a shard has been
// reachable).
func (s *Server) numNodes() int {
	if s.engine != nil {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.engine.Graph().NumNodes()
	}
	return s.router.NumNodes()
}

// cacheState describes how a request was answered, reported in the
// X-Fastppv-Cache header.
type cacheState string

const (
	cacheHit       cacheState = "hit"
	cacheMiss      cacheState = "miss"
	cacheCoalesced cacheState = "coalesced"
	cacheBypass    cacheState = "bypass"
)

// answer resolves a query through the cache, the flight group and finally the
// engine.
func (s *Server) answer(req queryRequest) (*cachedAnswer, cacheState, error) {
	key := CacheKey{Node: req.node, Eta: req.eta, TargetError: req.targetError}
	if s.router != nil {
		// Key on the cluster epoch: an accepted update moves every lookup to
		// the new epoch, so pre-update answers can never be served again and
		// a post-update request never joins a pre-update flight.
		key.Epoch, _ = s.router.ClusterEpoch()
	}
	if s.cache != nil {
		if ans, ok := s.cache.Get(key); ok {
			return ans, cacheHit, nil
		}
	}
	ans, shared, err := s.flights.Do(key, func(unregister func()) (*cachedAnswer, error) {
		return s.compute(key, unregister)
	})
	if err != nil {
		return nil, cacheMiss, err
	}
	state := cacheMiss
	if shared {
		state = cacheCoalesced
	}
	if s.cache == nil {
		state = cacheBypass
	}
	return ans, state, nil
}

// compute runs one query under admission control. Requests that cannot get a
// full-service slot are degraded to DegradedEta iterations (degraded answers
// are returned but never cached); when even the degraded pool is full the
// request is shed with 503. In engine mode the flight is unregistered while
// the engine read lock is still held, so a request arriving after a graph
// update can never join a pre-update computation.
func (s *Server) compute(key CacheKey, unregister func()) (*cachedAnswer, error) {
	level := s.adm.acquire()
	if level == svcShed {
		return nil, &httpError{status: http.StatusServiceUnavailable, code: api.CodeOverloaded,
			msg: "overloaded: admission and degradation pools are full"}
	}
	defer s.adm.release(level)
	eta := key.Eta
	degraded := false
	if level == svcDegraded && s.cfg.DegradedEta < eta {
		eta = s.cfg.DegradedEta
		degraded = true
	}
	stop := core.StopCondition{MaxIterations: eta, TargetL1Error: key.TargetError}

	if s.router != nil {
		cres, err := s.router.Query(key.Node, stop)
		if err != nil {
			// A shard answering bad_request (e.g. an out-of-range node the
			// router could not pre-validate before graph-size discovery) is a
			// client mistake, not an outage; everything else means no shard
			// could answer.
			var aerr *api.Error
			if errors.As(err, &aerr) && aerr.Code == api.CodeBadRequest {
				return nil, &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: aerr.Message}
			}
			return nil, &httpError{status: http.StatusServiceUnavailable, code: api.CodeUnavailable, msg: err.Error()}
		}
		ans := &cachedAnswer{
			result: &core.Result{
				Query:        cres.Query,
				Estimate:     cres.Estimate,
				Iterations:   cres.Iterations,
				L1ErrorBound: cres.L1ErrorBound,
				Duration:     cres.Duration,
			},
			degraded:     degraded || cres.Degraded,
			shardsDown:   cres.ShardsDown,
			shardsBehind: cres.ShardsBehind,
			lostMass:     cres.LostFrontierMass,
			epoch:        cres.Epoch,
			legs:         legSummaries(cres.Spans),
		}
		s.metrics.observeQuery(cres.Iterations, cres.L1ErrorBound, cres.HubsExpanded, cres.HubsSkipped, ans.degraded)
		// The router always collects per-iteration spans (Query is QueryTrace
		// with an empty id), so retaining a slow/degraded/sampled trace here
		// is free of extra computation.
		ans.traceID, ans.slow = s.captureCompute("router", key.Node, eta, cres.Duration,
			cres.L1ErrorBound, ans.degraded, func() []TraceSpan { return spansFromCluster(cres.Spans) })
		// Cluster-degraded answers carry a bound widened by lost shards; they
		// must not outlive the outage in the cache. An answer evaluated at a
		// newer epoch than the key's (an update raced this query) is left
		// uncached too: no future lookup would use the outdated key.
		if s.cache != nil && !ans.degraded && cres.Epoch == key.Epoch {
			s.cache.Put(key, ans)
		}
		unregister()
		return ans, nil
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	qs, err := s.engine.NewQuery(key.Node)
	if err != nil {
		return nil, err
	}
	res := qs.Run(stop)
	deps := qs.HubDeps()
	// Run materialized the result; Close recycles the pooled query buffers so
	// a steady serving workload answers without per-query allocations.
	qs.Close()
	ans := &cachedAnswer{result: res, deps: deps, degraded: degraded, epoch: s.engine.Epoch()}
	s.observeEngineResult(res, degraded)
	// The engine keeps per-iteration stats on every result, so span assembly
	// only happens when the capturer decides to retain this computation.
	ans.traceID, ans.slow = s.captureCompute("engine", key.Node, eta, res.Duration,
		res.L1ErrorBound, degraded, func() []TraceSpan { return spansFromCore(res.PerIteration) })
	if s.cache != nil && !degraded {
		s.cache.Put(key, ans)
	}
	unregister()
	return ans, nil
}

// render builds the deterministic response body from an answer. Node labels
// are only available in engine mode; a router answers with bare node ids.
func (s *Server) render(req queryRequest, ans *cachedAnswer) QueryResponse {
	top := ans.result.TopK(req.top)
	resp := QueryResponse{
		Node:          int(req.node),
		RequestedEta:  req.eta,
		Iterations:    ans.result.Iterations,
		Degraded:      ans.degraded,
		ShardsDown:    ans.shardsDown,
		ShardsBehind:  ans.shardsBehind,
		LostErrorMass: ans.lostMass,
		L1ErrorBound:  ans.result.L1ErrorBound,
		Results:       make([]ScoredNode, 0, len(top)),
	}
	if s.engine == nil {
		for _, e := range top {
			resp.Results = append(resp.Results, ScoredNode{Node: int(e.Node), Score: e.Score})
		}
		return resp
	}
	s.mu.RLock()
	g := s.engine.Graph()
	hasLabels := g.HasLabels()
	for _, e := range top {
		sn := ScoredNode{Node: int(e.Node), Score: e.Score}
		if hasLabels && int(e.Node) < g.NumNodes() {
			sn.Label = g.Label(e.Node)
		}
		resp.Results = append(resp.Results, sn)
	}
	s.mu.RUnlock()
	return resp
}

func (s *Server) handlePPV(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	params := map[string]string{}
	for _, k := range []string{"node", "eta", "target-error", "top"} {
		if v := r.URL.Query().Get(k); v != "" {
			params[k] = v
		}
	}
	req, err := s.parseQuery(params)
	if err != nil {
		writeError(w, err)
		return
	}
	if wantTrace(r) {
		traceID := r.Header.Get(api.TraceHeader)
		if traceID == "" {
			traceID = newTraceID()
		}
		ans, tb, err := s.computeTraced(req, traceID)
		if err != nil {
			s.finishQuery(req, nil, cacheBypass, start, true, err)
			writeError(w, err)
			return
		}
		s.retainExplicit(req, ans, tb)
		w.Header().Set(api.TraceHeader, traceID)
		w.Header().Set("X-Fastppv-Cache", string(cacheBypass))
		w.Header().Set("X-Fastppv-Compute-Ms",
			strconv.FormatFloat(float64(ans.result.Duration)/1e6, 'f', 3, 64))
		resp := s.render(req, ans)
		resp.Trace = tb
		s.finishQuery(req, ans, cacheBypass, start, true, nil)
		s.logger.Info("traced query",
			"trace_id", traceID, "node", resp.Node, "iterations", resp.Iterations,
			"l1_error_bound", resp.L1ErrorBound, "degraded", resp.Degraded,
			"mode", tb.Mode, "duration_ms", tb.DurationMS)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	ans, state, err := s.answer(req)
	if err != nil {
		s.finishQuery(req, nil, state, start, false, err)
		writeError(w, err)
		return
	}
	if ans.traceID != "" {
		// This answer's computation was retained by the always-on capturer
		// (slow, degraded or sampled): hand the caller the id so the full
		// per-iteration trace is one GET /v1/debug/trace/{id} away.
		w.Header().Set(api.TraceHeader, ans.traceID)
	}
	w.Header().Set("X-Fastppv-Cache", string(state))
	w.Header().Set("X-Fastppv-Compute-Ms",
		strconv.FormatFloat(float64(ans.result.Duration)/1e6, 'f', 3, 64))
	s.finishQuery(req, ans, state, start, false, nil)
	writeJSON(w, http.StatusOK, s.render(req, ans))
}

// finishQuery is the one place a completed /v1/ppv or batch query lands: it
// classifies the outcome against the SLO objectives and appends the record to
// the persistent query log. Client mistakes (4xx) are neither SLO events nor
// log records; server-side failures (shed, unavailable, internal) are bad SLO
// events but have no answer to log.
func (s *Server) finishQuery(req queryRequest, ans *cachedAnswer, state cacheState, start time.Time, explicit bool, err error) {
	lat := time.Since(start)
	if err != nil {
		var herr *httpError
		if errors.As(err, &herr) && herr.status >= 400 && herr.status < 500 {
			return
		}
		s.observeSLO(lat, 0, true)
		return
	}
	s.observeSLO(lat, ans.result.L1ErrorBound, false)
	s.logQuery(req, ans, state, lat, explicit)
}

// BatchRequest is the body of POST /v1/ppv/batch.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchQuery is one query of a batch; zero-valued knobs fall back to the
// server defaults.
type BatchQuery struct {
	Node        int     `json:"node"`
	Eta         *int    `json:"eta,omitempty"`
	TargetError float64 `json:"target_error,omitempty"`
	Top         int     `json:"top,omitempty"`
}

// BatchResponse is the body answering a batch: one entry per query, in order.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

// maxBatchQueries bounds a single batch so one request cannot monopolize the
// server.
const maxBatchQueries = 1024

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
		writeError(w, badRequest("bad batch body: %v", err))
		return
	}
	if len(breq.Queries) == 0 {
		writeError(w, badRequest("empty batch"))
		return
	}
	if len(breq.Queries) > maxBatchQueries {
		writeError(w, badRequest("batch of %d exceeds limit %d", len(breq.Queries), maxBatchQueries))
		return
	}
	resp := BatchResponse{Results: make([]QueryResponse, 0, len(breq.Queries))}
	for _, bq := range breq.Queries {
		params := map[string]string{"node": strconv.Itoa(bq.Node)}
		if bq.Eta != nil {
			params["eta"] = strconv.Itoa(*bq.Eta)
		}
		if bq.TargetError > 0 {
			params["target-error"] = strconv.FormatFloat(bq.TargetError, 'g', -1, 64)
		}
		if bq.Top > 0 {
			params["top"] = strconv.Itoa(bq.Top)
		}
		req, err := s.parseQuery(params)
		if err != nil {
			writeError(w, err)
			return
		}
		qstart := time.Now()
		ans, state, err := s.answer(req)
		if err != nil {
			s.finishQuery(req, nil, state, qstart, false, err)
			writeError(w, err)
			return
		}
		s.finishQuery(req, ans, state, qstart, false, nil)
		resp.Results = append(resp.Results, s.render(req, ans))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePartial serves the shard side of the cluster protocol: one
// iteration-0 root or one frontier expansion restricted to the hubs this
// shard owns (internal/api.PartialRequest). It runs under the same admission
// gate as full queries — a partial is bounded work (a single iteration), so
// a degraded-level slot still computes it fully — and under the engine read
// lock, so graph updates never interleave with a sub-query.
//
// A transient index failure (the descriptor closing under a restart or
// compaction swap) answers 503 with the structured "retry" code; the router
// retries once before declaring the shard down.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeError(w, unsupported("/v1/partial is served by shards, not by the router"))
		return
	}
	var preq api.PartialRequest
	if err := json.NewDecoder(r.Body).Decode(&preq); err != nil {
		writeError(w, badRequest("bad partial body: %v", err))
		return
	}
	presp, err := s.evalPartial(&preq, r.Header.Get(api.TraceHeader))
	if err != nil {
		writeError(w, err)
		return
	}
	// Echo the router's trace ID so a traced routed query can be correlated
	// with this shard's logs.
	if tid := r.Header.Get(api.TraceHeader); tid != "" {
		w.Header().Set(api.TraceHeader, tid)
	}
	writeJSON(w, http.StatusOK, presp)
}

// evalPartial evaluates one partial sub-request: validation, the admission
// gate (a partial is bounded work, so a degraded-level slot still computes it
// fully), then the engine under its read lock. It is the shared core of the
// JSON handler above and the binary stream handler (stream.go); errors come
// back as *httpError so both surfaces can render code and status.
func (s *Server) evalPartial(preq *api.PartialRequest, traceID string) (*api.PartialResponse, error) {
	if (preq.Query == nil) == (preq.Frontier == nil) {
		return nil, badRequest("exactly one of query and frontier must be set")
	}
	level := s.adm.acquire()
	if level == svcShed {
		return nil, &httpError{status: http.StatusServiceUnavailable, code: api.CodeOverloaded,
			msg: "overloaded: admission and degradation pools are full"}
	}
	defer s.adm.release(level)

	start := time.Now()
	s.mu.RLock()
	var (
		part *core.PartialIncrement
		err  error
	)
	if preq.Query != nil {
		q := *preq.Query
		if q < 0 || int(q) >= s.engine.Graph().NumNodes() {
			s.mu.RUnlock()
			return nil, badRequest("node %d outside [0,%d)", q, s.engine.Graph().NumNodes())
		}
		part, err = s.engine.PartialRoot(q)
	} else {
		var frontier map[graph.NodeID]float64
		if frontier, err = preq.Frontier.DecodeMap(); err != nil {
			s.mu.RUnlock()
			return nil, badRequest("bad frontier: %v", err)
		}
		part, err = s.engine.PartialExpand(frontier)
	}
	p := s.engine.Partition()
	epoch := s.engine.Epoch()
	s.mu.RUnlock()
	if err != nil {
		if errors.Is(err, ppvindex.ErrIndexClosed) {
			return nil, &httpError{status: http.StatusServiceUnavailable, code: api.CodeRetry, msg: err.Error()}
		}
		return nil, fmt.Errorf("partial query failed: %w", err)
	}
	shards := p.Shards
	if shards < 2 {
		shards = 1
	}
	if traceID != "" {
		s.logger.Debug("partial served",
			"trace_id", traceID, "shard", p.Shard, "iteration", preq.Iteration,
			"speculative", preq.Speculative, "epoch", epoch,
			"hubs_expanded", part.HubsExpanded,
			"duration_ms", float64(time.Since(start))/1e6)
	}
	return &api.PartialResponse{
		Shard:        p.Shard,
		Shards:       shards,
		Epoch:        epoch,
		Increment:    api.EncodeVector(part.Increment),
		Frontier:     api.EncodeMap(part.Frontier),
		HubsExpanded: part.HubsExpanded,
		HubsSkipped:  part.HubsSkipped,
		Unowned:      part.Unowned,
		FromIndex:    part.FromIndex,
		ComputeMS:    float64(time.Since(start)) / 1e6,
	}, nil
}

// UpdateRequest is the body of POST /v1/update (see api.UpdateRequest: the
// router fans the same body out to the shards).
type UpdateRequest = api.UpdateRequest

// UpdateResponse reports what an update applied to a local engine did; a
// router answers with api.ClusterUpdateResponse instead.
type UpdateResponse = api.UpdateResponse

// parseEdges validates that every entry is a [from, to] pair with both
// endpoints inside [0, numNodes). Validating here keeps client mistakes out
// of ApplyUpdate, so an ApplyUpdate error below is a genuine server-side
// failure.
func parseEdges(field string, pairs [][]int, numNodes int) ([]graph.Edge, error) {
	edges := make([]graph.Edge, 0, len(pairs))
	for i, p := range pairs {
		if len(p) != 2 {
			return nil, badRequest("%s[%d]: edge must be a [from, to] pair, got %d elements", field, i, len(p))
		}
		if p[0] < 0 || p[0] >= numNodes || p[1] < 0 || p[1] >= numNodes {
			return nil, badRequest("%s[%d]: edge (%d,%d) outside [0,%d)", field, i, p[0], p[1], numNodes)
		}
		edges = append(edges, graph.Edge{From: graph.NodeID(p[0]), To: graph.NodeID(p[1])})
	}
	return edges, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var ureq UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&ureq); err != nil {
		writeError(w, badRequest("bad update body: %v", err))
		return
	}
	if len(ureq.AddedEdges) == 0 && len(ureq.RemovedEdges) == 0 && ureq.NumNodes == 0 {
		writeError(w, badRequest("empty update"))
		return
	}
	if ureq.NumNodes < 0 {
		writeError(w, badRequest("negative num_nodes"))
		return
	}
	if s.router != nil {
		s.handleClusterUpdate(w, ureq)
		return
	}
	upd := core.GraphUpdate{NumNodes: ureq.NumNodes}

	s.mu.Lock()
	// A replica that failed an update past its commit point may mix old and
	// new state; applying further batches on top would compound the damage
	// and hand divergent state a newer epoch. Refuse until an operator
	// restarts (replaying the durable logs) or re-precomputes. Checked under
	// the write lock: an update queued behind the one that failed must see
	// the flag it set, not the pre-failure value.
	if s.inconsistent.Load() {
		s.mu.Unlock()
		writeError(w, &httpError{status: http.StatusConflict, code: api.CodeConflict,
			msg: "engine is inconsistent after a failed update; restart or re-precompute before updating again"})
		return
	}
	if ureq.IfEpoch != nil && *ureq.IfEpoch != s.engine.Epoch() {
		epoch := s.engine.Epoch()
		s.mu.Unlock()
		writeError(w, &httpError{status: http.StatusConflict, code: api.CodeEpochMismatch,
			msg: fmt.Sprintf("engine is at epoch %d, not %d", epoch, *ureq.IfEpoch)})
		return
	}
	numNodes := s.engine.Graph().NumNodes()
	if ureq.NumNodes > numNodes {
		numNodes = ureq.NumNodes
	}
	var err error
	if upd.AddedEdges, err = parseEdges("added_edges", ureq.AddedEdges, numNodes); err == nil {
		upd.RemovedEdges, err = parseEdges("removed_edges", ureq.RemovedEdges, numNodes)
	}
	if err != nil {
		s.mu.Unlock()
		writeError(w, err)
		return
	}
	stats, err := s.engine.ApplyUpdate(upd)
	var invalidated int
	if err == nil {
		invalidated = s.invalidateLocked(stats)
		s.updates.Add(1)
	} else {
		// ApplyUpdate stages recomputation before committing, so most errors
		// leave the engine untouched — but an index write error during the
		// commit can leave it mixing old and new state. Drop every cached
		// answer and fail health checks so a load balancer rotates this
		// replica out instead of serving silently wrong scores.
		s.inconsistent.Store(true)
		if s.cache != nil {
			invalidated = s.cache.Invalidate(func(CacheKey, *cachedAnswer) bool { return true })
		}
	}
	s.mu.Unlock()
	if err != nil {
		writeError(w, fmt.Errorf("update failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{
		AffectedHubs:   stats.AffectedHubs,
		UnaffectedHubs: stats.UnaffectedHubs,
		Invalidated:    invalidated,
		DurationMS:     float64(stats.Duration) / 1e6,
		Epoch:          stats.Epoch,
	})
}

// handleClusterUpdate fans a validated update out to every shard through the
// router and invalidates the router-side result cache once any shard has
// accepted it. The response lists the per-shard outcomes: a partially applied
// batch answers 200 with degraded:true — the update is live on the shards
// that took it, and the stragglers' stale epochs fold them out of query
// answers — while a batch no shard applied is an error.
func (s *Server) handleClusterUpdate(w http.ResponseWriter, ureq UpdateRequest) {
	cu, err := s.router.Update(ureq)
	if err != nil {
		var aerr *api.Error
		if errors.As(err, &aerr) {
			writeError(w, &httpError{status: statusForCode(aerr.Code), code: aerr.Code, msg: aerr.Message})
			return
		}
		writeError(w, &httpError{status: http.StatusServiceUnavailable, code: api.CodeUnavailable, msg: err.Error()})
		return
	}
	// The epoch in the cache key already retires pre-update entries; the
	// sweep just returns their memory ahead of LRU pressure.
	invalidated := 0
	if s.cache != nil {
		invalidated = s.cache.Invalidate(func(CacheKey, *cachedAnswer) bool { return true })
	}
	s.updates.Add(1)
	writeJSON(w, http.StatusOK, api.ClusterUpdateResponse{
		Epoch:         cu.Epoch,
		ShardsApplied: cu.Applied,
		ShardsFailed:  len(cu.Results) - cu.Applied,
		Degraded:      cu.Degraded(),
		Shards:        cu.Results,
		Invalidated:   invalidated,
		DurationMS:    float64(cu.Duration) / 1e6,
	})
}

// statusForCode maps a structured error code decoded from a shard (or raised
// by the router) onto the HTTP status this server reports it with.
func statusForCode(code string) int {
	switch code {
	case api.CodeBadRequest:
		return http.StatusBadRequest
	case api.CodeOverloaded, api.CodeRetry, api.CodeUnavailable:
		return http.StatusServiceUnavailable
	case api.CodeConflict, api.CodeEpochMismatch:
		return http.StatusConflict
	case api.CodeUnsupported:
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}

// invalidateLocked drops exactly the cached answers an update can have made
// stale: answers that expanded a recomputed hub, answers for a query node
// whose out-edges changed, and answers whose estimate reaches a touched node
// (their on-the-fly prime PPV crossed the modified region). Called with the
// write lock held, so no stale fill can interleave.
func (s *Server) invalidateLocked(stats core.UpdateStats) int {
	if s.cache == nil {
		return 0
	}
	recomputed := make(map[graph.NodeID]struct{}, len(stats.Recomputed))
	for _, h := range stats.Recomputed {
		recomputed[h] = struct{}{}
	}
	touched := make(map[graph.NodeID]struct{}, len(stats.TouchedNodes))
	for _, t := range stats.TouchedNodes {
		touched[t] = struct{}{}
	}
	return s.cache.Invalidate(func(k CacheKey, ans *cachedAnswer) bool {
		if _, ok := touched[k.Node]; ok {
			return true
		}
		for _, h := range ans.deps {
			if _, ok := recomputed[h]; ok {
				return true
			}
		}
		// Estimate-reaches-touched-node check: iterate whichever side is
		// smaller, so a bulk update against a full cache stays bounded by the
		// estimate sizes rather than entries x touched nodes.
		if len(ans.result.Estimate) < len(touched) {
			for node := range ans.result.Estimate {
				if _, ok := touched[node]; ok {
					return true
				}
			}
			return false
		}
		for t := range touched {
			if ans.result.Estimate.Get(t) != 0 {
				return true
			}
		}
		return false
	})
}

// compactor is implemented by disk-backed index stores that can fold their
// update log and overlay back into the base file (fastppv's disk store); the
// /v1/compact admin endpoint drives it.
type compactor interface {
	Compact() (ppvindex.CompactionResult, error)
}

// handleCompact triggers a synchronous compaction of the disk-served index.
// It does not take the engine lock: compaction serves reads throughout and
// only incremental updates wait (on the store's own mutex).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeError(w, unsupported("compaction runs per shard, not through the router"))
		return
	}
	c, ok := s.engine.Index().(compactor)
	if !ok {
		writeError(w, &httpError{
			status: http.StatusPreconditionFailed,
			code:   api.CodeUnsupported,
			msg:    "index is not disk-backed; nothing to compact",
		})
		return
	}
	res, err := c.Compact()
	if err != nil {
		if errors.Is(err, ppvindex.ErrCompactionInProgress) || errors.Is(err, ppvindex.ErrUpdateInFlight) {
			writeError(w, &httpError{status: http.StatusConflict, code: api.CodeConflict, msg: err.Error()})
			return
		}
		writeError(w, fmt.Errorf("compaction failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// GraphInfo summarizes the served graph.
type GraphInfo struct {
	Nodes    int  `json:"nodes"`
	Edges    int  `json:"edges"`
	Directed bool `json:"directed"`
}

// OfflineInfo summarizes the offline precomputation behind the index.
type OfflineInfo struct {
	Hubs           int     `json:"hubs"`
	HubSelectionMS float64 `json:"hub_selection_ms"`
	PrimePPVMS     float64 `json:"prime_ppv_ms"`
	TotalMS        float64 `json:"total_ms"`
	IndexBytes     int64   `json:"index_bytes"`
	IndexEntries   int64   `json:"index_entries"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Graph         GraphInfo   `json:"graph"`
	Offline       OfflineInfo `json:"offline"`
	// Epoch is the index epoch: the engine's own in engine mode, the cluster
	// epoch (highest observed on any shard) in router mode. The router reads
	// this field off shard stats to learn epochs it has not seen in query
	// traffic yet.
	Epoch uint64 `json:"epoch"`
	// Shard is the hub partition this server owns ("1/4"), present only on
	// sharded engines.
	Shard string `json:"shard,omitempty"`
	// Cluster is the router's per-shard health and latency view, present only
	// in router mode.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Warming reports the startup block-cache warming pass (engine mode with
	// Config.WarmHubs set).
	Warming    *WarmStats                `json:"warming,omitempty"`
	Cache      *CacheStats               `json:"cache,omitempty"`
	BlockCache *ppvindex.BlockCacheStats `json:"block_cache,omitempty"`
	Durability *ppvindex.DurabilityStats `json:"durability,omitempty"`
	// Streams reports the binary partial-stream surface (engine mode): open
	// streams, wire traffic, and per-stream admission accounting.
	Streams *StreamStats `json:"streams,omitempty"`
	// QueryLog reports the persistent query log, present when one is
	// configured.
	QueryLog *querylog.Stats `json:"query_log,omitempty"`
	// SLO reports good/bad event totals and multi-window burn rates, present
	// when an objective (-slo-p99-ms / -slo-bound) is set.
	SLO            *SLOStats                    `json:"slo,omitempty"`
	Admission      AdmissionStats               `json:"admission"`
	Coalesced      int64                        `json:"coalesced"`
	UpdatesApplied int64                        `json:"updates_applied"`
	Endpoints      map[string]HistogramSnapshot `json:"endpoints"`
}

// blockCacheStatser is implemented by index stores that front a hub-block
// cache (the disk-backed store of fastppv.OpenDiskIndex); the stats endpoint
// reports their counters when present.
type blockCacheStatser interface {
	BlockCacheStats() (ppvindex.BlockCacheStats, bool)
}

// durabilityStatser is implemented by index stores that persist incremental
// updates behind an update log; the stats endpoint reports overlay and log
// counters when present.
type durabilityStatser interface {
	DurabilityStats() (ppvindex.DurabilityStats, bool)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Admission:      s.adm.stats(),
		Coalesced:      s.flights.Coalesced(),
		UpdatesApplied: s.updates.Load(),
		Endpoints:      make(map[string]HistogramSnapshot, len(s.hists)),
	}
	if s.router != nil {
		cst := s.router.Stats()
		resp.Cluster = &cst
		resp.Graph = GraphInfo{Nodes: cst.Nodes}
		resp.Epoch = cst.Epoch
	} else {
		s.mu.RLock()
		g := s.engine.Graph()
		off := s.engine.OfflineStats()
		resp.Graph = GraphInfo{Nodes: g.NumNodes(), Edges: g.NumEdges(), Directed: g.Directed()}
		resp.Epoch = s.engine.Epoch()
		s.mu.RUnlock()
		resp.Offline = OfflineInfo{
			Hubs:           off.Hubs,
			HubSelectionMS: float64(off.HubSelection) / 1e6,
			PrimePPVMS:     float64(off.PrimePPV) / 1e6,
			TotalMS:        float64(off.Total) / 1e6,
			IndexBytes:     off.IndexBytes,
			IndexEntries:   off.IndexEntries,
		}
		if p := s.engine.Partition(); p.Enabled() {
			resp.Shard = p.String()
		}
		if s.cfg.WarmHubs > 0 {
			warmed := s.warmed
			resp.Warming = &warmed
		}
		if bcs, ok := s.engine.Index().(blockCacheStatser); ok {
			if st, enabled := bcs.BlockCacheStats(); enabled {
				resp.BlockCache = &st
			}
		}
		if dss, ok := s.engine.Index().(durabilityStatser); ok {
			if st, enabled := dss.DurabilityStats(); enabled {
				resp.Durability = &st
			}
		}
		sst := s.streams.stats()
		resp.Streams = &sst
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	if s.qlog != nil {
		st := s.qlog.Stats()
		resp.QueryLog = &st
	}
	if s.slo != nil {
		st := s.slo.stats()
		resp.SLO = &st
	}
	for name, h := range s.hists {
		resp.Endpoints[name] = h.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.inconsistent.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"status": "inconsistent",
			"reason": "a graph update failed mid-commit; restart or re-precompute",
		})
		return
	}
	if s.router != nil {
		st := s.router.Stats()
		if st.ShardsHealthy == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
				"status": "no_shards", "shards_healthy": 0, "shards": len(st.Shards),
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"status": "ok", "shards_healthy": st.ShardsHealthy, "shards": len(st.Shards),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":      "ok",
		"precomputed": s.engine.Precomputed(),
	})
}

// encodeBufPool recycles response-encoding buffers: encoding into a pooled
// buffer first (instead of straight into the ResponseWriter) sets an exact
// Content-Length, avoids chunked framing, and keeps the encoder's scratch out
// of the per-request allocation bill. Buffers that ballooned on a huge top-k
// response are dropped instead of pinned in the pool.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledEncodeBuf = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		encodeBufPool.Put(buf)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		return
	}
	// Encode terminates the body with a newline for stream framing; with an
	// exact Content-Length it is dead weight on every response.
	buf.Truncate(buf.Len() - 1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledEncodeBuf {
		encodeBufPool.Put(buf)
	}
}

// writeError renders the structured error envelope: every failure carries a
// machine-readable code, so the router and load tooling can distinguish
// client mistakes, admission rejection, transient retry conditions and
// unsupported endpoints without parsing messages.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	code := api.CodeInternal
	var herr *httpError
	if errors.As(err, &herr) {
		status = herr.status
		if herr.code != "" {
			code = herr.code
		}
	}
	writeJSON(w, status, api.ErrorResponse{Error: api.Error{Code: code, Message: err.Error()}})
}
