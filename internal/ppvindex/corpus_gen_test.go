package ppvindex

import (
	"os"
	"path/filepath"
	"testing"

	"fastppv/internal/corpus"
	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// TestRegenLogCorpora writes the committed seed corpora of the ppvindex fuzz
// targets, building the valid seeds with the real log writers (same bindings
// as the fuzz targets) and deriving the corrupt ones from them. Gated behind
// PPV_REGEN_CORPUS=1.
func TestRegenLogCorpora(t *testing.T) {
	corpus.SkipUnlessRegen(t)
	dir := t.TempDir()

	// FPL1 update log: two committed records plus one uncommitted (torn).
	upath := filepath.Join(dir, "update.log")
	ul, err := OpenUpdateLog(upath, fuzzUpdateBaseBytes, fuzzUpdateBaseHubs, func(graph.NodeID, sparse.Vector) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := ul.Append(3, sparse.Vector{1: 0.5, 8: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := ul.Append(9, sparse.Vector{2: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if err := ul.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ul.Close(); err != nil {
		t.Fatal(err)
	}
	uvalid, err := os.ReadFile(upath)
	if err != nil {
		t.Fatal(err)
	}
	ubadcrc := append([]byte(nil), uvalid...)
	ubadcrc[len(ubadcrc)-1] ^= 0xFF
	corpus.Write(t, "FuzzUpdateLogReplay",
		uvalid,
		uvalid[:len(uvalid)-5], // torn tail mid-frame
		ubadcrc,                // checksum mismatch on the last frame
		uvalid[:headerLen(t)],  // bare header, zero records
		[]byte("NOPE"),         // foreign magic
	)

	// FPG1 graph log: one mutation batch.
	gpath := filepath.Join(dir, "graph.log")
	gl, err := OpenGraphLog(gpath, fuzzGraphBinding, func(GraphMutation) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	err = gl.Append(GraphMutation{
		AddedEdges:   []graph.Edge{{From: 1, To: 2}, {From: 2, To: 3}},
		RemovedEdges: []graph.Edge{{From: 3, To: 1}},
		NumNodes:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gl.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := gl.Close(); err != nil {
		t.Fatal(err)
	}
	gvalid, err := os.ReadFile(gpath)
	if err != nil {
		t.Fatal(err)
	}
	gbadcrc := append([]byte(nil), gvalid...)
	gbadcrc[len(gbadcrc)-1] ^= 0xFF
	corpus.Write(t, "FuzzGraphLogReplay",
		gvalid,
		gvalid[:len(gvalid)-5],
		gbadcrc,
		[]byte("NOPE"),
	)

	// Disk hub records: a canonical record, a truncated one, and one whose
	// declared count disagrees with its length.
	rec := encodeRecord(7, sparse.Vector{3: 0.25, 9: 1e-12, 11: -0.5})
	badcount := append([]byte(nil), rec...)
	badcount[4] ^= 0x01
	corpus.Write(t, "FuzzDiskRecordDecode",
		rec,
		rec[:len(rec)-4],
		badcount,
		encodeRecord(0, nil),
	)
}

// headerLen returns the update log's header size by writing an empty log.
func headerLen(t *testing.T) int {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.log")
	l, err := OpenUpdateLog(path, fuzzUpdateBaseBytes, fuzzUpdateBaseHubs, func(graph.NodeID, sparse.Vector) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return int(st.Size())
}
