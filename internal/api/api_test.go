package api

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

func TestVectorRoundTripExact(t *testing.T) {
	v := sparse.Vector{
		3:   0.1 + 0.2, // a value with no short decimal form
		0:   math.Nextafter(0.5, 1),
		999: 1e-17,
		42:  0.25,
	}
	w := EncodeVector(v)
	for i := 1; i < len(w.Nodes); i++ {
		if w.Nodes[i-1] >= w.Nodes[i] {
			t.Fatalf("encoded nodes not strictly ascending: %v", w.Nodes)
		}
	}
	body, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Vector
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(v) {
		t.Fatalf("round trip has %d entries, want %d", len(got), len(v))
	}
	for id, s := range v {
		if got[id] != s {
			t.Errorf("entry %d = %v after round trip, want bit-identical %v", id, got[id], s)
		}
	}
}

func TestVectorEncodingDeterministic(t *testing.T) {
	v := sparse.Vector{7: 0.5, 1: 0.25, 30: 0.125, 2: 0.0625}
	a, _ := json.Marshal(EncodeVector(v))
	b, _ := json.Marshal(EncodeVector(v.Clone()))
	if !bytes.Equal(a, b) {
		t.Errorf("encoding not deterministic:\n%s\n%s", a, b)
	}
}

func TestVectorDecodeRejectsLengthMismatch(t *testing.T) {
	w := Vector{Nodes: []graph.NodeID{1, 2}, Scores: []float64{0.5}}
	if _, err := w.Decode(); err == nil {
		t.Error("mismatched lengths should fail to decode")
	}
	if _, err := w.DecodeMap(); err == nil {
		t.Error("mismatched lengths should fail to decode as map")
	}
}

func TestEncodeMap(t *testing.T) {
	m := map[graph.NodeID]float64{9: 0.75, 4: 0.5}
	got, err := EncodeMap(m).DecodeMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[9] != 0.75 || got[4] != 0.5 {
		t.Errorf("EncodeMap round trip = %v, want %v", got, m)
	}
}

func TestErrorImplementsError(t *testing.T) {
	e := &Error{Code: CodeRetry, Message: "index closed"}
	if e.Error() != "retry: index closed" {
		t.Errorf("Error() = %q", e.Error())
	}
}
