package experiments

import (
	"fmt"

	"fastppv/internal/core"
	"fastppv/internal/hub"
	"fastppv/internal/workload"
)

// HubPolicyResult is the outcome of running FastPPV with one hub selection
// policy (Fig. 8 online, Fig. 9 offline).
type HubPolicyResult struct {
	Dataset DatasetName
	Policy  hub.Policy
	Result  MethodResult
}

// HubPolicies compares hub selection policies (E4/E5 in DESIGN.md, Fig. 8 and
// 9 of the paper): expected utility (the paper's proposal), PageRank-only,
// out-degree-only, and — as an ablation the paper mentions but omits from the
// figures — random selection.
func HubPolicies(scale Scale, includeRandom bool) ([]HubPolicyResult, error) {
	policies := []hub.Policy{hub.ExpectedUtility, hub.ByPageRank, hub.ByOutDegree}
	if includeRandom {
		policies = append(policies, hub.Random)
	}
	var out []HubPolicyResult
	for _, name := range []DatasetName{DBLP, LiveJournal} {
		d, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		hubs := d.DefaultHubs()
		for _, policy := range policies {
			res, err := runFastPPV(d, FastPPVConfig{
				NumHubs:    hubs,
				Iterations: core.DefaultIterations,
				Options:    core.Options{HubPolicy: policy, HubSeed: 11},
			})
			if err != nil {
				return nil, fmt.Errorf("policy %v on %s: %w", policy, name, err)
			}
			res.Method = fmt.Sprintf("FastPPV[%v]", policy)
			out = append(out, HubPolicyResult{Dataset: name, Policy: policy, Result: res})
		}
	}
	return out, nil
}

// Fig8Table renders the online comparison of hub policies (accuracy and query
// time).
func Fig8Table(results []HubPolicyResult) *workload.Table {
	t := workload.NewTable(
		"Fig. 8 — effect of hub selection policy on online processing",
		"Dataset", "Policy", "Kendall", "Precision", "RAG", "L1 similarity", "Online ms/query")
	for _, r := range results {
		t.AddRow(string(r.Dataset), r.Policy.String(),
			r.Result.Accuracy.KendallTau, r.Result.Accuracy.Precision,
			r.Result.Accuracy.RAG, r.Result.Accuracy.L1Similarity,
			float64(r.Result.AvgQueryTime.Microseconds())/1000.0)
	}
	return t
}

// Fig9Table renders the offline comparison of hub policies (space and time).
func Fig9Table(results []HubPolicyResult) *workload.Table {
	t := workload.NewTable(
		"Fig. 9 — effect of hub selection policy on offline precomputation",
		"Dataset", "Policy", "Offline space MB", "Offline time s")
	for _, r := range results {
		t.AddRow(string(r.Dataset), r.Policy.String(),
			float64(r.Result.OfflineBytes)/(1<<20), r.Result.OfflineTime.Seconds())
	}
	return t
}
