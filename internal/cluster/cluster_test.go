package cluster

import (
	"testing"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
)

func TestPartitionCoversEveryNode(t *testing.T) {
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 1500, OutDegreeMean: 5, Attachment: 0.8, Seed: 2})
	if err != nil {
		t.Fatalf("SocialGraph: %v", err)
	}
	c, err := Partition(g, Options{NumClusters: 8, Seed: 1})
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if c.NumClusters() != 8 {
		t.Fatalf("NumClusters = %d, want 8", c.NumClusters())
	}
	if len(c.Assignment) != g.NumNodes() {
		t.Fatalf("Assignment covers %d nodes, want %d", len(c.Assignment), g.NumNodes())
	}
	total := 0
	for id, size := range c.Sizes {
		if size <= 0 {
			t.Errorf("cluster %d is empty", id)
		}
		total += size
		if got := len(c.Members(id)); got != size {
			t.Errorf("Members(%d) has %d nodes, Sizes says %d", id, got, size)
		}
	}
	if total != g.NumNodes() {
		t.Errorf("cluster sizes sum to %d, want %d", total, g.NumNodes())
	}
	for node, cl := range c.Assignment {
		if cl < 0 || int(cl) >= c.NumClusters() {
			t.Fatalf("node %d assigned to invalid cluster %d", node, cl)
		}
	}
	// Anchors belong to their own cluster.
	for id, anchor := range c.Anchors {
		if int(c.Assignment[anchor]) != id {
			t.Errorf("anchor %d of cluster %d assigned to cluster %d", anchor, id, c.Assignment[anchor])
		}
	}
	if c.LargestClusterSize() <= 0 || c.LargestClusterSize() > g.NumNodes() {
		t.Errorf("LargestClusterSize = %d", c.LargestClusterSize())
	}
}

func TestPartitionDeterministicPerSeed(t *testing.T) {
	g, err := gen.RandomDirected(300, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Partition(g, Options{NumClusters: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{NumClusters: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("clustering is not deterministic for a fixed seed")
		}
	}
}

func TestPartitionLocalityOnDisconnectedComponents(t *testing.T) {
	// Two disjoint cliques: nodes of one clique should never be split across
	// the other clique's anchor when both cliques contain an anchor.
	b := graph.NewBuilder(true)
	const half = 30
	b.EnsureNodes(2 * half)
	for u := 0; u < half; u++ {
		for v := 0; v < half; v++ {
			if u != v {
				b.MustAddEdge(graph.NodeID(u), graph.NodeID(v))
				b.MustAddEdge(graph.NodeID(u+half), graph.NodeID(v+half))
			}
		}
	}
	g := b.Finalize()
	c, err := Partition(g, Options{NumClusters: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	firstAnchorSide := c.Anchors[0] < half
	secondAnchorSide := c.Anchors[1] < half
	if firstAnchorSide == secondAnchorSide {
		t.Skip("both anchors landed in the same component; locality not testable for this seed")
	}
	// Every node should be assigned to the anchor of its own component.
	for node, cl := range c.Assignment {
		nodeSide := graph.NodeID(node) < half
		anchorSide := c.Anchors[cl] < half
		if nodeSide != anchorSide {
			t.Errorf("node %d assigned to the anchor of the other component", node)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	g, err := gen.RandomDirected(20, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(g, Options{NumClusters: 0}); err == nil {
		t.Error("zero clusters should be rejected")
	}
	if _, err := Partition(g, Options{NumClusters: 3, Alpha: 5}); err == nil {
		t.Error("invalid alpha should be rejected")
	}
	if _, err := Partition(graph.NewBuilder(true).Finalize(), Options{NumClusters: 2}); err == nil {
		t.Error("empty graph should be rejected")
	}
	// More clusters than nodes clamps to the node count.
	c, err := Partition(g, Options{NumClusters: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != g.NumNodes() {
		t.Errorf("NumClusters = %d, want clamp to %d", c.NumClusters(), g.NumNodes())
	}
}
