package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"fastppv/internal/api"
	"fastppv/internal/cluster"
	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/ppvindex"
	"fastppv/internal/sparse"
)

// testShard is one shard daemon under test. Close kills it for real: the
// binary streams a router holds are hijacked connections httptest.Server
// forgets, so the embedded Close alone would leave the shard reachable over
// any established stream.
type testShard struct {
	*httptest.Server
	srv *Server
}

func (s *testShard) Close() {
	s.srv.CloseStreams()
	s.Server.Close()
}

// shardedServers precomputes `shards` hub-partitioned engines over g and
// serves each through a real Server (so /v1/partial and /v1/stream are the
// production handlers), returning the shard servers.
func shardedServers(t *testing.T, g *graph.Graph, numHubs, shards int) []*testShard {
	t.Helper()
	out := make([]*testShard, shards)
	for i := 0; i < shards; i++ {
		opts := core.Options{NumHubs: numHubs}
		if shards > 1 {
			opts.Partition = core.Partition{Shard: i, Shards: shards}
		}
		e, err := core.NewEngine(g, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Precompute(); err != nil {
			t.Fatal(err)
		}
		srv, err := New(e, Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		sh := &testShard{Server: ts, srv: srv}
		t.Cleanup(sh.Close)
		out[i] = sh
	}
	return out
}

func routerServer(t *testing.T, shardURLs []string) (*httptest.Server, *cluster.Router) {
	t.Helper()
	rt, err := cluster.NewRouter(cluster.RouterConfig{Targets: shardURLs, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv, err := NewRouter(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, rt
}

// TestClusterEndToEndMatchesSingleNode drives the full production stack —
// shard daemons with the real /v1/partial handler, router, router-fronting
// server — and checks the answers against a single-node server.
func TestClusterEndToEndMatchesSingleNode(t *testing.T) {
	g := socialGraph(t, 600)
	single, err := New(testEngine(t, g, 80), Config{})
	if err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	shards := shardedServers(t, g, 80, 2)
	routerTS, _ := routerServer(t, []string{shards[0].URL, shards[1].URL})

	for _, node := range []int{1, 33, 257, 599} {
		path := fmt.Sprintf("/v1/ppv?node=%d&eta=3&top=10", node)
		st1, _, body1 := get(t, singleTS, path)
		st2, _, body2 := get(t, routerTS, path)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("node %d: single=%d router=%d: %s / %s", node, st1, st2, body1, body2)
		}
		var r1, r2 QueryResponse
		if err := json.Unmarshal(body1, &r1); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(body2, &r2); err != nil {
			t.Fatal(err)
		}
		if r2.Degraded || r2.ShardsDown != 0 {
			t.Fatalf("node %d: healthy cluster answered degraded: %s", node, body2)
		}
		if math.Abs(r1.L1ErrorBound-r2.L1ErrorBound) > 1e-12 {
			t.Errorf("node %d: router bound %.15f, single-node %.15f", node, r2.L1ErrorBound, r1.L1ErrorBound)
		}
		if len(r1.Results) != len(r2.Results) {
			t.Fatalf("node %d: %d results via router, %d single-node", node, len(r2.Results), len(r1.Results))
		}
		for i := range r1.Results {
			if r1.Results[i].Node != r2.Results[i].Node {
				t.Errorf("node %d rank %d: router node %d, single-node %d",
					node, i, r2.Results[i].Node, r1.Results[i].Node)
			}
			if math.Abs(r1.Results[i].Score-r2.Results[i].Score) > 1e-12 {
				t.Errorf("node %d rank %d: router score %v, single-node %v",
					node, i, r2.Results[i].Score, r1.Results[i].Score)
			}
		}
	}

	// The router front caches: a repeated query is a byte-identical hit.
	path := "/v1/ppv?node=33&eta=3&top=10"
	_, hdr1, first := get(t, routerTS, path)
	if hdr1.Get("X-Fastppv-Cache") != "miss" {
		// already queried above
		t.Logf("first state: %s", hdr1.Get("X-Fastppv-Cache"))
	}
	_, hdr2, second := get(t, routerTS, path)
	if hdr2.Get("X-Fastppv-Cache") != "hit" {
		t.Errorf("repeat query not served from the router cache: %s", hdr2.Get("X-Fastppv-Cache"))
	}
	if string(first) != string(second) {
		t.Error("cached router response differs from computed one")
	}
}

// TestClusterShardDownDegrades kills one shard and checks the router front
// keeps answering with a widened bound, flags the degradation, and does not
// cache the degraded answer.
func TestClusterShardDownDegrades(t *testing.T) {
	g := socialGraph(t, 400)
	shards := shardedServers(t, g, 60, 2)
	routerTS, rt := routerServer(t, []string{shards[0].URL, shards[1].URL})

	part := core.Partition{Shards: 2}
	node := 0
	for ; part.Owner(graph.NodeID(node)) != 0; node++ {
	}
	path := fmt.Sprintf("/v1/ppv?node=%d&eta=3&top=5", node)
	st, _, healthyBody := get(t, routerTS, path)
	if st != http.StatusOK {
		t.Fatalf("healthy query failed: %d %s", st, healthyBody)
	}
	var healthy QueryResponse
	if err := json.Unmarshal(healthyBody, &healthy); err != nil {
		t.Fatal(err)
	}

	shards[1].Close()
	// Use a different eta so the healthy cached answer is not returned.
	downPath := fmt.Sprintf("/v1/ppv?node=%d&eta=4&top=5", node)
	st, hdr, downBody := get(t, routerTS, downPath)
	if st != http.StatusOK {
		t.Fatalf("query with one shard down must still answer: %d %s", st, downBody)
	}
	var down QueryResponse
	if err := json.Unmarshal(downBody, &down); err != nil {
		t.Fatal(err)
	}
	if !down.Degraded || down.ShardsDown != 1 {
		t.Errorf("degraded=%v shards_down=%d, want degraded with one shard down: %s", down.Degraded, down.ShardsDown, downBody)
	}
	if down.LostErrorMass <= 0 {
		t.Errorf("lost_error_mass = %v, want > 0", down.LostErrorMass)
	}
	if down.L1ErrorBound <= healthy.L1ErrorBound {
		t.Errorf("bound %.12f with a shard down not wider than healthy %.12f (eta even increased)",
			down.L1ErrorBound, healthy.L1ErrorBound)
	}
	if hdr.Get("X-Fastppv-Cache") == "hit" {
		t.Error("degraded answer served from cache")
	}
	// Degraded answers must not be cached.
	_, hdr, _ = get(t, routerTS, downPath)
	if hdr.Get("X-Fastppv-Cache") == "hit" {
		t.Error("degraded answer was cached")
	}
	if !rt.Healthy() {
		t.Error("one live shard left; router should still be healthy")
	}
}

func TestRouterModeUnsupportedEndpoints(t *testing.T) {
	g := socialGraph(t, 200)
	shards := shardedServers(t, g, 30, 1)
	routerTS, _ := routerServer(t, []string{shards[0].URL})

	for _, c := range []struct{ path, body string }{
		{"/v1/compact", ""},
		{"/v1/partial", `{"query":3}`},
	} {
		status, body := post(t, routerTS, c.path, c.body)
		if status != http.StatusNotImplemented {
			t.Errorf("POST %s on router = %d, want 501: %s", c.path, status, body)
		}
		var eresp api.ErrorResponse
		if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error.Code != api.CodeUnsupported {
			t.Errorf("POST %s error code = %q, want %q (%s)", c.path, eresp.Error.Code, api.CodeUnsupported, body)
		}
	}

	// Health and stats still work and report the cluster.
	status, _, body := get(t, routerTS, "/healthz")
	if status != http.StatusOK {
		t.Errorf("router healthz = %d: %s", status, body)
	}
	status, _, body = get(t, routerTS, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("router stats = %d", status)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || len(st.Cluster.Shards) != 1 || st.Cluster.ShardsHealthy != 1 {
		t.Errorf("router stats cluster section wrong: %s", body)
	}
	if st.Graph.Nodes != g.NumNodes() {
		t.Errorf("router stats nodes = %d, want %d", st.Graph.Nodes, g.NumNodes())
	}
}

func TestStructuredErrorCodes(t *testing.T) {
	g := socialGraph(t, 200)
	srv, err := New(testEngine(t, g, 30), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	decode := func(body []byte) api.ErrorResponse {
		var e api.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("error body %s is not the structured envelope: %v", body, err)
		}
		return e
	}
	status, _, body := get(t, ts, "/v1/ppv?node=999999")
	if e := decode(body); status != http.StatusBadRequest || e.Error.Code != api.CodeBadRequest {
		t.Errorf("out-of-range node: status %d code %q", status, e.Error.Code)
	}
	status, body = post(t, ts, "/v1/partial", `{}`)
	if e := decode(body); status != http.StatusBadRequest || e.Error.Code != api.CodeBadRequest {
		t.Errorf("empty partial: status %d code %q", status, e.Error.Code)
	}
	status, body = post(t, ts, "/v1/partial", `{"query":1,"frontier":{"nodes":[],"scores":[]}}`)
	if e := decode(body); status != http.StatusBadRequest || e.Error.Code != api.CodeBadRequest {
		t.Errorf("ambiguous partial: status %d code %q", status, e.Error.Code)
	}
	status, body = post(t, ts, "/v1/compact", "")
	if e := decode(body); status != http.StatusPreconditionFailed || e.Error.Code != api.CodeUnsupported {
		t.Errorf("compact on memory index: status %d code %q", status, e.Error.Code)
	}
}

// TestPartialEndpoint exercises the shard-side protocol directly: a root
// answer must be the query's prime PPV, and an expansion must match the
// engine's own PartialExpand.
func TestPartialEndpoint(t *testing.T) {
	g := socialGraph(t, 300)
	e := testEngine(t, g, 40)
	srv, err := New(e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := post(t, ts, "/v1/partial", `{"query":5}`)
	if status != http.StatusOK {
		t.Fatalf("root partial = %d: %s", status, body)
	}
	var root api.PartialResponse
	if err := json.Unmarshal(body, &root); err != nil {
		t.Fatal(err)
	}
	if root.Shard != 0 || root.Shards != 1 {
		t.Errorf("unsharded engine reports %d/%d, want 0/1", root.Shard, root.Shards)
	}
	want, err := e.PartialRoot(5)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := root.Increment.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if d := inc.L1Distance(want.Increment); d != 0 {
		t.Errorf("root increment differs from engine by %v", d)
	}
	frontier, err := root.Frontier.DecodeMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != len(want.Frontier) {
		t.Errorf("root frontier has %d hubs, want %d", len(frontier), len(want.Frontier))
	}

	wire := api.EncodeMap(frontier)
	reqBody, _ := json.Marshal(api.PartialRequest{Frontier: &wire, Iteration: 1})
	status, body = post(t, ts, "/v1/partial", string(reqBody))
	if status != http.StatusOK {
		t.Fatalf("expand partial = %d: %s", status, body)
	}
	var exp api.PartialResponse
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatal(err)
	}
	wantExp, err := e.PartialExpand(frontier)
	if err != nil {
		t.Fatal(err)
	}
	gotInc, err := exp.Increment.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if d := gotInc.L1Distance(wantExp.Increment); d != 0 {
		t.Errorf("expansion increment differs from engine by %v", d)
	}
	if exp.HubsExpanded != wantExp.HubsExpanded || exp.HubsSkipped != wantExp.HubsSkipped {
		t.Errorf("expanded/skipped = %d/%d, want %d/%d",
			exp.HubsExpanded, exp.HubsSkipped, wantExp.HubsExpanded, wantExp.HubsSkipped)
	}
}

// shardStatsOf decodes a shard's /v1/stats.
func shardStatsOf(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	status, _, body := get(t, ts, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats = %d: %s", status, body)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestClusterUpdateFanOut drives the tentpole end to end: an update posted to
// the router must reach every shard, leave them at the same epoch, and the
// routed post-update top-k must match a single-node engine given the same
// update.
func TestClusterUpdateFanOut(t *testing.T) {
	g := socialGraph(t, 500)
	single := testEngine(t, g, 70)
	shards := shardedServers(t, g, 70, 2)
	routerTS, rt := routerServer(t, []string{shards[0].URL, shards[1].URL})

	// Warm the router cache with a pre-update answer so the invalidation
	// satellite is exercised on the same path.
	path := "/v1/ppv?node=42&eta=3&top=10"
	if st, _, body := get(t, routerTS, path); st != http.StatusOK {
		t.Fatalf("pre-update query: %d %s", st, body)
	}
	if _, hdr, _ := get(t, routerTS, path); hdr.Get("X-Fastppv-Cache") != "hit" {
		t.Fatalf("pre-update answer not cached")
	}

	// An edge out of a hub guarantees at least one recomputed hub.
	hub := single.Hubs().Hubs()[0]
	target := graph.NodeID(431)
	if target == hub {
		target = 432
	}
	body := fmt.Sprintf(`{"added_edges":[[%d,%d]]}`, hub, target)
	status, respBody := post(t, routerTS, "/v1/update", body)
	if status != http.StatusOK {
		t.Fatalf("router update = %d: %s", status, respBody)
	}
	var cu api.ClusterUpdateResponse
	if err := json.Unmarshal(respBody, &cu); err != nil {
		t.Fatal(err)
	}
	if cu.ShardsApplied != 2 || cu.ShardsFailed != 0 || cu.Degraded {
		t.Fatalf("fan-out outcome %+v, want both shards applied", cu)
	}
	if cu.Epoch != 1 {
		t.Fatalf("cluster epoch after first update = %d, want 1", cu.Epoch)
	}
	if cu.Invalidated == 0 {
		t.Error("router cache not invalidated by the accepted update")
	}
	for i, ts := range shards {
		if st := shardStatsOf(t, ts.Server); st.Epoch != 1 {
			t.Errorf("shard %d reports epoch %d after fan-out, want 1", i, st.Epoch)
		}
	}
	if st := shardStatsOf(t, routerTS); st.Epoch != 1 || st.Cluster == nil || st.Cluster.ShardsBehind != 0 {
		t.Errorf("router stats after fan-out: epoch=%d cluster=%+v", st.Epoch, st.Cluster)
	}

	// The pre-update cached answer must not survive: same URL, fresh compute.
	if _, hdr, _ := get(t, routerTS, path); hdr.Get("X-Fastppv-Cache") == "hit" {
		t.Error("pre-update answer served from cache after an accepted update")
	}

	// Routed answers now match a single-node engine with the same update.
	if _, err := single.ApplyUpdate(core.GraphUpdate{AddedEdges: []graph.Edge{{From: hub, To: target}}}); err != nil {
		t.Fatal(err)
	}
	if got := single.Epoch(); got != 1 {
		t.Fatalf("single-node epoch = %d, want 1", got)
	}
	for _, node := range []int{int(hub), int(target), 3, 77} {
		want, err := single.Query(graph.NodeID(node), core.StopCondition{MaxIterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Query(graph.NodeID(node), core.StopCondition{MaxIterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || res.ShardsBehind != 0 || res.ShardsDown != 0 {
			t.Fatalf("node %d: healthy post-update cluster degraded: %+v", node, res)
		}
		if res.Epoch != 1 {
			t.Errorf("node %d: routed answer at epoch %d, want 1", node, res.Epoch)
		}
		if math.Abs(res.L1ErrorBound-want.L1ErrorBound) > 1e-12 {
			t.Errorf("node %d: routed bound %.15f, single-node %.15f", node, res.L1ErrorBound, want.L1ErrorBound)
		}
		gotTop, wantTop := res.TopK(10), want.TopK(10)
		if len(gotTop) != len(wantTop) {
			t.Fatalf("node %d: %d results via router, %d single-node", node, len(gotTop), len(wantTop))
		}
		for i := range wantTop {
			if gotTop[i].Node != wantTop[i].Node || math.Abs(gotTop[i].Score-wantTop[i].Score) > 1e-12 {
				t.Errorf("node %d rank %d: router (%d,%v), single-node (%d,%v)",
					node, i, gotTop[i].Node, gotTop[i].Score, wantTop[i].Node, wantTop[i].Score)
			}
		}
	}
}

// TestClusterDirectShardUpdateDiverges is the divergence footgun: a shard
// taking a direct local update while fronted by a router must bump its epoch,
// and the router must fold it out — degraded answer, strictly wider exact
// bound — instead of merging answers from two different graphs.
func TestClusterDirectShardUpdateDiverges(t *testing.T) {
	g := socialGraph(t, 400)
	shards := shardedServers(t, g, 60, 2)
	routerTS, _ := routerServer(t, []string{shards[0].URL, shards[1].URL})

	// Pick a node owned by shard 0 so the root stays on the consistent shard.
	part := core.Partition{Shards: 2}
	node := 0
	for ; part.Owner(graph.NodeID(node)) != 0; node++ {
	}
	path := fmt.Sprintf("/v1/ppv?node=%d&eta=3&top=5", node)
	st, _, healthyBody := get(t, routerTS, path)
	if st != http.StatusOK {
		t.Fatalf("healthy query failed: %d %s", st, healthyBody)
	}
	var healthy QueryResponse
	if err := json.Unmarshal(healthyBody, &healthy); err != nil {
		t.Fatal(err)
	}
	if healthy.Degraded {
		t.Fatalf("healthy cluster answered degraded: %s", healthyBody)
	}

	// Update shard 1 directly, behind the router's back.
	status, body := post(t, shards[1].Server, "/v1/update", `{"added_edges":[[5,9]]}`)
	if status != http.StatusOK {
		t.Fatalf("direct shard update = %d: %s", status, body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 {
		t.Fatalf("direct update left shard at epoch %d, want 1", ur.Epoch)
	}

	// A different eta dodges the router's (epoch-0-keyed) cached answer.
	divergedPath := fmt.Sprintf("/v1/ppv?node=%d&eta=4&top=5", node)
	st, hdr, divergedBody := get(t, routerTS, divergedPath)
	if st != http.StatusOK {
		t.Fatalf("query against diverged cluster must still answer: %d %s", st, divergedBody)
	}
	var diverged QueryResponse
	if err := json.Unmarshal(divergedBody, &diverged); err != nil {
		t.Fatal(err)
	}
	if !diverged.Degraded || diverged.ShardsBehind == 0 {
		t.Errorf("degraded=%v shards_behind=%d, want the divergent shard folded out: %s",
			diverged.Degraded, diverged.ShardsBehind, divergedBody)
	}
	if diverged.ShardsDown != 0 {
		t.Errorf("shards_down = %d: divergence must not be reported as an outage", diverged.ShardsDown)
	}
	if diverged.LostErrorMass <= 0 {
		t.Errorf("lost_error_mass = %v, want > 0", diverged.LostErrorMass)
	}
	if diverged.L1ErrorBound <= healthy.L1ErrorBound {
		t.Errorf("bound %.12f with a divergent shard not wider than healthy %.12f (eta even increased)",
			diverged.L1ErrorBound, healthy.L1ErrorBound)
	}
	if hdr.Get("X-Fastppv-Cache") == "hit" {
		t.Error("divergence-degraded answer served from cache")
	}
	// Degraded answers must not be cached.
	_, hdr, _ = get(t, routerTS, divergedPath)
	if hdr.Get("X-Fastppv-Cache") == "hit" {
		t.Error("divergence-degraded answer was cached")
	}
	// The router's stats expose the divergence for operators.
	if st := shardStatsOf(t, routerTS); st.Epoch != 1 || st.Cluster == nil || st.Cluster.ShardsBehind != 1 {
		t.Errorf("router stats: epoch=%d cluster=%+v, want epoch 1 with one shard behind", st.Epoch, st.Cluster)
	}
}

// TestClusterUpdateSkipsBehindShard checks the fan-out's ordering guard: a
// shard that missed a batch (here: it was updated past the others directly,
// the same class of divergence) is refused further batches instead of
// applying them out of sequence.
func TestClusterUpdateSkipsBehindShard(t *testing.T) {
	g := socialGraph(t, 300)
	shards := shardedServers(t, g, 40, 2)
	routerTS, _ := routerServer(t, []string{shards[0].URL, shards[1].URL})

	// Diverge shard 1 by two direct updates; the cluster epoch becomes 2 and
	// shard 0 (epoch 0) is now "behind".
	for _, b := range []string{`{"added_edges":[[1,2]]}`, `{"added_edges":[[2,3]]}`} {
		if status, body := post(t, shards[1].Server, "/v1/update", b); status != http.StatusOK {
			t.Fatalf("direct update = %d: %s", status, body)
		}
	}
	status, body := post(t, routerTS, "/v1/update", `{"added_edges":[[3,4]]}`)
	if status != http.StatusOK {
		t.Fatalf("router update = %d: %s", status, body)
	}
	var cu api.ClusterUpdateResponse
	if err := json.Unmarshal(body, &cu); err != nil {
		t.Fatal(err)
	}
	if cu.ShardsApplied != 1 || cu.ShardsFailed != 1 || !cu.Degraded {
		t.Fatalf("fan-out over a diverged cluster: %+v, want exactly the current-epoch shard applied", cu)
	}
	if cu.Epoch != 3 {
		t.Errorf("cluster epoch = %d, want 3 (two direct + one routed)", cu.Epoch)
	}
	for _, sh := range cu.Shards {
		switch sh.Shard {
		case 0:
			if sh.Applied || sh.ErrorCode != api.CodeEpochMismatch {
				t.Errorf("behind shard 0 outcome %+v, want epoch_mismatch refusal", sh)
			}
		case 1:
			if !sh.Applied || sh.Epoch != 3 {
				t.Errorf("current shard 1 outcome %+v, want applied at epoch 3", sh)
			}
		}
	}
}

// TestUpdateConflictWhenInconsistent covers the failed-past-commit-point
// satellite: once a server is flagged inconsistent, further updates must be
// refused with the structured conflict code instead of stacking new batches
// on possibly corrupt state.
func TestUpdateConflictWhenInconsistent(t *testing.T) {
	g := socialGraph(t, 200)
	srv, err := New(testEngine(t, g, 30), Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.inconsistent.Store(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := post(t, ts, "/v1/update", `{"added_edges":[[1,2]]}`)
	if status != http.StatusConflict {
		t.Fatalf("update on inconsistent engine = %d, want 409: %s", status, body)
	}
	var eresp api.ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error.Code != api.CodeConflict {
		t.Errorf("error code = %q, want %q (%s)", eresp.Error.Code, api.CodeConflict, body)
	}
	// Health keeps failing too, so the refusal is not the only signal.
	st, _, _ := get(t, ts, "/healthz")
	if st != http.StatusServiceUnavailable {
		t.Errorf("healthz on inconsistent engine = %d, want 503", st)
	}
}

// TestUpdateIfEpochPrecondition covers the conditional-update wire contract
// on a single engine: a stale if_epoch is refused with epoch_mismatch, the
// matching one applies.
func TestUpdateIfEpochPrecondition(t *testing.T) {
	g := socialGraph(t, 200)
	srv, err := New(testEngine(t, g, 30), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := post(t, ts, "/v1/update", `{"added_edges":[[1,2]],"if_epoch":7}`)
	if status != http.StatusConflict {
		t.Fatalf("mismatched if_epoch = %d, want 409: %s", status, body)
	}
	var eresp api.ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error.Code != api.CodeEpochMismatch {
		t.Errorf("error code = %q, want %q (%s)", eresp.Error.Code, api.CodeEpochMismatch, body)
	}
	status, body = post(t, ts, "/v1/update", `{"added_edges":[[1,2]],"if_epoch":0}`)
	if status != http.StatusOK {
		t.Fatalf("matching if_epoch = %d, want 200: %s", status, body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil || ur.Epoch != 1 {
		t.Errorf("update response %s, want epoch 1", body)
	}
}

// warmableIndex wraps a MemIndex and records warm requests, standing in for
// the disk store's block cache in warming tests.
type warmableIndex struct {
	*ppvindex.MemIndex
	warmedHubs []graph.NodeID
}

func (w *warmableIndex) WarmHubs(hubs []graph.NodeID) int {
	w.warmedHubs = append(w.warmedHubs, hubs...)
	return len(hubs)
}

func TestServerWarmsHottestHubs(t *testing.T) {
	g := socialGraph(t, 300)
	base := testEngine(t, g, 40)
	idx := &warmableIndex{MemIndex: ppvindex.NewMemIndex()}
	for _, h := range base.Index().Hubs() {
		v, _, err := base.Index().Get(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Put(h, sparse.Vector(v)); err != nil {
			t.Fatal(err)
		}
	}
	e, err := core.NewServingEngine(g, idx, core.Options{NumHubs: 40})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(e, Config{WarmHubs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.warmedHubs) != 7 {
		t.Fatalf("warmed %d hubs, want 7", len(idx.warmedHubs))
	}
	// Hottest-first: out-degrees must be non-increasing.
	for i := 1; i < len(idx.warmedHubs); i++ {
		if g.OutDegree(idx.warmedHubs[i-1]) < g.OutDegree(idx.warmedHubs[i]) {
			t.Errorf("warm order not by descending out-degree at %d", i)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, _, body := get(t, ts, "/v1/stats")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Warming == nil || st.Warming.Warmed != 7 || st.Warming.Requested != 7 {
		t.Errorf("stats warming = %+v, want 7/7", st.Warming)
	}
}
