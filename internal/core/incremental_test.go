package core

import (
	"errors"
	"testing"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/hub"
	"fastppv/internal/ppvindex"
	"fastppv/internal/sparse"
)

func TestApplyUpdateMatchesFullRebuild(t *testing.T) {
	g, err := gen.RandomDirected(80, 3, 42)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	opts := exactOptions(10)

	// Engine maintained incrementally.
	inc, err := NewEngine(g, nil, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := inc.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}

	update := GraphUpdate{
		AddedEdges:   []graph.Edge{{From: 1, To: 50}, {From: 7, To: 3}, {From: 20, To: 21}},
		RemovedEdges: []graph.Edge{{From: 0, To: g.OutNeighbors(0)[0]}},
	}
	stats, err := inc.ApplyUpdate(update)
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if stats.AffectedHubs+stats.UnaffectedHubs != inc.Hubs().Size() {
		t.Errorf("affected %d + unaffected %d != %d hubs", stats.AffectedHubs, stats.UnaffectedHubs, inc.Hubs().Size())
	}

	// Engine rebuilt from scratch on the updated graph, with the same hub set
	// (fixed via a PageRank override ranking the incremental engine's hubs
	// first) so the indexes are directly comparable.
	updated := inc.Graph()
	rebuilt, err := NewEngine(updated, nil, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	pr := make([]float64, updated.NumNodes())
	for i := range pr {
		pr[i] = 0.001
	}
	for rank, h := range inc.Hubs().Hubs() {
		pr[h] = 1 - float64(rank)*1e-6
	}
	rebuilt.opts.PageRank = pr
	rebuilt.opts.HubPolicy = hub.ByPageRank
	if err := rebuilt.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}

	for q := graph.NodeID(0); q < 10; q++ {
		a, err := inc.Query(q, StopCondition{MaxIterations: 6})
		if err != nil {
			t.Fatalf("incremental Query: %v", err)
		}
		b, err := rebuilt.Query(q, StopCondition{MaxIterations: 6})
		if err != nil {
			t.Fatalf("rebuilt Query: %v", err)
		}
		if d := a.Estimate.L1Distance(b.Estimate); d > 1e-9 {
			t.Errorf("q=%d: incrementally maintained estimate differs from full rebuild by L1 %.3g", q, d)
		}
	}
}

func TestApplyUpdateAffectsOnlyReachableHubs(t *testing.T) {
	// Build two disconnected cliques; an update inside one component must not
	// recompute hubs of the other.
	b := graph.NewBuilder(true)
	const half = 20
	b.EnsureNodes(2 * half)
	for u := 0; u < half; u++ {
		for v := 0; v < half; v++ {
			if u != v {
				b.MustAddEdge(graph.NodeID(u), graph.NodeID(v))
				b.MustAddEdge(graph.NodeID(u+half), graph.NodeID(v+half))
			}
		}
	}
	g := b.Finalize()
	e, err := NewEngine(g, nil, exactOptions(6))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	var hubsInSecond int
	for _, h := range e.Hubs().Hubs() {
		if int(h) >= half {
			hubsInSecond++
		}
	}
	if hubsInSecond == 0 {
		t.Skip("hub selection placed no hubs in the second component")
	}
	stats, err := e.ApplyUpdate(GraphUpdate{AddedEdges: []graph.Edge{{From: 0, To: 1}}})
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if stats.UnaffectedHubs < hubsInSecond {
		t.Errorf("expected at least the %d hubs of the untouched component to be unaffected, got %d",
			hubsInSecond, stats.UnaffectedHubs)
	}
}

// TestApplyUpdateBumpsEpoch: every committed batch advances the index epoch
// by exactly one, starting from Options.InitialEpoch, so replicas that
// applied the same sequence agree on the epoch.
func TestApplyUpdateBumpsEpoch(t *testing.T) {
	g, err := gen.RandomDirected(40, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, nil, Options{NumHubs: 5, InitialEpoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	if got := e.Epoch(); got != 7 {
		t.Fatalf("initial epoch = %d, want 7", got)
	}
	// A failed update must not advance the epoch.
	if _, err := e.ApplyUpdate(GraphUpdate{AddedEdges: []graph.Edge{{From: 0, To: 9999}}}); err == nil {
		t.Fatal("out-of-range update should fail")
	}
	if got := e.Epoch(); got != 7 {
		t.Errorf("epoch after failed update = %d, want 7", got)
	}
	for i := 1; i <= 2; i++ {
		stats, err := e.ApplyUpdate(GraphUpdate{AddedEdges: []graph.Edge{{From: 0, To: graph.NodeID(20 + i)}}})
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(7 + i); stats.Epoch != want || e.Epoch() != want {
			t.Errorf("after update %d: stats.Epoch=%d Epoch()=%d, want %d", i, stats.Epoch, e.Epoch(), want)
		}
	}
}

func TestApplyUpdateBeforePrecomputeFails(t *testing.T) {
	g, err := gen.RandomDirected(10, 2, 1)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	e, err := NewEngine(g, nil, Options{NumHubs: 2})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.ApplyUpdate(GraphUpdate{}); err == nil {
		t.Errorf("ApplyUpdate before Precompute should fail")
	}
}

func TestApplyUpdateGrowsNodeSet(t *testing.T) {
	g, err := gen.RandomDirected(30, 2, 4)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	e, err := NewEngine(g, nil, exactOptions(5))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	_, err = e.ApplyUpdate(GraphUpdate{
		NumNodes:   35,
		AddedEdges: []graph.Edge{{From: 0, To: 33}, {From: 33, To: 34}, {From: 34, To: 1}},
	})
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if e.Graph().NumNodes() != 35 {
		t.Fatalf("graph has %d nodes after update, want 35", e.Graph().NumNodes())
	}
	res, err := e.Query(0, StopCondition{MaxIterations: 10})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Estimate.Get(34) == 0 {
		t.Errorf("new node 34 is unreachable from node 0 after the update")
	}
}

// committingStore wraps a MemIndex and records UpdateCommitter calls: puts
// since the last commit and how often CommitUpdates ran.
type committingStore struct {
	*ppvindex.MemIndex
	uncommittedPuts int
	commits         int
	failCommit      bool
}

func (c *committingStore) Put(h graph.NodeID, ppv sparse.Vector) error {
	c.uncommittedPuts++
	return c.MemIndex.Put(h, ppv)
}

func (c *committingStore) CommitUpdates() error {
	if c.failCommit {
		return errors.New("commit failed")
	}
	c.commits++
	c.uncommittedPuts = 0
	return nil
}

// TestApplyUpdateCommitsStagedWrites: an index store implementing
// UpdateCommitter must see exactly one CommitUpdates call per ApplyUpdate,
// after every staged Put of the batch.
func TestApplyUpdateCommitsStagedWrites(t *testing.T) {
	g, err := gen.RandomDirected(60, 3, 9)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	store := &committingStore{MemIndex: ppvindex.NewMemIndex()}
	e, err := NewEngine(g, store, exactOptions(8))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	if store.commits != 0 {
		t.Fatalf("Precompute should not commit updates, saw %d commits", store.commits)
	}
	store.uncommittedPuts = 0

	stats, err := e.ApplyUpdate(GraphUpdate{AddedEdges: []graph.Edge{{From: 0, To: 30}}})
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	if store.commits != 1 {
		t.Errorf("ApplyUpdate ran %d commits, want exactly 1", store.commits)
	}
	if store.uncommittedPuts != 0 {
		t.Errorf("%d staged puts left uncommitted after ApplyUpdate (affected %d hubs)",
			store.uncommittedPuts, stats.AffectedHubs)
	}
}

// TestApplyUpdateCommitFailureIsReported: a failing commit must surface as an
// ApplyUpdate error (the serving layer flips the replica to inconsistent).
func TestApplyUpdateCommitFailureIsReported(t *testing.T) {
	g, err := gen.RandomDirected(60, 3, 10)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	store := &committingStore{MemIndex: ppvindex.NewMemIndex()}
	e, err := NewEngine(g, store, exactOptions(8))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	store.failCommit = true
	if _, err := e.ApplyUpdate(GraphUpdate{AddedEdges: []graph.Edge{{From: 0, To: 30}}}); err == nil {
		t.Error("ApplyUpdate with a failing commit should report the error")
	}
}
