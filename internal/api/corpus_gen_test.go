package api

import (
	"bytes"
	"testing"

	"fastppv/internal/corpus"
	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// TestRegenBinaryFrameCorpus writes the committed seed corpus of
// FuzzBinaryFrame and FuzzVectorRoundTrip. Gated: it only runs with
// PPV_REGEN_CORPUS=1, after a codec change that invalidates the seeds.
func TestRegenBinaryFrameCorpus(t *testing.T) {
	corpus.SkipUnlessRegen(t)

	frame := func(ftype byte, payload []byte) []byte {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, ftype, payload); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	q := graph.NodeID(42)
	preq, err := EncodePartialRequest(11, "trace-abc", &PartialRequest{
		Query:     &q,
		Iteration: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	frontier := EncodeMap(map[graph.NodeID]float64{3: 0.5, 9: 0.25})
	sreq, err := EncodePartialRequest(12, "", &PartialRequest{
		Frontier:     &frontier,
		Iteration:    3,
		Speculative:  true,
		FrontierHash: frontier.Hash(),
	})
	if err != nil {
		t.Fatal(err)
	}
	presp, err := EncodePartialResponse(11, &PartialResponse{
		Shard:     1,
		Shards:    4,
		Epoch:     9,
		Increment: EncodeVector(sparse.Vector{1: 0.125, 5: 0.0625}),
		Frontier:  EncodeVector(sparse.Vector{5: 0.03125}),
	})
	if err != nil {
		t.Fatal(err)
	}

	valid := frame(FrameCancel, EncodeCancel(7, 0xDEADBEEF))
	torn := frame(FramePartialRequest, preq)
	torn = torn[:len(torn)-3]
	badCRC := frame(FrameError, EncodeError(5, &Error{Code: "overloaded", Message: "shed"}))
	badCRC[len(badCRC)-1] ^= 0xFF

	corpus.Write(t, "FuzzBinaryFrame",
		valid,
		frame(FramePartialRequest, preq),
		frame(FramePartialRequest, sreq),
		frame(FramePartialResponse, presp),
		frame(FrameError, EncodeError(5, &Error{Code: "bad_request", Message: "no query"})),
		torn,
		badCRC,
		[]byte("XXXX\x01\x00\x00\x00\x00"),
		[]byte{'F', 'P', 'S', '1', 0x01, 0xFF, 0xFF, 0xFF, 0x7F},
	)

	entries := make([]byte, 3*sparse.EncodedEntrySize)
	sparse.PutEncodedEntry(entries, 1, 0.5)
	sparse.PutEncodedEntry(entries[sparse.EncodedEntrySize:], 1, 0.25) // duplicate id
	sparse.PutEncodedEntry(entries[2*sparse.EncodedEntrySize:], 7, -0.0)
	corpus.Write(t, "FuzzVectorRoundTrip",
		entries,
		entries[:sparse.EncodedEntrySize+5], // ragged tail
	)
}
